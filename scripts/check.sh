#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build+test, and a
# tiny-scale experiments smoke that validates the emitted BENCH_*.json
# reports (parse + determinism). Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

say() { printf '\n== %s ==\n' "$*"; }

say "cargo fmt --check"
cargo fmt --all -- --check

say "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

say "tier-1: cargo build --release && cargo test -q"
cargo build --release --workspace
cargo test -q --workspace

say "tiny-scale experiments smoke (--json)"
out_a="$(mktemp -d)"
out_b="$(mktemp -d)"
trap 'rm -rf "$out_a" "$out_b"' EXIT
NTP_SCALE=tiny NTP_DETERMINISTIC=1 \
    cargo run --release -q -p ntp-bench --bin experiments -- --json "$out_a" \
    >/dev/null
NTP_SCALE=tiny NTP_DETERMINISTIC=1 \
    cargo run --release -q -p ntp-bench --bin experiments -- --json "$out_b" \
    >/dev/null

say "validating BENCH_*.json (parse + required sections)"
count=0
for f in "$out_a"/BENCH_*.json; do
    jq -e '.manifest.name and .phases_ms and .predictor.stats.mispredict_pct != null' \
        "$f" >/dev/null || { echo "invalid report: $f"; exit 1; }
    count=$((count + 1))
done
[ "$count" -ge 6 ] || { echo "expected >=6 reports, got $count"; exit 1; }
echo "$count reports parsed"

say "determinism: two runs agree modulo volatile fields"
strip='del(.phases_ms, .throughput, .manifest.git_rev, .manifest.host, .manifest.unix_time)'
for f in "$out_a"/BENCH_*.json; do
    g="$out_b/$(basename "$f")"
    if ! diff <(jq -S "$strip" "$f") <(jq -S "$strip" "$g") >/dev/null; then
        echo "non-deterministic report: $(basename "$f")"
        exit 1
    fi
done
echo "all reports byte-identical after stripping volatiles"

say "CLI report round-trip"
cargo run --release -q -p ntp-cli -- report @compress --budget 300000 --json - \
    | jq -e '.capture.icount > 0' >/dev/null
echo "ok"

printf '\nAll checks passed.\n'
