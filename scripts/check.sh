#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build+test, and a
# tiny-scale experiments smoke that validates the emitted BENCH_*.json
# reports (parse + determinism). Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

say() { printf '\n== %s ==\n' "$*"; }

say "cargo fmt --check"
cargo fmt --all -- --check

say "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

say "tier-1: cargo build --release && cargo test -q"
cargo build --release --workspace
cargo test -q --workspace

say "differential-verification sweep (fixed seed, 64 points/oracle)"
# VERIFICATION.md documents the oracles and the seed protocol. Nonzero
# exit means a divergence; the report names the seed/case to reproduce.
cargo run --release -q -p ntp-cli -- verify --seed 0xC0FFEE --points 64

say "tiny-scale experiments smoke (--json), serial vs 4 threads"
out_a="$(mktemp -d)"
out_b="$(mktemp -d)"
trap 'rm -rf "$out_a" "$out_b"' EXIT
# Run A serial, run B on a 4-wide worker pool: stdout and the stripped
# JSON must be byte-identical regardless of thread count.
NTP_SCALE=tiny NTP_DETERMINISTIC=1 NTP_THREADS=1 \
    cargo run --release -q -p ntp-bench --bin experiments -- --json "$out_a" \
    >"$out_a/stdout.txt"
NTP_SCALE=tiny NTP_DETERMINISTIC=1 NTP_THREADS=4 \
    cargo run --release -q -p ntp-bench --bin experiments -- --json "$out_b" \
    >"$out_b/stdout.txt"

say "determinism: stdout identical at 1 vs 4 threads"
if ! diff "$out_a/stdout.txt" "$out_b/stdout.txt" >/dev/null; then
    echo "stdout differs between NTP_THREADS=1 and NTP_THREADS=4"
    exit 1
fi
echo "stdout byte-identical"

say "validating BENCH_*.json (parse + required sections)"
count=0
for f in "$out_a"/BENCH_*.json; do
    jq -e '.manifest.name and .phases_ms and .predictor.stats.mispredict_pct != null' \
        "$f" >/dev/null || { echo "invalid report: $f"; exit 1; }
    count=$((count + 1))
done
[ "$count" -ge 6 ] || { echo "expected >=6 reports, got $count"; exit 1; }
echo "$count reports parsed"

say "determinism: 1-thread and 4-thread reports agree modulo volatile fields"
strip='del(.phases_ms, .throughput, .manifest.git_rev, .manifest.host, .manifest.unix_time)'
for f in "$out_a"/BENCH_*.json; do
    g="$out_b/$(basename "$f")"
    if ! diff <(jq -S "$strip" "$f") <(jq -S "$strip" "$g") >/dev/null; then
        echo "non-deterministic report: $(basename "$f")"
        exit 1
    fi
done
echo "all reports byte-identical after stripping volatiles"

say "CLI report round-trip"
cargo run --release -q -p ntp-cli -- report @compress --budget 300000 --json - \
    | jq -e '.capture.icount > 0' >/dev/null
echo "ok"

printf '\nAll checks passed.\n'
