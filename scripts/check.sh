#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build+test, a
# tiny-scale experiments smoke that validates the emitted BENCH_*.json
# reports (parse + determinism), a loopback serving smoke that
# diffs served statistics against the offline oracle (SERVING.md), and
# a .nts snapshot gate (save/verify/warm-serve/drain round trip plus
# corruption refusal).
# Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

say() { printf '\n== %s ==\n' "$*"; }

say "cargo fmt --check"
cargo fmt --all -- --check

say "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

say "tier-1: cargo build --release && cargo test -q"
cargo build --release --workspace
cargo test -q --workspace

say "differential-verification sweep (fixed seed, 64 points/oracle)"
# VERIFICATION.md documents the oracles and the seed protocol. Nonzero
# exit means a divergence; the report names the seed/case to reproduce.
cargo run --release -q -p ntp-cli -- verify --seed 0xC0FFEE --points 64

say "tiny-scale experiments smoke (--json), serial vs 4 threads"
out_a="$(mktemp -d)"
out_b="$(mktemp -d)"
trap 'rm -rf "$out_a" "$out_b"' EXIT
# Run A serial, run B on a 4-wide worker pool: stdout and the stripped
# JSON must be byte-identical regardless of thread count.
NTP_SCALE=tiny NTP_DETERMINISTIC=1 NTP_THREADS=1 \
    cargo run --release -q -p ntp-bench --bin experiments -- --json "$out_a" \
    >"$out_a/stdout.txt"
NTP_SCALE=tiny NTP_DETERMINISTIC=1 NTP_THREADS=4 \
    cargo run --release -q -p ntp-bench --bin experiments -- --json "$out_b" \
    >"$out_b/stdout.txt"

say "determinism: stdout identical at 1 vs 4 threads"
if ! diff "$out_a/stdout.txt" "$out_b/stdout.txt" >/dev/null; then
    echo "stdout differs between NTP_THREADS=1 and NTP_THREADS=4"
    exit 1
fi
echo "stdout byte-identical"

say "validating BENCH_*.json (parse + required sections)"
count=0
for f in "$out_a"/BENCH_*.json; do
    jq -e '.manifest.name and .phases_ms and .predictor.stats.mispredict_pct != null' \
        "$f" >/dev/null || { echo "invalid report: $f"; exit 1; }
    count=$((count + 1))
done
[ "$count" -ge 6 ] || { echo "expected >=6 reports, got $count"; exit 1; }
echo "$count reports parsed"

say "determinism: 1-thread and 4-thread reports agree modulo volatile fields"
strip='del(.phases_ms, .throughput, .manifest.git_rev, .manifest.host, .manifest.unix_time)'
for f in "$out_a"/BENCH_*.json; do
    g="$out_b/$(basename "$f")"
    if ! diff <(jq -S "$strip" "$f") <(jq -S "$strip" "$g") >/dev/null; then
        echo "non-deterministic report: $(basename "$f")"
        exit 1
    fi
done
echo "all reports byte-identical after stripping volatiles"

say "CLI report round-trip"
cargo run --release -q -p ntp-cli -- report @compress --budget 300000 --json - \
    | jq -e '.capture.icount > 0' >/dev/null
echo "ok"

say "trace cache: cold vs warm runs are byte-identical"
cache_dir="$(mktemp -d)"
out_cold="$(mktemp -d)"
out_warm="$(mktemp -d)"
trap 'rm -rf "$out_a" "$out_b" "$cache_dir" "$out_cold" "$out_warm"' EXIT
# Cold run populates the cache; warm run must load every artifact from it,
# skip the simulate phase, and emit byte-identical stdout and stripped JSON.
NTP_SCALE=tiny NTP_DETERMINISTIC=1 NTP_THREADS=1 NTP_TRACE_CACHE="$cache_dir" \
    cargo run --release -q -p ntp-bench --bin experiments -- --json "$out_cold" \
    >"$out_cold/stdout.txt"
NTP_SCALE=tiny NTP_DETERMINISTIC=1 NTP_THREADS=1 NTP_TRACE_CACHE="$cache_dir" \
    cargo run --release -q -p ntp-bench --bin experiments -- --json "$out_warm" \
    >"$out_warm/stdout.txt"
if ! diff "$out_cold/stdout.txt" "$out_warm/stdout.txt" >/dev/null; then
    echo "stdout differs between cold and warm cache runs"
    exit 1
fi
echo "stdout byte-identical"
for f in "$out_cold"/BENCH_*.json; do
    g="$out_warm/$(basename "$f")"
    if ! diff <(jq -S "$strip" "$f") <(jq -S "$strip" "$g") >/dev/null; then
        echo "cold/warm report mismatch: $(basename "$f")"
        exit 1
    fi
done
echo "all reports byte-identical after stripping volatiles"
# The warm run must actually have used the cache: every benchmark a hit,
# no capture pass, and a simulate-phase speedup recorded in throughput.
jq -e '.throughput.trace_cache.hits >= 1 and .throughput.trace_cache.misses == 0
       and (.phases_ms.simulate == null or .phases_ms.simulate == 0)' \
    "$out_warm"/BENCH_compress.json >/dev/null \
    || { echo "warm run did not load from the cache"; exit 1; }
cold_ms=$(jq '.phases_ms.simulate' "$out_cold"/BENCH_compress.json)
warm_ms=$(jq '.phases_ms.cache_load // 0' "$out_warm"/BENCH_compress.json)
echo "cold simulate ${cold_ms} ms vs warm cache_load ${warm_ms} ms"

say "perf gate: warm replay throughput vs scripts/BENCH_baseline.json"
# The warm-cache run above replays the same records through the same
# configurations as the checked-in baseline (tiny scale, 1 thread), so
# its .throughput.replay_traces_per_sec is directly comparable. The
# default floor percentage is deliberately loose — it exists to catch
# "the SoA hot path got deoptimised" class regressions, not scheduler
# jitter; tighten with NTP_PERF_FLOOR_PCT=90 when hunting smaller ones.
baseline=scripts/BENCH_baseline.json
floor_pct="${NTP_PERF_FLOOR_PCT:-$(jq '.floor_pct_default' "$baseline")}"
perf_fail=0
for f in "$out_warm"/BENCH_*.json; do
    name=$(jq -r '.manifest.name' "$f")
    base=$(jq -r --arg n "$name" '.replay_traces_per_sec[$n] // empty' "$baseline")
    [ -n "$base" ] || { echo "  $name: no baseline entry, skipped"; continue; }
    got=$(jq -r '.throughput.replay_traces_per_sec' "$f")
    if jq -ne --argjson got "$got" --argjson base "$base" --argjson pct "$floor_pct" \
        '$got >= $base * $pct / 100' >/dev/null; then
        printf '  %-10s %11.0f rec/s (baseline %.0f, floor %s%%)\n' \
            "$name" "$got" "$base" "$floor_pct"
    else
        printf '  %-10s %11.0f rec/s REGRESSION: below %s%% of baseline %.0f\n' \
            "$name" "$got" "$floor_pct" "$base"
        perf_fail=1
    fi
done
[ "$perf_fail" -eq 0 ] || { echo "replay throughput regression (see above)"; exit 1; }
echo "all benchmarks at or above the ${floor_pct}% floor"

say "trace cache: audit passes, corruption falls back to re-capture"
NTP_SCALE=tiny NTP_TRACE_CACHE="$cache_dir" \
    cargo run --release -q -p ntp-cli -- capture --verify >/dev/null
echo "audit ok"
# Flip the format-version byte of one cache file: the loader must refuse
# it, warn, re-capture, and still produce identical stdout.
for corrupt in "$cache_dir"/compress-*.ntc; do
    dd if=/dev/zero of="$corrupt" bs=1 seek=4 count=1 conv=notrunc 2>/dev/null
done
if NTP_SCALE=tiny NTP_TRACE_CACHE="$cache_dir" \
    cargo run --release -q -p ntp-cli -- capture --verify >/dev/null 2>&1; then
    echo "audit failed to flag a corrupted cache file"
    exit 1
fi
echo "audit flags corruption"
out_fb="$(mktemp -d)"
trap 'rm -rf "$out_a" "$out_b" "$cache_dir" "$out_cold" "$out_warm" "$out_fb"' EXIT
NTP_SCALE=tiny NTP_DETERMINISTIC=1 NTP_THREADS=1 NTP_TRACE_CACHE="$cache_dir" \
    cargo run --release -q -p ntp-bench --bin experiments -- --json "$out_fb" \
    >"$out_fb/stdout.txt" 2>"$out_fb/stderr.txt"
if ! diff "$out_cold/stdout.txt" "$out_fb/stdout.txt" >/dev/null; then
    echo "stdout differs after corrupt-file fallback"
    exit 1
fi
grep -q '\[cache\].*refused.*re-capturing' "$out_fb/stderr.txt" \
    || { echo "missing re-capture warning on corrupt cache file"; exit 1; }
jq -e '.throughput.trace_cache.invalid >= 1' "$out_fb"/BENCH_compress.json >/dev/null \
    || { echo "invalid-file counter not recorded"; exit 1; }
echo "corrupt file refused with warning; fallback output byte-identical"

say "serving smoke: loopback serve + loadgen + live metrics plane"
# SERVING.md documents the protocol and this recipe. An ephemeral-port
# server (2 shard workers) with the metrics sidecar and periodic stderr
# stats enabled, a fixed loadgen replay (4 sessions over the cached
# tiny-scale suite), an exact served-vs-oracle diff, a mid-flight scrape
# whose counters must equal the loadgen oracle totals, then a graceful
# drain via `ntp top --shutdown`.
ntp_bin=target/release/ntp
out_srv="$(mktemp -d)"
trap 'rm -rf "$out_a" "$out_b" "$cache_dir" "$out_cold" "$out_warm" "$out_fb" "$out_srv"' EXIT

# Runs one serve+loadgen replay; leaves the server running, with its
# main address in $addr, metrics address in $maddr and pid in $serve_pid.
serve_replay() {
    local tag="$1"
    "$ntp_bin" serve --addr 127.0.0.1:0 --workers 2 \
        --metrics-addr 127.0.0.1:0 --stats-interval 0.2 \
        >"$out_srv/serve$tag.txt" 2>"$out_srv/serve$tag.err" &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$out_srv/serve$tag.txt" 2>/dev/null | head -1 || true)"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "ntp serve never printed its bound address"; exit 1; }
    maddr="$(grep '\[serve\] metrics on' "$out_srv/serve$tag.txt" | grep -oE '127\.0\.0\.1:[0-9]+' || true)"
    [ -n "$maddr" ] || { echo "ntp serve never printed its metrics address"; exit 1; }
    NTP_SCALE=tiny NTP_TRACE_CACHE="$cache_dir" \
        "$ntp_bin" loadgen --addr "$addr" --sessions 4 --clients 2 \
        --json "$out_srv/loadgen$tag.json" >"$out_srv/loadgen$tag.txt" \
        || { echo "loadgen failed (served != oracle?)"; cat "$out_srv/loadgen$tag.txt"; exit 1; }
}

serve_replay 1
echo "server up on $addr (metrics on $maddr)"
jq -e '.all_match == true and (.sessions | length) == 4
       and ([.sessions[] | select(.matches_oracle)] | length) == 4
       and .latency_us.count >= .requests' \
    "$out_srv/loadgen1.json" >/dev/null \
    || { echo "loadgen report failed validation"; exit 1; }
echo "4 sessions served; statistics identical to the offline oracle"

# Serving perf gate: the fixed closed-loop smoke must stay at or above
# the floor percentage of the checked-in baseline QPS — this is what
# catches "the event-driven frontend got slower than thread-per-conn"
# class regressions.
qps_base=$(jq '.loadgen_req_per_sec' "$baseline")
qps_got=$(jq '.qps' "$out_srv/loadgen1.json")
if jq -ne --argjson got "$qps_got" --argjson base "$qps_base" --argjson pct "$floor_pct" \
    '$got >= $base * $pct / 100' >/dev/null; then
    printf 'loadgen %.0f req/s (baseline %.0f, floor %s%%)\n' \
        "$qps_got" "$qps_base" "$floor_pct"
else
    printf 'loadgen %.0f req/s REGRESSION: below %s%% of baseline %.0f\n' \
        "$qps_got" "$floor_pct" "$qps_base"
    exit 1
fi

# The scraped counters must equal the loadgen oracle totals exactly: the
# observability plane may not drop or invent a single frame.
records=$(jq '.records' "$out_srv/loadgen1.json")
batches=$(jq '[.sessions[].batches] | add' "$out_srv/loadgen1.json")
curl -sf "http://$maddr/metrics" >"$out_srv/metrics.txt" \
    || { echo "text scrape of $maddr failed"; exit 1; }
grep -q "^total\.predictions $records\$" "$out_srv/metrics.txt" \
    || { echo "text exposition disagrees with loadgen ($records records)"; exit 1; }
curl -sf "http://$maddr/metrics.json" >"$out_srv/metrics.json" \
    || { echo "json scrape of $maddr failed"; exit 1; }
jq -e --argjson r "$records" --argjson b "$batches" '
    .total.counters.predictions == $r
    and .total.counters."frames.batch" == $b
    and .total.counters."frames.hello" == 4
    and .total.counters."frames.stats" == 4
    and ([.shard0, .shard1 | .counters.predictions] | add) == $r
    and .server.counters."protocol.errors" == 0' \
    "$out_srv/metrics.json" >/dev/null \
    || { echo "scraped counters disagree with the loadgen oracle totals"; exit 1; }
echo "scraped counters equal the loadgen totals ($records predictions, $batches batches)"

"$ntp_bin" top --addr "$addr" --once >"$out_srv/top.txt"
grep -q '^total' "$out_srv/top.txt" \
    || { echo "ntp top table missing the total row"; cat "$out_srv/top.txt"; exit 1; }
# Give the 0.2 s stats heartbeat a chance to fire at least once before
# draining — a warm-cache replay can finish faster than one interval.
sleep 0.5
# `ntp top --shutdown` drains the server after the final poll.
"$ntp_bin" top --addr "$addr" --once --json --shutdown >"$out_srv/top1.json"
wait "$serve_pid" || { echo "ntp serve exited nonzero"; exit 1; }
grep -q 'drained: 4 sessions' "$out_srv/serve1.txt" \
    || { echo "server summary missing the 4 drained sessions"; cat "$out_srv/serve1.txt"; exit 1; }
grep -q 'shard 1:' "$out_srv/serve1.txt" \
    || { echo "drain summary lost per-shard attribution"; cat "$out_srv/serve1.txt"; exit 1; }
grep -q '\[serve\] up' "$out_srv/serve1.err" \
    || { echo "missing periodic [serve] stats line on stderr"; exit 1; }
echo "graceful shutdown drained all sessions with per-shard attribution"

say "serving determinism: stripped top snapshots identical across replays"
# Re-run the identical replay against a fresh server: after stripping
# wall-clock-derived sections (server uptime, rolling windows, latency
# histograms, busy/idle time — see OBSERVABILITY.md), the `ntp top
# --once --json` snapshot must be byte-identical.
serve_replay 2
"$ntp_bin" top --addr "$addr" --once --json --shutdown >"$out_srv/top2.json"
wait "$serve_pid" || { echo "ntp serve exited nonzero on replay 2"; exit 1; }
strip_top='del(.server)
    | with_entries(select(.key | endswith(".window") | not))
    | map_values(del(.gauges, .histograms)
        | .counters |= del(."time.busy_us", ."time.idle_us", ."busy.rejections", ."drain.batched", ."drain.coalesced"))'
if ! diff <(jq "$strip_top" "$out_srv/top1.json") \
          <(jq "$strip_top" "$out_srv/top2.json"); then
    echo "stripped top snapshots differ between identical replays"
    exit 1
fi
echo "stripped top snapshots byte-identical"

say "open-loop overload smoke: shed load, exact oracle, clean drain"
# SERVING.md "Open-loop mode". A deliberately tiny server (1 worker,
# queue depth 1) offered far more than it can apply must shed the
# excess as Busy without retries, keep the lockstep oracle exact over
# the applied subsequence, report a sane sojourn tail, and still drain
# gracefully afterwards.
"$ntp_bin" serve --addr 127.0.0.1:0 --workers 1 --queue-depth 1 \
    >"$out_srv/serve_ol.txt" 2>"$out_srv/serve_ol.err" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$out_srv/serve_ol.txt" 2>/dev/null | head -1 || true)"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "ntp serve never printed its bound address"; exit 1; }
NTP_SCALE=tiny NTP_TRACE_CACHE="$cache_dir" \
    "$ntp_bin" loadgen --addr "$addr" --sessions 2 --clients 2 \
    --open-loop --rate 20000 --duration 1 --zipf 1.0 --seed 0x5EED \
    --json "$out_srv/openloop.json" >"$out_srv/openloop.txt" \
    || { echo "open-loop loadgen failed (oracle divergence?)"; cat "$out_srv/openloop.txt"; exit 1; }
# Overload must actually shed (busy > 0), the books must balance
# (applied + busy == offered), the oracle must hold, and the p99.9
# sojourn must stay under 5 s — queueing, not deadlock.
jq -e '.all_match == true and .busy > 0 and .applied > 0
       and .applied + .busy == .offered
       and .latency_us.p999 < 5000000' \
    "$out_srv/openloop.json" >/dev/null \
    || { echo "open-loop overload report failed validation"; cat "$out_srv/openloop.json"; exit 1; }
"$ntp_bin" top --addr "$addr" --once --shutdown >/dev/null
wait "$serve_pid" || { echo "ntp serve exited nonzero after overload"; exit 1; }
grep -q 'drained: 2 sessions' "$out_srv/serve_ol.txt" \
    || { echo "overloaded server did not drain cleanly"; cat "$out_srv/serve_ol.txt"; exit 1; }
printf 'offered %s, applied %s, busy %s (digest %s); clean drain\n' \
    "$(jq '.offered' "$out_srv/openloop.json")" \
    "$(jq '.applied' "$out_srv/openloop.json")" \
    "$(jq '.busy' "$out_srv/openloop.json")" \
    "$(jq -r '.schedule_digest' "$out_srv/openloop.json")"

say "snapshot gate: save -> verify -> warm-serve -> drain round trip"
# SERVING.md "Predictor state snapshots". An offline-trained .nts must
# verify to the exact JSON it was saved with, warm-start a server, and
# come back byte-identical from an untouched drain (the codec encodes
# deterministically, so cmp(1) is the whole comparison). A corrupted
# copy must be refused by verify *and* fall back to a cold start.
out_snap="$(mktemp -d)"
trap 'rm -rf "$out_a" "$out_b" "$cache_dir" "$out_cold" "$out_warm" "$out_fb" "$out_srv" "$out_snap"' EXIT
"$ntp_bin" snapshot save @compress -o "$out_snap/seed.nts" --budget 300000 \
    --json "$out_snap/save.json" 2>/dev/null
"$ntp_bin" snapshot verify "$out_snap/seed.nts" \
    --json "$out_snap/verify.json" 2>/dev/null
if ! diff <(jq -S . "$out_snap/save.json") <(jq -S . "$out_snap/verify.json"); then
    echo "snapshot verify re-derived different stats than save reported"
    exit 1
fi
jq -e '.session_count == 1 and .sessions[0].predictions > 0' \
    "$out_snap/save.json" >/dev/null \
    || { echo "snapshot save trained nothing"; exit 1; }
echo "offline save/verify JSON identical"

mkdir "$out_snap/drain"
"$ntp_bin" serve --addr 127.0.0.1:0 --workers 1 \
    --warm "$out_snap/seed.nts" --snapshot-on-drain "$out_snap/drain" \
    >"$out_snap/serve.txt" 2>"$out_snap/serve.err" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$out_snap/serve.txt" 2>/dev/null | head -1 || true)"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "warm ntp serve never printed its bound address"; exit 1; }
"$ntp_bin" top --addr "$addr" --once --shutdown >/dev/null
wait "$serve_pid" || { echo "warm ntp serve exited nonzero"; cat "$out_snap/serve.err"; exit 1; }
grep -q '1 warmed, 1 snapshotted' "$out_snap/serve.txt" \
    || { echo "drain summary missing warm/snapshot attribution"; cat "$out_snap/serve.txt"; exit 1; }
cmp "$out_snap/seed.nts" "$out_snap/drain/shard0.nts" \
    || { echo "untouched warm session did not round-trip byte-identically"; exit 1; }
echo "warm-serve drain snapshot byte-identical to the seed"

cp "$out_snap/seed.nts" "$out_snap/bad.nts"
# Flip (not just overwrite) one byte so the corruption is guaranteed.
byte=$(od -An -tu1 -j200 -N1 "$out_snap/bad.nts" | tr -d ' ')
printf "$(printf '\\%03o' $(( (byte + 1) % 256 )))" \
    | dd of="$out_snap/bad.nts" bs=1 seek=200 count=1 conv=notrunc 2>/dev/null
if "$ntp_bin" snapshot verify "$out_snap/bad.nts" >/dev/null 2>&1; then
    echo "snapshot verify accepted a corrupted file"
    exit 1
fi
"$ntp_bin" serve --addr 127.0.0.1:0 --workers 1 --warm "$out_snap/bad.nts" \
    >"$out_snap/serve_bad.txt" 2>"$out_snap/serve_bad.err" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$out_snap/serve_bad.txt" 2>/dev/null | head -1 || true)"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "cold-fallback ntp serve never printed its bound address"; exit 1; }
"$ntp_bin" top --addr "$addr" --once --shutdown >/dev/null
wait "$serve_pid" || { echo "cold-fallback ntp serve exited nonzero"; exit 1; }
grep -q 'warm-start refused, starting cold' "$out_snap/serve_bad.err" \
    || { echo "corrupt snapshot did not log a warm-start refusal"; cat "$out_snap/serve_bad.err"; exit 1; }
grep -q '0 warmed' "$out_snap/serve_bad.txt" \
    || { echo "corrupt snapshot warmed sessions anyway"; cat "$out_snap/serve_bad.txt"; exit 1; }
echo "corrupt snapshot refused by verify and by warm start (cold fallback)"

say "cluster gate: router + 2 backends, live migration + SIGTERM failover"
# SERVING.md "Cluster mode". Two ephemeral backends with drain-snapshot
# dirs behind an ntp route router, a Zipf open-loop load driven through
# the router, one scripted live migration (session 0 to whichever
# backend it is not on, after 40 of its frames), one SIGTERM-driven
# graceful backend failover mid-run — and the loadgen oracle must still
# match field for field, because graceful failover restores every
# session from the backend's drain snapshots.
out_cl="$(mktemp -d)"
trap 'rm -rf "$out_a" "$out_b" "$cache_dir" "$out_cold" "$out_warm" "$out_fb" "$out_srv" "$out_snap" "$out_cl"' EXIT
mkdir "$out_cl/b0" "$out_cl/b1"

cluster_backend() {
    local tag="$1"
    "$ntp_bin" serve --addr 127.0.0.1:0 --workers 2 \
        --snapshot-on-drain "$out_cl/$tag" \
        >"$out_cl/$tag.txt" 2>"$out_cl/$tag.err" &
    backend_pid=$!
    backend_addr=""
    for _ in $(seq 1 100); do
        backend_addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$out_cl/$tag.txt" 2>/dev/null | head -1 || true)"
        [ -n "$backend_addr" ] && break
        sleep 0.1
    done
    [ -n "$backend_addr" ] || { echo "backend $tag never printed its bound address"; exit 1; }
}

cluster_backend b0; b0_pid=$backend_pid; b0_addr=$backend_addr
cluster_backend b1; b1_pid=$backend_pid; b1_addr=$backend_addr

"$ntp_bin" route --addr 127.0.0.1:0 \
    --backends "$b0_addr,$b1_addr" \
    --snapshot-dirs "$out_cl/b0,$out_cl/b1" \
    --probe-interval 0.2 --migrate 0:next:40 \
    >"$out_cl/route.txt" 2>"$out_cl/route.err" &
route_pid=$!
raddr=""
for _ in $(seq 1 100); do
    raddr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$out_cl/route.txt" 2>/dev/null | head -1 || true)"
    [ -n "$raddr" ] && break
    sleep 0.1
done
[ -n "$raddr" ] || { echo "ntp route never printed its bound address"; exit 1; }
echo "router up on $raddr fronting $b0_addr + $b1_addr"

# Zipf open-loop load through the router, in the background so a backend
# can be torn down mid-run.
NTP_SCALE=tiny NTP_TRACE_CACHE="$cache_dir" \
    "$ntp_bin" loadgen --addr "$raddr" --sessions 4 --clients 2 \
    --open-loop --rate 2000 --duration 2 --zipf 1.0 --seed 0x5EED \
    --json "$out_cl/loadgen.json" >"$out_cl/loadgen.txt" 2>&1 &
loadgen_pid=$!
# Let the scripted migration fire, then SIGTERM backend 1: its drain
# writes shard snapshots + the marker, and the router must fail it over
# gracefully while the load keeps running.
sleep 0.8
kill -TERM "$b1_pid"
wait "$loadgen_pid" \
    || { echo "cluster loadgen failed (served != oracle?)"; cat "$out_cl/loadgen.txt"; exit 1; }
jq -e '.all_match == true and .applied > 0' "$out_cl/loadgen.json" >/dev/null \
    || { echo "cluster loadgen report failed validation"; cat "$out_cl/loadgen.json"; exit 1; }
echo "Zipf load through the router matches the oracle across migration + failover"

# The router's own books: exactly one scripted migration, exactly one
# failover, nothing lost (graceful failover restores from snapshots).
"$ntp_bin" top --addr "$raddr" --once --json >"$out_cl/top.json"
jq -e '.router.counters."route.migrations" == 1
       and .router.counters."route.failovers" == 1
       and .router.counters."route.sessions_lost" == 0
       and .router.counters."route.errors" == 0
       and .backend1.counters.alive == 0' \
    "$out_cl/top.json" >/dev/null \
    || { echo "router counters failed validation"; cat "$out_cl/top.json"; exit 1; }
"$ntp_bin" top --addr "$raddr" --cluster --once >"$out_cl/top.txt"
grep -q 'migrations 1  failovers 1' "$out_cl/top.txt" \
    || { echo "ntp top --cluster header missing the migration/failover counts"; cat "$out_cl/top.txt"; exit 1; }
grep -qE '^1\s+no' "$out_cl/top.txt" \
    || { echo "ntp top --cluster table missing the dead backend row"; cat "$out_cl/top.txt"; exit 1; }
wait "$b1_pid" || { echo "SIGTERMed backend exited nonzero"; cat "$out_cl/b1.err"; exit 1; }
grep -q 'drained:' "$out_cl/b1.txt" \
    || { echo "SIGTERMed backend did not drain"; cat "$out_cl/b1.txt"; exit 1; }
echo "one migration, one graceful failover, zero sessions lost"

# Clean drain of the whole tree through the router.
"$ntp_bin" top --addr "$raddr" --once --shutdown >/dev/null
wait "$route_pid" || { echo "ntp route exited nonzero"; cat "$out_cl/route.err"; exit 1; }
wait "$b0_pid" || { echo "surviving backend exited nonzero"; cat "$out_cl/b0.err"; exit 1; }
grep -q '\[route\] drained:' "$out_cl/route.txt" \
    || { echo "router summary missing"; cat "$out_cl/route.txt"; exit 1; }
grep -q 'drained: 4 sessions' "$out_cl/route.txt" \
    || { echo "router summary missing the 4 sessions"; cat "$out_cl/route.txt"; exit 1; }
echo "cluster drained cleanly through the router"

printf '\nAll checks passed.\n'
