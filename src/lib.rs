//! # ntp — path-based next trace prediction, end to end
//!
//! Umbrella crate for the reproduction of *Path-Based Next Trace
//! Prediction* (Jacobson, Rotenberg & Smith, MICRO-30, 1997). It re-exports
//! every layer of the stack:
//!
//! * [`isa`] — the TRISC instruction set, assembler and codecs;
//! * [`sim`] — the functional simulator producing dynamic control-flow
//!   streams;
//! * [`workloads`] — six benchmark programs mirroring the control-flow
//!   character of the paper's SpecInt95 suite;
//! * [`trace`] — trace selection, 36-bit trace IDs and 16-bit hashed IDs;
//! * [`core`] — the path-based next trace predictor (the paper's
//!   contribution): hybrid correlating/secondary tables, DOLC indexing,
//!   return history stack, alternate prediction, cost-reduced entries, and
//!   the unbounded model;
//! * [`baselines`] — gshare/GAg/bimodal, BTBs, RAS and the idealized
//!   sequential trace predictor the paper compares against;
//! * [`engine`] — a cycle-based fetch/execute model for delayed-update
//!   studies and a trace cache;
//! * [`tracefile`] — the persistent on-disk trace-capture cache
//!   (`NTP_TRACE_CACHE`): capture once, replay everywhere, with a
//!   validating checksummed codec that falls back to re-capture on any
//!   stale or corrupt file;
//! * [`runner`] — the zero-dependency scoped-thread worker pool
//!   (`NTP_THREADS`) with ordered-merge results that keeps parallel
//!   capture/replay byte-identical to the serial run;
//! * [`serve`] — the sharded prediction service (`ntp serve`): a
//!   length-framed FNV-checksummed binary wire protocol, session-sharded
//!   worker pool with bounded queues and `Busy` backpressure, plus the
//!   client library and replay load generator (`ntp loadgen`, see
//!   `SERVING.md`);
//! * [`cluster`] — the session-sharding router (`ntp route`): consistent
//!   hashing across `ntp serve` backends, live session migration over a
//!   version-2 wire extension, and snapshot-based failover (see
//!   `SERVING.md` § Cluster);
//! * [`hash`] — the shared FNV-1a 64 hashing primitive behind both the
//!   `.ntc` codec and the wire protocol's frame checksums;
//! * [`verify`] — the differential-testing and fault-injection harness
//!   (`ntp verify`): seeded stream/config generators, cross-implementation
//!   oracles and hostile-config sweeps (see `VERIFICATION.md`).
//!
//! # Quickstart
//!
//! ```
//! use ntp::core::{evaluate, NextTracePredictor, PredictorConfig};
//! use ntp::trace::{run_traces, TraceConfig, TraceRecord};
//!
//! // 1. Build a workload and simulate it, collecting traces.
//! let workload = ntp::workloads::compress::build(1);
//! let mut machine = workload.machine();
//! let mut records: Vec<TraceRecord> = Vec::new();
//! run_traces(&mut machine, 200_000, TraceConfig::default(), |t| {
//!     records.push(TraceRecord::from(t));
//! })?;
//!
//! // 2. Replay the trace stream through the paper's predictor.
//! let mut predictor = NextTracePredictor::new(PredictorConfig::paper(15, 7));
//! let stats = evaluate(&mut predictor, &records);
//! println!("misprediction rate: {:.2}%", stats.mispredict_pct());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use ntp_baselines as baselines;
pub use ntp_cluster as cluster;
pub use ntp_core as core;
pub use ntp_engine as engine;
pub use ntp_hash as hash;
pub use ntp_isa as isa;
pub use ntp_runner as runner;
pub use ntp_serve as serve;
pub use ntp_sim as sim;
pub use ntp_telemetry as telemetry;
pub use ntp_trace as trace;
pub use ntp_tracefile as tracefile;
pub use ntp_verify as verify;
pub use ntp_workloads as workloads;
