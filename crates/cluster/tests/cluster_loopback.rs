//! Cluster end-to-end tests on the loopback: real `serve()` backends on
//! ephemeral ports, a real router in front, real TCP clients through
//! it — and the same exact-oracle guarantee the single-server suite
//! proves, now across a **live migration** and a **backend failover**.
//!
//! The lockstep discipline matters: every update's reply is observed
//! before the next is sent, so any reordering, dropped frame, or stale
//! state introduced by the router's migration/failover machinery shows
//! up as a served-vs-oracle divergence at a specific record, not as a
//! fuzzy aggregate mismatch.

// The phase loops stride every session's stream by a shared index on
// purpose — the lockstep interleaving IS the test.
#![allow(clippy::needless_range_loop)]

use ntp_cluster::{start, BackendSpec, HashRing, RouterConfig};
use ntp_core::{evaluate, NextTracePredictor, PredictorConfig};
use ntp_serve::{config::ServeConfig, serve, Client};
use ntp_trace::{TraceId, TraceRecord};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const BITS: u32 = 12;
const DEPTH: u32 = 4;

/// A deterministic synthetic trace stream (same xorshift walk the serve
/// suite uses, reseeded per session).
fn synthetic_stream(seed: u64, len: usize) -> Vec<TraceRecord> {
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..len)
        .map(|_| {
            let r = step();
            let pc = 0x0040_0000 + ((r >> 8) % 8) as u32 * 64;
            let branches = (r % 4) as u8;
            let bits = (r >> 16) as u8 & ((1u8 << branches).wrapping_sub(1));
            let id = TraceId::new(pc, bits, branches);
            let len = 1 + (r >> 24) as u8 % 16;
            TraceRecord::new(id, len, branches, r % 5 == 0, r % 7 == 0)
        })
        .collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ntp-cluster-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    dir
}

fn backend(snapshot_dir: Option<PathBuf>) -> ntp_serve::ServerHandle {
    serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        snapshot_dir,
        ..ServeConfig::default()
    })
    .expect("backend binds")
}

fn poll_counter(client: &mut Client, section: &str, name: &str) -> u64 {
    let json = client.metrics_json().expect("router metrics");
    ntp_telemetry::json::parse(&json)
        .expect("metrics parse")
        .get(section)
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

/// The headline test: four lockstep sessions stream through the router
/// while one session is migrated live between backends and one backend
/// is drained out from under the cluster (the SIGTERM path) — and every
/// session's served statistics still equal the offline oracle
/// field-for-field.
#[test]
fn migration_and_failover_stay_in_lockstep_with_the_oracle() {
    let dir0 = fresh_dir("b0");
    let dir1 = fresh_dir("b1");
    let b0 = backend(Some(dir0.clone()));
    let b1 = backend(Some(dir1.clone()));
    let addr0 = b0.local_addr().to_string();
    let addr1 = b1.local_addr().to_string();

    let mut cfg = RouterConfig::new(vec![
        BackendSpec {
            addr: addr0.clone(),
            snapshot_dir: Some(dir0.clone()),
        },
        BackendSpec {
            addr: addr1.clone(),
            snapshot_dir: Some(dir1.clone()),
        },
    ]);
    cfg.probe_interval = Duration::from_millis(100);
    let router = start(cfg).expect("router binds");
    let raddr = router.local_addr().to_string();

    const SESSIONS: u64 = 4;
    const LEN: usize = 300;
    let streams: Vec<Vec<TraceRecord>> = (1..=SESSIONS)
        .map(|s| synthetic_stream(0x9E37_79B9 * s, LEN))
        .collect();

    let mut client = Client::connect(&raddr).expect("connect through router");
    for s in 1..=SESSIONS {
        client.hello(s, BITS, DEPTH).expect("hello routes");
    }

    // Phase A: first third, interleaved across sessions in lockstep.
    for i in 0..LEN / 3 {
        for s in 1..=SESSIONS {
            client
                .update(s, &streams[(s - 1) as usize][i])
                .expect("phase A update");
        }
    }

    // Live migration: pick the session the ring placed on backend 0 and
    // move it to backend 1 (or vice versa) — guaranteed a real move, not
    // a same-backend no-op.
    let ring = HashRing::new(&[addr0.clone(), addr1.clone()], cfg_vnodes());
    let victim = 1u64;
    let to = 1 - ring.route(victim);
    router.migrate(victim, to).expect("live migration");

    // Phase B: second third — the migrated session now serves from the
    // other backend, stats riding along in the snapshot.
    for i in LEN / 3..2 * LEN / 3 {
        for s in 1..=SESSIONS {
            client
                .update(s, &streams[(s - 1) as usize][i])
                .expect("phase B update");
        }
    }

    // Failover: drain the backend the migrated session now lives on
    // (what the SIGTERM watcher does) — guaranteed to own at least one
    // session — and let its join() write final snapshots plus the drain
    // marker. The router probe must notice, drain through, and replay
    // that backend's sessions into the survivor from those snapshots.
    let mut handles = [Some(b0), Some(b1)];
    let drained = handles[to as usize].take().expect("drain target");
    drained.request_shutdown();
    let joiner = std::thread::spawn(move || drained.join());
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if poll_counter(&mut client, "router", "route.failovers") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never failed over the draining backend"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let drained_summary = joiner.join().expect("drained backend joins");
    assert!(
        drained_summary.sessions >= 1,
        "the drained backend served no sessions"
    );

    // Phase C: final third, everything on backend 1.
    for i in 2 * LEN / 3..LEN {
        for s in 1..=SESSIONS {
            client
                .update(s, &streams[(s - 1) as usize][i])
                .expect("phase C update");
        }
    }

    // The exactness claim: after a migration and a failover, served
    // statistics still equal a cold offline replay, field for field.
    for s in 1..=SESSIONS {
        let served = client.stats(s).expect("stats route");
        let oracle = evaluate(
            &mut NextTracePredictor::new(PredictorConfig::paper(BITS, DEPTH as usize)),
            &streams[(s - 1) as usize],
        );
        assert_eq!(
            served, oracle,
            "session {s} diverged from the offline oracle after migration/failover"
        );
    }

    // Cluster-wide shutdown through the router: surviving backend
    // drains, then the router itself.
    client.shutdown_server().expect("shutdown through router");
    drop(client);
    let summary = router.join();
    assert_eq!(summary.sessions, SESSIONS);
    assert_eq!(summary.migrations, 1, "exactly one live migration");
    assert_eq!(summary.failovers, 1, "exactly one failover");
    assert_eq!(summary.errors, 0, "no forwarding errors: {summary:?}");
    assert_eq!(summary.sessions_lost, 0, "graceful failover loses nothing");
    assert!(
        summary.sessions_restored >= 1,
        "failover restored backend 0's sessions from its drain snapshots"
    );
    assert!(summary.forwarded >= SESSIONS * (LEN as u64 + 2));
    let survivor = handles[1 - to as usize].take().expect("survivor");
    let survivor_summary = survivor.join();
    assert!(survivor_summary.sessions >= 1);
    for dir in [dir0, dir1] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn cfg_vnodes() -> usize {
    ntp_cluster::DEFAULT_VNODES
}

/// A backend that is simply *gone* (nothing listening) is hard-failed
/// over: the probe gives up after two strikes, the ring shrinks, and
/// traffic — still oracle-exact — continues on the survivor.
#[test]
fn dead_backend_is_hard_failed_over_and_traffic_continues() {
    let b0 = backend(None);
    let addr0 = b0.local_addr().to_string();
    // Bind an ephemeral port, then drop it: a valid address with
    // nothing behind it.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        l.local_addr().expect("addr").to_string()
    };

    let mut cfg = RouterConfig::new(vec![
        BackendSpec {
            addr: addr0.clone(),
            snapshot_dir: None,
        },
        BackendSpec {
            addr: dead_addr,
            snapshot_dir: None,
        },
    ]);
    cfg.probe_interval = Duration::from_millis(50);
    let router = start(cfg).expect("router binds");
    let raddr = router.local_addr().to_string();

    // Wait for the hard failover before sending traffic, so every
    // session lands on the survivor.
    let mut client = Client::connect(&raddr).expect("connect through router");
    let deadline = Instant::now() + Duration::from_secs(30);
    while poll_counter(&mut client, "router", "route.failovers") < 1 {
        assert!(
            Instant::now() < deadline,
            "router never hard-failed the dead backend"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    let stream = synthetic_stream(0xDEAD_BEEF, 200);
    for s in 1..=3u64 {
        client.hello(s, BITS, DEPTH).expect("hello");
    }
    for rec in &stream {
        for s in 1..=3u64 {
            client.update(s, rec).expect("update");
        }
    }
    let oracle = evaluate(
        &mut NextTracePredictor::new(PredictorConfig::paper(BITS, DEPTH as usize)),
        &stream,
    );
    for s in 1..=3u64 {
        assert_eq!(client.stats(s).expect("stats"), oracle, "session {s}");
    }

    client.shutdown_server().expect("shutdown");
    drop(client);
    let summary = router.join();
    assert_eq!(summary.failovers, 1);
    assert_eq!(summary.sessions, 3);
    assert_eq!(
        summary.sessions_lost, 0,
        "no sessions existed when the dead backend was dropped"
    );
    let b0_summary = b0.join();
    assert_eq!(b0_summary.sessions, 3);
}
