//! The cluster router: one listener fronting N `ntp serve` backends.
//!
//! # Data plane
//!
//! Each accepted client connection gets a **forwarder/relay thread
//! pair** joined by an in-order queue:
//!
//! * the *forwarder* reads client frames, answers router-level requests
//!   (`Metrics`, `Shutdown`) itself, places session-bearing frames
//!   through the placement table (falling back to the consistent-hash
//!   [`HashRing`]), writes the raw frame bytes to a lazily-opened
//!   per-connection backend connection, and pushes a ticket onto the
//!   queue;
//! * the *relay* pops tickets in order, reads exactly one reply frame
//!   from the named backend connection, and writes it back to the
//!   client verbatim (the reply is already framed and checksummed — the
//!   router never re-encodes what it merely forwards).
//!
//! Because each backend connection is private to one client connection
//! and both the queue and every TCP stream are FIFO, replies reach the
//! client in request order — which implies per-session order, the
//! invariant the offline-oracle lockstep checks depend on. (This is a
//! deliberate thread-per-connection design: the serving crate's epoll
//! frontend is private to `ntp-serve`, and the router's per-frame work —
//! two reads, two writes — is far from the connection counts where a
//! readiness loop pays for itself. SERVING.md § Cluster spells out the
//! trade.)
//!
//! # Control plane
//!
//! A session can be **migrated** live: the router freezes it (new
//! frames block in the forwarder), waits for in-flight replies to
//! drain, extracts it from the source backend (`Migrate` with no
//! payload), installs the returned checksummed snapshot into the target
//! (`Migrate` with payload), repoints the placement table, and thaws.
//! Per-prediction statistics ride inside the snapshot, so served stats
//! stay in lockstep with the offline oracle across the move.
//!
//! A probe thread polls each backend's `Metrics` frame. A backend
//! reporting `draining: 1` (e.g. SIGTERM) is **failed over
//! gracefully**: its sessions freeze, in-flight work drains, the router
//! closes its connections (letting the backend finish its drain and
//! write final `shard<k>.nts` snapshots), waits for the backend's
//! drain marker, and replays every session into the survivors chosen by
//! the shrunken ring. A backend that stops answering entirely is failed
//! over **hard** from whatever snapshots it last wrote — sessions
//! missing from those are cold-restarted from their remembered `Hello`
//! and counted in `route.sessions_lost`; restored ones may still lose
//! the updates since the last periodic snapshot (`route.sessions_restored`
//! counts them, honestly, as "restored", not "exact").

use crate::ring::HashRing;
use ntp_serve::client::Client;
use ntp_serve::wire::{self, ErrorCode, Request, Response, WireError};
use ntp_serve::DRAIN_MARKER;
use ntp_telemetry::{CounterId, HistogramId, MetricsRegistry, RollingWindow, Snapshot, ToJson};
use ntp_tracefile::{encode_session_wire, read_snapshot_file, SessionSnapshot, SNAPSHOT_EXT};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default number of ring points each backend contributes.
pub const DEFAULT_VNODES: usize = 64;

/// Default backend health-probe period.
pub const DEFAULT_PROBE_INTERVAL: Duration = Duration::from_secs(1);

/// Default cap on reply frames read from a backend (8 MiB): `MigrateOk`
/// carries a whole serialized session, which outgrows the 1 MiB
/// client default long before the paper-point configs do.
pub const DEFAULT_BACKEND_MAX_FRAME: u32 = 8 << 20;

/// First-byte kind of an `Error` reply frame (`wire::K_ERROR`); the
/// relay peeks at it to count backend errors without decoding frames it
/// only forwards.
const ERROR_KIND_BYTE: u8 = 0xFF;

/// Rolling-window span for per-backend rates, in one-second epochs
/// (matches the server's shard windows).
const WINDOW_EPOCHS: u64 = 10;

/// One backend as configured: where it listens and where (if anywhere)
/// it writes its `shard<k>.nts` snapshots — the directory failover
/// restores from.
#[derive(Clone, Debug)]
pub struct BackendSpec {
    /// The backend's `host:port`.
    pub addr: String,
    /// The backend's `--snapshot-dir`, when it has one. Without it a
    /// failed-over session can only be cold-restarted.
    pub snapshot_dir: Option<PathBuf>,
}

/// A scripted one-shot migration: once `session` has had
/// `after_frames` frames forwarded, move it to backend `to`. This is
/// the `ntp route --migrate` flag — a deterministic trigger the cluster
/// gate uses to force a mid-run migration.
#[derive(Clone, Copy, Debug)]
pub struct MigrateTrigger {
    /// Session to move.
    pub session: u64,
    /// Destination backend index, or `None` for "the next backend
    /// around from wherever the session currently lives" — a guaranteed
    /// real move regardless of where the ring placed it (the
    /// `--migrate <session>:next:<frames>` form CI gates use; an exact
    /// index can be a same-backend no-op).
    pub to: Option<u32>,
    /// Fire once this many frames of that session have been forwarded.
    pub after_frames: u64,
}

/// Everything a [`start`] call needs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address, `host:port` (`:0` for an ephemeral port).
    pub addr: String,
    /// The backends, in index order. The ring hashes their addresses,
    /// so placement is stable across router restarts.
    pub backends: Vec<BackendSpec>,
    /// Ring points per backend.
    pub vnodes: usize,
    /// Backend health-probe period.
    pub probe_interval: Duration,
    /// Largest accepted client frame body, in bytes.
    pub max_frame: u32,
    /// Largest accepted backend *reply* body (must fit a migrated
    /// session snapshot).
    pub backend_max_frame: u32,
    /// Concurrent client-connection limit.
    pub max_conns: usize,
    /// Optional scripted migration.
    pub migrate_trigger: Option<MigrateTrigger>,
}

impl RouterConfig {
    /// A loopback-ephemeral config fronting `backends`.
    pub fn new(backends: Vec<BackendSpec>) -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends,
            vnodes: DEFAULT_VNODES,
            probe_interval: DEFAULT_PROBE_INTERVAL,
            max_frame: ntp_serve::config::DEFAULT_MAX_FRAME,
            backend_max_frame: DEFAULT_BACKEND_MAX_FRAME,
            max_conns: 64,
            migrate_trigger: None,
        }
    }

    /// Rejects nonsensical configurations with a one-line diagnostic.
    pub fn validate(&self) -> Result<(), String> {
        if self.backends.is_empty() {
            return Err("route: at least one backend is required".into());
        }
        if self.vnodes == 0 {
            return Err("route: vnodes must be >= 1".into());
        }
        if self.max_conns == 0 {
            return Err("route: max_conns must be >= 1".into());
        }
        if self.probe_interval.is_zero() {
            return Err("route: probe_interval must be > 0".into());
        }
        for cap in [self.max_frame, self.backend_max_frame] {
            if !(wire::MIN_FRAME_CAP..=wire::HARD_FRAME_CAP).contains(&cap) {
                return Err(format!(
                    "route: frame cap {cap} outside [{}, {}]",
                    wire::MIN_FRAME_CAP,
                    wire::HARD_FRAME_CAP
                ));
            }
        }
        if let Some(t) = &self.migrate_trigger {
            match t.to {
                Some(to) if to as usize >= self.backends.len() => {
                    return Err(format!(
                        "route: migrate target {to} out of range ({} backends)",
                        self.backends.len()
                    ));
                }
                None if self.backends.len() < 2 => {
                    return Err("route: migrate target `next` needs at least two backends".into());
                }
                _ => {}
            }
        }
        let mut addrs: Vec<&str> = self.backends.iter().map(|b| b.addr.as_str()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        if addrs.len() != self.backends.len() {
            return Err("route: backend addresses must be distinct".into());
        }
        Ok(())
    }
}

/// Where one session lives and what is in flight for it.
struct SessionState {
    /// Owning backend index.
    backend: u32,
    /// Frames forwarded but not yet relayed back.
    outstanding: u32,
    /// Frozen by a migration or failover: forwarders wait instead of
    /// forwarding.
    frozen: bool,
    /// `(bits, depth)` from the last `Hello`, for cold restarts when a
    /// failover finds no snapshot.
    hello: Option<(u32, u32)>,
    /// Frames forwarded so far (drives [`MigrateTrigger`]).
    frames: u64,
}

/// Monotonic route counters (exposed as `route.*` in metrics).
#[derive(Default)]
struct RouteCounters {
    forwarded: AtomicU64,
    migrations: AtomicU64,
    failovers: AtomicU64,
    errors: AtomicU64,
    sessions_lost: AtomicU64,
    sessions_restored: AtomicU64,
    accepted: AtomicU64,
    refused: AtomicU64,
}

/// Per-backend cumulative metrics plus the rolling window behind
/// `backend<k>.window` rates.
struct BackendMetrics {
    reg: MetricsRegistry,
    window: RollingWindow,
    c_forwarded: CounterId,
    c_errors: CounterId,
    h_latency: HistogramId,
}

impl BackendMetrics {
    fn new() -> BackendMetrics {
        let mut reg = MetricsRegistry::new();
        let c_forwarded = reg.counter("forwarded");
        let c_errors = reg.counter("errors");
        let h_latency = reg.histogram("latency_us");
        BackendMetrics {
            reg,
            window: RollingWindow::new(WINDOW_EPOCHS as usize),
            c_forwarded,
            c_errors,
            h_latency,
        }
    }
}

/// The shared router core every thread hangs off.
struct Core {
    cfg: RouterConfig,
    addr: SocketAddr,
    ring: Mutex<HashRing>,
    /// The placement table; guarded with `settled` so freeze/thaw and
    /// outstanding-drain waits share one notification channel.
    sessions: Mutex<HashMap<u64, SessionState>>,
    settled: Condvar,
    /// Per-backend liveness; flipped off exactly once per failover.
    alive: Vec<AtomicBool>,
    /// Registered router→backend data connections, per client
    /// connection: failover shuts these down so a draining backend's
    /// connection count reaches zero (its drain completes only then).
    conns: Mutex<HashMap<u64, Vec<Option<TcpStream>>>>,
    next_conn_id: AtomicU64,
    active_conns: AtomicUsize,
    drain: AtomicBool,
    counters: RouteCounters,
    metrics: Mutex<Vec<BackendMetrics>>,
    trigger_fired: AtomicBool,
    start: Instant,
}

/// What the forwarder hands its relay, strictly in reply order.
enum RelayItem {
    /// A router-answered reply (metrics, errors, `Bye`).
    Direct(Response),
    /// The relay's read half of a freshly opened backend connection
    /// (always queued before the first ticket that needs it).
    BackendConn { backend: u32, stream: TcpStream },
    /// One forwarded frame: read one reply from `backend`, pass it on.
    Forwarded {
        backend: u32,
        session: u64,
        t0: Instant,
    },
}

impl Core {
    /// Places one session-bearing frame: blocks while the session is
    /// frozen, assigns unknown sessions through the ring, bumps the
    /// in-flight count, and returns `(backend, frames_so_far)`.
    fn place(&self, session: u64, hello: Option<(u32, u32)>) -> (u32, u64) {
        let mut map = self.sessions.lock().expect("sessions lock");
        loop {
            match map.get_mut(&session) {
                Some(st) if st.frozen => {
                    map = self.settled.wait(map).expect("sessions lock");
                }
                Some(st) => {
                    st.outstanding += 1;
                    st.frames += 1;
                    if hello.is_some() {
                        st.hello = hello;
                    }
                    return (st.backend, st.frames);
                }
                None => {
                    let backend = self.ring.lock().expect("ring lock").route(session);
                    map.insert(
                        session,
                        SessionState {
                            backend,
                            outstanding: 1,
                            frozen: false,
                            hello,
                            frames: 1,
                        },
                    );
                    return (backend, 1);
                }
            }
        }
    }

    /// Marks one in-flight frame of `session` settled (relayed back or
    /// failed) and wakes every waiter.
    fn unplace(&self, session: u64) {
        let mut map = self.sessions.lock().expect("sessions lock");
        if let Some(st) = map.get_mut(&session) {
            st.outstanding = st.outstanding.saturating_sub(1);
        }
        self.settled.notify_all();
    }

    /// Waits until none of `ids` has an in-flight frame. False on
    /// timeout (an in-flight reply that never settles — a wedged
    /// backend connection times out through its socket deadline, which
    /// feeds back here as an error-settled frame).
    fn wait_settled(&self, ids: &[u64], timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut map = self.sessions.lock().expect("sessions lock");
        loop {
            let busy = ids
                .iter()
                .any(|id| map.get(id).is_some_and(|st| st.outstanding > 0));
            if !busy {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            map = self
                .settled
                .wait_timeout(map, deadline - now)
                .expect("sessions lock")
                .0;
        }
    }

    /// Thaws `ids` (whatever subset still exists) and wakes waiters.
    fn thaw(&self, ids: &[u64]) {
        let mut map = self.sessions.lock().expect("sessions lock");
        for id in ids {
            if let Some(st) = map.get_mut(id) {
                st.frozen = false;
            }
        }
        self.settled.notify_all();
    }

    /// Opens a data connection to backend `k` (long deadlines: these
    /// carry pipelined traffic, not probes).
    fn connect_backend(&self, k: u32) -> std::io::Result<TcpStream> {
        if !self.alive[k as usize].load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                format!("backend {k} is down"),
            ));
        }
        use std::net::ToSocketAddrs;
        let spec = &self.cfg.backends[k as usize];
        let addr =
            spec.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address")
            })?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// A short-lived control client to backend `k` (migrations,
    /// forwarded shutdowns), with the frame cap raised for snapshot
    /// payloads.
    fn control_client(&self, k: u32) -> Result<Client, String> {
        let spec = &self.cfg.backends[k as usize];
        let mut client = Client::connect_with_timeout(
            spec.addr.as_str(),
            Duration::from_secs(2),
            Duration::from_secs(15),
        )
        .map_err(|e| format!("backend {k} ({}): {e}", spec.addr))?;
        client.set_max_frame(self.cfg.backend_max_frame);
        Ok(client)
    }

    /// Shuts down every registered router→backend connection to `k`
    /// (both directions, so blocked relays unblock too).
    fn close_backend_conns(&self, k: u32) {
        let mut conns = self.conns.lock().expect("conns lock");
        for per_backend in conns.values_mut() {
            if let Some(stream) = per_backend[k as usize].take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// Records one relayed reply in backend `k`'s metrics.
    fn record(&self, k: u32, latency: Duration, is_error: bool) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let epoch = self.start.elapsed().as_secs();
        let mut metrics = self.metrics.lock().expect("metrics lock");
        let bm = &mut metrics[k as usize];
        bm.reg.inc(bm.c_forwarded);
        if is_error {
            bm.reg.inc(bm.c_errors);
        }
        bm.reg.observe(bm.h_latency, us);
        let bucket = bm.window.bucket_mut(epoch);
        let f = bucket.counter("forwarded");
        bucket.inc(f);
        let h = bucket.histogram("latency_us");
        bucket.observe(h, us);
    }

    /// The router's merged metrics snapshot, rendered like a server's:
    /// a `router` section, one `backend<k>` section per backend plus
    /// its `.window` — so `ntp top --cluster` and the scrape tooling
    /// read one schema.
    fn metrics_json(&self) -> String {
        let mut snap = Snapshot::new();
        let mut router = MetricsRegistry::new();
        let c = &self.counters;
        for (name, v) in [
            (
                "route.sessions",
                self.sessions.lock().expect("sessions lock").len() as u64,
            ),
            ("route.forwarded", c.forwarded.load(Ordering::Relaxed)),
            ("route.migrations", c.migrations.load(Ordering::Relaxed)),
            ("route.failovers", c.failovers.load(Ordering::Relaxed)),
            ("route.errors", c.errors.load(Ordering::Relaxed)),
            (
                "route.sessions_lost",
                c.sessions_lost.load(Ordering::Relaxed),
            ),
            (
                "route.sessions_restored",
                c.sessions_restored.load(Ordering::Relaxed),
            ),
            ("conns.accepted", c.accepted.load(Ordering::Relaxed)),
            ("conns.refused", c.refused.load(Ordering::Relaxed)),
            ("draining", u64::from(self.drain.load(Ordering::SeqCst))),
        ] {
            let id = router.counter(name);
            router.set_counter(id, v);
        }
        let up = router.gauge("uptime_s");
        router.set(up, self.start.elapsed().as_secs_f64());
        snap.push("router", router);

        let epoch = self.start.elapsed().as_secs();
        let mut metrics = self.metrics.lock().expect("metrics lock");
        for (k, bm) in metrics.iter_mut().enumerate() {
            let mut reg = bm.reg.clone();
            let alive = reg.counter("alive");
            reg.set_counter(alive, u64::from(self.alive[k].load(Ordering::SeqCst)));
            snap.push(&format!("backend{k}"), reg);
            bm.window.advance_to(epoch);
            let mut merged = bm.window.merged();
            // Epochs actually covered, so readers can turn window
            // counters into per-second rates (same contract as the
            // server's shard windows).
            let e = merged.counter("epochs");
            merged.set_counter(e, (epoch + 1).min(WINDOW_EPOCHS));
            snap.push(&format!("backend{k}.window"), merged);
        }
        snap.to_json().render()
    }

    /// Starts the router drain and pokes the acceptor awake.
    fn begin_drain(&self) {
        if self.drain.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    // ---- migration ----------------------------------------------------

    /// Moves a live session to backend `to`: freeze → settle → extract
    /// → install → repoint → thaw. On an install failure the session is
    /// re-installed at the source; only if *that* also fails is it
    /// dropped (and counted lost).
    fn migrate_session(&self, session: u64, to: u32) -> Result<(), String> {
        if to as usize >= self.cfg.backends.len() {
            return Err(format!(
                "route: migrate target {to} out of range ({} backends)",
                self.cfg.backends.len()
            ));
        }
        if !self.alive[to as usize].load(Ordering::SeqCst) {
            return Err(format!("route: migrate target backend {to} is down"));
        }
        let from = {
            let mut map = self.sessions.lock().expect("sessions lock");
            let st = map
                .get_mut(&session)
                .ok_or_else(|| format!("route: unknown session {session}"))?;
            if st.frozen {
                return Err(format!(
                    "route: session {session} is already frozen (migration or failover in progress)"
                ));
            }
            st.frozen = true;
            st.backend
        };
        if from == to {
            self.thaw(&[session]);
            return Ok(());
        }
        if !self.wait_settled(&[session], Duration::from_secs(30)) {
            self.thaw(&[session]);
            return Err(format!(
                "route: session {session} still has frames in flight after 30s"
            ));
        }
        let moved = self.extract_install(session, from, to);
        {
            let mut map = self.sessions.lock().expect("sessions lock");
            if let Some(st) = map.get_mut(&session) {
                if moved.is_ok() {
                    st.backend = to;
                }
                st.frozen = false;
            }
            self.settled.notify_all();
        }
        if moved.is_ok() {
            self.counters.migrations.fetch_add(1, Ordering::Relaxed);
            eprintln!("[route] migrated session {session}: backend {from} -> {to}");
        }
        moved
    }

    /// The wire half of a migration (session already frozen and
    /// settled).
    fn extract_install(&self, session: u64, from: u32, to: u32) -> Result<(), String> {
        let mut src = self.control_client(from)?;
        let bytes = src
            .migrate_out(session)
            .map_err(|e| format!("route: extract session {session} from backend {from}: {e}"))?;
        let install = self.control_client(to).and_then(|mut dst| {
            dst.migrate_in(session, bytes.clone())
                .map_err(|e| format!("route: install session {session} on backend {to}: {e}"))
        });
        match install {
            Ok(()) => Ok(()),
            Err(e) => match src.migrate_in(session, bytes) {
                Ok(()) => Err(format!("{e} (session restored on backend {from})")),
                Err(e2) => {
                    // The session is gone from both ends: drop it and
                    // say so — the next client frame re-routes and gets
                    // an honest UnknownSession from the new backend.
                    self.counters.sessions_lost.fetch_add(1, Ordering::Relaxed);
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    self.sessions
                        .lock()
                        .expect("sessions lock")
                        .remove(&session);
                    self.settled.notify_all();
                    Err(format!(
                        "{e}; re-install on backend {from} also failed ({e2}): session lost"
                    ))
                }
            },
        }
    }

    // ---- failover -----------------------------------------------------

    /// Fails over backend `k`. `graceful` means the backend announced a
    /// drain (its final snapshots are coming — wait for the drain
    /// marker); otherwise it is dead and whatever snapshots it last
    /// wrote are the best available.
    fn failover(&self, k: u32, graceful: bool) {
        if !self.alive[k as usize].swap(false, Ordering::SeqCst) {
            return; // Already failed over.
        }
        eprintln!(
            "[route] backend {k} ({}) {}; failing over",
            self.cfg.backends[k as usize].addr,
            if graceful {
                "is draining"
            } else {
                "is not answering"
            }
        );
        // Freeze every session the backend owns. Sessions already
        // frozen by a concurrent migration are left to that migration's
        // error handling.
        let frozen: Vec<u64> = {
            let mut map = self.sessions.lock().expect("sessions lock");
            map.iter_mut()
                .filter(|(_, st)| st.backend == k && !st.frozen)
                .map(|(id, st)| {
                    st.frozen = true;
                    *id
                })
                .collect()
        };
        if graceful {
            // Let in-flight replies drain first (the draining backend
            // still serves established connections), then close our
            // connections so its drain can complete.
            if !self.wait_settled(&frozen, Duration::from_secs(30)) {
                eprintln!("[route] backend {k}: in-flight frames did not settle within 30s");
            }
            self.close_backend_conns(k);
        } else {
            // Dead backend: closing first is what unblocks the relays,
            // whose error paths settle the in-flight counts.
            self.close_backend_conns(k);
            if !self.wait_settled(&frozen, Duration::from_secs(30)) {
                eprintln!("[route] backend {k}: in-flight frames did not settle within 30s");
            }
        }
        self.ring.lock().expect("ring lock").remove(k);

        let snaps = self.load_backend_snapshots(k, graceful);
        let mut restored = 0u64;
        let mut lost = 0u64;
        for &id in &frozen {
            let target = self.ring.lock().expect("ring lock").route(id);
            let outcome = match snaps.get(&id) {
                Some(snap) => self
                    .control_client(target)
                    .and_then(|mut c| {
                        c.migrate_in(id, encode_session_wire(snap))
                            .map_err(|e| format!("install session {id} on backend {target}: {e}"))
                    })
                    .map(|()| true),
                None => {
                    // No snapshot: cold-restart from the remembered
                    // Hello so the session keeps serving (with reset
                    // state — counted lost below).
                    let hello = self
                        .sessions
                        .lock()
                        .expect("sessions lock")
                        .get(&id)
                        .and_then(|st| st.hello);
                    match hello {
                        Some((bits, depth)) => self.control_client(target).and_then(|mut c| {
                            c.hello(id, bits, depth).map(|_| false).map_err(|e| {
                                format!("re-hello session {id} on backend {target}: {e}")
                            })
                        }),
                        None => Err(format!("session {id}: no snapshot and no remembered hello")),
                    }
                }
            };
            let mut map = self.sessions.lock().expect("sessions lock");
            match outcome {
                Ok(exact) => {
                    if let Some(st) = map.get_mut(&id) {
                        st.backend = target;
                    }
                    if exact {
                        restored += 1;
                    } else {
                        lost += 1;
                    }
                }
                Err(e) => {
                    eprintln!("[route] failover of backend {k}: {e}");
                    map.remove(&id);
                    lost += 1;
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.counters
            .sessions_restored
            .fetch_add(restored, Ordering::Relaxed);
        self.counters
            .sessions_lost
            .fetch_add(lost, Ordering::Relaxed);
        self.thaw(&frozen);
        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "[route] failover of backend {k} complete: {restored} session(s) restored, {lost} lost or reset"
        );
    }

    /// Reads backend `k`'s snapshot directory into a per-session map.
    /// For a graceful failover this first waits (up to 30s) for the
    /// backend's drain marker — the file its `join()` writes only after
    /// every final `shard<j>.nts` is on disk — so a mid-run periodic
    /// snapshot is never mistaken for the authoritative drain state.
    fn load_backend_snapshots(&self, k: u32, graceful: bool) -> HashMap<u64, SessionSnapshot> {
        let mut out = HashMap::new();
        let Some(dir) = &self.cfg.backends[k as usize].snapshot_dir else {
            eprintln!("[route] backend {k} has no snapshot dir; sessions will cold-restart");
            return out;
        };
        if graceful {
            let deadline = Instant::now() + Duration::from_secs(30);
            while !dir.join(DRAIN_MARKER).exists() {
                if Instant::now() >= deadline {
                    eprintln!(
                        "[route] backend {k}: no drain marker in {dir:?} after 30s; \
                         restoring from whatever snapshots exist"
                    );
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("[route] backend {k}: cannot scan {dir:?}: {e}");
                return out;
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_none_or(|ext| ext != SNAPSHOT_EXT) {
                continue;
            }
            match read_snapshot_file(&path) {
                Ok((artifact, _)) => {
                    for s in artifact.sessions {
                        out.insert(s.session_id, s);
                    }
                }
                Err(e) => eprintln!("[route] backend {k}: refusing snapshot {path:?}: {e}"),
            }
        }
        out
    }
}

// ---- connection threads ------------------------------------------------

/// The forwarder half of one client connection.
fn forwarder_loop(core: &Arc<Core>, mut client: TcpStream) {
    let conn_id = core.next_conn_id.fetch_add(1, Ordering::SeqCst);
    let n = core.cfg.backends.len();
    core.conns
        .lock()
        .expect("conns lock")
        .insert(conn_id, (0..n).map(|_| None).collect());
    let (tx, rx) = mpsc::channel::<RelayItem>();
    let relay = {
        let core = Arc::clone(core);
        let writer = match client.try_clone() {
            Ok(w) => w,
            Err(e) => {
                eprintln!("[route] cannot split client connection: {e}");
                core.conns.lock().expect("conns lock").remove(&conn_id);
                return;
            }
        };
        std::thread::Builder::new()
            .name("ntp-route-relay".into())
            .spawn(move || relay_loop(&core, writer, rx))
    };
    let Ok(relay) = relay else {
        core.conns.lock().expect("conns lock").remove(&conn_id);
        return;
    };

    let mut backends: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    loop {
        let body = match wire::read_frame(&mut client, core.cfg.max_frame) {
            Ok(body) => body,
            Err(WireError::Io(_)) => break, // EOF, timeout, reset: done.
            Err(e @ WireError::Oversized { recoverable, .. }) => {
                let sent = tx
                    .send(RelayItem::Direct(Response::Error {
                        code: ErrorCode::Oversized,
                        message: e.to_string(),
                    }))
                    .is_ok();
                if !recoverable || !sent {
                    break;
                }
                continue;
            }
            Err(e @ (WireError::BadChecksum | WireError::Empty)) => {
                if tx
                    .send(RelayItem::Direct(Response::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    }))
                    .is_err()
                {
                    break;
                }
                continue;
            }
        };
        let req = match wire::decode_request(&body) {
            Ok(req) => req,
            Err(msg) => {
                if tx
                    .send(RelayItem::Direct(Response::Error {
                        code: ErrorCode::BadRequest,
                        message: msg,
                    }))
                    .is_err()
                {
                    break;
                }
                continue;
            }
        };

        let hello = match &req {
            Request::Shutdown => {
                // Cluster-wide shutdown: every live backend drains, then
                // the router itself. Backends finish their drains once
                // the surviving client connections (and their backend
                // connections) close.
                for k in 0..n as u32 {
                    if !core.alive[k as usize].load(Ordering::SeqCst) {
                        continue;
                    }
                    match core.control_client(k).and_then(|mut c| {
                        c.shutdown_server().map_err(|e| format!("backend {k}: {e}"))
                    }) {
                        Ok(()) => {}
                        Err(e) => eprintln!("[route] shutdown forward failed: {e}"),
                    }
                }
                let _ = tx.send(RelayItem::Direct(Response::Bye));
                core.begin_drain();
                break;
            }
            Request::Metrics => {
                if tx
                    .send(RelayItem::Direct(Response::Metrics {
                        json: core.metrics_json(),
                    }))
                    .is_err()
                {
                    break;
                }
                continue;
            }
            Request::Migrate { .. } => {
                // Client-driven migration would desynchronize the
                // placement table; the router owns session movement.
                if tx
                    .send(RelayItem::Direct(Response::Error {
                        code: ErrorCode::BadRequest,
                        message: "session migration is router-managed; \
                                  use `ntp route --migrate` or the router API"
                            .into(),
                    }))
                    .is_err()
                {
                    break;
                }
                continue;
            }
            Request::Hello { bits, depth, .. } => Some((*bits, *depth)),
            _ => None,
        };
        let session = req.session().expect("routed requests name a session");
        let (backend, frames) = core.place(session, hello);

        // Lazily open (and register) this connection's pipe to the
        // chosen backend; tell the relay about its read half first so
        // the queue order guarantees the relay knows the stream before
        // the first ticket referencing it.
        if backends[backend as usize].is_none() {
            match core.connect_backend(backend).and_then(|s| {
                let reader = s.try_clone()?;
                let registered = s.try_clone()?;
                Ok((s, reader, registered))
            }) {
                Ok((stream, reader, registered)) => {
                    if let Some(slots) = core.conns.lock().expect("conns lock").get_mut(&conn_id) {
                        slots[backend as usize] = Some(registered);
                    }
                    if tx
                        .send(RelayItem::BackendConn {
                            backend,
                            stream: reader,
                        })
                        .is_err()
                    {
                        core.unplace(session);
                        break;
                    }
                    backends[backend as usize] = Some(stream);
                }
                Err(e) => {
                    core.unplace(session);
                    core.counters.errors.fetch_add(1, Ordering::Relaxed);
                    if tx
                        .send(RelayItem::Direct(Response::Error {
                            code: ErrorCode::Internal,
                            message: format!("backend {backend} unreachable: {e}"),
                        }))
                        .is_err()
                    {
                        break;
                    }
                    continue;
                }
            }
        }
        let t0 = Instant::now();
        let forwarded = {
            let stream = backends[backend as usize].as_mut().expect("just opened");
            wire::write_frame(stream, &body)
        };
        match forwarded {
            Ok(()) => {
                core.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                if tx
                    .send(RelayItem::Forwarded {
                        backend,
                        session,
                        t0,
                    })
                    .is_err()
                {
                    core.unplace(session);
                    break;
                }
            }
            Err(e) => {
                backends[backend as usize] = None;
                if let Some(slots) = core.conns.lock().expect("conns lock").get_mut(&conn_id) {
                    slots[backend as usize] = None;
                }
                core.unplace(session);
                core.counters.errors.fetch_add(1, Ordering::Relaxed);
                if tx
                    .send(RelayItem::Direct(Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("backend {backend} write failed: {e}"),
                    }))
                    .is_err()
                {
                    break;
                }
            }
        }

        // Scripted migration: fire once the watched session has had
        // enough frames forwarded (and their replies will settle — the
        // migration path waits for that itself).
        if let Some(t) = core.cfg.migrate_trigger {
            if t.session == session
                && frames >= t.after_frames
                && !core.trigger_fired.swap(true, Ordering::SeqCst)
            {
                let mover = Arc::clone(core);
                let spawned = std::thread::Builder::new()
                    .name("ntp-route-migrate".into())
                    .spawn(move || {
                        // `to: None` resolves against where the session
                        // lives *now*: always a real move.
                        let to = t.to.unwrap_or_else(|| {
                            let map = mover.sessions.lock().expect("sessions lock");
                            let from = map.get(&t.session).map_or(0, |st| st.backend);
                            (from + 1) % mover.cfg.backends.len() as u32
                        });
                        if let Err(e) = mover.migrate_session(t.session, to) {
                            eprintln!("[route] scripted migration failed: {e}");
                        }
                    });
                if spawned.is_err() {
                    core.trigger_fired.store(false, Ordering::SeqCst);
                }
            }
        }
    }
    drop(tx); // Relay drains the queue, then exits.
    let _ = relay.join();
    core.conns.lock().expect("conns lock").remove(&conn_id);
    // Dropping `backends` here closes this connection's pipes; the
    // backends see EOF and release the connection slots.
}

/// The relay half: pops tickets in order, reads one backend reply per
/// ticket, forwards it verbatim, and settles the in-flight count. Keeps
/// consuming after the client dies so every forwarded frame still
/// settles (migrations and failovers wait on those counts).
fn relay_loop(core: &Arc<Core>, mut client: TcpStream, rx: Receiver<RelayItem>) {
    let n = core.cfg.backends.len();
    let mut readers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    let mut scratch: Vec<u8> = Vec::with_capacity(256);
    let mut client_ok = true;
    for item in rx {
        match item {
            RelayItem::BackendConn { backend, stream } => {
                readers[backend as usize] = Some(stream);
            }
            RelayItem::Direct(resp) => {
                if client_ok {
                    scratch.clear();
                    wire::append_response_frame(&mut scratch, &resp);
                    client_ok = client
                        .write_all(&scratch)
                        .and_then(|()| client.flush())
                        .is_ok();
                }
            }
            RelayItem::Forwarded {
                backend,
                session,
                t0,
            } => {
                let reply = match readers[backend as usize].as_mut() {
                    Some(stream) => wire::read_frame(stream, core.cfg.backend_max_frame)
                        .map_err(|e| e.to_string()),
                    None => Err("backend connection is gone".into()),
                };
                match reply {
                    Ok(body) => {
                        let is_error = body.first() == Some(&ERROR_KIND_BYTE);
                        core.record(backend, t0.elapsed(), is_error);
                        if client_ok {
                            client_ok = wire::write_frame(&mut client, &body).is_ok();
                        }
                    }
                    Err(e) => {
                        readers[backend as usize] = None;
                        core.counters.errors.fetch_add(1, Ordering::Relaxed);
                        core.record(backend, t0.elapsed(), true);
                        if client_ok {
                            scratch.clear();
                            wire::append_response_frame(
                                &mut scratch,
                                &Response::Error {
                                    code: ErrorCode::Internal,
                                    message: format!("backend {backend} failed mid-request: {e}"),
                                },
                            );
                            client_ok = client
                                .write_all(&scratch)
                                .and_then(|()| client.flush())
                                .is_ok();
                        }
                    }
                }
                core.unplace(session);
            }
        }
    }
}

// ---- probe thread ------------------------------------------------------

/// Polls each live backend's metrics. `draining: 1` triggers a graceful
/// failover; two consecutive probe failures (connect or request) a hard
/// one. Probe connections are persistent — a draining backend refuses
/// *new* connections but keeps serving established ones, which is
/// exactly how the flag stays readable mid-drain.
fn probe_loop(core: &Arc<Core>) {
    let n = core.cfg.backends.len();
    let mut probes: Vec<Option<Client>> = (0..n).map(|_| None).collect();
    let mut failures = vec![0u32; n];
    // The first round runs immediately: the persistent probe
    // connections must exist *before* any backend can start draining,
    // or a drain inside the first interval would read as a dead backend
    // (a draining server refuses new connections, including probes).
    while !core.drain.load(Ordering::SeqCst) {
        for k in 0..n {
            if !core.alive[k].load(Ordering::SeqCst) {
                probes[k] = None;
                continue;
            }
            if probes[k].is_none() {
                match Client::connect_with_timeout(
                    core.cfg.backends[k].addr.as_str(),
                    Duration::from_millis(500),
                    Duration::from_secs(2),
                ) {
                    Ok(c) => probes[k] = Some(c),
                    Err(_) => {
                        failures[k] += 1;
                    }
                }
            }
            if let Some(probe) = probes[k].as_mut() {
                match probe.metrics_json() {
                    Ok(json) => {
                        failures[k] = 0;
                        if backend_is_draining(&json) {
                            probes[k] = None; // Our conn must close for its drain to finish.
                            core.failover(k as u32, true);
                        }
                    }
                    Err(_) => {
                        probes[k] = None;
                        failures[k] += 1;
                    }
                }
            }
            if failures[k] >= 2 && core.alive[k].load(Ordering::SeqCst) {
                if core.drain.load(Ordering::SeqCst) {
                    return; // Shutting down, not failing over.
                }
                failures[k] = 0;
                core.failover(k as u32, false);
            }
        }
        // Sleep in slices so a router drain never waits a full period.
        let until = Instant::now() + core.cfg.probe_interval;
        while Instant::now() < until {
            if core.drain.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Reads the `server.counters.draining` flag out of a backend's metrics
/// JSON.
fn backend_is_draining(json: &str) -> bool {
    ntp_telemetry::json::parse(json)
        .ok()
        .and_then(|j| j.get("server")?.get("counters")?.get("draining")?.as_u64())
        == Some(1)
}

// ---- handle ------------------------------------------------------------

/// Final router accounting, returned by [`RouterHandle::join`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterSummary {
    /// Sessions still placed at shutdown.
    pub sessions: u64,
    /// Frames forwarded to backends.
    pub forwarded: u64,
    /// Completed live migrations.
    pub migrations: u64,
    /// Completed failovers (graceful or hard).
    pub failovers: u64,
    /// Forwarding/relay errors surfaced to clients.
    pub errors: u64,
    /// Sessions that lost state (cold restart or unrecoverable).
    pub sessions_lost: u64,
    /// Sessions restored from snapshots during failovers.
    pub sessions_restored: u64,
}

/// A running router; drop-in for a `ServerHandle` where the lifecycle
/// matters: `start(cfg)` → … → client `Shutdown` (or
/// [`RouterHandle::request_shutdown`]) → [`RouterHandle::join`].
pub struct RouterHandle {
    core: Arc<Core>,
    accept: Option<JoinHandle<()>>,
    probe: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Migrates a live session to backend `to` (blocking; returns once
    /// the session is serving from the target).
    pub fn migrate(&self, session: u64, to: u32) -> Result<(), String> {
        self.core.migrate_session(session, to)
    }

    /// The router's metrics snapshot as rendered JSON (same call a
    /// `Metrics` frame answers).
    pub fn metrics_json(&self) -> String {
        self.core.metrics_json()
    }

    /// Starts the router drain: stop accepting, let connections finish.
    /// Does **not** shut down backends — a client `Shutdown` frame does
    /// both.
    pub fn request_shutdown(&self) {
        self.core.begin_drain();
    }

    /// Waits for the drain to complete and returns the accounting.
    pub fn join(mut self) -> RouterSummary {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        while self.core.active_conns.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        if let Some(h) = self.probe.take() {
            let _ = h.join();
        }
        let c = &self.core.counters;
        RouterSummary {
            sessions: self.core.sessions.lock().expect("sessions lock").len() as u64,
            forwarded: c.forwarded.load(Ordering::Relaxed),
            migrations: c.migrations.load(Ordering::Relaxed),
            failovers: c.failovers.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            sessions_lost: c.sessions_lost.load(Ordering::Relaxed),
            sessions_restored: c.sessions_restored.load(Ordering::Relaxed),
        }
    }
}

/// Binds `cfg.addr` and spawns the acceptor and the probe thread.
/// Fails with a one-line diagnostic naming the address when it cannot
/// bind (same contract as `ntp_serve::serve`).
pub fn start(cfg: RouterConfig) -> Result<RouterHandle, String> {
    cfg.validate()?;
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| format!("route: cannot bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("route: cannot resolve bound address: {e}"))?;
    let labels: Vec<String> = cfg.backends.iter().map(|b| b.addr.clone()).collect();
    let ring = HashRing::new(&labels, cfg.vnodes);
    let n = cfg.backends.len();
    let core = Arc::new(Core {
        addr,
        ring: Mutex::new(ring),
        sessions: Mutex::new(HashMap::new()),
        settled: Condvar::new(),
        alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
        conns: Mutex::new(HashMap::new()),
        next_conn_id: AtomicU64::new(0),
        active_conns: AtomicUsize::new(0),
        drain: AtomicBool::new(false),
        counters: RouteCounters::default(),
        metrics: Mutex::new((0..n).map(|_| BackendMetrics::new()).collect()),
        trigger_fired: AtomicBool::new(false),
        start: Instant::now(),
        cfg,
    });

    let accept = {
        let core = Arc::clone(&core);
        std::thread::Builder::new()
            .name("ntp-route-accept".into())
            .spawn(move || accept_loop(&core, listener))
            .map_err(|e| format!("route: cannot spawn acceptor: {e}"))?
    };
    let probe = {
        let core = Arc::clone(&core);
        std::thread::Builder::new()
            .name("ntp-route-probe".into())
            .spawn(move || probe_loop(&core))
            .map_err(|e| format!("route: cannot spawn probe thread: {e}"))?
    };
    Ok(RouterHandle {
        core,
        accept: Some(accept),
        probe: Some(probe),
    })
}

fn accept_loop(core: &Arc<Core>, listener: TcpListener) {
    for stream in listener.incoming() {
        if core.drain.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let slot = core.active_conns.fetch_add(1, Ordering::SeqCst);
        if slot >= core.cfg.max_conns {
            core.counters.refused.fetch_add(1, Ordering::Relaxed);
            refuse(stream);
            core.active_conns.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        core.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let core2 = Arc::clone(core);
        let spawned = std::thread::Builder::new()
            .name("ntp-route-conn".into())
            .spawn(move || {
                forwarder_loop(&core2, stream);
                core2.active_conns.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            core.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// One `Refused` error frame on a connection we will not serve.
fn refuse(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut scratch = Vec::with_capacity(64);
    wire::append_response_frame(
        &mut scratch,
        &Response::Error {
            code: ErrorCode::Refused,
            message: "router connection limit reached".into(),
        },
    );
    let _ = stream.write_all(&scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_nonsense_with_one_liners() {
        let backend = |addr: &str| BackendSpec {
            addr: addr.into(),
            snapshot_dir: None,
        };
        let base = RouterConfig::new(vec![backend("127.0.0.1:5001"), backend("127.0.0.1:5002")]);
        assert!(base.validate().is_ok());
        for (cfg, needle) in [
            (RouterConfig::new(Vec::new()), "backend"),
            (
                RouterConfig {
                    vnodes: 0,
                    ..base.clone()
                },
                "vnodes",
            ),
            (
                RouterConfig {
                    max_conns: 0,
                    ..base.clone()
                },
                "max_conns",
            ),
            (
                RouterConfig {
                    probe_interval: Duration::ZERO,
                    ..base.clone()
                },
                "probe_interval",
            ),
            (
                RouterConfig {
                    max_frame: 1,
                    ..base.clone()
                },
                "frame cap",
            ),
            (
                RouterConfig {
                    migrate_trigger: Some(MigrateTrigger {
                        session: 1,
                        to: Some(9),
                        after_frames: 1,
                    }),
                    ..base.clone()
                },
                "out of range",
            ),
            (
                RouterConfig::new(vec![backend("127.0.0.1:5001"), backend("127.0.0.1:5001")]),
                "distinct",
            ),
        ] {
            let err = cfg.validate().expect_err("must be rejected");
            assert!(err.contains(needle), "`{err}` should mention {needle}");
            assert!(!err.contains('\n'), "one-line diagnostic: {err}");
        }
    }

    #[test]
    fn draining_flag_parses_out_of_server_metrics_json() {
        let yes = r#"{"server":{"counters":{"draining":1},"gauges":{},"histograms":{}}}"#;
        let no = r#"{"server":{"counters":{"draining":0},"gauges":{},"histograms":{}}}"#;
        assert!(backend_is_draining(yes));
        assert!(!backend_is_draining(no));
        assert!(!backend_is_draining("not json"));
        assert!(!backend_is_draining("{}"));
    }
}
