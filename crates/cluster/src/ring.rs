//! Consistent-hash placement of sessions onto backends.
//!
//! The ring is the router's *default* placement function: a session the
//! router has never seen (and that no migration has pinned elsewhere)
//! lands on `ring.route(session)`. Placement must satisfy two
//! properties, both tested below:
//!
//! * **determinism** — the same member list always produces the same
//!   ring, point for point, so two routers (or one router across a
//!   restart) agree without coordination;
//! * **minimal churn** — removing a member reassigns only the sessions
//!   that member owned (≈ `1/N` of them); every other session keeps its
//!   backend, so a failover never scatters healthy sessions.
//!
//! Each member contributes `vnodes` points, `fnv64("<label>#<v>")`,
//! sorted on a circle of `u64` hashes; a session routes to the first
//! point at or clockwise-after `fnv64(session.to_le_bytes())`. FNV-1a 64
//! is the workspace's shared hash ([`ntp_hash`]) — the same function
//! that checksums wire frames and `.ntc` sections — so the ring adds no
//! second hashing idiom.

use ntp_hash::fnv64;

/// A consistent-hash ring over backend indexes.
///
/// Members are dense indexes into the router's backend table; each is
/// hashed through its *label* (the backend address), so the ring
/// depends on what the backends are, not on the order flags were typed.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, member)` sorted by point; ties broken by member index
    /// (FNV collisions across labels are astronomically unlikely but
    /// the order must still be deterministic).
    points: Vec<(u64, u32)>,
    /// Live member count.
    members: usize,
}

impl HashRing {
    /// Builds the ring: `labels[i]` contributes `vnodes` points for
    /// member `i`. Labels should be the backend addresses — stable
    /// across router restarts.
    ///
    /// # Panics
    ///
    /// Panics when `labels` is empty or `vnodes` is zero: a ring with
    /// no points cannot place anything, and silently deferring the
    /// failure to `route` would hide a configuration bug.
    pub fn new(labels: &[String], vnodes: usize) -> HashRing {
        assert!(!labels.is_empty(), "ring needs at least one member");
        assert!(vnodes >= 1, "ring needs at least one vnode per member");
        let mut points = Vec::with_capacity(labels.len() * vnodes);
        for (member, label) in labels.iter().enumerate() {
            for v in 0..vnodes {
                let point = fnv64(format!("{label}#{v}").as_bytes());
                points.push((point, member as u32));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            members: labels.len(),
        }
    }

    /// The backend owning `session`: the first point clockwise from the
    /// session's hash (wrapping past the top of the circle).
    pub fn route(&self, session: u64) -> u32 {
        let h = fnv64(&session.to_le_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, member) = self.points[idx % self.points.len()];
        member
    }

    /// Removes `member`'s points, collapsing only its arcs — every
    /// session it did not own keeps its backend.
    ///
    /// # Panics
    ///
    /// Panics when the removal would empty the ring: the caller (the
    /// router's failover path) must keep at least one survivor.
    pub fn remove(&mut self, member: u32) {
        self.points.retain(|&(_, m)| m != member);
        assert!(
            !self.points.is_empty(),
            "cannot remove the last ring member"
        );
        self.members -= 1;
    }

    /// Live members (decremented by [`HashRing::remove`]).
    pub fn members(&self) -> usize {
        self.members
    }

    /// Total points on the circle (`members × vnodes` at construction).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True only for a ring drained of every member — unreachable
    /// through the public API, which refuses to empty a ring.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:5{i:03}")).collect()
    }

    /// A seeded xorshift so the property tests sweep a deterministic
    /// but non-trivial session population (same discipline as
    /// ntp-verify's hand-rolled generators — no external proptest dep).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn placement_is_deterministic_across_reinstantiation() {
        // Property (satellite): both placement functions the cluster
        // relies on — the server's `session % workers` shard owner and
        // the router's ring — agree with themselves when rebuilt from
        // the same inputs. No hidden state, no randomized seeds.
        let mut rng = Rng(0x5EED_0001);
        let place = |sessions: &[u64]| {
            // Rebuild the whole placement stack from scratch: the ring
            // picks the backend, `session % workers` picks the shard
            // inside it (the server's owner function).
            let ring = HashRing::new(&labels(5), 64);
            let workers = 4u64;
            sessions
                .iter()
                .map(|&s| (ring.route(s), s % workers))
                .collect::<Vec<_>>()
        };
        let sessions: Vec<u64> = (0..10_000).map(|_| rng.next()).collect();
        assert_eq!(place(&sessions), place(&sessions));
        let a = HashRing::new(&labels(5), 64);
        let b = HashRing::new(&labels(5), 64);
        // And the full point list is identical, not just the sampled
        // routes.
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn ring_is_a_pure_function_of_labels_and_vnodes() {
        // Same labels, different vnode count: a different ring. Same
        // everything: the same ring.
        let a = HashRing::new(&labels(3), 32);
        let b = HashRing::new(&labels(3), 64);
        assert_ne!(a.len(), b.len());
        let c = HashRing::new(&labels(3), 32);
        assert_eq!(a.points, c.points);
    }

    #[test]
    fn removal_moves_only_the_removed_members_sessions() {
        // Property (satellite): after `remove(k)`, a session changes
        // backends iff it was on `k` — the ≤ 1/N churn guarantee that
        // makes failover local. Checked over several member counts and
        // every removable member.
        let mut rng = Rng(0xC0FF_EE00);
        for n in [2usize, 3, 5, 8] {
            let base = HashRing::new(&labels(n), 64);
            let sessions: Vec<u64> = (0..5_000).map(|_| rng.next()).collect();
            for dead in 0..n as u32 {
                let mut shrunk = base.clone();
                shrunk.remove(dead);
                assert_eq!(shrunk.members(), n - 1);
                let mut moved = 0usize;
                for &s in &sessions {
                    let before = base.route(s);
                    let after = shrunk.route(s);
                    if before == dead {
                        moved += 1;
                        assert_ne!(after, dead, "session left on a removed member");
                    } else {
                        assert_eq!(
                            before, after,
                            "session {s} moved off surviving member {before}"
                        );
                    }
                }
                // The removed member owned roughly 1/N of the keys; with
                // 64 vnodes the imbalance stays well under 3x.
                assert!(
                    moved <= sessions.len() * 3 / n,
                    "{moved}/{} moved for n={n} (expected ≈ {})",
                    sessions.len(),
                    sessions.len() / n
                );
            }
        }
    }

    #[test]
    fn spread_covers_every_member() {
        let ring = HashRing::new(&labels(4), 64);
        let mut rng = Rng(0xBEEF);
        let mut owned = [0u64; 4];
        for _ in 0..20_000 {
            owned[ring.route(rng.next()) as usize] += 1;
        }
        for (m, &count) in owned.iter().enumerate() {
            assert!(count > 0, "member {m} owns nothing");
        }
    }

    #[test]
    #[should_panic(expected = "last ring member")]
    fn removing_the_last_member_is_refused() {
        let mut ring = HashRing::new(&labels(1), 8);
        ring.remove(0);
    }
}
