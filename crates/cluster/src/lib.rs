//! # ntp-cluster — a consistent-hash router over `ntp serve` backends
//!
//! One `ntp route` process fronts N `ntp serve` shard-servers and makes
//! them look like a single predictor service:
//!
//! * **placement** — sessions map to backends through a deterministic
//!   consistent-hash ring ([`HashRing`]: FNV-1a-64 points, `vnodes` per
//!   member), so any router instance given the same backend list agrees
//!   on every placement without coordination;
//! * **forwarding** — the length-framed wire protocol is relayed
//!   verbatim over per-client-connection pipelined backend connections,
//!   preserving per-session request/reply order (the invariant that
//!   keeps served statistics in lockstep with the offline
//!   `ntp_core::evaluate` oracle);
//! * **live migration** — protocol v2 `Migrate`/`MigrateOk` frames move
//!   a frozen, settled session between backends as a checksummed
//!   single-session snapshot, statistics riding along;
//! * **failover** — a draining backend (SIGTERM) is drained *through*,
//!   then its final `shard<k>.nts` snapshots are replayed into the
//!   survivors; a dead backend is restored from its last periodic
//!   snapshots, with sessions that lost state counted honestly in
//!   `route.sessions_lost` rather than papered over.
//!
//! Topology, frame layouts, failover semantics (including the honesty
//! caveats) and every knob are documented in `SERVING.md` § Cluster at
//! the repo root; the `route.*` metric contract is in `OBSERVABILITY.md`.

#![warn(missing_docs)]

pub mod ring;
pub mod router;

pub use ring::HashRing;
pub use router::{
    start, BackendSpec, MigrateTrigger, RouterConfig, RouterHandle, RouterSummary,
    DEFAULT_BACKEND_MAX_FRAME, DEFAULT_PROBE_INTERVAL, DEFAULT_VNODES,
};
