//! End-to-end acceptance tests for the verification harness:
//!
//! * the full fixed-seed sweep (`--seed 0xC0FFEE`, 64 points per oracle —
//!   the exact gate `scripts/check.sh` runs through the CLI) is clean;
//! * the harness is deterministic in its reporting;
//! * a long-stream lockstep run of the bounded/unbounded pair holds for
//!   tens of thousands of predictions;
//! * divergence reports carry everything needed to reproduce (seed, case,
//!   index, config, both sides' state).

use ntp_core::{NextTracePredictor, TracePredictor, UnboundedPredictor};
use ntp_verify::{
    alias_free_point, run_all, Divergence, OracleOutcome, VerifyReport, XorShift64,
    MAX_CLUSTER_CASES,
};

#[test]
fn full_sweep_at_the_pinned_seed_is_clean() {
    // The acceptance gate: all six differential oracles plus the fault
    // sweep over 64 generated points each, zero divergences. The cluster
    // oracle clamps itself (each of its cases boots a real router and two
    // real servers) and reports the clamped count rather than pretending
    // it ran 64.
    let report = run_all(0xC0FFEE, 64);
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.oracles.len(), 7);
    for oracle in &report.oracles {
        let expected = if oracle.name == "cluster-lockstep" {
            64.min(MAX_CLUSTER_CASES)
        } else {
            64
        };
        assert_eq!(oracle.cases, expected, "{}", oracle.name);
        assert!(oracle.comparisons >= expected as u64, "{}", oracle.name);
    }
    // The per-prediction oracle alone contributes tens of thousands of
    // comparisons.
    assert!(
        report.total_comparisons() > 10_000,
        "sweep breadth: {}",
        report.total_comparisons()
    );
}

#[test]
fn report_text_is_reproducible_across_runs() {
    let a = run_all(0xDECAF, 8).to_string();
    let b = run_all(0xDECAF, 8).to_string();
    assert_eq!(a, b);
}

#[test]
fn bounded_tracks_unbounded_over_a_long_stream() {
    // One deep soak beyond the sweep's per-case lengths: ~20k predictions
    // in perfect lockstep on a single alias-free point.
    let mut rng = XorShift64::new(0x0050_A4E5 ^ 0x1234_5678);
    let point = alias_free_point(&mut rng);
    let stream = point.stream(&mut rng, 20_000);
    let mut bounded = NextTracePredictor::try_new(point.cfg).unwrap();
    let mut unbounded = UnboundedPredictor::try_new(point.ucfg).unwrap();
    for (i, r) in stream.iter().enumerate() {
        let (pb, pu) = (bounded.predict(), unbounded.predict());
        assert_eq!(pb, pu, "lockstep broke at {i}: {pb:?} vs {pu:?}");
        bounded.update(r);
        unbounded.update(r);
    }
}

#[test]
fn dirty_reports_render_every_divergence_with_context() {
    // Build a synthetic dirty report (as produced when a validation or
    // equivalence regression is injected) and check the operator-facing
    // rendering names seed, case, index and both sides.
    let divergence = Divergence {
        oracle: "fault-injection",
        seed: 0xC0FFEE,
        case: 9,
        index: None,
        config: "EngineConfig { issue_width: 4, window: 8, mispredict_penalty: 8 }".into(),
        detail: "hostile config of class `engine-window-too-small` was ACCEPTED by \
                 try_validate; the validation layer has regressed"
            .into(),
    };
    let report = VerifyReport {
        seed: 0xC0FFEE,
        points: 64,
        oracles: vec![OracleOutcome {
            name: "fault-injection",
            cases: 64,
            comparisons: 68,
            divergences: vec![divergence],
        }],
    };
    assert!(!report.is_clean());
    assert_eq!(report.total_divergences(), 1);
    let text = report.to_string();
    for needle in [
        "1 DIVERGENCES",
        "seed 0xc0ffee",
        "case 9",
        "window: 8",
        "engine-window-too-small",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn distinct_seeds_generate_distinct_workloads() {
    // Sanity that the seed actually steers generation (a constant stream
    // would make the sweep vacuous): comparison counts depend on the
    // random stream lengths, so two seeds should disagree somewhere.
    let a = run_all(1, 6);
    let b = run_all(2, 6);
    assert!(a.is_clean() && b.is_clean());
    assert_ne!(
        a.total_comparisons(),
        b.total_comparisons(),
        "two seeds produced identical workloads — generator ignoring seed?"
    );
}
