//! Configuration fault injection: generate hostile configurations that the
//! validation layer **must** reject, and known-good ones it must accept.
//!
//! Every case is a `(config, expectation)` pair judged purely through the
//! public `try_validate` entry points — the sweep never *runs* an invalid
//! config, so a validation regression shows up as a named divergence rather
//! than a hang or a panic. In particular, reverting the
//! `engine.window >= MAX_TRACE_LEN` check (the infinite-stall fix in
//! `ntp-engine`) is caught here by the `engine-window-too-small` class.

use crate::oracle::{Divergence, OracleOutcome};
use crate::rng::XorShift64;
use ntp_core::{CounterSpec, Dolc, PredictorConfig};
use ntp_engine::EngineConfig;
use ntp_trace::TraceConfig;

/// Hostile-configuration classes the sweep draws from.
const FAULT_CLASSES: [&str; 9] = [
    "engine-window-too-small",
    "engine-zero-issue-width",
    "dolc-phantom-history-bits",
    "dolc-field-too-wide",
    "predictor-tag-past-16-bits",
    "predictor-index-out-of-range",
    "counter-zero-step",
    "trace-max-len-out-of-range",
    "predictor-secondary-index-out-of-range",
];

/// Builds one hostile config of class `class` and returns whether the
/// validation layer caught it, plus a rendering of the config for reports.
fn inject(class: &'static str, rng: &mut XorShift64) -> (bool, String) {
    match class {
        "engine-window-too-small" => {
            let cfg = EngineConfig {
                issue_width: rng.range(1, 16) as u32,
                window: rng.below(16) as u32, // < MAX_TRACE_LEN: would stall forever
                mispredict_penalty: rng.below(16) as u32,
            };
            (cfg.try_validate().is_err(), format!("{cfg:?}"))
        }
        "engine-zero-issue-width" => {
            let cfg = EngineConfig {
                issue_width: 0,
                window: rng.range(16, 256) as u32,
                mispredict_penalty: rng.below(16) as u32,
            };
            (cfg.try_validate().is_err(), format!("{cfg:?}"))
        }
        "dolc-phantom-history-bits" => {
            // depth 0 with nonzero older/last, or depth 1 with nonzero
            // older: bits the indexing never reads.
            let cfg = if rng.chance(1, 2) {
                Dolc {
                    depth: 0,
                    older: rng.range(0, 16) as u32,
                    last: rng.range(1, 16) as u32,
                    current: rng.range(1, 16) as u32,
                }
            } else {
                Dolc {
                    depth: 1,
                    older: rng.range(1, 16) as u32,
                    last: rng.range(0, 16) as u32,
                    current: rng.range(1, 16) as u32,
                }
            };
            (cfg.try_validate().is_err(), format!("{cfg:?}"))
        }
        "dolc-field-too-wide" => {
            let mut cfg = Dolc {
                depth: rng.range(2, 7) as usize,
                older: 4,
                last: 6,
                current: 8,
            };
            match rng.below(3) {
                0 => cfg.older = rng.range(17, 64) as u32,
                1 => cfg.last = rng.range(17, 64) as u32,
                _ => cfg.current = rng.range(17, 64) as u32,
            }
            (cfg.try_validate().is_err(), format!("{cfg:?}"))
        }
        "predictor-tag-past-16-bits" => {
            let cfg = PredictorConfig {
                tag_bits: rng.range(17, 64) as u32,
                ..PredictorConfig::paper(12, 3)
            };
            (cfg.try_validate().is_err(), format!("{cfg:?}"))
        }
        "predictor-index-out-of-range" => {
            let cfg = PredictorConfig {
                index_bits: if rng.chance(1, 2) {
                    0
                } else {
                    rng.range(31, 64) as u32
                },
                ..PredictorConfig::paper(12, 3)
            };
            (cfg.try_validate().is_err(), format!("{cfg:?}"))
        }
        "counter-zero-step" => {
            let cfg = CounterSpec {
                bits: rng.range(1, 8) as u8,
                inc: if rng.chance(1, 2) { 0 } else { 1 },
                dec: 0,
            };
            (cfg.try_validate().is_err(), format!("{cfg:?}"))
        }
        "trace-max-len-out-of-range" => {
            let cfg = TraceConfig {
                max_len: if rng.chance(1, 2) {
                    0
                } else {
                    rng.range(17, 255) as usize
                },
                ..TraceConfig::default()
            };
            (cfg.try_validate().is_err(), format!("{cfg:?}"))
        }
        "predictor-secondary-index-out-of-range" => {
            let cfg = PredictorConfig {
                secondary_index_bits: if rng.chance(1, 2) {
                    0
                } else {
                    rng.range(21, 40) as u32
                },
                ..PredictorConfig::paper(12, 3)
            };
            (cfg.try_validate().is_err(), format!("{cfg:?}"))
        }
        other => unreachable!("unknown fault class {other}"),
    }
}

/// Runs the fault-injection sweep: `cases` hostile configurations (cycling
/// through every class) that must be rejected, plus one known-good positive
/// control per class that must be accepted.
///
/// A hostile config that validation *accepts* — e.g. after reverting the
/// engine window fix — is reported as a [`Divergence`] naming the class,
/// seed, case and the exact configuration.
pub fn fault_sweep(seed: u64, cases: usize) -> OracleOutcome {
    const NAME: &str = "fault-injection";
    let master = XorShift64::new(seed ^ 0xFA17_FA17);
    let mut comparisons = 0u64;
    let mut divergences = Vec::new();

    for case in 0..cases {
        let mut rng = master.fork(case as u64);
        let class = FAULT_CLASSES[case % FAULT_CLASSES.len()];
        let (caught, config) = inject(class, &mut rng);
        comparisons += 1;
        if !caught {
            divergences.push(Divergence {
                oracle: NAME,
                seed,
                case,
                index: None,
                config,
                detail: format!(
                    "hostile config of class `{class}` was ACCEPTED by try_validate; \
                     the validation layer has regressed"
                ),
            });
        }
    }

    // Positive controls: canonical good configs must stay accepted, or the
    // validation layer has tipped into rejecting legitimate designs.
    let controls: [(&str, Result<(), String>); 4] = [
        (
            "paper predictor (15,7)",
            PredictorConfig::try_paper(15, 7)
                .map(|_| ())
                .map_err(|e| e.to_string()),
        ),
        (
            "default engine",
            EngineConfig::default()
                .try_validate()
                .map_err(|e| e.to_string()),
        ),
        (
            "default trace config",
            TraceConfig::default()
                .try_validate()
                .map_err(|e| e.to_string()),
        ),
        (
            "primary counter",
            CounterSpec::PRIMARY
                .try_validate()
                .map_err(|e| e.to_string()),
        ),
    ];
    for (name, result) in controls {
        comparisons += 1;
        if let Err(e) = result {
            divergences.push(Divergence {
                oracle: NAME,
                seed,
                case: usize::MAX,
                index: None,
                config: name.to_string(),
                detail: format!("known-good control was REJECTED: {e}"),
            });
        }
    }

    OracleOutcome {
        name: NAME,
        cases,
        comparisons,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_clean_on_the_current_stack() {
        let o = fault_sweep(0xC0FFEE, 64);
        assert!(o.is_clean(), "{:#?}", o.divergences);
        assert!(o.comparisons >= 64);
    }

    #[test]
    fn every_class_generates_a_rejected_config() {
        let rng = XorShift64::new(99);
        for class in FAULT_CLASSES {
            for k in 0..8 {
                let (caught, cfg) = inject(class, &mut rng.fork(k));
                assert!(caught, "class {class} produced an accepted config: {cfg}");
            }
        }
    }

    #[test]
    fn an_accepting_validator_is_reported_as_divergence() {
        // Simulate a regressed validator by checking the report shape on a
        // synthetic uncaught case (inject() with a fault class whose check
        // we bypass): the public contract is that `caught == false` becomes
        // a divergence naming the class. We exercise the aggregation path
        // by asserting the Divergence constructor fields survive Display.
        let d = Divergence {
            oracle: "fault-injection",
            seed: 0xC0FFEE,
            case: 3,
            index: None,
            config: "EngineConfig { issue_width: 4, window: 8, .. }".into(),
            detail: "hostile config of class `engine-window-too-small` was ACCEPTED".into(),
        };
        let s = d.to_string();
        assert!(s.contains("engine-window-too-small"), "{s}");
        assert!(s.contains("window: 8"), "{s}");
    }
}
