//! The differential oracles: pairs (or triples) of implementations that
//! must agree exactly, replayed over generated streams.
//!
//! Five oracles, each attacking a different seam of the stack:
//!
//! 1. [`bounded_vs_unbounded`] — the finite tagged predictor against the
//!    unbounded no-aliasing model on alias-free streams, compared
//!    *prediction by prediction*;
//! 2. [`evaluate_equivalence`] — `evaluate`, `evaluate_with_sink` and the
//!    delayed-update engine (at a latency-free operating point) must produce
//!    identical [`PredictorStats`];
//! 3. [`runner_determinism`] — the worker pool's ordered merge must be
//!    byte-identical to the serial path at any thread count;
//! 4. [`batch_vs_scalar`] — the gathered batch sweeps must be bit-identical
//!    to the scalar replay, per prediction and per final table state;
//! 5. [`snapshot_restore_lockstep`] — a predictor torn down and rebuilt
//!    through `save_state`/`restore_state` at random cut points must stay
//!    in lockstep with one that was never snapshotted.
//!
//! Every failure is a [`Divergence`] naming the oracle, the master seed, the
//! case index (whose [`crate::XorShift64::fork`] rebuilds the exact stream)
//! and the first trace index where the pair disagreed, plus a state dump of
//! both sides.

use crate::gen::{alias_free_point, paper_point, random_stream};
use crate::rng::XorShift64;
use ntp_core::{
    evaluate, evaluate_batch, evaluate_serial, evaluate_with_sink, predict_batch, update_batch,
    BatchLane, NextTracePredictor, PredictorConfig, PredictorStats, TracePredictor,
    UnboundedPredictor,
};
use ntp_engine::{DelayedUpdateEngine, EngineConfig};
use ntp_runner::map_ordered_with;
use ntp_telemetry::NullSink;
use std::fmt;

/// One observed disagreement between implementations that must agree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Which oracle caught it.
    pub oracle: &'static str,
    /// The master seed of the run.
    pub seed: u64,
    /// The case index within the oracle (`XorShift64::new(seed).fork(case)`
    /// regenerates the stream and configuration).
    pub case: usize,
    /// First trace index at which the implementations disagreed, when the
    /// oracle compares per-prediction (or per-shard).
    pub index: Option<u64>,
    /// The configuration under test, rendered for the report.
    pub config: String,
    /// State dump: what each side said.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] seed {:#x} case {}: divergence",
            self.oracle, self.seed, self.case
        )?;
        if let Some(i) = self.index {
            write!(f, " at index {i}")?;
        }
        write!(f, "\n  config: {}\n  detail: {}", self.config, self.detail)
    }
}

/// Aggregated result of running one oracle over many generated cases.
#[derive(Clone, Debug)]
pub struct OracleOutcome {
    /// Oracle name (stable, used in reports and the CLI).
    pub name: &'static str,
    /// Generated cases replayed.
    pub cases: usize,
    /// Individual comparisons performed (predictions, stats triples, or
    /// shard vectors).
    pub comparisons: u64,
    /// Disagreements found (empty on a healthy stack).
    pub divergences: Vec<Divergence>,
}

impl OracleOutcome {
    /// True when every comparison agreed.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

impl fmt::Display for OracleOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} {:>4} cases  {:>9} comparisons  {}",
            self.name,
            self.cases,
            self.comparisons,
            if self.is_clean() {
                "ok".to_string()
            } else {
                format!("{} DIVERGENCES", self.divergences.len())
            }
        )
    }
}

/// Oracle 1: the bounded predictor must track the unbounded model exactly
/// on alias-free streams (see [`crate::AliasFreePoint`] for the argument
/// that any disagreement is a bug, not table pressure).
pub fn bounded_vs_unbounded(seed: u64, cases: usize) -> OracleOutcome {
    const NAME: &str = "bounded-vs-unbounded";
    let master = XorShift64::new(seed ^ 0xB0DD_ED00);
    let mut comparisons = 0u64;
    let mut divergences = Vec::new();

    for case in 0..cases {
        let mut rng = master.fork(case as u64);
        let point = alias_free_point(&mut rng);
        let stream_len = rng.range(400, 1200) as usize;
        let stream = point.stream(&mut rng, stream_len);
        let mut bounded =
            NextTracePredictor::try_new(point.cfg).expect("generated bounded config is valid");
        let mut unbounded =
            UnboundedPredictor::try_new(point.ucfg).expect("generated unbounded config is valid");

        for (i, r) in stream.iter().enumerate() {
            let pb = bounded.predict();
            let pu = unbounded.predict();
            comparisons += 1;
            if pb != pu {
                divergences.push(Divergence {
                    oracle: NAME,
                    seed,
                    case,
                    index: Some(i as u64),
                    config: format!(
                        "{:?} / alphabet {} ids, code_bits {}",
                        point.cfg,
                        point.alphabet.len(),
                        point.code_bits
                    ),
                    detail: format!(
                        "actual next {}; bounded said {:?}, unbounded said {:?}; \
                         history depth {} vs {}",
                        r.id(),
                        pb,
                        pu,
                        bounded.history_len(),
                        unbounded.history_len(),
                    ),
                });
                break; // first divergence per case is enough
            }
            bounded.update(r);
            unbounded.update(r);
        }
    }
    OracleOutcome {
        name: NAME,
        cases,
        comparisons,
        divergences,
    }
}

/// Shared helper: binary-search the shortest stream prefix on which a
/// predicate flips from agree to disagree, assuming monotonicity (a
/// divergence never un-happens when the prefix grows). Returns the 1-based
/// length of the first disagreeing prefix.
fn first_divergent_prefix(n: usize, agrees_on: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n); // agrees_on(lo) true, agrees_on(hi) false
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if agrees_on(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Oracle 2: `evaluate`, `evaluate_with_sink` (null sink) and the
/// delayed-update engine at a latency-free operating point (issue width and
/// window at least one full trace, so every trace trains before the next
/// prediction) must produce identical statistics.
pub fn evaluate_equivalence(seed: u64, cases: usize) -> OracleOutcome {
    const NAME: &str = "evaluate-equivalence";
    let master = XorShift64::new(seed ^ 0x0E7A_15E5);
    let mut comparisons = 0u64;
    let mut divergences = Vec::new();

    for case in 0..cases {
        let mut rng = master.fork(case as u64);
        let (index_bits, depth) = paper_point(&mut rng);
        let cfg = PredictorConfig::try_paper(index_bits, depth)
            .expect("paper points are valid by construction");
        let ecfg = EngineConfig {
            issue_width: rng.range(16, 64) as u32,
            window: rng.range(16, 128) as u32,
            mispredict_penalty: rng.range(0, 8) as u32,
        };
        let stream_len = rng.range(500, 1500) as usize;
        let stream = random_stream(&mut rng, stream_len);

        let run_eval = |records: &[ntp_trace::TraceRecord]| -> PredictorStats {
            evaluate(&mut NextTracePredictor::new(cfg), records)
        };
        let run_sink = |records: &[ntp_trace::TraceRecord]| -> PredictorStats {
            evaluate_with_sink(&mut NextTracePredictor::new(cfg), records, &mut NullSink).0
        };
        let run_engine = |records: &[ntp_trace::TraceRecord]| -> PredictorStats {
            DelayedUpdateEngine::new(NextTracePredictor::new(cfg), ecfg)
                .run(records)
                .prediction
        };

        let base = run_eval(&stream);
        comparisons += 2;
        for (other_name, other) in [
            ("evaluate_with_sink", run_sink(&stream)),
            ("delayed-update engine", run_engine(&stream)),
        ] {
            if other != base {
                let runner: &dyn Fn(&[ntp_trace::TraceRecord]) -> PredictorStats =
                    if other_name == "evaluate_with_sink" {
                        &run_sink
                    } else {
                        &run_engine
                    };
                let first = first_divergent_prefix(stream.len(), |k| {
                    runner(&stream[..k]) == run_eval(&stream[..k])
                });
                divergences.push(Divergence {
                    oracle: NAME,
                    seed,
                    case,
                    index: Some(first.saturating_sub(1) as u64),
                    config: format!("{cfg:?} engine {ecfg:?}"),
                    detail: format!(
                        "evaluate said {base:?}; {other_name} said {other:?} \
                         (first divergent prefix: {first} traces)"
                    ),
                });
            }
        }
    }
    OracleOutcome {
        name: NAME,
        cases,
        comparisons,
        divergences,
    }
}

/// Oracle 3: sharded replay through the worker pool must return exactly the
/// serial result vector at every thread count (the ordered-merge contract
/// of `ntp_runner::map_ordered_with`).
pub fn runner_determinism(seed: u64, cases: usize) -> OracleOutcome {
    const NAME: &str = "runner-determinism";
    let master = XorShift64::new(seed ^ 0x5EED_2EED);
    let mut comparisons = 0u64;
    let mut divergences = Vec::new();

    for case in 0..cases {
        let mut rng = master.fork(case as u64);
        let (index_bits, depth) = paper_point(&mut rng);
        let cfg = PredictorConfig::try_paper(index_bits, depth)
            .expect("paper points are valid by construction");
        let stream_len = rng.range(600, 1600) as usize;
        let stream = random_stream(&mut rng, stream_len);
        let shards = rng.range(2, 9) as usize;
        let chunk = stream.len().div_ceil(shards);
        let chunks: Vec<&[ntp_trace::TraceRecord]> = stream.chunks(chunk).collect();

        let job = |_i: usize, records: &&[ntp_trace::TraceRecord]| -> PredictorStats {
            evaluate(&mut NextTracePredictor::new(cfg), records)
        };
        let serial = map_ordered_with(1, &chunks, job);
        for threads in [2usize, 8] {
            let parallel = map_ordered_with(threads, &chunks, job);
            comparisons += 1;
            if parallel != serial {
                let first = serial
                    .iter()
                    .zip(&parallel)
                    .position(|(a, b)| a != b)
                    .unwrap_or(serial.len().min(parallel.len()));
                divergences.push(Divergence {
                    oracle: NAME,
                    seed,
                    case,
                    index: Some(first as u64),
                    config: format!("{cfg:?} shards {shards} threads {threads}"),
                    detail: format!(
                        "shard {first}: serial {:?} vs parallel {:?}",
                        serial.get(first),
                        parallel.get(first)
                    ),
                });
            }
        }
    }
    OracleOutcome {
        name: NAME,
        cases,
        comparisons,
        divergences,
    }
}

/// Oracle 4: the batched sweeps (`evaluate_batch`, and the lockstep
/// `predict_batch`/`update_batch` pair) must be bit-identical to the
/// scalar replay — every [`PredictorStats`] field, every per-step
/// [`ntp_core::Prediction`], and the predictors' final aliasing counters,
/// occupancy and cached table indexes. The sweep only overlaps table
/// gathers via prefetch hints; any observable difference is a bug.
pub fn batch_vs_scalar(seed: u64, cases: usize) -> OracleOutcome {
    const NAME: &str = "batch-vs-scalar";
    let master = XorShift64::new(seed ^ 0xBA7C_4ED0);
    let mut comparisons = 0u64;
    let mut divergences = Vec::new();

    for case in 0..cases {
        let mut rng = master.fork(case as u64);
        let lanes_n = rng.range(2, 7) as usize;
        let mut cfgs = Vec::with_capacity(lanes_n);
        let mut streams = Vec::with_capacity(lanes_n);
        for _ in 0..lanes_n {
            let (index_bits, depth) = paper_point(&mut rng);
            cfgs.push(
                PredictorConfig::try_paper(index_bits, depth)
                    .expect("paper points are valid by construction"),
            );
            let len = rng.range(200, 800) as usize;
            streams.push(random_stream(&mut rng, len));
        }
        let fresh = |cfgs: &[PredictorConfig]| -> Vec<NextTracePredictor> {
            cfgs.iter().map(|c| NextTracePredictor::new(*c)).collect()
        };
        let mut diverge = |index: Option<u64>, detail: String| {
            divergences.push(Divergence {
                oracle: NAME,
                seed,
                case,
                index,
                config: format!("{lanes_n} lanes: {cfgs:?}"),
                detail,
            });
        };

        // Whole-replay comparison over ragged lanes.
        let mut batch_preds = fresh(&cfgs);
        let mut lanes: Vec<BatchLane<'_>> = batch_preds
            .iter_mut()
            .zip(streams.iter())
            .map(|(p, s)| BatchLane::new(p, s))
            .collect();
        let batch_stats = evaluate_batch(&mut lanes);
        let mut serial_preds = fresh(&cfgs);
        let mut lanes: Vec<BatchLane<'_>> = serial_preds
            .iter_mut()
            .zip(streams.iter())
            .map(|(p, s)| BatchLane::new(p, s))
            .collect();
        let serial_stats = evaluate_serial(&mut lanes);
        comparisons += lanes_n as u64;
        for (k, (b, s)) in batch_stats.iter().zip(serial_stats.iter()).enumerate() {
            if b != s {
                diverge(None, format!("lane {k} stats: batch {b:?} vs scalar {s:?}"));
            }
        }
        comparisons += lanes_n as u64;
        for (k, (b, s)) in batch_preds.iter().zip(serial_preds.iter()).enumerate() {
            if b.aliasing() != s.aliasing()
                || b.occupancy() != s.occupancy()
                || b.indices() != s.indices()
            {
                diverge(
                    None,
                    format!(
                        "lane {k} final state: batch aliasing {:?} occupancy {:?} indices {:?} \
                         vs scalar {:?} / {:?} / {:?}",
                        b.aliasing(),
                        s.aliasing(),
                        b.occupancy(),
                        s.occupancy(),
                        b.indices(),
                        s.indices()
                    ),
                );
            }
        }

        // Lockstep comparison: every per-step Prediction, over the common
        // prefix of all lanes, through predict_batch/update_batch.
        let steps = streams.iter().map(Vec::len).min().unwrap_or(0);
        let mut batch_preds = fresh(&cfgs);
        let mut scalar_preds = fresh(&cfgs);
        'case: for step in 0..steps {
            let views: Vec<&NextTracePredictor> = batch_preds.iter().collect();
            let preds = predict_batch(&views);
            comparisons += lanes_n as u64;
            for (k, sp) in scalar_preds.iter().enumerate() {
                let want = sp.predict();
                if preds[k] != want {
                    diverge(
                        Some(step as u64),
                        format!("lane {k}: predict_batch {:?} vs scalar {want:?}", preds[k]),
                    );
                    break 'case;
                }
            }
            let mut pairs: Vec<(&mut NextTracePredictor, &ntp_trace::TraceRecord)> = batch_preds
                .iter_mut()
                .zip(streams.iter())
                .map(|(p, s)| (p, &s[step]))
                .collect();
            update_batch(&mut pairs);
            for (p, s) in scalar_preds.iter_mut().zip(streams.iter()) {
                p.update(&s[step]);
            }
        }
    }
    OracleOutcome {
        name: NAME,
        cases,
        comparisons,
        divergences,
    }
}

/// Oracle 5: snapshot/restore must be invisible. One predictor replays the
/// stream untouched; a second is torn down at random cut points —
/// `save_state`, rebuild a fresh predictor from the same configuration,
/// `restore_state` — and both must emit bit-identical predictions at every
/// step and end with identical aliasing counters, occupancy and cached
/// table indexes. This is the in-memory core of the `.nts` warm-start
/// contract (SERVING.md): if this oracle is clean, any served/offline
/// divergence after a warm start must live in the codec or the serve
/// layer, not in the state capture itself.
pub fn snapshot_restore_lockstep(seed: u64, cases: usize) -> OracleOutcome {
    const NAME: &str = "snapshot-lockstep";
    let master = XorShift64::new(seed ^ 0x5AF3_57A7);
    let mut comparisons = 0u64;
    let mut divergences = Vec::new();

    for case in 0..cases {
        let mut rng = master.fork(case as u64);
        let (index_bits, depth) = paper_point(&mut rng);
        let cfg = PredictorConfig::try_paper(index_bits, depth)
            .expect("paper points are valid by construction");
        let stream_len = rng.range(400, 1200) as usize;
        let stream = random_stream(&mut rng, stream_len);
        let cuts = rng.range(1, 6) as usize;
        let cut_points: Vec<usize> = (0..cuts)
            .map(|_| rng.range(0, stream_len as u64) as usize)
            .collect();

        let mut baseline = NextTracePredictor::new(cfg);
        let mut cycled = NextTracePredictor::new(cfg);
        for (i, r) in stream.iter().enumerate() {
            if cut_points.contains(&i) {
                let state = cycled.save_state();
                let mut rebuilt =
                    NextTracePredictor::try_new(cfg).expect("config already validated");
                rebuilt
                    .restore_state(&state)
                    .expect("a saved state always fits the config it came from");
                cycled = rebuilt;
            }
            let pb = baseline.predict();
            let pc = cycled.predict();
            comparisons += 1;
            if pb != pc {
                divergences.push(Divergence {
                    oracle: NAME,
                    seed,
                    case,
                    index: Some(i as u64),
                    config: format!("{cfg:?} cuts {cut_points:?}"),
                    detail: format!("baseline said {pb:?}, snapshot-cycled said {pc:?}"),
                });
                break;
            }
            baseline.update(r);
            cycled.update(r);
        }
        comparisons += 1;
        if baseline.aliasing() != cycled.aliasing()
            || baseline.occupancy() != cycled.occupancy()
            || baseline.indices() != cycled.indices()
        {
            divergences.push(Divergence {
                oracle: NAME,
                seed,
                case,
                index: None,
                config: format!("{cfg:?} cuts {cut_points:?}"),
                detail: format!(
                    "final state: baseline aliasing {:?} occupancy {:?} indices {:?} \
                     vs cycled {:?} / {:?} / {:?}",
                    baseline.aliasing(),
                    baseline.occupancy(),
                    baseline.indices(),
                    cycled.aliasing(),
                    cycled.occupancy(),
                    cycled.indices()
                ),
            });
        }
    }
    OracleOutcome {
        name: NAME,
        cases,
        comparisons,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_oracles_are_clean_on_a_small_sweep() {
        for o in [
            bounded_vs_unbounded(0xC0FFEE, 8),
            evaluate_equivalence(0xC0FFEE, 8),
            runner_determinism(0xC0FFEE, 4),
            batch_vs_scalar(0xC0FFEE, 6),
            snapshot_restore_lockstep(0xC0FFEE, 8),
        ] {
            assert!(o.is_clean(), "{o}\n{:#?}", o.divergences);
            assert!(o.comparisons > 0);
        }
    }

    #[test]
    fn prefix_bisection_finds_the_flip() {
        // Predicate agrees on prefixes < 137, disagrees from 137 on.
        assert_eq!(first_divergent_prefix(1000, |k| k < 137), 137);
        assert_eq!(first_divergent_prefix(10, |_| false), 1);
    }

    #[test]
    fn divergence_report_names_everything() {
        let d = Divergence {
            oracle: "bounded-vs-unbounded",
            seed: 0xC0FFEE,
            case: 17,
            index: Some(342),
            config: "cfg".into(),
            detail: "a vs b".into(),
        };
        let s = d.to_string();
        for needle in ["0xc0ffee", "case 17", "index 342", "a vs b"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
