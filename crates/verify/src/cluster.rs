//! The cluster differential oracle: a real router fronting two real
//! in-process servers, compared against the offline replay **per
//! prediction** — across a live migration and a backend failover.
//!
//! Each case boots two `ntp_serve::serve` backends (ephemeral loopback
//! ports, per-case snapshot directories) behind an `ntp_cluster`
//! router, then replays generated streams for several sessions in
//! lockstep: every `Update` reply's `correct` bit must equal what the
//! local predictor says for that exact record. Mid-stream the case
//! forces one **live migration** (the session the ring placed on one
//! backend moves to the other) and one **graceful failover** (the
//! backend now hosting the migrated session drains, as under SIGTERM,
//! and the router restores its sessions from the drain snapshots).
//! A session that survives both with every prediction bit intact — and
//! whose final `Stats` reply equals the accumulated offline
//! [`PredictorStats`] field for field — exercises the entire seam:
//! wire framing, per-session reply ordering through the relay,
//! session-snapshot encode/decode, and the router's freeze/settle
//! protocol.
//!
//! The geometry is pinned to the 12-bit paper index (depths still
//! sweep 0..=7): the cluster seam is ordering and state movement, not
//! table size — the geometry sweep belongs to the other oracles — and
//! small tables keep a full `run_all` sweep fast enough for the CI
//! gate. Case count is clamped to [`MAX_CLUSTER_CASES`] for the same
//! reason; the clamp is visible in the reported case count, never
//! silent.

use crate::oracle::{Divergence, OracleOutcome};
use crate::rng::XorShift64;
use ntp_cluster::{start, BackendSpec, HashRing, RouterConfig, DEFAULT_VNODES};
use ntp_core::{NextTracePredictor, PredictorConfig, PredictorStats, TracePredictor};
use ntp_serve::{config::ServeConfig, serve, Client};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Upper bound on cluster-oracle cases per run: each case boots three
/// processes' worth of threads and rides out a real drain, so the
/// marginal value of the 64-point sweep the CI gate uses elsewhere is
/// spent here after a handful of cases.
pub const MAX_CLUSTER_CASES: usize = 6;

/// Index width every case uses (the smallest paper configuration).
const INDEX_BITS: u32 = 12;

/// Builds a scratch snapshot directory for one backend of one case.
fn scratch_dir(seed: u64, case: usize, k: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ntp-verify-cluster-{}-{seed:x}-{case}-{k}",
        std::process::id()
    ));
    // A stale dir from a crashed prior run would feed old snapshots to
    // the failover path; start from nothing.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create verify snapshot dir");
    dir
}

fn route_counter(json: &str, name: &str) -> u64 {
    ntp_telemetry::json::parse(json)
        .ok()
        .and_then(|j| j.get("router")?.get("counters")?.get(name)?.as_u64())
        .unwrap_or(0)
}

/// Differential oracle: served-through-the-router must equal the local
/// replay per prediction, across one live migration and one graceful
/// failover per case. See the module docs for the full shape.
pub fn cluster_lockstep(seed: u64, cases: usize) -> OracleOutcome {
    const NAME: &str = "cluster-lockstep";
    let cases = cases.min(MAX_CLUSTER_CASES);
    let master = XorShift64::new(seed ^ 0x00C1_5733);
    let mut comparisons = 0u64;
    let mut divergences = Vec::new();

    'cases: for case in 0..cases {
        let mut rng = master.fork(case as u64);
        let depth = rng.range(0, 7) as usize;
        let cfg = PredictorConfig::try_paper(INDEX_BITS, depth)
            .expect("the 12-bit paper point is valid at every depth");
        let sessions = rng.range(2, 3) as usize;
        let stream_len = rng.range(60, 150) as usize;
        let streams: Vec<Vec<_>> = (0..sessions)
            .map(|_| crate::gen::random_stream(&mut rng, stream_len))
            .collect();
        let ids: Vec<u64> = (0..sessions).map(|_| rng.next_u64() | 1).collect();

        let dirs: Vec<PathBuf> = (0..2).map(|k| scratch_dir(seed, case, k)).collect();
        let backends: Vec<_> = dirs
            .iter()
            .map(|dir| {
                serve(ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    workers: 2,
                    snapshot_dir: Some(dir.clone()),
                    ..ServeConfig::default()
                })
                .expect("verify backend binds")
            })
            .collect();
        let addrs: Vec<String> = backends
            .iter()
            .map(|b| b.local_addr().to_string())
            .collect();

        let mut rcfg = RouterConfig::new(
            addrs
                .iter()
                .zip(&dirs)
                .map(|(addr, dir)| BackendSpec {
                    addr: addr.clone(),
                    snapshot_dir: Some(dir.clone()),
                })
                .collect(),
        );
        rcfg.probe_interval = Duration::from_millis(100);
        let router = start(rcfg).expect("verify router binds");
        let raddr = router.local_addr().to_string();

        let mut client = Client::connect(&raddr).expect("verify client connects");
        let mut locals: Vec<NextTracePredictor> = (0..sessions)
            .map(|_| NextTracePredictor::new(cfg))
            .collect();
        let mut local_stats = vec![PredictorStats::new(); sessions];
        for &id in &ids {
            client
                .hello(id, INDEX_BITS, depth as u32)
                .expect("hello through the router");
        }

        // The scripted disruptions: migrate the first session off its
        // ring backend at one cut point, then drain the backend it
        // landed on at a later one.
        let ring = HashRing::new(&addrs, DEFAULT_VNODES);
        let migrate_to = 1 - ring.route(ids[0]);
        let migrate_at = rng.range(10, stream_len as u64 / 2) as usize;
        let failover_at = rng.range(migrate_at as u64 + 1, stream_len as u64 - 1) as usize;
        let mut drained = {
            let mut slots: Vec<_> = backends.into_iter().map(Some).collect();
            move |k: usize| slots[k].take().expect("backend drained once")
        };
        let mut joiner = None;

        // Indexed on purpose: `i` drives the disruption schedule and
        // strides several parallel per-session vectors at once.
        #[allow(clippy::needless_range_loop)]
        for i in 0..stream_len {
            if i == migrate_at {
                router
                    .migrate(ids[0], migrate_to)
                    .expect("scripted live migration");
            }
            if i == failover_at {
                let target = drained(migrate_to as usize);
                target.request_shutdown();
                joiner = Some(std::thread::spawn(move || target.join()));
                let deadline = Instant::now() + Duration::from_secs(30);
                while route_counter(&router.metrics_json(), "route.failovers") < 1 {
                    assert!(
                        Instant::now() < deadline,
                        "verify: router never failed over the draining backend"
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            for s in 0..sessions {
                let r = &streams[s][i];
                let pred = locals[s].predict();
                let before = local_stats[s].correct;
                local_stats[s].score(&pred, r);
                locals[s].update(r);
                let local_correct = local_stats[s].correct > before;
                let served_correct = client.update(ids[s], r).expect("update through the router");
                comparisons += 1;
                if served_correct != local_correct {
                    divergences.push(Divergence {
                        oracle: NAME,
                        seed,
                        case,
                        index: Some(i as u64),
                        config: format!(
                            "{cfg:?} session {} migrate@{migrate_at}->b{migrate_to} \
                             failover@{failover_at}",
                            ids[s]
                        ),
                        detail: format!(
                            "served said correct={served_correct}, local replay said \
                             correct={local_correct}"
                        ),
                    });
                    let _ = client.shutdown_server();
                    router.join();
                    if let Some(j) = joiner {
                        let _ = j.join();
                    }
                    for dir in &dirs {
                        let _ = std::fs::remove_dir_all(dir);
                    }
                    continue 'cases;
                }
            }
        }

        for s in 0..sessions {
            let served = client.stats(ids[s]).expect("stats through the router");
            comparisons += 1;
            if served != local_stats[s] {
                divergences.push(Divergence {
                    oracle: NAME,
                    seed,
                    case,
                    index: None,
                    config: format!(
                        "{cfg:?} session {} migrate@{migrate_at}->b{migrate_to} \
                         failover@{failover_at}",
                        ids[s]
                    ),
                    detail: format!("served stats {served:?} vs local {:?}", local_stats[s]),
                });
            }
        }

        client.shutdown_server().expect("cluster shutdown");
        drop(client);
        let summary = router.join();
        comparisons += 1;
        if summary.migrations != 1 || summary.failovers != 1 || summary.sessions_lost != 0 {
            divergences.push(Divergence {
                oracle: NAME,
                seed,
                case,
                index: None,
                config: format!("{cfg:?} migrate@{migrate_at} failover@{failover_at}"),
                detail: format!(
                    "router accounting off: {} migrations, {} failovers, {} lost \
                     (wanted 1/1/0)",
                    summary.migrations, summary.failovers, summary.sessions_lost
                ),
            });
        }
        if let Some(j) = joiner {
            let _ = j.join().expect("drained backend joins");
        }
        let _ = drained(1 - migrate_to as usize).join();
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    OracleOutcome {
        name: NAME,
        cases,
        comparisons,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_lockstep_is_clean_on_a_small_sweep() {
        let o = cluster_lockstep(0xC1_5733, 2);
        assert_eq!(o.cases, 2);
        assert!(o.divergences.is_empty(), "{:?}", o.divergences);
        assert!(o.comparisons > 100);
    }

    #[test]
    fn case_count_is_clamped_visibly() {
        let o = cluster_lockstep(0xC1_5733, 0);
        assert_eq!(o.cases, 0);
        assert_eq!(o.comparisons, 0);
    }
}
