//! Deterministic generators for adversarial trace streams and randomized
//! predictor configurations.
//!
//! Two families of generated points:
//!
//! * **generic points** — arbitrary (but legal) streams and paper design
//!   points, used by the evaluate-equivalence and runner-determinism
//!   oracles;
//! * **alias-free points** — carefully constructed `(PredictorConfig,
//!   UnboundedConfig, alphabet)` triples for which the bounded predictor
//!   provably cannot alias, so it must agree with the unbounded model on
//!   *every single prediction* (see [`AliasFreePoint`] for the argument).

use crate::rng::XorShift64;
use ntp_core::{CounterSpec, Dolc, PredictorConfig, StoredTarget, UnboundedConfig};
use ntp_trace::{TraceId, TraceRecord, MAX_TRACE_LEN};

/// Paper design points with a standard DOLC tuple (`Dolc::try_standard`
/// succeeds for every pair here).
pub const PAPER_INDEX_BITS: [u32; 3] = [12, 15, 18];

/// History depths the paper studies (and [`UnboundedConfig`] accepts).
pub const PAPER_DEPTHS: [usize; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// A random word-aligned PC in a plausible text segment.
fn random_pc(rng: &mut XorShift64) -> u32 {
    0x0040_0000u32 | ((rng.next_u32() & 0x000F_FFFF) & !3)
}

/// A random trace identifier: word-aligned PC, 0–6 branches, random
/// outcomes.
pub fn random_id(rng: &mut XorShift64) -> TraceId {
    let count = rng.below(7) as u8;
    TraceId::new(random_pc(rng), rng.next_u32() as u8, count)
}

/// A generic adversarial stream: a random walk over a small alphabet of
/// random traces (so the predictors have *something* to learn), with random
/// lengths, occasional high-entropy excursions, calls and returns.
pub fn random_stream(rng: &mut XorShift64, len: usize) -> Vec<TraceRecord> {
    let alphabet: Vec<TraceRecord> = (0..rng.range(3, 24))
        .map(|_| {
            let id = random_id(rng);
            let calls = rng.below(3) as u8;
            let ret = rng.chance(1, 5);
            TraceRecord::new(
                id,
                rng.range(1, MAX_TRACE_LEN as u64) as u8,
                calls,
                ret,
                ret,
            )
        })
        .collect();
    (0..len)
        .map(|_| {
            if rng.chance(1, 10) {
                // Excursion: a fresh trace the tables have never seen.
                let id = random_id(rng);
                TraceRecord::new(
                    id,
                    rng.range(1, MAX_TRACE_LEN as u64) as u8,
                    0,
                    false,
                    false,
                )
            } else {
                alphabet[rng.below(alphabet.len() as u64) as usize]
            }
        })
        .collect()
}

/// A random valid paper design point `(index_bits, depth)`.
pub fn paper_point(rng: &mut XorShift64) -> (u32, usize) {
    (
        PAPER_INDEX_BITS[rng.below(PAPER_INDEX_BITS.len() as u64) as usize],
        PAPER_DEPTHS[rng.below(PAPER_DEPTHS.len() as u64) as usize],
    )
}

/// A random well-formed counter policy, shared by both predictors of a
/// differential pair so their training stays in lockstep.
fn random_counter(rng: &mut XorShift64) -> CounterSpec {
    CounterSpec {
        bits: rng.range(2, 4) as u8,
        inc: rng.range(1, 2) as u8,
        dec: rng.range(1, 8) as u8,
    }
}

/// A bounded/unbounded configuration pair plus a trace alphabet on which
/// the bounded predictor provably cannot alias.
///
/// Construction (the "no aliasing by construction" argument):
///
/// * every alphabet identifier has a **distinct, nonzero** value in the low
///   `code_bits` bits of its hashed form;
/// * the DOLC takes exactly `code_bits` from every history slot and gathers
///   at most `index_bits = 16` total, so **no XOR folding** occurs: the
///   correlating index is the plain concatenation of the per-slot codes.
///   Distinct codes ⇒ distinct paths get distinct indexes; nonzero codes ⇒
///   a missing (cold-start) slot's zero contribution cannot collide with a
///   real identifier;
/// * `secondary_index_bits = 16` indexes the secondary table by the *whole*
///   hashed identifier, which is injective over the alphabet;
/// * the tag is the full 16-bit hashed identifier, so a tag can never
///   falsely match across paths (and since indexes are already injective it
///   never needs to).
///
/// Under these conditions every bounded table entry corresponds 1:1 to an
/// unbounded map entry, and with identical counter policies, identical
/// fresh-install semantics and the RHS disabled on both sides, the two
/// predictors must emit byte-identical [`ntp_core::Prediction`]s forever.
pub struct AliasFreePoint {
    /// Bounded predictor configuration (16-bit index, no folding).
    pub cfg: PredictorConfig,
    /// The matching unbounded configuration.
    pub ucfg: UnboundedConfig,
    /// The closed trace alphabet streams must draw from.
    pub alphabet: Vec<TraceRecord>,
    /// Low-hash bits used as the per-slot code.
    pub code_bits: u32,
}

/// Depth/code-width pairs with `code_bits * (depth + 1) <= 16` (no folding
/// at a 16-bit index).
const ALIAS_FREE_SHAPES: [(usize, u32); 6] = [(0, 8), (1, 8), (2, 5), (3, 4), (5, 2), (7, 2)];

/// Generates an [`AliasFreePoint`] (see the type docs for why the pair must
/// agree on it).
pub fn alias_free_point(rng: &mut XorShift64) -> AliasFreePoint {
    let (depth, code_bits) = ALIAS_FREE_SHAPES[rng.below(ALIAS_FREE_SHAPES.len() as u64) as usize];
    let dolc = Dolc {
        depth,
        older: if depth >= 2 { code_bits } else { 0 },
        last: if depth >= 1 { code_bits } else { 0 },
        current: code_bits,
    };

    // Alphabet: ids with distinct nonzero low-`code_bits` hash codes.
    let want = (((1u32 << code_bits) - 1) as u64).min(10) as usize;
    let mut alphabet: Vec<TraceRecord> = Vec::with_capacity(want);
    let mut used = vec![false; 1 << code_bits];
    let mut attempts = 0;
    while alphabet.len() < want && attempts < 10_000 {
        attempts += 1;
        let id = random_id(rng);
        let code = id.hashed().low_bits(code_bits) as usize;
        if code == 0 || used[code] {
            continue;
        }
        used[code] = true;
        alphabet.push(TraceRecord::new(
            id,
            rng.range(1, MAX_TRACE_LEN as u64) as u8,
            0,
            false,
            false,
        ));
    }
    assert!(
        alphabet.len() >= 2,
        "code space 2^{code_bits} must admit at least two symbols"
    );

    let primary = random_counter(rng);
    let secondary = random_counter(rng);
    let alternate = rng.chance(1, 2);
    let cfg = PredictorConfig {
        index_bits: 16,
        dolc,
        tag_bits: 16,
        primary_counter: primary,
        secondary_index_bits: 16,
        secondary_counter: secondary,
        rhs: None,
        alternate,
        stored_target: StoredTarget::Full,
    };
    let ucfg = UnboundedConfig {
        depth,
        hybrid: true,
        rhs: None,
        primary_counter: primary,
        secondary_counter: secondary,
        alternate,
    };
    AliasFreePoint {
        cfg,
        ucfg,
        alphabet,
        code_bits,
    }
}

impl AliasFreePoint {
    /// A random walk of `len` steps over the point's alphabet.
    pub fn stream(&self, rng: &mut XorShift64, len: usize) -> Vec<TraceRecord> {
        (0..len)
            .map(|_| self.alphabet[rng.below(self.alphabet.len() as u64) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_free_points_are_valid_and_unfolded() {
        let rng = XorShift64::new(0xA11A);
        for k in 0..64 {
            let p = alias_free_point(&mut rng.fork(k));
            p.cfg.try_validate().expect("bounded config valid");
            p.ucfg.try_validate().expect("unbounded config valid");
            assert!(
                p.cfg.dolc.total_bits() <= p.cfg.index_bits,
                "no folding: {:?}",
                p.cfg.dolc
            );
            assert_eq!(p.cfg.dolc.parts(p.cfg.index_bits), 1);
            // Distinct nonzero codes.
            let codes: Vec<u32> = p
                .alphabet
                .iter()
                .map(|r| r.id().hashed().low_bits(p.code_bits))
                .collect();
            for (i, &a) in codes.iter().enumerate() {
                assert_ne!(a, 0, "codes are nonzero");
                for &b in &codes[i + 1..] {
                    assert_ne!(a, b, "codes are distinct");
                }
            }
        }
    }

    #[test]
    fn random_streams_are_reproducible() {
        let a = random_stream(&mut XorShift64::new(9), 200);
        let b = random_stream(&mut XorShift64::new(9), 200);
        assert_eq!(a, b);
        assert!(a.iter().all(|r| (1..=16).contains(&r.len)));
    }

    #[test]
    fn paper_points_always_construct() {
        let mut rng = XorShift64::new(3);
        for _ in 0..64 {
            let (bits, depth) = paper_point(&mut rng);
            PredictorConfig::try_paper(bits, depth).expect("paper point valid");
        }
    }
}
