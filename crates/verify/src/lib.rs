//! # ntp-verify — differential testing and fault injection for the stack
//!
//! A zero-dependency verification harness that cross-checks independent
//! implementations of the same contract against each other over
//! deterministically generated adversarial inputs:
//!
//! * [`bounded_vs_unbounded`] — the finite tagged predictor must agree with
//!   the unbounded no-aliasing model *on every prediction* when the stream
//!   and configuration are constructed so that aliasing is impossible;
//! * [`evaluate_equivalence`] — the three replay drivers (`evaluate`,
//!   `evaluate_with_sink`, the delayed-update engine at a latency-free
//!   operating point) must report identical statistics;
//! * [`runner_determinism`] — the worker pool's ordered merge must equal
//!   the serial result vector at any thread count;
//! * [`batch_vs_scalar`] — the gathered batch sweeps (`evaluate_batch`,
//!   `predict_batch`/`update_batch`) must be bit-identical to the scalar
//!   replay on every prediction, statistic and final table state;
//! * [`snapshot_restore_lockstep`] — a predictor torn down and rebuilt
//!   through `save_state`/`restore_state` at random cut points must stay
//!   in prediction-by-prediction lockstep with one never snapshotted, and
//!   end in identical table state (the in-memory core of the `.nts`
//!   warm-start contract);
//! * [`fault_sweep`] — hostile configurations (stall-inducing engine
//!   windows, phantom DOLC history bits, out-of-range table geometry,
//!   stuck counters) must be *rejected* by the `try_validate` layer, and
//!   known-good configurations must stay accepted;
//! * [`cluster_lockstep`] — a real router fronting two real loopback
//!   servers must stay in per-prediction lockstep with the offline
//!   replay across one live session migration and one graceful backend
//!   failover per case (capped at [`MAX_CLUSTER_CASES`] cases — the cap
//!   shows up in the reported case count, never silently).
//!
//! Everything reproduces from a single `u64` seed: each case derives its
//! own sub-stream via [`XorShift64::fork`], so a [`Divergence`] report
//! (oracle, seed, case, first divergent index, state dump) is enough to
//! rebuild the failing input exactly.
//!
//! # Example
//!
//! ```
//! use ntp_verify::run_all;
//! let report = run_all(0xC0FFEE, 4);
//! assert!(report.is_clean(), "{report}");
//! ```

#![warn(missing_docs)]

mod cluster;
mod fault;
mod gen;
mod oracle;
mod rng;

pub use cluster::{cluster_lockstep, MAX_CLUSTER_CASES};
pub use fault::fault_sweep;
pub use gen::{
    alias_free_point, paper_point, random_id, random_stream, AliasFreePoint, PAPER_DEPTHS,
    PAPER_INDEX_BITS,
};
pub use oracle::{
    batch_vs_scalar, bounded_vs_unbounded, evaluate_equivalence, runner_determinism,
    snapshot_restore_lockstep, Divergence, OracleOutcome,
};
pub use rng::XorShift64;

use std::fmt;

/// The aggregated result of a full verification run.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Master seed the run derived every case from.
    pub seed: u64,
    /// Cases per oracle.
    pub points: usize,
    /// Per-oracle outcomes, in the order they ran.
    pub oracles: Vec<OracleOutcome>,
}

impl VerifyReport {
    /// Total disagreements across all oracles.
    pub fn total_divergences(&self) -> usize {
        self.oracles.iter().map(|o| o.divergences.len()).sum()
    }

    /// Total individual comparisons performed.
    pub fn total_comparisons(&self) -> u64 {
        self.oracles.iter().map(|o| o.comparisons).sum()
    }

    /// True when every oracle agreed on every comparison.
    pub fn is_clean(&self) -> bool {
        self.total_divergences() == 0
    }

    /// Every divergence, across oracles, for detailed reporting.
    pub fn divergences(&self) -> impl Iterator<Item = &Divergence> {
        self.oracles.iter().flat_map(|o| o.divergences.iter())
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verification sweep: seed {:#x}, {} points/oracle, {} comparisons",
            self.seed,
            self.points,
            self.total_comparisons()
        )?;
        for o in &self.oracles {
            writeln!(f, "  {o}")?;
        }
        if self.is_clean() {
            write!(f, "result: CLEAN")
        } else {
            writeln!(f, "result: {} DIVERGENCES", self.total_divergences())?;
            for d in self.divergences() {
                writeln!(f, "{d}")?;
            }
            Ok(())
        }
    }
}

/// Runs all six differential oracles plus the fault-injection sweep with
/// `points` generated cases each (the cluster oracle clamps itself to
/// [`MAX_CLUSTER_CASES`] cases and reports the clamped count).
///
/// Deterministic: the same `(seed, points)` always replays the same streams
/// and configurations, so this is usable as a CI gate
/// (`scripts/check.sh` pins `--seed 0xC0FFEE`).
pub fn run_all(seed: u64, points: usize) -> VerifyReport {
    VerifyReport {
        seed,
        points,
        oracles: vec![
            bounded_vs_unbounded(seed, points),
            evaluate_equivalence(seed, points),
            runner_determinism(seed, points),
            batch_vs_scalar(seed, points),
            snapshot_restore_lockstep(seed, points),
            fault_sweep(seed, points),
            cluster_lockstep(seed, points),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_is_clean_and_reports_counts() {
        let r = run_all(0xC0FFEE, 4);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.oracles.len(), 7);
        assert!(r.total_comparisons() > 100);
        let text = r.to_string();
        assert!(text.contains("CLEAN"), "{text}");
        assert!(text.contains("0xc0ffee"), "{text}");
    }

    #[test]
    fn run_all_is_deterministic() {
        let a = run_all(7, 3);
        let b = run_all(7, 3);
        assert_eq!(a.total_comparisons(), b.total_comparisons());
        assert_eq!(a.to_string(), b.to_string());
    }
}
