//! The deterministic pseudo-random source every generator in this crate
//! draws from.
//!
//! Verification runs must reproduce from a printed seed alone, so the
//! generator is a fixed xorshift64* — no platform entropy, no external
//! crates, no global state. Sub-streams are derived with [`XorShift64::fork`]
//! so a divergence report can name the exact per-case seed that rebuilds the
//! failing stream without replaying every case before it.

/// A seedable xorshift64* generator.
///
/// # Examples
///
/// ```
/// use ntp_verify::XorShift64;
/// let mut a = XorShift64::new(0xC0FFEE);
/// let mut b = XorShift64::new(0xC0FFEE);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// ```
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (0 is remapped; xorshift has no
    /// all-zero state).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A value uniform in `0..n` (`n == 0` returns 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// A value uniform in the inclusive range `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A coin flip: true with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Derives an independent sub-stream seed for case `k`.
    ///
    /// The derivation mixes the case index through the output function so
    /// `fork(0)`, `fork(1)`, … land in unrelated parts of the state space;
    /// a report can print `fork` inputs and a reader reconstructs the case.
    pub fn fork(&self, k: u64) -> XorShift64 {
        let mut child = XorShift64::new(
            self.state ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93,
        );
        // Decorrelate from the parent's immediate output.
        let _ = child.next_u64();
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nontrivial() {
        let mut r = XorShift64::new(42);
        let a: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        let mut r2 = XorShift64::new(42);
        let b: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = XorShift64::new(7);
        let mut seen = [false; 4];
        for _ in 0..256 {
            let v = r.range(2, 5);
            assert!((2..=5).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 2..=5 reachable");
    }

    #[test]
    fn forks_are_decorrelated() {
        let parent = XorShift64::new(1234);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "sibling forks must not track each other");
    }
}
