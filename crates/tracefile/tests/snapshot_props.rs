//! Property-style `.nts` snapshot codec tests, mirroring the `.ntc`
//! sweeps in `codec_props.rs`: randomized round-trips plus exhaustive
//! corruption sweeps, driven by the deterministic xorshift generator of
//! the differential-verification harness so every failure reproduces from
//! its printed seed.
//!
//! The invariant under test: a `.nts` file either decodes to *exactly*
//! the predictor sessions that were stored — and instantiating them
//! continues in per-prediction lockstep with the original predictors — or
//! it is refused with a hard [`SnapshotError`], never a partial or
//! silently-wrong load.

use ntp_core::{
    evaluate, CounterSpec, NextTracePredictor, PredictorConfig, PredictorStats, RhsConfig,
    StoredTarget, TracePredictor,
};
use ntp_trace::{TraceId, TraceRecord};
use ntp_tracefile::snapshot::{
    decode_snapshot, encode_snapshot, SessionSnapshot, SnapshotArtifact, SnapshotError,
    SNAPSHOT_VERSION,
};
use ntp_tracefile::TraceFileError;
use ntp_verify::XorShift64;

/// One random, structurally valid trace record.
fn gen_record(rng: &mut XorShift64) -> TraceRecord {
    let pc = 0x0040_0000 + (rng.below(211) as u32) * 0x40;
    let branch_count = rng.below(3) as u8;
    let mask = ((1u16 << branch_count) - 1) as u8;
    let calls = rng.below(3) as u8;
    let ret = rng.chance(1, 4);
    TraceRecord::new(
        TraceId::new(pc, (rng.next_u32() as u8) & mask, branch_count),
        8,
        calls,
        ret,
        ret,
    )
}

fn gen_stream(rng: &mut XorShift64, len: usize) -> Vec<TraceRecord> {
    (0..len).map(|_| gen_record(rng)).collect()
}

/// A random valid predictor configuration exercising every config field
/// the snapshot must round-trip: table sizes, counters, RHS on/off,
/// alternate prediction and the cost-reduced hashed-target format.
fn gen_config(rng: &mut XorShift64) -> PredictorConfig {
    let index_bits = [12u32, 12, 15][rng.below(3) as usize];
    let depth = rng.below(8) as usize;
    let mut cfg = PredictorConfig::try_paper(index_bits, depth).expect("paper point");
    cfg.secondary_index_bits = rng.range(6, 11) as u32;
    if rng.chance(1, 3) {
        cfg.rhs = None;
    } else if rng.chance(1, 3) {
        cfg.rhs = Some(RhsConfig {
            max_depth: rng.range(1, 9) as usize,
        });
    }
    if rng.chance(1, 3) {
        cfg.alternate = true;
    }
    if rng.chance(1, 3) {
        cfg.stored_target = StoredTarget::Hashed;
    }
    if rng.chance(1, 4) {
        cfg.primary_counter = CounterSpec::TWO_BIT;
    }
    cfg.try_validate().expect("generated config is valid");
    cfg
}

/// A structurally complete but *tiny* configuration (64-entry tables) for
/// the exhaustive corruption sweeps: a byte-by-byte bit-flip pass over a
/// paper-sized snapshot would hash gigabytes, and the codec paths it
/// exercises are identical.
fn tiny_config(rng: &mut XorShift64) -> PredictorConfig {
    let mut cfg = PredictorConfig {
        index_bits: 6,
        dolc: ntp_core::Dolc {
            depth: 2,
            older: 3,
            last: 4,
            current: 5,
        },
        secondary_index_bits: 6,
        ..PredictorConfig::paper(12, 2)
    };
    if rng.chance(1, 3) {
        cfg.stored_target = StoredTarget::Hashed;
    }
    if rng.chance(1, 3) {
        cfg.alternate = true;
    }
    cfg.try_validate().expect("tiny config is valid");
    cfg
}

/// Trains `n` tiny sessions (corruption-sweep sized).
fn gen_tiny_artifact(rng: &mut XorShift64, n: usize) -> SnapshotArtifact {
    let mut sessions = Vec::with_capacity(n);
    for k in 0..n {
        let cfg = tiny_config(rng);
        let mut p = NextTracePredictor::try_new(cfg).expect("valid config");
        let len = rng.range(100, 300) as usize;
        let stats = evaluate(&mut p, &gen_stream(rng, len));
        sessions.push(SessionSnapshot::capture(k as u64, &p, &stats));
    }
    SnapshotArtifact { sessions }
}

/// Trains `n` random sessions and snapshots them.
fn gen_artifact(rng: &mut XorShift64, n: usize) -> (SnapshotArtifact, Vec<NextTracePredictor>) {
    let mut sessions = Vec::with_capacity(n);
    let mut predictors = Vec::with_capacity(n);
    for k in 0..n {
        let cfg = gen_config(rng);
        let mut p = NextTracePredictor::try_new(cfg).expect("valid config");
        let len = rng.range(100, 600) as usize;
        let stats = evaluate(&mut p, &gen_stream(rng, len));
        sessions.push(SessionSnapshot::capture(k as u64 * 3 + 1, &p, &stats));
        predictors.push(p);
    }
    (SnapshotArtifact { sessions }, predictors)
}

/// Positive control + determinism: random session sets encode the same
/// bytes every time, decode back exactly, and the instantiated predictors
/// continue in per-prediction lockstep with the originals.
#[test]
fn random_snapshots_round_trip_and_continue_in_lockstep() {
    for seed in 1..=16u64 {
        let mut rng = XorShift64::new(seed);
        let n = 1 + rng.below(3) as usize;
        let (artifact, mut originals) = gen_artifact(&mut rng, n);
        let bytes = encode_snapshot(&artifact);
        assert_eq!(
            bytes,
            encode_snapshot(&artifact),
            "seed {seed}: encoding is not deterministic"
        );
        let back = decode_snapshot(&bytes).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back.sessions.len(), artifact.sessions.len());
        for s in &back.sessions {
            let k = ((s.session_id - 1) / 3) as usize;
            assert_eq!(s, &artifact.sessions[k], "seed {seed}: session {k}");
            let mut restored = s
                .instantiate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let original = &mut originals[k];
            for step in 0..200 {
                let r = gen_record(&mut rng);
                assert_eq!(
                    restored.predict(),
                    original.predict(),
                    "seed {seed} session {k} step {step}"
                );
                restored.update(&r);
                original.update(&r);
            }
            assert_eq!(restored.aliasing(), original.aliasing());
            assert_eq!(restored.occupancy(), original.occupancy());
        }
    }
}

/// An untrained predictor and an empty session list are valid snapshots.
#[test]
fn cold_and_empty_snapshots_round_trip() {
    let empty = SnapshotArtifact::default();
    assert_eq!(
        decode_snapshot(&encode_snapshot(&empty)).expect("empty decodes"),
        empty
    );
    let p = NextTracePredictor::new(PredictorConfig::paper(12, 2));
    let cold = SnapshotArtifact {
        sessions: vec![SessionSnapshot::capture(0, &p, &PredictorStats::new())],
    };
    let back = decode_snapshot(&encode_snapshot(&cold)).expect("cold decodes");
    assert_eq!(back, cold);
    back.sessions[0].instantiate().expect("cold state applies");
}

/// Every single-bit flip anywhere in the file must be refused.
#[test]
fn every_single_bit_flip_is_refused() {
    for seed in [5u64, 23] {
        let mut rng = XorShift64::new(seed);
        let artifact = gen_tiny_artifact(&mut rng, 1);
        let bytes = encode_snapshot(&artifact);
        decode_snapshot(&bytes).expect("pristine bytes decode");
        let mut mutated = bytes.clone();
        for i in 0..mutated.len() {
            for bit in 0..8 {
                mutated[i] ^= 1 << bit;
                assert!(
                    decode_snapshot(&mutated).is_err(),
                    "seed {seed}: flip of byte {i} bit {bit} was not detected"
                );
                mutated[i] ^= 1 << bit; // restore
            }
        }
        assert_eq!(mutated, bytes, "sweep must leave the buffer pristine");
    }
}

/// Every proper prefix of a valid file must be refused (no partial load).
#[test]
fn every_truncation_is_refused() {
    let mut rng = XorShift64::new(0xDEAD);
    let artifact = gen_tiny_artifact(&mut rng, 2);
    let bytes = encode_snapshot(&artifact);
    for cut in 0..bytes.len() {
        assert!(
            decode_snapshot(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes was not detected",
            bytes.len()
        );
    }
}

/// Appending anything after a valid file must be refused.
#[test]
fn trailing_garbage_is_refused() {
    let mut rng = XorShift64::new(0xBEEF);
    let artifact = gen_tiny_artifact(&mut rng, 1);
    let mut bytes = encode_snapshot(&artifact);
    bytes.push(0);
    match decode_snapshot(&bytes) {
        Err(SnapshotError::File(TraceFileError::TrailingBytes { extra })) => assert_eq!(extra, 1),
        other => panic!("expected TrailingBytes, got {other:?}"),
    }
}

/// A file written under any other snapshot version must be refused even
/// if everything else is internally consistent.
#[test]
fn version_skew_is_refused() {
    let mut rng = XorShift64::new(0x5EED);
    let artifact = gen_tiny_artifact(&mut rng, 1);
    let bytes = encode_snapshot(&artifact);
    for skew in [SNAPSHOT_VERSION + 1, SNAPSHOT_VERSION + 7, 0] {
        let mut mutated = bytes.clone();
        mutated[4..8].copy_from_slice(&skew.to_le_bytes());
        match decode_snapshot(&mutated) {
            Err(SnapshotError::File(TraceFileError::BadVersion { found })) => {
                assert_eq!(found, skew)
            }
            other => panic!("version {skew}: expected BadVersion, got {other:?}"),
        }
    }
}

/// Restoring a session into a predictor with any perturbed configuration
/// must be refused with `ConfigMismatch`, leaving the target untouched.
#[test]
fn config_mismatch_is_refused_on_restore() {
    let mut rng = XorShift64::new(0xFACE);
    let base = PredictorConfig::paper(12, 3);
    let mut p = NextTracePredictor::new(base);
    let stats = evaluate(&mut p, &gen_stream(&mut rng, 400));
    let snap = SessionSnapshot::capture(0, &p, &stats);

    let perturbed = [
        PredictorConfig::paper(15, 3),
        PredictorConfig::paper(12, 2),
        PredictorConfig {
            tag_bits: 9,
            ..base
        },
        PredictorConfig { rhs: None, ..base },
        PredictorConfig {
            alternate: true,
            ..base
        },
        PredictorConfig {
            stored_target: StoredTarget::Hashed,
            ..base
        },
        PredictorConfig {
            secondary_index_bits: 13,
            ..base
        },
    ];
    for (k, cfg) in perturbed.iter().enumerate() {
        let mut target = NextTracePredictor::new(*cfg);
        let before = target.save_state();
        match snap.restore_into(&mut target) {
            Err(SnapshotError::ConfigMismatch { .. }) => {}
            other => panic!("perturbation {k}: expected ConfigMismatch, got {other:?}"),
        }
        assert_eq!(
            target.save_state(),
            before,
            "perturbation {k}: refusal must not mutate the target"
        );
    }
    // Positive control: the matching configuration restores.
    let mut target = NextTracePredictor::new(base);
    snap.restore_into(&mut target).expect("control restore");
    assert_eq!(target.save_state(), p.save_state());
}
