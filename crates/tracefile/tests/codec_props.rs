//! Property-style codec tests: randomized round-trips plus exhaustive
//! corruption sweeps, driven by the same deterministic xorshift generator
//! the differential-verification harness uses (`ntp_verify::XorShift64`),
//! so every failure reproduces from its printed seed.
//!
//! The invariant under test is the crate's central promise: a `.ntc` file
//! either decodes to *exactly* what was stored, or it is refused with a
//! hard [`TraceFileError`] — never a partial or silently-wrong load.

use ntp_baselines::{MultiBranchStats, SequentialStats};
use ntp_trace::{ControlMix, RedundancyRaw, TraceConfig, TraceStatsRaw};
use ntp_tracefile::format::{decode, encode};
use ntp_tracefile::{CaptureArtifact, Fingerprint, TraceFileError, FORMAT_VERSION};
use ntp_verify::XorShift64;

use ntp_trace::{TraceId, TraceRecord};

/// One random, structurally valid trace record.
fn gen_record(rng: &mut XorShift64) -> TraceRecord {
    let branch_count = rng.below(7) as u8;
    let mask = ((1u16 << branch_count) - 1) as u8;
    let branch_bits = (rng.next_u32() as u8) & mask;
    let len = rng.range(1, 16) as u8;
    let call_count = rng.below(8) as u8;
    let ends_in_return = rng.chance(1, 4);
    let ends_in_indirect = !ends_in_return && rng.chance(1, 4);
    TraceRecord::new(
        TraceId::new(rng.next_u32(), branch_bits, branch_count),
        len,
        call_count,
        ends_in_return,
        ends_in_indirect,
    )
}

/// Strictly-increasing random u64s (the codec rejects unsorted id sets).
fn gen_sorted_u64s(rng: &mut XorShift64, n: usize) -> Vec<u64> {
    let mut v = Vec::with_capacity(n);
    let mut cur = 0u64;
    for _ in 0..n {
        cur += 1 + rng.below(1 << 20);
        v.push(cur);
    }
    v
}

/// Strictly-increasing-by-pc random copy counts.
fn gen_copies(rng: &mut XorShift64, n: usize) -> Vec<(u32, u32)> {
    let mut v = Vec::with_capacity(n);
    let mut pc = 0u32;
    for _ in 0..n {
        pc = pc.saturating_add(4 + (rng.below(1 << 12) as u32) * 4);
        v.push((pc, 1 + rng.below(64) as u32));
    }
    v
}

/// A random, structurally valid capture artifact of modest size.
fn gen_artifact(rng: &mut XorShift64) -> CaptureArtifact {
    let n_records = rng.below(64) as usize;
    let n_static = rng.below(32) as usize;
    let n_seen = rng.below(32) as usize;
    let n_copies = rng.below(16) as usize;
    CaptureArtifact {
        name: format!("wl{}", rng.below(1000)),
        analog_of: format!("analog{}", rng.below(1000)),
        icount: rng.next_u64(),
        records: (0..n_records).map(|_| gen_record(rng)).collect(),
        trace_stats: TraceStatsRaw {
            traces: rng.next_u64(),
            instrs: rng.next_u64(),
            cond_branches: rng.next_u64(),
            calls: rng.next_u64(),
            returns: rng.next_u64(),
            indirect: rng.next_u64(),
            static_ids: gen_sorted_u64s(rng, n_static),
        },
        redundancy: RedundancyRaw {
            seen_traces: gen_sorted_u64s(rng, n_seen),
            copies: gen_copies(rng, n_copies),
            stored_instrs: rng.next_u64(),
        },
        seq_stats: SequentialStats {
            traces: rng.next_u64(),
            trace_mispredicts: rng.next_u64(),
            branches: rng.next_u64(),
            branch_mispredicts: rng.next_u64(),
            indirects: rng.next_u64(),
            indirect_mispredicts: rng.next_u64(),
            returns: rng.next_u64(),
            return_mispredicts: rng.next_u64(),
        },
        mb_stats: MultiBranchStats {
            traces: rng.next_u64(),
            trace_mispredicts: rng.next_u64(),
            branches: rng.next_u64(),
            branch_mispredicts: rng.next_u64(),
        },
        gag_stats: MultiBranchStats {
            traces: rng.next_u64(),
            trace_mispredicts: rng.next_u64(),
            branches: rng.next_u64(),
            branch_mispredicts: rng.next_u64(),
        },
        mix: ControlMix {
            cond_branches: rng.next_u64(),
            taken_branches: rng.next_u64(),
            jumps: rng.next_u64(),
            calls: rng.next_u64(),
            indirect_jumps: rng.next_u64(),
            indirect_calls: rng.next_u64(),
            returns: rng.next_u64(),
            instrs: rng.next_u64(),
        },
    }
}

fn gen_fingerprint(rng: &mut XorShift64) -> Fingerprint {
    let image: Vec<u8> = (0..rng.range(4, 64))
        .map(|_| rng.next_u32() as u8)
        .collect();
    Fingerprint::new(
        &format!("wl{}", rng.below(1000)),
        "analog",
        rng.next_u64(),
        &TraceConfig::default(),
        &image,
    )
}

/// Positive control + determinism: random artifacts encode the same bytes
/// every time and decode back to exactly the stored value.
#[test]
fn random_artifacts_round_trip_bit_exactly() {
    for seed in 1..=32u64 {
        let mut rng = XorShift64::new(seed);
        let fp = gen_fingerprint(&mut rng);
        let artifact = gen_artifact(&mut rng);
        let bytes = encode(&fp, &artifact);
        assert_eq!(
            bytes,
            encode(&fp, &artifact),
            "seed {seed}: encoding is not deterministic"
        );
        let back = decode(&bytes, &fp).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back, artifact, "seed {seed}: round-trip mismatch");
    }
}

/// The empty artifact is a valid file too.
#[test]
fn empty_artifact_round_trips() {
    let fp = Fingerprint::new("e", "e", 0, &TraceConfig::default(), b"");
    let artifact = CaptureArtifact::default();
    let back = decode(&encode(&fp, &artifact), &fp).expect("empty round-trip");
    assert_eq!(back, artifact);
}

/// Every single-bit flip anywhere in the file must be refused. (FNV-1a is
/// not a provable 1-bit-detecting code, but the header is validated
/// semantically and every section is checksummed; this sweep pins the
/// property for real encodings.)
#[test]
fn every_single_bit_flip_is_refused() {
    for seed in [3u64, 17, 91] {
        let mut rng = XorShift64::new(seed);
        let fp = gen_fingerprint(&mut rng);
        let artifact = gen_artifact(&mut rng);
        let bytes = encode(&fp, &artifact);
        // Positive control first: the pristine bytes decode.
        decode(&bytes, &fp).expect("pristine bytes decode");
        let mut mutated = bytes.clone();
        for i in 0..mutated.len() {
            for bit in 0..8 {
                mutated[i] ^= 1 << bit;
                assert!(
                    decode(&mutated, &fp).is_err(),
                    "seed {seed}: flip of byte {i} bit {bit} was not detected"
                );
                mutated[i] ^= 1 << bit; // restore
            }
        }
        assert_eq!(mutated, bytes, "sweep must leave the buffer pristine");
    }
}

/// Every proper prefix of a valid file must be refused (no partial load).
#[test]
fn every_truncation_is_refused() {
    let mut rng = XorShift64::new(0xDEAD);
    let fp = gen_fingerprint(&mut rng);
    let artifact = gen_artifact(&mut rng);
    let bytes = encode(&fp, &artifact);
    for cut in 0..bytes.len() {
        assert!(
            decode(&bytes[..cut], &fp).is_err(),
            "truncation to {cut}/{} bytes was not detected",
            bytes.len()
        );
    }
}

/// Appending anything after a valid file must be refused.
#[test]
fn trailing_garbage_is_refused() {
    let mut rng = XorShift64::new(0xBEEF);
    let fp = gen_fingerprint(&mut rng);
    let artifact = gen_artifact(&mut rng);
    let mut bytes = encode(&fp, &artifact);
    bytes.push(0);
    match decode(&bytes, &fp) {
        Err(TraceFileError::TrailingBytes { extra }) => assert_eq!(extra, 1),
        other => panic!("expected TrailingBytes, got {other:?}"),
    }
}

/// A file written under any other format version must be refused even if
/// everything else (including its checksums) is internally consistent.
#[test]
fn version_skew_is_refused() {
    let mut rng = XorShift64::new(0x5EED);
    let fp = gen_fingerprint(&mut rng);
    let artifact = gen_artifact(&mut rng);
    let bytes = encode(&fp, &artifact);
    for skew in [FORMAT_VERSION + 1, FORMAT_VERSION + 9, 0] {
        let mut mutated = bytes.clone();
        mutated[4..8].copy_from_slice(&skew.to_le_bytes());
        match decode(&mutated, &fp) {
            Err(TraceFileError::BadVersion { found }) => assert_eq!(found, skew),
            other => panic!("version {skew}: expected BadVersion, got {other:?}"),
        }
    }
}

/// A file stored under one configuration must be refused when loaded
/// expecting any perturbed configuration: name, budget, trace policy and
/// program image all participate in the fingerprint.
#[test]
fn fingerprint_skew_is_refused() {
    let base_cfg = TraceConfig::default();
    let fp = Fingerprint::new("wl", "analog", 1_000_000, &base_cfg, b"program-image");
    let mut rng = XorShift64::new(0xFACE);
    let artifact = gen_artifact(&mut rng);
    let bytes = encode(&fp, &artifact);

    let mut other_cfg = base_cfg;
    other_cfg.max_len = base_cfg.max_len - 1;
    let perturbed = [
        Fingerprint::new("wl2", "analog", 1_000_000, &base_cfg, b"program-image"),
        Fingerprint::new("wl", "analog2", 1_000_000, &base_cfg, b"program-image"),
        Fingerprint::new("wl", "analog", 1_000_001, &base_cfg, b"program-image"),
        Fingerprint::new("wl", "analog", 1_000_000, &other_cfg, b"program-image"),
        Fingerprint::new("wl", "analog", 1_000_000, &base_cfg, b"program-image2"),
    ];
    for (k, wrong) in perturbed.iter().enumerate() {
        assert!(
            matches!(
                decode(&bytes, wrong),
                Err(TraceFileError::FingerprintMismatch { .. })
            ),
            "perturbation {k} was not refused"
        );
    }
    // Positive control: the matching fingerprint still loads.
    assert_eq!(decode(&bytes, &fp).expect("control decode"), artifact);
}
