//! # ntp-tracefile — persistent on-disk trace-capture cache
//!
//! Every experiment run used to re-execute the full functional-simulation
//! capture pass (hundreds of Minstr) even though the predictor sweeps only
//! ever consume the derived 8-byte [`TraceRecord`] stream and a handful of
//! capture-time summaries. This crate persists that artifact: **capture
//! once, replay everywhere**.
//!
//! * [`CaptureArtifact`] — the persisted unit: the packed record stream
//!   plus every capture-derived summary (trace/redundancy statistics,
//!   sequential/gshare/GAg baseline results, control mix, icount), none of
//!   which can be reconstructed from the records alone;
//! * [`Fingerprint`] — the cache key: workload identity (name, analog,
//!   assembled program image), instruction budget, trace-selection policy
//!   and format version, canonicalized and FNV-hashed;
//! * [`format`] — the validating `.ntc` codec: magic + version header,
//!   fingerprint echo, per-section length fields and FNV-1a 64 checksums.
//!   Stale or corrupt files are **hard errors** ([`TraceFileError`]) — the
//!   caller re-captures; a cache can never mis-load;
//! * [`counters`] — process-wide hit/miss/bytes/time telemetry, surfaced
//!   by the bench reports under the volatile `"throughput"` section;
//! * [`snapshot`] — the `.nts` predictor *state* snapshot codec: the same
//!   validating section/checksum/fingerprint discipline applied to trained
//!   predictor sessions, so `ntp serve` can warm-start instead of
//!   relearning (see [`SnapshotArtifact`]).
//!
//! The cache is off by default. `NTP_TRACE_CACHE=1` enables it at the
//! default location `.ntp-cache/`; any other non-empty value is used as
//! the cache directory (see [`cache_dir_from_env`]). Each configuration
//! maps to its own file (`<name>-<fingerprint>.ntc`), so the parallel
//! capture workers of `ntp-runner` never contend on a file, and writes go
//! through a same-directory temp file + rename so readers never observe a
//! torn file.
//!
//! # Example
//!
//! ```
//! use ntp_tracefile::{format, CaptureArtifact, Fingerprint};
//! use ntp_trace::TraceConfig;
//!
//! let fp = Fingerprint::new("demo", "demo", 1_000, &TraceConfig::default(), b"image");
//! let artifact = CaptureArtifact {
//!     name: "demo".into(),
//!     analog_of: "demo".into(),
//!     ..CaptureArtifact::default()
//! };
//! let bytes = format::encode(&fp, &artifact);
//! let back = format::decode(&bytes, &fp)?;
//! assert_eq!(back, artifact);
//! # Ok::<(), ntp_tracefile::TraceFileError>(())
//! ```
//!
//! [`TraceRecord`]: ntp_trace::TraceRecord

#![warn(missing_docs)]

pub mod counters;
mod fingerprint;
pub mod format;
pub mod snapshot;

pub use counters::{counters, reset_counters, CacheCounters};
pub use fingerprint::Fingerprint;
pub use snapshot::{
    config_canon, decode_session_wire, decode_snapshot, encode_session_wire, encode_snapshot,
    read_snapshot_file, write_snapshot_file, SessionSnapshot, SnapshotArtifact, SnapshotError,
    SESSION_WIRE_MAGIC, SNAPSHOT_EXT, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
// The FNV-1a 64 implementation lives in the shared `ntp-hash` crate (the
// `ntp-serve` wire protocol checksums frames with the same hash);
// re-exported here so existing `ntp_tracefile::{fnv64, Fnv64}` users keep
// working unchanged.
pub use format::{CaptureArtifact, TraceFileError, FORMAT_VERSION, MAGIC};
pub use ntp_hash::{fnv64, Fnv64};

use std::path::PathBuf;

/// Environment variable controlling the cache: unset, empty or `0`
/// disables it; `1` enables it at [`DEFAULT_CACHE_DIR`]; anything else is
/// the cache directory path.
pub const CACHE_ENV: &str = "NTP_TRACE_CACHE";

/// Where `NTP_TRACE_CACHE=1` puts the cache.
pub const DEFAULT_CACHE_DIR: &str = ".ntp-cache";

/// Resolves the `NTP_TRACE_CACHE` knob (see [`CACHE_ENV`]).
///
/// # Examples
///
/// ```no_run
/// // NTP_TRACE_CACHE=1        -> Some(".ntp-cache")
/// // NTP_TRACE_CACHE=/tmp/tc  -> Some("/tmp/tc")
/// // NTP_TRACE_CACHE=0 / ""   -> None
/// let dir = ntp_tracefile::cache_dir_from_env();
/// ```
pub fn cache_dir_from_env() -> Option<PathBuf> {
    match std::env::var(CACHE_ENV) {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) if v == "1" => Some(PathBuf::from(DEFAULT_CACHE_DIR)),
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => None,
    }
}
