//! Process-wide cache telemetry: hit/miss/store counters, byte volumes
//! and load/store wall time.
//!
//! All values are wall-clock or filesystem derived, so reports must keep
//! them under a volatile key (the bench reports put them in the
//! `"throughput"` section, which determinism checks strip).

use ntp_telemetry::{Json, ToJson};
use std::sync::Mutex;
use std::time::Duration;

/// Snapshot of the process-wide trace-cache counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CacheCounters {
    /// Valid cache files loaded instead of re-capturing.
    pub hits: u64,
    /// Capture passes run because no cache file existed.
    pub misses: u64,
    /// Capture passes run because a cache file existed but failed
    /// validation (stale fingerprint, corruption, version skew).
    pub invalid: u64,
    /// Artifacts written back to the cache.
    pub stores: u64,
    /// Bytes read from valid cache files.
    pub bytes_read: u64,
    /// Bytes written to the cache.
    pub bytes_written: u64,
    /// Wall time spent loading valid cache files.
    pub load_time: Duration,
    /// Wall time spent writing cache files.
    pub store_time: Duration,
}

impl CacheCounters {
    /// True when nothing has been recorded (cache disabled or unused).
    pub fn is_empty(&self) -> bool {
        *self == CacheCounters::default()
    }

    /// One human line, e.g.
    /// `2 hits, 4 misses (0 invalid), 1.2 MB read in 3.1 ms, 2.4 MB written in 8.0 ms`.
    pub fn summary_line(&self) -> String {
        format!(
            "{} hit{}, {} miss{} ({} invalid), {:.1} KB read in {:.1} ms, {:.1} KB written in {:.1} ms",
            self.hits,
            if self.hits == 1 { "" } else { "s" },
            self.misses,
            if self.misses == 1 { "" } else { "es" },
            self.invalid,
            self.bytes_read as f64 / 1024.0,
            self.load_time.as_secs_f64() * 1e3,
            self.bytes_written as f64 / 1024.0,
            self.store_time.as_secs_f64() * 1e3,
        )
    }
}

impl ToJson for CacheCounters {
    /// `{hits, misses, invalid, stores, bytes_read, bytes_written,
    /// load_ms, store_ms}` — all volatile.
    fn to_json(&self) -> Json {
        Json::object()
            .with("hits", Json::U64(self.hits))
            .with("misses", Json::U64(self.misses))
            .with("invalid", Json::U64(self.invalid))
            .with("stores", Json::U64(self.stores))
            .with("bytes_read", Json::U64(self.bytes_read))
            .with("bytes_written", Json::U64(self.bytes_written))
            .with("load_ms", Json::F64(self.load_time.as_secs_f64() * 1e3))
            .with("store_ms", Json::F64(self.store_time.as_secs_f64() * 1e3))
    }
}

static COUNTERS: Mutex<CacheCounters> = Mutex::new(CacheCounters {
    hits: 0,
    misses: 0,
    invalid: 0,
    stores: 0,
    bytes_read: 0,
    bytes_written: 0,
    load_time: Duration::ZERO,
    store_time: Duration::ZERO,
});

fn with<R>(f: impl FnOnce(&mut CacheCounters) -> R) -> R {
    f(&mut COUNTERS.lock().expect("cache counter lock"))
}

/// Snapshot of the counters recorded so far in this process.
pub fn counters() -> CacheCounters {
    with(|c| c.clone())
}

/// Clears the counters (suite starts and tests).
pub fn reset_counters() {
    with(|c| *c = CacheCounters::default());
}

/// Records one valid cache load.
pub fn record_hit(bytes: u64, elapsed: Duration) {
    with(|c| {
        c.hits += 1;
        c.bytes_read += bytes;
        c.load_time += elapsed;
    });
}

/// Records one cold capture (no cache file existed).
pub fn record_miss() {
    with(|c| c.misses += 1);
}

/// Records one refused cache file (stale or corrupt; the caller
/// re-captures).
pub fn record_invalid() {
    with(|c| c.invalid += 1);
}

/// Records one artifact written back to the cache.
pub fn record_store(bytes: u64, elapsed: Duration) {
    with(|c| {
        c.stores += 1;
        c.bytes_written += bytes;
        c.store_time += elapsed;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset_counters();
        assert!(counters().is_empty());
        record_miss();
        record_store(100, Duration::from_millis(2));
        record_hit(100, Duration::from_millis(1));
        record_invalid();
        let c = counters();
        assert_eq!(
            (c.hits, c.misses, c.invalid, c.stores),
            (1, 1, 1, 1),
            "{c:?}"
        );
        assert_eq!(c.bytes_read, 100);
        assert_eq!(c.bytes_written, 100);
        assert!(c.load_time >= Duration::from_millis(1));
        let j = c.to_json();
        for key in [
            "hits",
            "misses",
            "invalid",
            "stores",
            "bytes_read",
            "bytes_written",
            "load_ms",
            "store_ms",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert!(c.summary_line().contains("1 hit, 1 miss (1 invalid)"));
        reset_counters();
        assert!(counters().is_empty());
    }
}
