//! The `.nts` binary format: predictor state snapshots.
//!
//! A snapshot persists the complete learned state of one or more
//! predictor sessions — tables, bitmaps, path history, return history
//! stack, aliasing counters and the accumulated [`PredictorStats`] — so a
//! serving process can warm-start instead of relearning from scratch.
//!
//! ```text
//! header   magic "NTPS" | snapshot version u32 | fingerprint hash u64
//!          | fingerprint length u32 | fingerprint string (UTF-8)
//!          | session count u32
//! sessions one `SESS` section per session, each:
//!          tag [u8;4] | payload length u64 | payload
//!          | FNV-1a 64 checksum over (tag ‖ length ‖ payload)
//! trailer  end of file, exactly (trailing bytes are an error)
//! ```
//!
//! The fingerprint string canonicalizes the snapshot version, the session
//! count, and every session's full predictor configuration (see
//! [`config_canon`]); its FNV hash is stored alongside so header
//! corruption is caught even before the string is parsed. The same codec
//! discipline as the `.ntc` trace cache applies: all integers are
//! little-endian, every section is length-framed and checksummed, the
//! reader validates everything, and any mismatch is a hard
//! [`SnapshotError`] — a corrupt, truncated, version-skewed or
//! config-mismatched snapshot must make the caller fall back to a cold
//! start, never mis-load. Writes go through a same-directory temporary
//! file plus rename, so readers never observe a torn snapshot.

use crate::format::{
    decode_str, malformed, put_str, put_u32, put_u64, section, Cursor, SectionWriter,
};
use crate::TraceFileError;
use ntp_core::{
    ConfigError, CounterSpec, Dolc, NextTracePredictor, PredictorConfig, PredictorState,
    PredictorStats, RhsConfig, StateError, StoredTarget, PREDICTOR_STATS_FIELDS,
};
use ntp_hash::fnv64;
use std::io::Write;
use std::path::Path;

/// File magic: the first four bytes of every `.nts` file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"NTPS";

/// On-disk snapshot format version. Bump on any layout change; readers
/// reject every other version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// File extension used for predictor state snapshots.
pub const SNAPSHOT_EXT: &str = "nts";

/// Why a `.nts` snapshot was refused or could not be applied. Every
/// variant is a *hard* error: the caller must fall back to a cold start,
/// never partially load.
#[derive(Debug)]
pub enum SnapshotError {
    /// A codec-level failure: bad magic/version, truncation, checksum or
    /// fingerprint mismatch, malformed payload (shared with the `.ntc`
    /// reader).
    File(TraceFileError),
    /// The embedded predictor configuration is invalid for this build.
    Config(ConfigError),
    /// The decoded state does not fit the embedded configuration.
    State(StateError),
    /// The snapshot was taken under a different predictor configuration
    /// than the one it is being restored into.
    ConfigMismatch {
        /// Canonical configuration the restoring predictor uses.
        expected: String,
        /// Canonical configuration stored in the snapshot.
        found: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::File(e) => write!(f, "snapshot file error: {e}"),
            SnapshotError::Config(e) => write!(f, "snapshot carries invalid config: {e}"),
            SnapshotError::State(e) => write!(f, "snapshot state rejected: {e}"),
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot config mismatch: predictor uses `{expected}`, snapshot has `{found}`"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<TraceFileError> for SnapshotError {
    fn from(e: TraceFileError) -> SnapshotError {
        SnapshotError::File(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::File(TraceFileError::Io(e))
    }
}

/// One persisted predictor session: identity, configuration, accumulated
/// statistics and the complete learned state.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSnapshot {
    /// Session identifier (0 for single-predictor offline snapshots; the
    /// wire session id for served sessions).
    pub session_id: u64,
    /// The configuration the state was trained under.
    pub config: PredictorConfig,
    /// Statistics accumulated up to the snapshot point.
    pub stats: PredictorStats,
    /// The complete learned predictor state.
    pub state: PredictorState,
}

impl SessionSnapshot {
    /// Captures a session from a live predictor and its statistics.
    pub fn capture(
        session_id: u64,
        predictor: &NextTracePredictor,
        stats: &PredictorStats,
    ) -> SessionSnapshot {
        SessionSnapshot {
            session_id,
            config: *predictor.config(),
            stats: stats.clone(),
            state: predictor.save_state(),
        }
    }

    /// Builds a fresh predictor from the embedded configuration and
    /// restores the saved state into it.
    pub fn instantiate(&self) -> Result<NextTracePredictor, SnapshotError> {
        let mut p = NextTracePredictor::try_new(self.config).map_err(SnapshotError::Config)?;
        p.restore_state(&self.state).map_err(SnapshotError::State)?;
        Ok(p)
    }

    /// Restores the saved state into an existing predictor, refusing if
    /// the predictor's configuration differs from the snapshot's. On
    /// refusal the predictor is left untouched.
    pub fn restore_into(&self, predictor: &mut NextTracePredictor) -> Result<(), SnapshotError> {
        if *predictor.config() != self.config {
            return Err(SnapshotError::ConfigMismatch {
                expected: config_canon(predictor.config()),
                found: config_canon(&self.config),
            });
        }
        predictor
            .restore_state(&self.state)
            .map_err(SnapshotError::State)
    }
}

/// A decoded `.nts` file: one or more sessions (offline snapshots hold
/// one; per-shard serving snapshots hold every session the shard owned).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotArtifact {
    /// The persisted sessions, in file order (sorted by session id when
    /// written by [`encode_snapshot`]).
    pub sessions: Vec<SessionSnapshot>,
}

/// Canonical one-line rendering of a predictor configuration — the unit
/// the snapshot fingerprint is built from. Every field participates, so
/// two configurations canonicalize identically iff they are equal.
pub fn config_canon(cfg: &PredictorConfig) -> String {
    let ctr = |c: &CounterSpec| format!("{}+{}-{}", c.bits, c.inc, c.dec);
    format!(
        "idx{};dolc{}-{}-{}-{};tag{};pc{};sidx{};sc{};rhs{};alt{};tgt{}",
        cfg.index_bits,
        cfg.dolc.depth,
        cfg.dolc.older,
        cfg.dolc.last,
        cfg.dolc.current,
        cfg.tag_bits,
        ctr(&cfg.primary_counter),
        cfg.secondary_index_bits,
        ctr(&cfg.secondary_counter),
        cfg.rhs
            .map_or_else(|| "off".to_string(), |r| r.max_depth.to_string()),
        u8::from(cfg.alternate),
        match cfg.stored_target {
            StoredTarget::Full => "full",
            StoredTarget::Hashed => "hash",
        },
    )
}

/// The whole-file fingerprint string: snapshot version, session count,
/// and each session's id plus canonical configuration.
fn snapshot_canon(sessions: &[SessionSnapshot]) -> String {
    let mut canon = format!("nts-v{};sessions={}", SNAPSHOT_VERSION, sessions.len());
    for s in sessions {
        canon.push_str(&format!(";{}={}", s.session_id, config_canon(&s.config)));
    }
    canon
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16s(buf: &mut Vec<u8>, values: &[u16]) {
    for &v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u64s(buf: &mut Vec<u8>, values: &[u64]) {
    for &v in values {
        put_u64(buf, v);
    }
}

fn encode_config(buf: &mut Vec<u8>, cfg: &PredictorConfig) {
    put_u32(buf, cfg.index_bits);
    put_u32(buf, cfg.dolc.depth as u32);
    put_u32(buf, cfg.dolc.older);
    put_u32(buf, cfg.dolc.last);
    put_u32(buf, cfg.dolc.current);
    put_u32(buf, cfg.tag_bits);
    for c in [&cfg.primary_counter, &cfg.secondary_counter] {
        buf.push(c.bits);
        buf.push(c.inc);
        buf.push(c.dec);
    }
    put_u32(buf, cfg.secondary_index_bits);
    put_u32(buf, cfg.rhs.map_or(0, |r| r.max_depth as u32));
    buf.push(u8::from(cfg.alternate));
    buf.push(match cfg.stored_target {
        StoredTarget::Full => 0,
        StoredTarget::Hashed => 1,
    });
}

fn encode_session(s: &SessionSnapshot) -> Vec<u8> {
    let st = &s.state;
    let mut p = Vec::with_capacity(
        96 + st.corr_tags.len() * 19 + st.sec_targets.len() * 9 + st.history.len() * 2,
    );
    put_u64(&mut p, s.session_id);
    encode_config(&mut p, &s.config);
    put_u64s(&mut p, &s.stats.to_array());
    put_u64(&mut p, st.corr_tags.len() as u64);
    put_u16s(&mut p, &st.corr_tags);
    p.extend_from_slice(&st.corr_ctrs);
    put_u64s(&mut p, &st.corr_targets);
    put_u64s(&mut p, &st.corr_alts);
    put_u64s(&mut p, &st.corr_valid);
    put_u64s(&mut p, &st.corr_has_alt);
    put_u64(&mut p, st.sec_targets.len() as u64);
    put_u64s(&mut p, &st.sec_targets);
    p.extend_from_slice(&st.sec_ctrs);
    put_u64s(&mut p, &st.sec_valid);
    put_u32(&mut p, st.history.len() as u32);
    put_u16s(&mut p, &st.history);
    put_u32(&mut p, st.rhs.len() as u32);
    for saved in &st.rhs {
        p.push(saved.len() as u8);
        put_u16s(&mut p, saved);
    }
    put_u64s(&mut p, &st.aliasing);
    p
}

/// Streams one snapshot artifact into `sink`, returning the bytes
/// written. Sessions are written in ascending session-id order so the
/// encoding is deterministic regardless of capture order.
///
/// # Errors
///
/// Propagates sink I/O errors.
pub fn write_snapshot_to<W: Write>(sink: W, artifact: &SnapshotArtifact) -> std::io::Result<u64> {
    let mut sessions: Vec<&SessionSnapshot> = artifact.sessions.iter().collect();
    sessions.sort_by_key(|s| s.session_id);
    let ordered: Vec<SessionSnapshot> = sessions.into_iter().cloned().collect();
    let canon = snapshot_canon(&ordered);

    let mut w = SectionWriter::new(sink);
    let mut header = Vec::with_capacity(24 + canon.len());
    header.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u32(&mut header, SNAPSHOT_VERSION);
    put_u64(&mut header, fnv64(canon.as_bytes()));
    put_str(&mut header, &canon);
    put_u32(&mut header, ordered.len() as u32);
    w.raw(&header)?;
    for s in &ordered {
        w.section(b"SESS", &encode_session(s))?;
    }
    Ok(w.bytes_written)
}

/// Encodes one snapshot artifact to an in-memory buffer.
pub fn encode_snapshot(artifact: &SnapshotArtifact) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot_to(&mut buf, artifact).expect("Vec sink cannot fail");
    buf
}

/// Atomically writes one snapshot to `path` (same-directory temporary
/// file + rename, like the `.ntc` writer). Returns the bytes written.
///
/// # Errors
///
/// Propagates filesystem errors (the temporary file is cleaned up).
pub fn write_snapshot_file(path: &Path, artifact: &SnapshotArtifact) -> std::io::Result<u64> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut writer = std::io::BufWriter::new(file);
        let n = write_snapshot_to(&mut writer, artifact)?;
        writer.flush()?;
        std::fs::rename(&tmp, path)?;
        Ok(n)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// Single-session wire framing
// ---------------------------------------------------------------------------

/// Magic prefix of a single-session wire snapshot (the `Migrate` frame
/// payload): "NTSW" = NTp Session on the Wire.
pub const SESSION_WIRE_MAGIC: [u8; 4] = *b"NTSW";

/// Encodes one session as a self-validating wire payload, the unit a
/// serving cluster ships when migrating a session between nodes:
///
/// ```text
/// magic "NTSW" | snapshot version u32 | payload length u32
/// | payload (the `.nts` session encoding) | FNV-1a 64 checksum of payload
/// ```
///
/// The framing reuses [`SNAPSHOT_VERSION`], so a session can never move
/// between builds that would disagree about the `.nts` layout, and the
/// checksum makes the payload self-validating even though the carrying
/// wire frame is already checksummed (defense in depth: the payload may
/// be relayed, buffered or replayed by nodes that never decode it).
pub fn encode_session_wire(s: &SessionSnapshot) -> Vec<u8> {
    let payload = encode_session(s);
    let mut out = Vec::with_capacity(20 + payload.len());
    out.extend_from_slice(&SESSION_WIRE_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u32(&mut out, payload.len() as u32);
    let sum = fnv64(&payload);
    out.extend_from_slice(&payload);
    put_u64(&mut out, sum);
    out
}

/// Decodes and fully validates a [`encode_session_wire`] payload: magic,
/// version, declared length, checksum, then the complete per-session
/// validation of the `.nts` codec (configuration validity, table
/// geometry, history/RHS bounds).
///
/// # Errors
///
/// Any mismatch is a hard [`SnapshotError`]; a corrupted or
/// version-skewed payload can never half-install.
pub fn decode_session_wire(bytes: &[u8]) -> Result<SessionSnapshot, SnapshotError> {
    let mut c = Cursor::new(bytes);
    if c.take(4, "session wire magic")? != SESSION_WIRE_MAGIC {
        return Err(TraceFileError::BadMagic.into());
    }
    let version = c.u32("session wire version")?;
    if version != SNAPSHOT_VERSION {
        return Err(TraceFileError::BadVersion { found: version }.into());
    }
    let len = c.u32("session wire length")? as usize;
    let payload = c.take(len, "session wire payload")?;
    let sum = c.u64("session wire checksum")?;
    if c.remaining() != 0 {
        return Err(TraceFileError::TrailingBytes {
            extra: c.remaining(),
        }
        .into());
    }
    if fnv64(payload) != sum {
        return Err(malformed("session wire", "payload checksum mismatch".to_string()).into());
    }
    decode_session(payload)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn decode_config(c: &mut Cursor<'_>) -> Result<PredictorConfig, SnapshotError> {
    let index_bits = c.u32("config.index_bits")?;
    let depth = c.u32("config.dolc.depth")? as usize;
    let older = c.u32("config.dolc.older")?;
    let last = c.u32("config.dolc.last")?;
    let current = c.u32("config.dolc.current")?;
    let tag_bits = c.u32("config.tag_bits")?;
    let mut ctrs = [CounterSpec {
        bits: 0,
        inc: 0,
        dec: 0,
    }; 2];
    for spec in &mut ctrs {
        spec.bits = c.u8("config.counter.bits")?;
        spec.inc = c.u8("config.counter.inc")?;
        spec.dec = c.u8("config.counter.dec")?;
    }
    let secondary_index_bits = c.u32("config.secondary_index_bits")?;
    let rhs_depth = c.u32("config.rhs")?;
    let alternate = match c.u8("config.alternate")? {
        0 => false,
        1 => true,
        v => return Err(malformed("session", format!("alternate flag {v}")).into()),
    };
    let stored_target = match c.u8("config.stored_target")? {
        0 => StoredTarget::Full,
        1 => StoredTarget::Hashed,
        v => return Err(malformed("session", format!("stored_target {v}")).into()),
    };
    let cfg = PredictorConfig {
        index_bits,
        dolc: Dolc {
            depth,
            older,
            last,
            current,
        },
        tag_bits,
        primary_counter: ctrs[0],
        secondary_index_bits,
        secondary_counter: ctrs[1],
        rhs: (rhs_depth != 0).then_some(RhsConfig {
            max_depth: rhs_depth as usize,
        }),
        alternate,
        stored_target,
    };
    cfg.try_validate().map_err(SnapshotError::Config)?;
    Ok(cfg)
}

fn take_u16s(c: &mut Cursor<'_>, n: usize, what: &'static str) -> Result<Vec<u16>, TraceFileError> {
    let bytes = c.take(n * 2, what)?;
    Ok(bytes
        .chunks_exact(2)
        .map(|b| u16::from_le_bytes([b[0], b[1]]))
        .collect())
}

fn take_u64s(c: &mut Cursor<'_>, n: usize, what: &'static str) -> Result<Vec<u64>, TraceFileError> {
    let bytes = c.take(n * 8, what)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte chunk")))
        .collect())
}

fn decode_session(payload: &[u8]) -> Result<SessionSnapshot, SnapshotError> {
    let mut c = Cursor::new(payload);
    let session_id = c.u64("session id")?;
    let config = decode_config(&mut c)?;

    let mut stats = [0u64; PREDICTOR_STATS_FIELDS];
    for v in &mut stats {
        *v = c.u64("session stats")?;
    }

    let corr_n = c.u64("corr entry count")?;
    let corr_n = usize::try_from(corr_n)
        .ok()
        .filter(|&n| n == config.corr_entries())
        .ok_or_else(|| {
            malformed(
                "session",
                format!(
                    "corr table has {corr_n} entries, config requires {}",
                    config.corr_entries()
                ),
            )
        })?;
    let corr_words = corr_n.div_ceil(64);
    let corr_tags = take_u16s(&mut c, corr_n, "corr tags")?;
    let corr_ctrs = c.take(corr_n, "corr counters")?.to_vec();
    let corr_targets = take_u64s(&mut c, corr_n, "corr targets")?;
    let corr_alts = take_u64s(&mut c, corr_n, "corr alternates")?;
    let corr_valid = take_u64s(&mut c, corr_words, "corr valid bitmap")?;
    let corr_has_alt = take_u64s(&mut c, corr_words, "corr has-alt bitmap")?;

    let sec_n = c.u64("sec entry count")?;
    let sec_n = usize::try_from(sec_n)
        .ok()
        .filter(|&n| n == config.secondary_entries())
        .ok_or_else(|| {
            malformed(
                "session",
                format!(
                    "secondary table has {sec_n} entries, config requires {}",
                    config.secondary_entries()
                ),
            )
        })?;
    let sec_targets = take_u64s(&mut c, sec_n, "sec targets")?;
    let sec_ctrs = c.take(sec_n, "sec counters")?.to_vec();
    let sec_valid = take_u64s(&mut c, sec_n.div_ceil(64), "sec valid bitmap")?;

    let history_len = c.u32("history length")? as usize;
    if history_len > config.history_capacity() {
        return Err(malformed(
            "session",
            format!(
                "history of {history_len} ids exceeds capacity {}",
                config.history_capacity()
            ),
        )
        .into());
    }
    let history = take_u16s(&mut c, history_len, "history")?;

    let rhs_depth = c.u32("rhs depth")? as usize;
    let rhs_cap = config.rhs.map_or(0, |r| r.max_depth);
    if rhs_depth > rhs_cap {
        return Err(malformed(
            "session",
            format!("rhs depth {rhs_depth} exceeds configured {rhs_cap}"),
        )
        .into());
    }
    let mut rhs = Vec::with_capacity(rhs_depth);
    for _ in 0..rhs_depth {
        let len = c.u8("rhs entry length")? as usize;
        if len > ntp_core::RHS_SNAPSHOT_CAP {
            return Err(malformed("session", format!("rhs entry of {len} ids")).into());
        }
        rhs.push(take_u16s(&mut c, len, "rhs entry")?);
    }

    let mut aliasing = [0u64; 3];
    for v in &mut aliasing {
        *v = c.u64("aliasing counters")?;
    }
    if c.remaining() != 0 {
        return Err(malformed("session", format!("{} excess bytes", c.remaining())).into());
    }
    Ok(SessionSnapshot {
        session_id,
        config,
        stats: PredictorStats::from_array(stats),
        state: PredictorState {
            corr_tags,
            corr_ctrs,
            corr_targets,
            corr_alts,
            corr_valid,
            corr_has_alt,
            sec_targets,
            sec_ctrs,
            sec_valid,
            history,
            rhs,
            aliasing,
        },
    })
}

/// Decodes a complete in-memory `.nts` image, validating magic, version,
/// fingerprint, every section checksum, and each session's configuration
/// and geometry.
///
/// # Errors
///
/// Any validation failure (see [`SnapshotError`]). On error nothing is
/// returned — partial loads are impossible by construction. Note that the
/// decoded *state values* are additionally validated against the
/// configuration when applied ([`SessionSnapshot::instantiate`] /
/// [`SessionSnapshot::restore_into`]).
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotArtifact, SnapshotError> {
    let mut c = Cursor::new(bytes);
    if c.take(4, "magic")? != SNAPSHOT_MAGIC {
        return Err(TraceFileError::BadMagic.into());
    }
    let version = c.u32("snapshot version")?;
    if version != SNAPSHOT_VERSION {
        return Err(TraceFileError::BadVersion { found: version }.into());
    }
    let stored_hash = c.u64("fingerprint hash")?;
    let canon = decode_str(&mut c, "header", "fingerprint string")?;
    if fnv64(canon.as_bytes()) != stored_hash {
        return Err(TraceFileError::CorruptHeader.into());
    }
    let count = c.u32("session count")? as usize;
    let mut sessions = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        sessions.push(decode_session(section(&mut c, b"SESS", "session")?)?);
    }
    if c.remaining() != 0 {
        return Err(TraceFileError::TrailingBytes {
            extra: c.remaining(),
        }
        .into());
    }
    // The header fingerprint must agree with what the sessions actually
    // contain (it was hashed-checked above, so this catches a header that
    // was transplanted onto a different body).
    let recomputed = snapshot_canon(&sessions);
    if recomputed != canon {
        return Err(TraceFileError::FingerprintMismatch {
            expected: recomputed,
            found: canon,
        }
        .into());
    }
    Ok(SnapshotArtifact { sessions })
}

/// Reads and validates one `.nts` file, returning the artifact and the
/// file size in bytes.
///
/// # Errors
///
/// I/O failures plus every validation error of [`decode_snapshot`].
pub fn read_snapshot_file(path: &Path) -> Result<(SnapshotArtifact, u64), SnapshotError> {
    let bytes = std::fs::read(path).map_err(TraceFileError::Io)?;
    let artifact = decode_snapshot(&bytes)?;
    Ok((artifact, bytes.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_core::{evaluate, TracePredictor};
    use ntp_trace::{TraceId, TraceRecord};

    fn stream(seed: u64, len: usize) -> Vec<TraceRecord> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = (s >> 33) as u32;
                let calls = (r & 3) as u8 % 3;
                let ret = r & 4 != 0;
                TraceRecord::new(
                    TraceId::new(0x0040_0000 + (r % 151) * 0x40, (r >> 8) as u8 & 0b11, 2),
                    8,
                    calls,
                    ret,
                    ret,
                )
            })
            .collect()
    }

    fn trained(cfg: PredictorConfig, seed: u64) -> (NextTracePredictor, PredictorStats) {
        let mut p = NextTracePredictor::new(cfg);
        let stats = evaluate(&mut p, &stream(seed, 600));
        (p, stats)
    }

    fn sample() -> SnapshotArtifact {
        let (p0, s0) = trained(PredictorConfig::paper(12, 3), 0xA5);
        let (p1, s1) = trained(
            PredictorConfig {
                alternate: true,
                stored_target: StoredTarget::Hashed,
                ..PredictorConfig::paper(12, 1)
            },
            0xB7,
        );
        SnapshotArtifact {
            sessions: vec![
                SessionSnapshot::capture(7, &p0, &s0),
                SessionSnapshot::capture(3, &p1, &s1),
            ],
        }
    }

    #[test]
    fn round_trips_exactly_and_sorts_sessions() {
        let a = sample();
        let bytes = encode_snapshot(&a);
        let back = decode_snapshot(&bytes).expect("valid image decodes");
        assert_eq!(back.sessions.len(), 2);
        assert_eq!(back.sessions[0].session_id, 3, "sorted by session id");
        assert_eq!(back.sessions[1], a.sessions[0]);
        assert_eq!(back.sessions[0], a.sessions[1]);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = sample();
        assert_eq!(encode_snapshot(&a), encode_snapshot(&a));
    }

    #[test]
    fn instantiated_session_continues_identically() {
        let cfg = PredictorConfig::paper(12, 3);
        let (mut p, stats) = trained(cfg, 0xC3);
        let snap = SessionSnapshot::capture(0, &p, &stats);
        let bytes = encode_snapshot(&SnapshotArtifact {
            sessions: vec![snap],
        });
        let back = decode_snapshot(&bytes).unwrap();
        let mut q = back.sessions[0].instantiate().expect("state applies");
        assert_eq!(back.sessions[0].stats, stats);
        for r in stream(0xD9, 300) {
            assert_eq!(q.predict(), p.predict());
            p.update(&r);
            q.update(&r);
        }
        assert_eq!(q.aliasing(), p.aliasing());
    }

    #[test]
    fn restore_into_refuses_config_mismatch() {
        let (p, stats) = trained(PredictorConfig::paper(12, 3), 0xE1);
        let snap = SessionSnapshot::capture(0, &p, &stats);
        let mut other = NextTracePredictor::new(PredictorConfig::paper(12, 2));
        let before = other.save_state();
        let err = snap.restore_into(&mut other).unwrap_err();
        assert!(matches!(err, SnapshotError::ConfigMismatch { .. }), "{err}");
        assert_eq!(other.save_state(), before, "refusal leaves it untouched");
    }

    #[test]
    fn rejects_version_skew_and_bad_magic() {
        let bytes = encode_snapshot(&sample());
        let mut skewed = bytes.clone();
        skewed[4] ^= 1;
        assert!(matches!(
            decode_snapshot(&skewed),
            Err(SnapshotError::File(TraceFileError::BadVersion { .. }))
        ));
        let mut magicless = bytes;
        magicless[0] ^= 0xFF;
        assert!(matches!(
            decode_snapshot(&magicless),
            Err(SnapshotError::File(TraceFileError::BadMagic))
        ));
    }

    #[test]
    fn rejects_trailing_bytes_and_truncation() {
        let mut bytes = encode_snapshot(&sample());
        let truncated = &bytes[..bytes.len() - 3];
        assert!(decode_snapshot(truncated).is_err());
        bytes.push(0);
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::File(TraceFileError::TrailingBytes {
                extra: 1
            }))
        ));
    }

    #[test]
    fn config_canon_covers_every_field() {
        let base = PredictorConfig::paper(12, 3);
        let canon = config_canon(&base);
        let variants = [
            PredictorConfig {
                index_bits: 15,
                dolc: Dolc::standard(3, 15),
                ..base
            },
            PredictorConfig {
                tag_bits: 8,
                ..base
            },
            PredictorConfig {
                primary_counter: CounterSpec::TWO_BIT,
                ..base
            },
            PredictorConfig {
                secondary_index_bits: 8,
                ..base
            },
            PredictorConfig {
                secondary_counter: CounterSpec::TWO_BIT,
                ..base
            },
            PredictorConfig { rhs: None, ..base },
            PredictorConfig {
                rhs: Some(RhsConfig { max_depth: 4 }),
                ..base
            },
            PredictorConfig {
                alternate: true,
                ..base
            },
            PredictorConfig {
                stored_target: StoredTarget::Hashed,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(
                config_canon(&v),
                canon,
                "canon must change when {v:?} differs"
            );
        }
    }

    #[test]
    fn session_wire_round_trips_and_rejects_corruption() {
        let (p, stats) = trained(PredictorConfig::paper(12, 3), 0xF2);
        let snap = SessionSnapshot::capture(9, &p, &stats);
        let bytes = encode_session_wire(&snap);
        let back = decode_session_wire(&bytes).expect("clean payload decodes");
        assert_eq!(back, snap);
        assert_eq!(bytes, encode_session_wire(&snap), "deterministic");

        // Every single-bit flip anywhere in the image is refused: magic,
        // version and length flips fail their own checks, payload flips
        // fail the checksum (or a downstream validation), checksum flips
        // fail against the intact payload.
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1;
            assert!(
                decode_session_wire(&corrupt).is_err(),
                "flip at byte {byte} must be refused"
            );
        }
        // Truncation at any point is refused.
        for cut in 0..bytes.len() {
            assert!(decode_session_wire(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing bytes are refused.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            decode_session_wire(&long),
            Err(SnapshotError::File(TraceFileError::TrailingBytes { .. }))
        ));
        // Version skew is refused before the payload is touched.
        let mut skewed = bytes;
        skewed[4] ^= 0x40;
        assert!(matches!(
            decode_session_wire(&skewed),
            Err(SnapshotError::File(TraceFileError::BadVersion { .. }))
        ));
    }

    #[test]
    fn session_wire_instantiates_in_lockstep() {
        let cfg = PredictorConfig::paper(12, 2);
        let (mut p, stats) = trained(cfg, 0x1234);
        let snap = SessionSnapshot::capture(5, &p, &stats);
        let back = decode_session_wire(&encode_session_wire(&snap)).unwrap();
        assert_eq!(back.stats, stats);
        let mut q = back.instantiate().expect("state applies");
        for r in stream(0x5678, 200) {
            assert_eq!(q.predict(), p.predict());
            p.update(&r);
            q.update(&r);
        }
    }

    #[test]
    fn file_round_trip_is_atomic_and_validating() {
        let dir = std::env::temp_dir().join(format!("nts-fmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard0.nts");
        let a = sample();
        let written = write_snapshot_file(&path, &a).expect("write succeeds");
        let (back, read) = read_snapshot_file(&path).expect("read succeeds");
        assert_eq!(written, read);
        assert_eq!(back.sessions.len(), a.sessions.len());
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path() != path)
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
