//! Cache-key fingerprints: everything that determines a capture pass's
//! output, folded into one canonical string + hash.
//!
//! A cached artifact may only be loaded when the *entire* capture
//! configuration matches: the workload (name, analog, and the assembled
//! program image — which subsumes the scale preset, since scaling changes
//! the program), the instruction budget, the trace-selection policy, and
//! the on-disk format version. Any mismatch is a hard miss: the reader
//! refuses the file and the caller re-captures. A stale cache must never
//! mis-load.

use ntp_hash::{fnv64, Fnv64};
use ntp_trace::TraceConfig;

/// The canonical identity of one capture configuration.
///
/// # Examples
///
/// ```
/// use ntp_tracefile::Fingerprint;
/// use ntp_trace::TraceConfig;
/// let a = Fingerprint::new("compress", "compress", 1_000, &TraceConfig::default(), b"img");
/// let b = Fingerprint::new("compress", "compress", 2_000, &TraceConfig::default(), b"img");
/// assert_ne!(a.hash(), b.hash(), "budget is part of the key");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    canon: String,
    hash: u64,
}

impl Fingerprint {
    /// Builds the fingerprint of one capture configuration.
    ///
    /// `program_image` is the workload's assembled binary image; hashing it
    /// (rather than naming a scale preset) means *any* change to workload
    /// generation — scale, rounds, code edits — invalidates the cache.
    pub fn new(
        name: &str,
        analog: &str,
        budget: u64,
        cfg: &TraceConfig,
        program_image: &[u8],
    ) -> Fingerprint {
        let mut img = Fnv64::new();
        img.update(program_image);
        let canon = format!(
            "ntc-v{};name={name};analog={analog};budget={budget};\
             trace=len:{},br:{},calls:{},backedges:{};\
             program={:016x}/{}B",
            crate::format::FORMAT_VERSION,
            cfg.max_len,
            cfg.max_branches,
            cfg.stop_at_calls,
            cfg.stop_at_loop_back_edges,
            img.finish(),
            program_image.len(),
        );
        let hash = fnv64(canon.as_bytes());
        Fingerprint { canon, hash }
    }

    /// The canonical string (stored verbatim in the file header so `ntp
    /// capture --verify` can explain a mismatch).
    pub fn canon(&self) -> &str {
        &self.canon
    }

    /// FNV-1a 64 of the canonical string.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The cache file name this configuration maps to:
    /// `<name>-<hash:016x>.ntc`. Distinct configurations get distinct
    /// files, so parallel capture workers never contend on one file.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .canon
            .split(';')
            .find_map(|kv| kv.strip_prefix("name="))
            .unwrap_or("capture")
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("{safe}-{:016x}.ntc", self.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Fingerprint {
        Fingerprint::new("cc", "gcc", 500, &TraceConfig::default(), b"\x01\x02\x03")
    }

    #[test]
    fn every_input_perturbs_the_hash() {
        let b = base();
        let variants = [
            Fingerprint::new("go", "gcc", 500, &TraceConfig::default(), b"\x01\x02\x03"),
            Fingerprint::new("cc", "go", 500, &TraceConfig::default(), b"\x01\x02\x03"),
            Fingerprint::new("cc", "gcc", 501, &TraceConfig::default(), b"\x01\x02\x03"),
            Fingerprint::new(
                "cc",
                "gcc",
                500,
                &TraceConfig::with_max_len(8),
                b"\x01\x02\x03",
            ),
            Fingerprint::new(
                "cc",
                "gcc",
                500,
                &TraceConfig {
                    stop_at_calls: true,
                    ..TraceConfig::default()
                },
                b"\x01\x02\x03",
            ),
            Fingerprint::new("cc", "gcc", 500, &TraceConfig::default(), b"\x01\x02\x04"),
        ];
        for v in variants {
            assert_ne!(v.hash(), b.hash(), "{}", v.canon());
        }
    }

    #[test]
    fn same_inputs_same_fingerprint() {
        assert_eq!(base(), base());
    }

    #[test]
    fn file_name_is_sanitized_and_keyed() {
        let fp = Fingerprint::new("we ird/name", "x", 1, &TraceConfig::default(), b"");
        let n = fp.file_name();
        assert!(n.starts_with("we_ird_name-"), "{n}");
        assert!(n.ends_with(".ntc"));
        assert!(n.contains(&format!("{:016x}", fp.hash())));
    }
}
