//! The `.ntc` binary format: a validating codec for one captured
//! benchmark.
//!
//! ```text
//! header   magic "NTPC" | format version u32 | fingerprint hash u64
//!          | fingerprint length u32 | fingerprint string (UTF-8)
//! sections 8 fixed-order sections, each:
//!          tag [u8;4] | payload length u64 | payload
//!          | FNV-1a 64 checksum over (tag ‖ length ‖ payload)
//! trailer  end of file, exactly (trailing bytes are an error)
//! ```
//!
//! All integers are little-endian. The reader is *validating*: magic,
//! version, fingerprint (hash **and** canonical string), every section
//! checksum, every length field, and every decoded value range are
//! checked, and any mismatch is a hard [`TraceFileError`] — a stale or
//! corrupt cache must fall back to re-capture, never mis-load. Single-bit
//! flips anywhere in the file are caught (see
//! `tests/codec_props.rs`).

use crate::Fingerprint;
use ntp_baselines::{MultiBranchStats, SequentialStats};
use ntp_hash::{fnv64, Fnv64};
use ntp_trace::{
    ControlMix, RedundancyRaw, TraceId, TraceRecord, TraceStatsRaw, MAX_TRACE_BRANCHES,
    MAX_TRACE_LEN,
};
use std::io::Write;
use std::path::Path;

/// File magic: the first four bytes of every `.ntc` file.
pub const MAGIC: [u8; 4] = *b"NTPC";

/// On-disk format version. Bump on any layout change; readers reject
/// every other version (the fingerprint also folds this in, so a bump
/// changes file names too and old files are simply ignored).
pub const FORMAT_VERSION: u32 = 1;

/// Fixed section order of the format (tag, human name).
const SECTIONS: [(&[u8; 4], &str); 8] = [
    (b"META", "meta"),
    (b"RECS", "records"),
    (b"TSTA", "trace_stats"),
    (b"REDN", "redundancy"),
    (b"SEQS", "sequential"),
    (b"MBST", "multibranch"),
    (b"GAGS", "gag"),
    (b"CMIX", "mix"),
];

/// Everything one functional-simulation capture pass learns about a
/// benchmark — the persisted form. These summaries are computed
/// per-step/per-trace *during* simulation and cannot be reconstructed
/// from the record stream alone, so the cache stores them alongside it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CaptureArtifact {
    /// Benchmark name (the paper's naming).
    pub name: String,
    /// Which SpecInt95 benchmark it stands in for.
    pub analog_of: String,
    /// Instructions simulated.
    pub icount: u64,
    /// The packed 8-byte trace record stream.
    pub records: Vec<TraceRecord>,
    /// Trace-selection statistics (Table 1), plain-data form.
    pub trace_stats: TraceStatsRaw,
    /// Trace-cache duplication accounting, plain-data form.
    pub redundancy: RedundancyRaw,
    /// Idealized sequential baseline results (Table 2).
    pub seq_stats: SequentialStats,
    /// Single-access multiple-branch baseline results.
    pub mb_stats: MultiBranchStats,
    /// Multiported-GAg baseline results.
    pub gag_stats: MultiBranchStats,
    /// Dynamic instruction mix.
    pub mix: ControlMix,
}

/// Why a `.ntc` file was refused. Every variant is a *hard* error: the
/// caller must fall back to re-capturing, never partially load.
#[derive(Debug)]
pub enum TraceFileError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The file was written by a different format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file was captured under a different configuration.
    FingerprintMismatch {
        /// Fingerprint the current configuration expects.
        expected: String,
        /// Fingerprint stored in the file.
        found: String,
    },
    /// The stored fingerprint hash does not match the stored string
    /// (header corruption).
    CorruptHeader,
    /// The file ended before `what` could be read.
    Truncated {
        /// What the reader was decoding when bytes ran out.
        what: &'static str,
    },
    /// A section's stored checksum does not match its content.
    ChecksumMismatch {
        /// Section name.
        section: &'static str,
    },
    /// A section decoded into out-of-range values.
    Malformed {
        /// Section name.
        section: &'static str,
        /// What was wrong.
        what: String,
    },
    /// Bytes remain after the last section.
    TrailingBytes {
        /// How many.
        extra: usize,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "i/o error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a trace-cache file (bad magic)"),
            TraceFileError::BadVersion { found } => write!(
                f,
                "format version {found} (this build reads version {FORMAT_VERSION})"
            ),
            TraceFileError::FingerprintMismatch { expected, found } => write!(
                f,
                "configuration fingerprint mismatch: expected `{expected}`, file has `{found}`"
            ),
            TraceFileError::CorruptHeader => write!(f, "corrupt header (fingerprint hash)"),
            TraceFileError::Truncated { what } => write!(f, "truncated while reading {what}"),
            TraceFileError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section `{section}`")
            }
            TraceFileError::Malformed { section, what } => {
                write!(f, "malformed section `{section}`: {what}")
            }
            TraceFileError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last section")
            }
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> TraceFileError {
        TraceFileError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A streaming section writer: buffers one section's payload, then emits
/// `tag | len | payload | checksum` into the underlying sink. Only one
/// section is resident at a time, so the peak memory cost is the largest
/// section (the record stream), not the whole file.
pub(crate) struct SectionWriter<W: Write> {
    sink: W,
    pub(crate) bytes_written: u64,
}

impl<W: Write> SectionWriter<W> {
    pub(crate) fn new(sink: W) -> SectionWriter<W> {
        SectionWriter {
            sink,
            bytes_written: 0,
        }
    }

    pub(crate) fn raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.sink.write_all(bytes)?;
        self.bytes_written += bytes.len() as u64;
        Ok(())
    }

    pub(crate) fn section(&mut self, tag: &[u8; 4], payload: &[u8]) -> std::io::Result<()> {
        let len = (payload.len() as u64).to_le_bytes();
        let mut h = Fnv64::new();
        h.update(tag);
        h.update(&len);
        h.update(payload);
        self.raw(tag)?;
        self.raw(&len)?;
        self.raw(payload)?;
        self.raw(&h.finish().to_le_bytes())
    }
}

fn encode_meta(a: &CaptureArtifact) -> Vec<u8> {
    let mut p = Vec::with_capacity(32 + a.name.len() + a.analog_of.len());
    put_str(&mut p, &a.name);
    put_str(&mut p, &a.analog_of);
    put_u64(&mut p, a.icount);
    p
}

fn encode_records(records: &[TraceRecord]) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + records.len() * 8);
    put_u64(&mut p, records.len() as u64);
    for r in records {
        let id = r.id();
        p.extend_from_slice(&id.start_pc.to_le_bytes());
        p.push(id.branch_bits);
        p.push(id.branch_count);
        p.push(r.len);
        p.push(
            r.call_count()
                | (u8::from(r.ends_in_return()) << 3)
                | (u8::from(r.ends_in_indirect()) << 4),
        );
    }
    p
}

fn encode_trace_stats(s: &TraceStatsRaw) -> Vec<u8> {
    let mut p = Vec::with_capacity(56 + s.static_ids.len() * 8);
    put_u64(&mut p, s.traces);
    put_u64(&mut p, s.instrs);
    put_u64(&mut p, s.cond_branches);
    put_u64(&mut p, s.calls);
    put_u64(&mut p, s.returns);
    put_u64(&mut p, s.indirect);
    put_u64(&mut p, s.static_ids.len() as u64);
    for &id in &s.static_ids {
        put_u64(&mut p, id);
    }
    p
}

fn encode_redundancy(r: &RedundancyRaw) -> Vec<u8> {
    let mut p = Vec::with_capacity(24 + r.seen_traces.len() * 8 + r.copies.len() * 8);
    put_u64(&mut p, r.stored_instrs);
    put_u64(&mut p, r.seen_traces.len() as u64);
    for &id in &r.seen_traces {
        put_u64(&mut p, id);
    }
    put_u64(&mut p, r.copies.len() as u64);
    for &(pc, n) in &r.copies {
        put_u32(&mut p, pc);
        put_u32(&mut p, n);
    }
    p
}

fn encode_sequential(s: &SequentialStats) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    for v in [
        s.traces,
        s.trace_mispredicts,
        s.branches,
        s.branch_mispredicts,
        s.indirects,
        s.indirect_mispredicts,
        s.returns,
        s.return_mispredicts,
    ] {
        put_u64(&mut p, v);
    }
    p
}

fn encode_multibranch(s: &MultiBranchStats) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    for v in [
        s.traces,
        s.trace_mispredicts,
        s.branches,
        s.branch_mispredicts,
    ] {
        put_u64(&mut p, v);
    }
    p
}

fn encode_mix(m: &ControlMix) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    for v in [
        m.instrs,
        m.cond_branches,
        m.taken_branches,
        m.jumps,
        m.calls,
        m.indirect_jumps,
        m.indirect_calls,
        m.returns,
    ] {
        put_u64(&mut p, v);
    }
    p
}

/// Streams one artifact into `sink` under the given fingerprint,
/// returning the bytes written.
///
/// # Errors
///
/// Propagates sink I/O errors.
pub fn write_to<W: Write>(
    sink: W,
    fp: &Fingerprint,
    artifact: &CaptureArtifact,
) -> std::io::Result<u64> {
    let mut w = SectionWriter::new(sink);
    // Header.
    let mut header = Vec::with_capacity(20 + fp.canon().len());
    header.extend_from_slice(&MAGIC);
    put_u32(&mut header, FORMAT_VERSION);
    put_u64(&mut header, fp.hash());
    put_str(&mut header, fp.canon());
    w.raw(&header)?;
    // Sections, in the fixed order SECTIONS declares.
    w.section(b"META", &encode_meta(artifact))?;
    w.section(b"RECS", &encode_records(&artifact.records))?;
    w.section(b"TSTA", &encode_trace_stats(&artifact.trace_stats))?;
    w.section(b"REDN", &encode_redundancy(&artifact.redundancy))?;
    w.section(b"SEQS", &encode_sequential(&artifact.seq_stats))?;
    w.section(b"MBST", &encode_multibranch(&artifact.mb_stats))?;
    w.section(b"GAGS", &encode_multibranch(&artifact.gag_stats))?;
    w.section(b"CMIX", &encode_mix(&artifact.mix))?;
    Ok(w.bytes_written)
}

/// Encodes one artifact to an in-memory buffer (tests and the atomic
/// file writer).
pub fn encode(fp: &Fingerprint, artifact: &CaptureArtifact) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1024 + artifact.records.len() * 8);
    write_to(&mut buf, fp, artifact).expect("Vec sink cannot fail");
    buf
}

/// Atomically writes one artifact to `path`: the bytes land in a
/// same-directory temporary file first and are renamed into place, so a
/// concurrent reader sees either the old file or the complete new one,
/// never a torn write. Returns the bytes written.
///
/// # Errors
///
/// Propagates filesystem errors (the temporary file is cleaned up).
pub fn write_file(
    path: &Path,
    fp: &Fingerprint,
    artifact: &CaptureArtifact,
) -> std::io::Result<u64> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut writer = std::io::BufWriter::new(file);
        let n = write_to(&mut writer, fp, artifact)?;
        writer.flush()?;
        std::fs::rename(&tmp, path)?;
        Ok(n)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take(
        &mut self,
        n: usize,
        what: &'static str,
    ) -> Result<&'a [u8], TraceFileError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(TraceFileError::Truncated { what })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, TraceFileError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, TraceFileError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, TraceFileError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

pub(crate) fn malformed(section: &'static str, what: impl Into<String>) -> TraceFileError {
    TraceFileError::Malformed {
        section,
        what: what.into(),
    }
}

pub(crate) fn decode_str(
    c: &mut Cursor<'_>,
    section: &'static str,
    what: &'static str,
) -> Result<String, TraceFileError> {
    let len = c.u32(what)? as usize;
    let bytes = c.take(len, what)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| malformed(section, format!("{what}: not UTF-8")))
}

/// Reads one section's payload, verifying tag and checksum.
pub(crate) fn section<'a>(
    c: &mut Cursor<'a>,
    tag: &'static [u8; 4],
    name: &'static str,
) -> Result<&'a [u8], TraceFileError> {
    let found_tag = c.take(4, "section tag")?;
    if found_tag != tag {
        return Err(malformed(
            name,
            format!(
                "expected tag {:?}, found {:?}",
                String::from_utf8_lossy(tag),
                String::from_utf8_lossy(found_tag)
            ),
        ));
    }
    let len = c.u64("section length")?;
    let len_usize =
        usize::try_from(len).map_err(|_| malformed(name, format!("section length {len}")))?;
    if len_usize > c.remaining() {
        return Err(TraceFileError::Truncated { what: name });
    }
    let payload = c.take(len_usize, name)?;
    let stored = c.u64("section checksum")?;
    let mut h = Fnv64::new();
    h.update(tag);
    h.update(&len.to_le_bytes());
    h.update(payload);
    if h.finish() != stored {
        return Err(TraceFileError::ChecksumMismatch { section: name });
    }
    Ok(payload)
}

fn decode_meta(payload: &[u8]) -> Result<(String, String, u64), TraceFileError> {
    let mut c = Cursor::new(payload);
    let name = decode_str(&mut c, "meta", "benchmark name")?;
    let analog = decode_str(&mut c, "meta", "analog name")?;
    let icount = c.u64("icount")?;
    if c.remaining() != 0 {
        return Err(malformed("meta", format!("{} excess bytes", c.remaining())));
    }
    Ok((name, analog, icount))
}

fn decode_records(payload: &[u8]) -> Result<Vec<TraceRecord>, TraceFileError> {
    let mut c = Cursor::new(payload);
    let count = c.u64("record count")?;
    let count = usize::try_from(count).map_err(|_| malformed("records", "count overflow"))?;
    let expect = 8usize
        .checked_add(
            count
                .checked_mul(8)
                .ok_or(malformed("records", "count overflow"))?,
        )
        .ok_or(malformed("records", "count overflow"))?;
    if payload.len() != expect {
        return Err(malformed(
            "records",
            format!(
                "payload is {}B, count {count} needs {expect}B",
                payload.len()
            ),
        ));
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let start_pc = c.u32("record pc")?;
        let branch_bits = c.u8("record bits")?;
        let branch_count = c.u8("record branch count")?;
        let len = c.u8("record len")?;
        let flags = c.u8("record flags")?;
        if branch_count as usize > MAX_TRACE_BRANCHES {
            return Err(malformed("records", format!("branch_count {branch_count}")));
        }
        if branch_bits & !(((1u16 << branch_count) - 1) as u8) != 0 {
            return Err(malformed(
                "records",
                format!("branch bits {branch_bits:#b} exceed count {branch_count}"),
            ));
        }
        if !(1..=MAX_TRACE_LEN as u8).contains(&len) {
            return Err(malformed("records", format!("trace length {len}")));
        }
        if flags & 0b1110_0000 != 0 {
            return Err(malformed("records", format!("flag bits {flags:#010b}")));
        }
        records.push(TraceRecord::new(
            TraceId::new(start_pc, branch_bits, branch_count),
            len,
            flags & 0b111,
            flags & 0b1000 != 0,
            flags & 0b1_0000 != 0,
        ));
    }
    Ok(records)
}

fn decode_trace_stats(payload: &[u8]) -> Result<TraceStatsRaw, TraceFileError> {
    let mut c = Cursor::new(payload);
    let traces = c.u64("trace_stats.traces")?;
    let instrs = c.u64("trace_stats.instrs")?;
    let cond_branches = c.u64("trace_stats.cond_branches")?;
    let calls = c.u64("trace_stats.calls")?;
    let returns = c.u64("trace_stats.returns")?;
    let indirect = c.u64("trace_stats.indirect")?;
    let n = c.u64("trace_stats.static count")?;
    let n = usize::try_from(n).map_err(|_| malformed("trace_stats", "static count overflow"))?;
    if c.remaining() != n * 8 {
        return Err(malformed(
            "trace_stats",
            format!("static set needs {}B, {}B remain", n * 8, c.remaining()),
        ));
    }
    let mut static_ids = Vec::with_capacity(n);
    for _ in 0..n {
        static_ids.push(c.u64("trace_stats.static id")?);
    }
    if !static_ids.windows(2).all(|w| w[0] < w[1]) {
        return Err(malformed("trace_stats", "static ids not strictly sorted"));
    }
    Ok(TraceStatsRaw {
        traces,
        instrs,
        cond_branches,
        calls,
        returns,
        indirect,
        static_ids,
    })
}

fn decode_redundancy(payload: &[u8]) -> Result<RedundancyRaw, TraceFileError> {
    let mut c = Cursor::new(payload);
    let stored_instrs = c.u64("redundancy.stored_instrs")?;
    let n_seen = c.u64("redundancy.seen count")?;
    let n_seen =
        usize::try_from(n_seen).map_err(|_| malformed("redundancy", "seen count overflow"))?;
    let mut seen_traces = Vec::with_capacity(n_seen.min(c.remaining() / 8));
    for _ in 0..n_seen {
        seen_traces.push(c.u64("redundancy.seen id")?);
    }
    if !seen_traces.windows(2).all(|w| w[0] < w[1]) {
        return Err(malformed("redundancy", "seen ids not strictly sorted"));
    }
    let n_copies = c.u64("redundancy.copy count")?;
    let n_copies =
        usize::try_from(n_copies).map_err(|_| malformed("redundancy", "copy count overflow"))?;
    if c.remaining() != n_copies * 8 {
        return Err(malformed(
            "redundancy",
            format!(
                "copy map needs {}B, {}B remain",
                n_copies * 8,
                c.remaining()
            ),
        ));
    }
    let mut copies = Vec::with_capacity(n_copies);
    for _ in 0..n_copies {
        let pc = c.u32("redundancy.copy pc")?;
        let n = c.u32("redundancy.copy n")?;
        copies.push((pc, n));
    }
    if !copies.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(malformed("redundancy", "copy map not strictly sorted"));
    }
    Ok(RedundancyRaw {
        seen_traces,
        copies,
        stored_instrs,
    })
}

fn decode_u64s<const N: usize>(
    payload: &[u8],
    section_name: &'static str,
) -> Result<[u64; N], TraceFileError> {
    if payload.len() != N * 8 {
        return Err(malformed(
            section_name,
            format!("expected {}B, found {}B", N * 8, payload.len()),
        ));
    }
    let mut c = Cursor::new(payload);
    let mut out = [0u64; N];
    for v in &mut out {
        *v = c.u64(section_name)?;
    }
    Ok(out)
}

/// Decodes a complete in-memory `.ntc` image, validating it against the
/// expected fingerprint.
///
/// # Errors
///
/// Any header, fingerprint, checksum, length, or value-range mismatch
/// (see [`TraceFileError`]). On error nothing is returned — partial
/// loads are impossible by construction.
pub fn decode(bytes: &[u8], expected: &Fingerprint) -> Result<CaptureArtifact, TraceFileError> {
    let mut c = Cursor::new(bytes);
    // Header.
    if c.take(4, "magic")? != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let version = c.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(TraceFileError::BadVersion { found: version });
    }
    let stored_hash = c.u64("fingerprint hash")?;
    let canon = decode_str(&mut c, "header", "fingerprint string")?;
    if fnv64(canon.as_bytes()) != stored_hash {
        return Err(TraceFileError::CorruptHeader);
    }
    if canon != expected.canon() {
        return Err(TraceFileError::FingerprintMismatch {
            expected: expected.canon().to_string(),
            found: canon,
        });
    }
    // Sections, fixed order.
    let meta = section(&mut c, SECTIONS[0].0, SECTIONS[0].1)?;
    let (name, analog_of, icount) = decode_meta(meta)?;
    let records = decode_records(section(&mut c, SECTIONS[1].0, SECTIONS[1].1)?)?;
    let trace_stats = decode_trace_stats(section(&mut c, SECTIONS[2].0, SECTIONS[2].1)?)?;
    let redundancy = decode_redundancy(section(&mut c, SECTIONS[3].0, SECTIONS[3].1)?)?;
    let [traces, trace_mispredicts, branches, branch_mispredicts, indirects, indirect_mispredicts, returns, return_mispredicts] =
        decode_u64s::<8>(section(&mut c, SECTIONS[4].0, SECTIONS[4].1)?, "sequential")?;
    let seq_stats = SequentialStats {
        traces,
        trace_mispredicts,
        branches,
        branch_mispredicts,
        indirects,
        indirect_mispredicts,
        returns,
        return_mispredicts,
    };
    let mb = decode_u64s::<4>(
        section(&mut c, SECTIONS[5].0, SECTIONS[5].1)?,
        "multibranch",
    )?;
    let mb_stats = MultiBranchStats {
        traces: mb[0],
        trace_mispredicts: mb[1],
        branches: mb[2],
        branch_mispredicts: mb[3],
    };
    let gag = decode_u64s::<4>(section(&mut c, SECTIONS[6].0, SECTIONS[6].1)?, "gag")?;
    let gag_stats = MultiBranchStats {
        traces: gag[0],
        trace_mispredicts: gag[1],
        branches: gag[2],
        branch_mispredicts: gag[3],
    };
    let [instrs, cond_branches, taken_branches, jumps, calls, indirect_jumps, indirect_calls, mix_returns] =
        decode_u64s::<8>(section(&mut c, SECTIONS[7].0, SECTIONS[7].1)?, "mix")?;
    let mix = ControlMix {
        instrs,
        cond_branches,
        taken_branches,
        jumps,
        calls,
        indirect_jumps,
        indirect_calls,
        returns: mix_returns,
    };
    if c.remaining() != 0 {
        return Err(TraceFileError::TrailingBytes {
            extra: c.remaining(),
        });
    }
    Ok(CaptureArtifact {
        name,
        analog_of,
        icount,
        records,
        trace_stats,
        redundancy,
        seq_stats,
        mb_stats,
        gag_stats,
        mix,
    })
}

/// Reads and validates one `.ntc` file, returning the artifact and the
/// file size in bytes.
///
/// # Errors
///
/// I/o failures plus every validation error of [`decode`].
pub fn read_file(
    path: &Path,
    expected: &Fingerprint,
) -> Result<(CaptureArtifact, u64), TraceFileError> {
    let bytes = std::fs::read(path)?;
    let artifact = decode(&bytes, expected)?;
    Ok((artifact, bytes.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_trace::TraceConfig;

    fn fp() -> Fingerprint {
        Fingerprint::new("demo", "demo", 1000, &TraceConfig::default(), b"image")
    }

    fn sample() -> CaptureArtifact {
        CaptureArtifact {
            name: "demo".into(),
            analog_of: "demo".into(),
            icount: 1234,
            records: vec![
                TraceRecord::new(TraceId::new(0x40_0000, 0b101, 3), 16, 2, false, false),
                TraceRecord::new(TraceId::new(0x40_0040, 0, 0), 3, 0, true, true),
            ],
            trace_stats: TraceStatsRaw {
                traces: 2,
                instrs: 19,
                cond_branches: 3,
                calls: 2,
                returns: 1,
                indirect: 1,
                static_ids: vec![7, 9],
            },
            redundancy: RedundancyRaw {
                seen_traces: vec![7, 9],
                copies: vec![(0x40_0000, 1), (0x40_0004, 2)],
                stored_instrs: 19,
            },
            seq_stats: SequentialStats {
                traces: 2,
                trace_mispredicts: 1,
                branches: 3,
                branch_mispredicts: 1,
                indirects: 1,
                indirect_mispredicts: 0,
                returns: 1,
                return_mispredicts: 0,
            },
            mb_stats: MultiBranchStats {
                traces: 2,
                trace_mispredicts: 2,
                branches: 3,
                branch_mispredicts: 2,
            },
            gag_stats: MultiBranchStats {
                traces: 2,
                trace_mispredicts: 1,
                branches: 3,
                branch_mispredicts: 1,
            },
            mix: ControlMix {
                instrs: 1234,
                cond_branches: 3,
                taken_branches: 2,
                jumps: 1,
                calls: 2,
                indirect_jumps: 1,
                indirect_calls: 0,
                returns: 1,
            },
        }
    }

    #[test]
    fn round_trips_exactly() {
        let a = sample();
        let bytes = encode(&fp(), &a);
        let back = decode(&bytes, &fp()).expect("valid image decodes");
        assert_eq!(back, a);
    }

    #[test]
    fn rejects_version_skew() {
        let mut bytes = encode(&fp(), &sample());
        bytes[4] ^= 1; // format version lives at offset 4.
        assert!(matches!(
            decode(&bytes, &fp()),
            Err(TraceFileError::BadVersion { .. })
        ));
    }

    #[test]
    fn rejects_fingerprint_skew() {
        let bytes = encode(&fp(), &sample());
        let other = Fingerprint::new("demo", "demo", 2000, &TraceConfig::default(), b"image");
        assert!(matches!(
            decode(&bytes, &other),
            Err(TraceFileError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_magic_and_trailing_bytes() {
        let mut bytes = encode(&fp(), &sample());
        let mut flipped = bytes.clone();
        flipped[0] ^= 0xFF;
        assert!(matches!(
            decode(&flipped, &fp()),
            Err(TraceFileError::BadMagic)
        ));
        bytes.push(0);
        assert!(matches!(
            decode(&bytes, &fp()),
            Err(TraceFileError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn file_round_trip_is_atomic_and_validating() {
        let dir = std::env::temp_dir().join(format!("ntc-fmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(fp().file_name());
        let written = write_file(&path, &fp(), &sample()).expect("write succeeds");
        let (back, read) = read_file(&path, &fp()).expect("read succeeds");
        assert_eq!(written, read);
        assert_eq!(back, sample());
        // No temporary litter.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path() != path)
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
