//! Golden-output regression tests.
//!
//! Every workload is self-checking against its Rust reference, but both
//! sides live in this repository — a bug introduced symmetrically into the
//! assembly *and* the reference would go unnoticed and silently change
//! every number in EXPERIMENTS.md. These pinned values catch that: they
//! may only change deliberately, together with a regeneration of the
//! experiment results.

use ntp_workloads::{suite, ScalePreset};

#[test]
fn tiny_scale_outputs_are_pinned() {
    let golden: Vec<(&str, Vec<u32>)> = vec![
        ("compress", vec![3051646253, 3048607573, 1985]),
        ("cc", vec![1010092557, 1010092557, 865329741, 865329741]),
        ("go", vec![4075105351, 2033159648]),
        ("jpeg", vec![2858157744, 389189467, 1671184359, 3383516212]),
        ("m88ksim", vec![3402439468, 1682559891]),
        ("xlisp", vec![1302327919, 2262435294]),
    ];
    for (w, (name, expect)) in suite(ScalePreset::Tiny).iter().zip(&golden) {
        assert_eq!(w.name, *name);
        assert_eq!(
            &w.expected_output, expect,
            "{name}: reference output drifted — if intentional, update this \
             golden list AND regenerate EXPERIMENTS.md"
        );
        // And the machine still reproduces it.
        assert_eq!(&w.run_to_halt(50_000_000), expect, "{name}: machine output");
    }
}
