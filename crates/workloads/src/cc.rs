//! `cc` — recursive-descent expression compiler (analog of SpecInt95
//! *gcc*).
//!
//! Character preserved: parser-style code with many distinct control paths,
//! deep call chains and recursion through `( … )` nesting, giving a large
//! static-trace working set the way gcc does. Like gcc, it has two phases
//! per statement: the parser *emits postfix bytecode* while it evaluates,
//! and a stack-machine interpreter then executes the bytecode — the two
//! results must agree (the emitted `out` stream carries both checksums, so
//! a codegen bug is self-detected).
//!
//! Grammar over a byte stream (NUL-terminated):
//!
//! ```text
//! program := (var '=' expr ';')*
//! expr    := term (('+'|'-') term)*
//! term    := factor ('*' factor)*
//! factor  := number | var | '(' expr ')' | '-' factor
//! ```

use crate::util::{bytes_directive, Lcg};
use crate::Workload;
use ntp_isa::asm::assemble;

/// Generates a random program in the expression language.
fn make_input(statements: usize, seed: u32) -> Vec<u8> {
    let mut lcg = Lcg::new(seed);
    let mut out = Vec::new();
    for s in 0..statements {
        let var = b'a' + (s % 26) as u8;
        out.push(var);
        out.push(b'=');
        gen_expr(&mut lcg, &mut out, 0);
        out.push(b';');
    }
    out.push(0);
    out
}

fn gen_expr(lcg: &mut Lcg, out: &mut Vec<u8>, depth: u32) {
    gen_term(lcg, out, depth);
    let extra = lcg.below(3);
    for _ in 0..extra {
        out.push(if lcg.below(2) == 0 { b'+' } else { b'-' });
        gen_term(lcg, out, depth);
    }
}

fn gen_term(lcg: &mut Lcg, out: &mut Vec<u8>, depth: u32) {
    gen_factor(lcg, out, depth);
    if lcg.below(3) == 0 {
        out.push(b'*');
        gen_factor(lcg, out, depth);
    }
}

fn gen_factor(lcg: &mut Lcg, out: &mut Vec<u8>, depth: u32) {
    // Sub-critical branching: ~30% of factors recurse into a
    // parenthesized expression, so statements stay a few dozen bytes.
    let choice = lcg.below(if depth >= 8 { 6 } else { 10 });
    match choice {
        0..=2 => {
            // number: 1-4 digits
            let digits = 1 + lcg.below(4);
            for k in 0..digits {
                let lo = if k == 0 { 1 } else { 0 };
                out.push(b'0' + (lo + lcg.below(10 - lo)) as u8);
            }
        }
        3..=5 => out.push(b'a' + lcg.below(26) as u8),
        6 => {
            out.push(b'-');
            gen_factor(lcg, out, depth + 1);
        }
        _ => {
            out.push(b'(');
            gen_expr(lcg, out, depth + 1);
            out.push(b')');
        }
    }
}

// Bytecode ops emitted by the parser, executed by the stack VM.
const OP_PUSH: u32 = 1;
const OP_LOAD: u32 = 2;
const OP_NEG: u32 = 3;
const OP_MUL: u32 = 4;
const OP_ADD: u32 = 5;
const OP_SUB: u32 = 6;

/// Reference interpreter, mirroring the TRISC parser exactly, including
/// the bytecode it emits.
struct Ref<'a> {
    input: &'a [u8],
    pos: usize,
    vars: [u32; 26],
    ops: Vec<(u32, u32)>,
}

impl Ref<'_> {
    fn run_vm(&self) -> u32 {
        let mut stack: Vec<u32> = Vec::new();
        for &(op, val) in &self.ops {
            match op {
                OP_PUSH => stack.push(val),
                OP_LOAD => stack.push(self.vars[val as usize]),
                OP_NEG => {
                    let a = stack.pop().expect("neg operand");
                    stack.push(a.wrapping_neg());
                }
                OP_MUL => {
                    let b = stack.pop().expect("mul rhs");
                    let a = stack.pop().expect("mul lhs");
                    stack.push(a.wrapping_mul(b));
                }
                OP_ADD => {
                    let b = stack.pop().expect("add rhs");
                    let a = stack.pop().expect("add lhs");
                    stack.push(a.wrapping_add(b));
                }
                OP_SUB => {
                    let b = stack.pop().expect("sub rhs");
                    let a = stack.pop().expect("sub lhs");
                    stack.push(a.wrapping_sub(b));
                }
                _ => unreachable!(),
            }
        }
        assert_eq!(stack.len(), 1, "bytecode leaves one value");
        stack[0]
    }
}

impl Ref<'_> {
    fn cur(&self) -> u8 {
        self.input[self.pos]
    }

    fn expr(&mut self) -> u32 {
        let mut acc = self.term();
        loop {
            match self.cur() {
                b'+' => {
                    self.pos += 1;
                    acc = acc.wrapping_add(self.term());
                    self.ops.push((OP_ADD, 0));
                }
                b'-' => {
                    self.pos += 1;
                    acc = acc.wrapping_sub(self.term());
                    self.ops.push((OP_SUB, 0));
                }
                _ => return acc,
            }
        }
    }

    fn term(&mut self) -> u32 {
        let mut acc = self.factor();
        while self.cur() == b'*' {
            self.pos += 1;
            acc = acc.wrapping_mul(self.factor());
            self.ops.push((OP_MUL, 0));
        }
        acc
    }

    fn factor(&mut self) -> u32 {
        match self.cur() {
            b'(' => {
                self.pos += 1;
                let v = self.expr();
                self.pos += 1; // ')'
                v
            }
            b'-' => {
                self.pos += 1;
                let v = self.factor().wrapping_neg();
                self.ops.push((OP_NEG, 0));
                v
            }
            c if c >= b'a' => {
                self.pos += 1;
                self.ops.push((OP_LOAD, (c - b'a') as u32));
                self.vars[(c - b'a') as usize]
            }
            _ => {
                let mut v: u32 = 0;
                while self.cur().is_ascii_digit() {
                    v = v.wrapping_mul(10).wrapping_add((self.cur() - b'0') as u32);
                    self.pos += 1;
                }
                self.ops.push((OP_PUSH, v));
                v
            }
        }
    }
}

fn reference(input: &[u8], rounds: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut r = Ref {
        input,
        pos: 0,
        vars: [0; 26],
        ops: Vec::new(),
    };
    let mut checksum: u32 = 0;
    let mut vm_checksum: u32 = 0;
    for _ in 0..rounds {
        r.pos = 0;
        while r.cur() != 0 {
            let var = (r.cur() - b'a') as usize;
            r.pos += 2; // var '='
            r.ops.clear();
            let v = r.expr();
            // The VM executes the emitted bytecode against the *pre-store*
            // variable state, so it must reproduce the parser's value.
            let vm = r.run_vm();
            debug_assert_eq!(vm, v, "codegen faithful");
            vm_checksum = vm_checksum.wrapping_mul(31).wrapping_add(vm);
            r.vars[var] = v;
            checksum = checksum.wrapping_mul(31).wrapping_add(v);
            r.pos += 1; // ';'
        }
        out.push(checksum);
        out.push(vm_checksum);
    }
    out
}

/// Builds the workload; `rounds` scales run length (~350K instructions per
/// round).
pub fn build(rounds: u32) -> Workload {
    assert!(rounds >= 1);
    let input = make_input(600, 0xDEAD_0042);
    let src = format!(
        "
; cc — recursive-descent expression compiler + bytecode VM verifier
main:   la   s1, vars
        la   a1, vstack
        li   s2, 0              ; parser checksum (cumulative)
        li   s6, 0              ; VM checksum (cumulative)
        li   s7, {rounds}
round:  la   s0, input
stmt:   lbu  t0, 0(s0)
        beqz t0, round_end
        addi s5, t0, -97        ; var index
        addi s0, s0, 2          ; skip var, '='
        ; reset bytecode buffer
        la   t8, opbuf
        la   t9, opptr
        sw   t8, 0(t9)
        jal  parse_expr
        ; ---- execute emitted bytecode on the stack machine ----
        la   t8, opbuf
        la   t9, opptr
        lw   t9, 0(t9)
        li   t1, 0              ; stack depth
vm_loop:
        bgeu t8, t9, vm_done
        lw   t2, 0(t8)          ; op
        lw   t3, 4(t8)          ; operand
        addi t8, t8, 8
        li   t4, 1
        beq  t2, t4, vm_push
        li   t4, 2
        beq  t2, t4, vm_load
        li   t4, 3
        beq  t2, t4, vm_neg
        li   t4, 4
        beq  t2, t4, vm_mul
        li   t4, 5
        beq  t2, t4, vm_add
        ; fall through: subtract
        addi t1, t1, -1
        sll  t4, t1, 2
        add  t4, a1, t4
        lw   t2, 0(t4)          ; rhs
        addi t4, t4, -4
        lw   t0, 0(t4)
        sub  t0, t0, t2
        sw   t0, 0(t4)
        j    vm_loop
vm_add: addi t1, t1, -1
        sll  t4, t1, 2
        add  t4, a1, t4
        lw   t2, 0(t4)
        addi t4, t4, -4
        lw   t0, 0(t4)
        add  t0, t0, t2
        sw   t0, 0(t4)
        j    vm_loop
vm_mul: addi t1, t1, -1
        sll  t4, t1, 2
        add  t4, a1, t4
        lw   t2, 0(t4)
        addi t4, t4, -4
        lw   t0, 0(t4)
        mul  t0, t0, t2
        sw   t0, 0(t4)
        j    vm_loop
vm_neg: sll  t4, t1, 2
        add  t4, a1, t4
        addi t4, t4, -4
        lw   t0, 0(t4)
        neg  t0, t0
        sw   t0, 0(t4)
        j    vm_loop
vm_load:
        sll  t4, t3, 2
        add  t4, s1, t4
        lw   t3, 0(t4)
vm_push:
        sll  t4, t1, 2
        add  t4, a1, t4
        sw   t3, 0(t4)
        addi t1, t1, 1
        j    vm_loop
vm_done:
        lw   t2, 0(a1)          ; VM result = stack bottom
        li   t3, 31
        mul  s6, s6, t3
        add  s6, s6, t2
        ; ---- commit parser result ----
        sll  t2, s5, 2
        add  t2, s1, t2
        sw   v0, 0(t2)
        li   t3, 31
        mul  s2, s2, t3
        add  s2, s2, v0
        addi s0, s0, 1          ; skip ';'
        j    stmt
round_end:
        out  s2
        out  s6
        addi s7, s7, -1
        bnez s7, round
        halt

; ---- emit(a2 = op, a3 = operand): append to the bytecode buffer ----
emit:   la   t8, opptr
        lw   t9, 0(t8)
        sw   a2, 0(t9)
        sw   a3, 4(t9)
        addi t9, t9, 8
        sw   t9, 0(t8)
        ret

; ---- expr := term (('+'|'-') term)* ; result in v0, uses s4 ----
parse_expr:
        addi sp, sp, -12
        sw   ra, 8(sp)
        sw   s4, 4(sp)
        jal  parse_term
        move s4, v0
pe_loop:
        lbu  t0, 0(s0)
        li   t1, 43             ; '+'
        beq  t0, t1, pe_add
        li   t1, 45             ; '-'
        beq  t0, t1, pe_sub
        move v0, s4
        lw   s4, 4(sp)
        lw   ra, 8(sp)
        addi sp, sp, 12
        ret
pe_add: addi s0, s0, 1
        jal  parse_term
        add  s4, s4, v0
        li   a2, 5              ; OP_ADD
        li   a3, 0
        jal  emit
        j    pe_loop
pe_sub: addi s0, s0, 1
        jal  parse_term
        sub  s4, s4, v0
        li   a2, 6              ; OP_SUB
        li   a3, 0
        jal  emit
        j    pe_loop

; ---- term := factor ('*' factor)* ; result in v0, uses s3 ----
parse_term:
        addi sp, sp, -12
        sw   ra, 8(sp)
        sw   s3, 4(sp)
        jal  parse_factor
        move s3, v0
ptm_loop:
        lbu  t0, 0(s0)
        li   t1, 42             ; '*'
        bne  t0, t1, ptm_done
        addi s0, s0, 1
        jal  parse_factor
        mul  s3, s3, v0
        li   a2, 4              ; OP_MUL
        li   a3, 0
        jal  emit
        j    ptm_loop
ptm_done:
        move v0, s3
        lw   s3, 4(sp)
        lw   ra, 8(sp)
        addi sp, sp, 12
        ret

; ---- factor := number | var | '(' expr ')' | '-' factor ----
parse_factor:
        addi sp, sp, -8
        sw   ra, 4(sp)
        lbu  t0, 0(s0)
        li   t1, 40             ; '('
        bne  t0, t1, pf_notparen
        addi s0, s0, 1
        jal  parse_expr
        addi s0, s0, 1          ; skip ')'
        j    pf_done
pf_notparen:
        li   t1, 45             ; '-'
        bne  t0, t1, pf_notneg
        addi s0, s0, 1
        jal  parse_factor
        neg  v0, v0
        li   a2, 3              ; OP_NEG
        li   a3, 0
        jal  emit
        j    pf_done
pf_notneg:
        li   t1, 97             ; 'a'
        bltu t0, t1, pf_num
        addi t2, t0, -97
        sll  t2, t2, 2
        add  t2, s1, t2
        lw   v0, 0(t2)
        addi s0, s0, 1
        li   a2, 2              ; OP_LOAD
        addi a3, t0, -97
        jal  emit
        j    pf_done
pf_num: li   v0, 0
pf_numloop:
        lbu  t0, 0(s0)
        li   t1, 48             ; '0'
        bltu t0, t1, pf_numdone
        li   t1, 57             ; '9'
        bgtu t0, t1, pf_numdone
        li   t3, 10
        mul  v0, v0, t3
        addi t4, t0, -48
        add  v0, v0, t4
        addi s0, s0, 1
        j    pf_numloop
pf_numdone:
        li   a2, 1              ; OP_PUSH
        move a3, v0
        jal  emit
pf_done:
        lw   ra, 4(sp)
        addi sp, sp, 8
        ret
        .data
vars:   .space 104
opptr:  .word 0
        .align 2
opbuf:  .space 8192
vstack: .space 512
input:
{input_bytes}
",
        input_bytes = bytes_directive(&input),
    );
    let program = assemble(&src).expect("cc workload assembles");
    Workload {
        name: "cc",
        analog_of: "SpecInt95 gcc (input: 600 generated expression statements)",
        description: "recursive-descent parser emitting bytecode, verified by a stack VM",
        program,
        expected_output: reference(&input, rounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_small() {
        let w = build(2);
        let out = w.run_to_halt(20_000_000);
        assert_eq!(out, w.expected_output);
    }

    #[test]
    fn rounds_accumulate_different_checksums() {
        let w = build(3);
        let out = w.run_to_halt(30_000_000);
        // Two checksums per round (parser, VM) — and they must agree.
        assert_eq!(out.len(), 6);
        for round in out.chunks(2) {
            assert_eq!(round[0], round[1], "VM reproduces the parser");
        }
        assert_ne!(out[0], out[2]);
        assert_ne!(out[2], out[4]);
    }

    #[test]
    fn reference_parses_known_expression() {
        let input = b"a=2+3*4;b=(a-1)*-2;\0";
        let out = reference(input, 1);
        // a = 14; b = 13 * -2 = -26. checksum = (14*31) + (-26 as u32)
        let expect = 14u32.wrapping_mul(31).wrapping_add((-26i32) as u32);
        assert_eq!(out, vec![expect, expect]);
    }
}
