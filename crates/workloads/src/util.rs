//! Shared helpers: deterministic input generation and data-section
//! formatting.

/// The 32-bit linear congruential generator used both by workload host code
/// (in Rust, to generate embedded inputs) and inside several TRISC programs
/// (mirrored instruction-for-instruction).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Lcg {
    state: u32,
}

/// LCG multiplier (Numerical Recipes).
pub const LCG_MUL: u32 = 1664525;
/// LCG increment (Numerical Recipes).
pub const LCG_ADD: u32 = 1013904223;

impl Lcg {
    /// Seeds the generator.
    pub fn new(seed: u32) -> Lcg {
        Lcg { state: seed }
    }

    /// Advances and returns the full 32-bit state.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
        self.state
    }

    /// A value in `0..bound` (bound must be nonzero). Uses the high bits,
    /// which have the longest period.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0);
        (self.next_u32() >> 8) % bound
    }
}

/// Formats a slice of words as `.word` directives, 8 per line.
pub fn words_directive(words: &[u32]) -> String {
    let mut out = String::with_capacity(words.len() * 12);
    for chunk in words.chunks(8) {
        out.push_str("        .word ");
        for (k, w) in chunk.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("0x{w:x}"));
        }
        out.push('\n');
    }
    out
}

/// Formats a slice of bytes as `.byte` directives, 16 per line.
pub fn bytes_directive(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 6);
    for chunk in bytes.chunks(16) {
        out.push_str("        .byte ");
        for (k, b) in chunk.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{b}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut l = Lcg::new(7);
        for _ in 0..1000 {
            assert!(l.below(13) < 13);
        }
    }

    #[test]
    fn directives_assemble() {
        let src = format!(
            "main: halt\n.data\nw:\n{}b:\n{}",
            words_directive(&[1, 2, 3, 0xFFFF_FFFF]),
            bytes_directive(&[0, 255, 7])
        );
        let p = ntp_isa::asm::assemble(&src).unwrap();
        assert_eq!(&p.data[0..4], &1u32.to_le_bytes());
        assert_eq!(p.data[16], 0);
        assert_eq!(p.data[17], 255);
    }
}
