//! `xlisp` — recursive expression-tree evaluator (analog of SpecInt95
//! *xlisp*).
//!
//! Character preserved: evaluation is dominated by deep, data-driven
//! recursion (like xlisp's `eval`/`apply`), producing long call/return
//! chains that flush path history and exercise the return history stack —
//! including an odd/even data-dependent operator that keeps branches
//! unpredictable.
//!
//! A forest of random binary expression trees lives in the data segment;
//! each round reseeds the leaves from an LCG and re-evaluates every tree.

use crate::util::{words_directive, Lcg, LCG_ADD, LCG_MUL};
use crate::Workload;
use ntp_isa::asm::assemble;

const OP_LEAF: u32 = 0;
const OP_ADD: u32 = 1;
const OP_SUB: u32 = 2;
const OP_MUL: u32 = 3;
const OP_MIN: u32 = 4;
const OP_MAX: u32 = 5;
const OP_CONDSEL: u32 = 6;

/// A node: `op`, `a` (left child index, or leaf value), `b` (right child
/// index). 12 bytes in guest memory.
#[derive(Copy, Clone, Debug)]
struct Node {
    op: u32,
    a: u32,
    b: u32,
}

struct Forest {
    nodes: Vec<Node>,
    leaves: Vec<u32>,
    roots: Vec<u32>,
}

fn gen_tree(lcg: &mut Lcg, f: &mut Forest, depth: u32) -> u32 {
    let leaf = depth >= 14 || lcg.below(5) == 0;
    if leaf {
        let idx = f.nodes.len() as u32;
        f.nodes.push(Node {
            op: OP_LEAF,
            a: 0,
            b: 0,
        });
        f.leaves.push(idx);
        return idx;
    }
    let op = 1 + lcg.below(6);
    // Reserve the slot first so parents precede children (irrelevant to
    // semantics, but keeps indexes compact).
    let idx = f.nodes.len() as u32;
    f.nodes.push(Node { op, a: 0, b: 0 });
    let a = gen_tree(lcg, f, depth + 1);
    let b = gen_tree(lcg, f, depth + 1);
    f.nodes[idx as usize].a = a;
    f.nodes[idx as usize].b = b;
    idx
}

fn make_forest(trees: usize, seed: u32) -> Forest {
    let mut f = Forest {
        nodes: Vec::new(),
        leaves: Vec::new(),
        roots: Vec::new(),
    };
    let mut lcg = Lcg::new(seed);
    for _ in 0..trees {
        let r = gen_tree(&mut lcg, &mut f, 0);
        f.roots.push(r);
    }
    f
}

fn eval(nodes: &[Node], i: u32) -> u32 {
    let n = nodes[i as usize];
    if n.op == OP_LEAF {
        return n.a;
    }
    let l = eval(nodes, n.a);
    let r = eval(nodes, n.b);
    match n.op {
        OP_ADD => l.wrapping_add(r),
        OP_SUB => l.wrapping_sub(r),
        OP_MUL => l.wrapping_mul(r),
        OP_MIN => {
            if (l as i32) < (r as i32) {
                l
            } else {
                r
            }
        }
        OP_MAX => {
            if (l as i32) < (r as i32) {
                r
            } else {
                l
            }
        }
        OP_CONDSEL => {
            if l & 1 != 0 {
                l.wrapping_add(r)
            } else {
                l.wrapping_sub(r)
            }
        }
        _ => unreachable!(),
    }
}

fn reference(f: &Forest, rounds: u32) -> Vec<u32> {
    let mut nodes = f.nodes.clone();
    let mut lcg: u32 = 0x11_51_F0;
    let mut checksum: u32 = 0;
    let mut out = Vec::new();
    for k in 0..rounds {
        // Leaves are reseeded every 4th round, so three of four rounds
        // replay identical evaluations — repetition predictors can learn.
        if k % 4 == 0 {
            for &leaf in &f.leaves {
                lcg = lcg.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
                nodes[leaf as usize].a = (lcg >> 8) & 0xFFFF;
            }
        }
        for &root in &f.roots {
            let v = eval(&nodes, root);
            checksum = checksum.wrapping_mul(31).wrapping_add(v);
        }
        out.push(checksum);
    }
    out
}

/// Builds the workload; `rounds` scales run length (~200K instructions per
/// round).
pub fn build(rounds: u32) -> Workload {
    assert!(rounds >= 1);
    let forest = make_forest(8, 0x715F);
    let node_words: Vec<u32> = forest.nodes.iter().flat_map(|n| [n.op, n.a, n.b]).collect();
    let n_leaves = forest.leaves.len() as u32;
    let n_roots = forest.roots.len() as u32;
    let src = format!(
        "
; xlisp — recursive expression-tree evaluator
; s1 nodes base, s2 leaves base, s5 roots base, s0 lcg, s6 checksum,
; s7 rounds
main:   la   s1, nodes
        la   s2, leaves
        la   s5, roots
        li   s0, 0x1151F0
        li   s6, 0
        li   s7, {rounds}
round:
        ; ---- reseed leaves every 4th round ----
        andi t0, s7, 3
        li   t1, {fresh_phase}
        bne  t0, t1, eval_all
        li   t0, 0
reseed: li   t1, {lcg_mul}
        mul  s0, s0, t1
        li   t1, {lcg_add}
        add  s0, s0, t1
        sll  t2, t0, 2
        add  t2, s2, t2
        lw   t3, 0(t2)          ; leaf node index
        li   t4, 12
        mul  t4, t3, t4
        add  t4, s1, t4
        srl  t5, s0, 8
        andi t5, t5, 0xFFFF
        sw   t5, 4(t4)          ; node.a = value
        addi t0, t0, 1
        li   t1, {n_leaves}
        bne  t0, t1, reseed
eval_all:
        ; ---- evaluate every tree ----
        li   t9, 0
trees:  sll  t0, t9, 2
        add  t0, s5, t0
        lw   a0, 0(t0)
        jal  eval
        li   t1, 31
        mul  s6, s6, t1
        add  s6, s6, v0
        addi t9, t9, 1
        li   t1, {n_roots}
        bne  t9, t1, trees
        out  s6
        addi s7, s7, -1
        bnez s7, round
        halt

; ---- eval(a0 = node index) -> v0 ----
eval:   li   t0, 12
        mul  t0, a0, t0
        add  t0, s1, t0         ; node address
        lw   t1, 0(t0)          ; op
        bnez t1, eval_inner
        lw   v0, 4(t0)          ; leaf value
        ret
eval_inner:
        addi sp, sp, -12
        sw   ra, 8(sp)
        sw   s3, 4(sp)
        sw   t0, 0(sp)
        lw   a0, 4(t0)          ; left child
        jal  eval
        move s3, v0
        lw   t0, 0(sp)
        lw   a0, 8(t0)          ; right child
        jal  eval
        lw   t0, 0(sp)
        lw   t1, 0(t0)          ; op again
        li   t2, {op_add}
        beq  t1, t2, do_add
        li   t2, {op_sub}
        beq  t1, t2, do_sub
        li   t2, {op_mul}
        beq  t1, t2, do_mul
        li   t2, {op_min}
        beq  t1, t2, do_min
        li   t2, {op_max}
        beq  t1, t2, do_max
        ; condsel: odd(left) ? left+right : left-right
        andi t3, s3, 1
        beqz t3, cs_sub
        add  v0, s3, v0
        j    eval_ret
cs_sub: sub  v0, s3, v0
        j    eval_ret
do_add: add  v0, s3, v0
        j    eval_ret
do_sub: sub  v0, s3, v0
        j    eval_ret
do_mul: mul  v0, s3, v0
        j    eval_ret
do_min: blt  s3, v0, min_left
        j    eval_ret           ; v0 already holds right
min_left:
        move v0, s3
        j    eval_ret
do_max: blt  s3, v0, eval_ret   ; right is larger, keep v0
        move v0, s3
eval_ret:
        lw   s3, 4(sp)
        lw   ra, 8(sp)
        addi sp, sp, 12
        ret
        .data
nodes:
{node_words}
leaves:
{leaf_words}
roots:
{root_words}
",
        lcg_mul = LCG_MUL,
        lcg_add = LCG_ADD,
        fresh_phase = rounds & 3,
        n_leaves = n_leaves,
        n_roots = n_roots,
        op_add = OP_ADD,
        op_sub = OP_SUB,
        op_mul = OP_MUL,
        op_min = OP_MIN,
        op_max = OP_MAX,
        node_words = words_directive(&node_words),
        leaf_words = words_directive(&forest.leaves),
        root_words = words_directive(&forest.roots),
    );
    let program = assemble(&src).expect("xlisp workload assembles");
    Workload {
        name: "xlisp",
        analog_of:
            "SpecInt95 xlisp (input: 8 random expression trees, leaves reseeded every 4th round)",
        description: "deeply recursive tree evaluation with data-dependent operators",
        program,
        expected_output: reference(&forest, rounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_has_depth() {
        let f = make_forest(8, 0x715F);
        assert!(f.nodes.len() > 200, "{} nodes", f.nodes.len());
        assert!(!f.leaves.is_empty());
        assert_eq!(f.roots.len(), 8);
    }

    #[test]
    fn matches_reference_small() {
        let w = build(2);
        let out = w.run_to_halt(30_000_000);
        assert_eq!(out, w.expected_output);
    }

    #[test]
    fn eval_handles_each_op() {
        // min(3, max(5, 1)) = 3; condsel(3, 4) = 7 (3 is odd).
        let nodes = vec![
            Node {
                op: OP_MIN,
                a: 1,
                b: 2,
            }, // 0
            Node {
                op: OP_LEAF,
                a: 3,
                b: 0,
            }, // 1
            Node {
                op: OP_MAX,
                a: 3,
                b: 4,
            }, // 2
            Node {
                op: OP_LEAF,
                a: 5,
                b: 0,
            }, // 3
            Node {
                op: OP_LEAF,
                a: 1,
                b: 0,
            }, // 4
            Node {
                op: OP_CONDSEL,
                a: 1,
                b: 3,
            }, // 5
        ];
        assert_eq!(eval(&nodes, 0), 3);
        assert_eq!(eval(&nodes, 5), 8);
    }
}
