//! # ntp-workloads — six TRISC benchmark programs
//!
//! SpecInt95 is not redistributable and SimpleScalar binaries cannot run
//! here, so this crate provides six hand-written TRISC assembly workloads,
//! one per benchmark the paper evaluates, each engineered to reproduce the
//! control-flow *character* that matters for trace prediction:
//!
//! | name       | analog of | character preserved |
//! |------------|-----------|---------------------|
//! | `compress` | compress  | tight hash-probe loop, small working set |
//! | `cc`       | gcc       | recursive-descent parsing, large path variety |
//! | `go`       | go        | branchy positional evaluation, biggest static-trace set |
//! | `jpeg`     | ijpeg     | long loop-dominated traces (DCT/quantize/RLE) |
//! | `m88ksim`  | m88ksim   | interpreter dispatch via indirect jumps |
//! | `xlisp`    | xlisp     | deep recursive expression evaluation |
//!
//! Every workload is deterministic, self-checking (its `out` stream is
//! compared against a Rust reference implementation in this crate's tests)
//! and scalable via a `rounds` parameter.
//!
//! # Example
//!
//! ```
//! use ntp_workloads::compress;
//! let w = compress::build(1);
//! let out = w.run_to_halt(10_000_000);
//! assert_eq!(out, w.expected_output);
//! ```

#![warn(missing_docs)]

pub mod cc;
pub mod compress;
pub mod go;
pub mod jpeg;
pub mod m88ksim;
pub mod util;
pub mod xlisp;

use ntp_isa::Program;
use ntp_sim::Machine;

/// A benchmark program plus its expected output.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name, matching the paper's benchmark table.
    pub name: &'static str,
    /// Which SpecInt95 benchmark this stands in for, and why.
    pub analog_of: &'static str,
    /// One-line description of the kernel.
    pub description: &'static str,
    /// The assembled program.
    pub program: Program,
    /// The `out` values a complete run must produce (from the Rust
    /// reference implementation).
    pub expected_output: Vec<u32>,
}

impl Workload {
    /// A fresh machine loaded with this workload.
    pub fn machine(&self) -> Machine {
        Machine::new(self.program.clone())
    }

    /// Runs to `halt` (or panics if `budget` instructions pass first) and
    /// returns the output stream.
    ///
    /// # Panics
    ///
    /// Panics on simulation errors or budget exhaustion — both indicate a
    /// workload bug.
    pub fn run_to_halt(&self, budget: u64) -> Vec<u32> {
        let mut m = self.machine();
        let stop = m.run(budget).expect("workload executes without faults");
        assert_eq!(
            stop,
            ntp_sim::StopReason::Halted,
            "{}: instruction budget too small",
            self.name
        );
        m.output().to_vec()
    }
}

/// How large to build the workload suite.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScalePreset {
    /// Seconds-scale runs for tests (hundreds of thousands of
    /// instructions).
    Tiny,
    /// The default experiment scale (several million instructions each).
    Default,
    /// Paper-like scale (tens of millions of instructions each).
    Full,
}

impl ScalePreset {
    /// Stable lowercase name, as accepted by `NTP_SCALE` and reported in
    /// telemetry manifests.
    pub fn name(self) -> &'static str {
        match self {
            ScalePreset::Tiny => "tiny",
            ScalePreset::Default => "default",
            ScalePreset::Full => "full",
        }
    }

    /// Per-workload round counts `(compress, cc, go, jpeg, m88ksim, xlisp)`,
    /// calibrated so Default ≈ 6M instructions and Full ≈ 24M per workload.
    fn rounds(self) -> [u32; 6] {
        match self {
            ScalePreset::Tiny => [2, 2, 2, 4, 2, 2],
            ScalePreset::Default => [56, 15, 12, 320, 46, 16],
            ScalePreset::Full => [224, 60, 48, 1280, 184, 64],
        }
    }
}

/// Builds all six workloads at the given scale, in the paper's table order.
pub fn suite(scale: ScalePreset) -> Vec<Workload> {
    let [r_compress, r_cc, r_go, r_jpeg, r_m88k, r_xlisp] = scale.rounds();
    vec![
        compress::build(r_compress),
        cc::build(r_cc),
        go::build(r_go),
        jpeg::build(r_jpeg),
        m88ksim::build(r_m88k),
        xlisp::build(r_xlisp),
    ]
}

/// Builds one workload by name at the given scale.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn by_name(name: &str, scale: ScalePreset) -> Workload {
    let idx = ["compress", "cc", "go", "jpeg", "m88ksim", "xlisp"]
        .iter()
        .position(|n| *n == name)
        .unwrap_or_else(|| panic!("unknown workload `{name}`"));
    suite(scale).swap_remove(idx)
}
