//! `m88ksim` — an ISA-in-ISA interpreter (analog of SpecInt95 *m88ksim*).
//!
//! Character preserved: a fetch–decode–dispatch loop where every guest
//! instruction ends in an indirect jump through a handler table, so traces
//! are short and frequently terminated by indirect jumps, exactly the
//! behaviour that made m88ksim distinctive in the paper.
//!
//! The guest is an 8-register, 256-word-RAM virtual machine; the guest
//! program bubble-sorts seeded data, runs an iterative Fibonacci and a
//! subtractive GCD, emitting checksums.

use crate::util::{LCG_ADD, LCG_MUL};
use crate::Workload;
use ntp_isa::asm::assemble;

// Guest opcode numbers (also the handler-table order).
const OP_HALT: u32 = 0;
const OP_LI: u32 = 1;
const OP_ADD: u32 = 2;
const OP_SUB: u32 = 3;
const OP_AND: u32 = 4;
const OP_XOR: u32 = 5;
const OP_SLTU: u32 = 6;
const OP_JMP: u32 = 7;
const OP_JNZ: u32 = 8;
const OP_LD: u32 = 9;
const OP_ST: u32 = 10;
const OP_ADDI: u32 = 11;
const OP_MUL: u32 = 12;
const OP_OUT: u32 = 13;
const OP_SHR: u32 = 14;
const OP_JZ: u32 = 15;

fn enc(op: u32, a: u32, b: u32, c: u32) -> u32 {
    debug_assert!(a < 256 && b < 256 && c < 256);
    op | (a << 8) | (b << 16) | (c << 24)
}

fn enc_j(op: u32, a: u32, target: u32) -> u32 {
    enc(op, a, target & 0xFF, target >> 8)
}

/// Builds the guest program. Register conventions: r0 scratch, r1–r5
/// working, r6 limit, r7 accumulator.
fn guest_program() -> Vec<u32> {
    let mut p: Vec<u32> = Vec::new();
    // ---- phase 1: bubble sort ram[0..32] ascending (unsigned) ----
    // r1 = i (outer, counts 31..1), r2 = j, r3/r4 = elements, r5 = swapped?
    p.push(enc(OP_LI, 1, 31, 0)); // 0: i = 31
    let outer = p.len() as u32; // 1
    p.push(enc(OP_LI, 2, 0, 0)); // j = 0
    let inner = p.len() as u32; // 2
    p.push(enc(OP_LD, 3, 2, 0)); // r3 = ram[j]
    p.push(enc(OP_LD, 4, 2, 1)); // r4 = ram[j+1]
    p.push(enc(OP_SLTU, 5, 4, 3)); // r5 = r4 < r3
    let no_swap_target = p.len() as u32 + 3;
    p.push(enc_j(OP_JZ, 5, no_swap_target)); // in-order ⇒ skip swap
    p.push(enc(OP_ST, 4, 2, 0)); // ram[j] = r4
    p.push(enc(OP_ST, 3, 2, 1)); // ram[j+1] = r3
                                 // no_swap:
    p.push(enc(OP_ADDI, 2, 2, 1)); // j += 1
    p.push(enc(OP_SUB, 5, 1, 2)); // r5 = i - j
    p.push(enc_j(OP_JNZ, 5, inner)); // while j != i
    p.push(enc(OP_ADDI, 1, 1, 0xFF)); // i -= 1 (sign-extended -1)
    p.push(enc_j(OP_JNZ, 1, outer));
    // emit the minimum and maximum of the sorted array
    p.push(enc(OP_LI, 2, 0, 0));
    p.push(enc(OP_LD, 7, 2, 0)); // min
    p.push(enc(OP_OUT, 7, 0, 0));
    p.push(enc(OP_LI, 2, 31, 0));
    p.push(enc(OP_LD, 7, 2, 0)); // max
    p.push(enc(OP_OUT, 7, 0, 0));
    // ---- phase 2: iterative fibonacci: 24 steps ----
    p.push(enc(OP_LI, 1, 1, 0)); // a
    p.push(enc(OP_LI, 2, 1, 0)); // b
    p.push(enc(OP_LI, 6, 24, 0)); // n
    let fib = p.len() as u32;
    p.push(enc(OP_ADD, 3, 1, 2));
    p.push(enc(OP_ADD, 1, 2, 0)); // a = b (r0 must be 0: ensure guest r0 stays 0)
    p.push(enc(OP_ADD, 2, 3, 0)); // b = t
    p.push(enc(OP_ADDI, 6, 6, 0xFF)); // n -= 1
    p.push(enc_j(OP_JNZ, 6, fib));
    p.push(enc(OP_OUT, 2, 0, 0));
    // ---- phase 3: subtractive GCD of ram[40], ram[41] (made nonzero) ----
    p.push(enc(OP_LI, 5, 40, 0));
    p.push(enc(OP_LD, 1, 5, 0));
    p.push(enc(OP_LD, 2, 5, 1));
    p.push(enc(OP_LI, 3, 255, 0));
    p.push(enc(OP_AND, 1, 1, 3)); // bound to 8 bits
    p.push(enc(OP_AND, 2, 2, 3));
    p.push(enc(OP_ADDI, 1, 1, 1)); // nonzero
    p.push(enc(OP_ADDI, 2, 2, 1));
    let gcd = p.len() as u32;
    p.push(enc(OP_XOR, 4, 1, 2)); // gcd+0: r4 = a ^ b
    p.push(enc_j(OP_JZ, 4, gcd + 8)); // gcd+1: a == b ⇒ done
    p.push(enc(OP_SLTU, 4, 1, 2)); // gcd+2: a < b ?
    p.push(enc_j(OP_JZ, 4, gcd + 6)); // gcd+3: a >= b branch
    p.push(enc(OP_SUB, 2, 2, 1)); // gcd+4: b -= a
    p.push(enc_j(OP_JMP, 0, gcd)); // gcd+5
    p.push(enc(OP_SUB, 1, 1, 2)); // gcd+6: a -= b
    p.push(enc_j(OP_JMP, 0, gcd)); // gcd+7
    p.push(enc(OP_OUT, 1, 0, 0)); // gcd+8: done

    // ---- phase 4: polynomial hash over ram[0..64] ----
    p.push(enc(OP_LI, 2, 0, 0));
    p.push(enc(OP_LI, 7, 0, 0));
    p.push(enc(OP_LI, 6, 64, 0));
    p.push(enc(OP_LI, 5, 31, 0));
    let hash = p.len() as u32;
    p.push(enc(OP_MUL, 7, 7, 5));
    p.push(enc(OP_LD, 3, 2, 0));
    p.push(enc(OP_ADD, 7, 7, 3));
    p.push(enc(OP_ADDI, 2, 2, 1));
    p.push(enc(OP_SUB, 4, 6, 2));
    p.push(enc_j(OP_JNZ, 4, hash));
    p.push(enc(OP_OUT, 7, 0, 0));
    p.push(enc(OP_HALT, 0, 0, 0));
    p
}

/// Rust interpreter for the guest VM — an independent implementation used
/// to compute expected outputs.
fn run_guest(prog: &[u32], ram: &mut [u32; 256], checksum: &mut u32) {
    let mut regs = [0u32; 8];
    let mut pc = 0usize;
    loop {
        let w = prog[pc];
        pc += 1;
        let op = w & 0xFF;
        let a = ((w >> 8) & 0xFF) as usize & 7;
        let b = ((w >> 16) & 0xFF) as usize & 7;
        let c = w >> 24;
        let imm16 = ((w >> 16) & 0xFFFF) as usize;
        match op {
            OP_HALT => return,
            OP_LI => regs[a] = imm16 as u32,
            OP_ADD => regs[a] = regs[b].wrapping_add(regs[c as usize & 7]),
            OP_SUB => regs[a] = regs[b].wrapping_sub(regs[c as usize & 7]),
            OP_AND => regs[a] = regs[b] & regs[c as usize & 7],
            OP_XOR => regs[a] = regs[b] ^ regs[c as usize & 7],
            OP_SLTU => regs[a] = (regs[b] < regs[c as usize & 7]) as u32,
            OP_JMP => pc = imm16,
            OP_JNZ => {
                if regs[a] != 0 {
                    pc = imm16;
                }
            }
            OP_LD => regs[a] = ram[(regs[b].wrapping_add(c) & 255) as usize],
            OP_ST => ram[(regs[b].wrapping_add(c) & 255) as usize] = regs[a],
            OP_ADDI => regs[a] = regs[b].wrapping_add((c as u8 as i8) as i32 as u32),
            OP_MUL => regs[a] = regs[b].wrapping_mul(regs[c as usize & 7]),
            OP_OUT => *checksum = checksum.wrapping_mul(31).wrapping_add(regs[a]),
            OP_SHR => regs[a] = regs[b] >> (c & 31),
            OP_JZ => {
                if regs[a] == 0 {
                    pc = imm16;
                }
            }
            _ => unreachable!("invalid guest opcode"),
        }
    }
}

fn reference(prog: &[u32], rounds: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut lcg: u32 = 0x8801;
    let mut checksum: u32 = 0;
    for _ in 0..rounds {
        let mut ram = [0u32; 256];
        for slot in ram.iter_mut().take(64) {
            lcg = lcg.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
            *slot = lcg;
        }
        run_guest(prog, &mut ram, &mut checksum);
        out.push(checksum);
    }
    out
}

/// Builds the workload; `rounds` scales run length (~150K instructions per
/// round).
pub fn build(rounds: u32) -> Workload {
    assert!(rounds >= 1);
    let prog = guest_program();
    let prog_words = crate::util::words_directive(&prog);
    let src = format!(
        "
; m88ksim — guest-VM interpreter with indirect dispatch
; s0 vm pc, s1 prog base, s2 ram base, s3 regs base, s4 checksum,
; s5 lcg, s7 rounds
main:   la   s1, vmprog
        la   s2, vmram
        la   s3, vmregs
        li   s4, 0
        li   s5, 0x8801
        li   s7, {rounds}
round:
        ; seed ram[0..64]
        li   t0, 0
seed:   li   t1, {lcg_mul}
        mul  s5, s5, t1
        li   t1, {lcg_add}
        add  s5, s5, t1
        sll  t2, t0, 2
        add  t2, s2, t2
        sw   s5, 0(t2)
        addi t0, t0, 1
        li   t1, 64
        bne  t0, t1, seed
        ; clear guest registers
        li   t0, 0
clrreg: sll  t1, t0, 2
        add  t1, s3, t1
        sw   zero, 0(t1)
        addi t0, t0, 1
        li   t1, 8
        bne  t0, t1, clrreg
        li   s0, 0
; ---- dispatch loop ----
vm_loop:
        sll  t0, s0, 2
        add  t0, s1, t0
        lw   t1, 0(t0)          ; guest instr
        addi s0, s0, 1
        andi t2, t1, 0xFF       ; op
        srl  t3, t1, 8
        andi t3, t3, 7          ; a (masked to 3 bits)
        srl  t4, t1, 16
        andi t4, t4, 7          ; b
        srl  t5, t1, 24         ; c
        srl  t6, t1, 16         ; imm16
        sll  t7, t2, 2
        la   t8, optable
        add  t8, t8, t7
        lw   t8, 0(t8)
        jr   t8
op_halt:
        j    vm_done
op_li:  sll  t0, t3, 2
        add  t0, s3, t0
        sw   t6, 0(t0)
        j    vm_loop
op_add: jal  read_bc
        add  t0, t0, t1
        j    write_a
op_sub: jal  read_bc
        sub  t0, t0, t1
        j    write_a
op_and: jal  read_bc
        and  t0, t0, t1
        j    write_a
op_xor: jal  read_bc
        xor  t0, t0, t1
        j    write_a
op_sltu:
        jal  read_bc
        sltu t0, t0, t1
        j    write_a
op_jmp: move s0, t6
        j    vm_loop
op_jnz: sll  t0, t3, 2
        add  t0, s3, t0
        lw   t0, 0(t0)
        beqz t0, vm_loop
        move s0, t6
        j    vm_loop
op_jz:  sll  t0, t3, 2
        add  t0, s3, t0
        lw   t0, 0(t0)
        bnez t0, vm_loop
        move s0, t6
        j    vm_loop
op_ld:  sll  t0, t4, 2
        add  t0, s3, t0
        lw   t0, 0(t0)          ; regs[b]
        add  t0, t0, t5
        andi t0, t0, 255
        sll  t0, t0, 2
        add  t0, s2, t0
        lw   t0, 0(t0)
        j    write_a
op_st:  sll  t0, t4, 2
        add  t0, s3, t0
        lw   t0, 0(t0)
        add  t0, t0, t5
        andi t0, t0, 255
        sll  t0, t0, 2
        add  t0, s2, t0
        sll  t1, t3, 2
        add  t1, s3, t1
        lw   t1, 0(t1)
        sw   t1, 0(t0)
        j    vm_loop
op_addi:
        sll  t0, t4, 2
        add  t0, s3, t0
        lw   t0, 0(t0)
        sll  t1, t5, 24
        sra  t1, t1, 24         ; sign-extend c
        add  t0, t0, t1
        j    write_a
op_mul: jal  read_bc
        mul  t0, t0, t1
        j    write_a
op_out: sll  t0, t3, 2
        add  t0, s3, t0
        lw   t0, 0(t0)
        li   t1, 31
        mul  s4, s4, t1
        add  s4, s4, t0
        j    vm_loop
op_shr: sll  t0, t4, 2
        add  t0, s3, t0
        lw   t0, 0(t0)
        andi t1, t5, 31
        srlv t0, t0, t1
        j    write_a
; ---- helpers ----
read_bc:                        ; t0 = regs[b], t1 = regs[c&7]
        sll  t0, t4, 2
        add  t0, s3, t0
        lw   t0, 0(t0)
        andi t1, t5, 7
        sll  t1, t1, 2
        add  t1, s3, t1
        lw   t1, 0(t1)
        ret
write_a:                        ; regs[a] = t0
        sll  t1, t3, 2
        add  t1, s3, t1
        sw   t0, 0(t1)
        j    vm_loop
vm_done:
        out  s4
        addi s7, s7, -1
        bnez s7, round
        halt
        .data
vmprog:
{prog_words}
        .align 2
vmram:  .space 1024
vmregs: .space 32
optable:
        .word op_halt, op_li, op_add, op_sub, op_and, op_xor, op_sltu, op_jmp
        .word op_jnz, op_ld, op_st, op_addi, op_mul, op_out, op_shr, op_jz
",
        lcg_mul = LCG_MUL,
        lcg_add = LCG_ADD,
    );
    let program = assemble(&src).expect("m88ksim workload assembles");
    Workload {
        name: "m88ksim",
        analog_of: "SpecInt95 m88ksim (guest VM: sort + fib + gcd + hash)",
        description: "ISA interpreter with jump-table dispatch per guest instruction",
        program,
        expected_output: reference(&prog, rounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_program_is_wellformed() {
        let p = guest_program();
        assert!(p.len() < 256);
        assert_eq!(*p.last().unwrap() & 0xFF, OP_HALT);
    }

    #[test]
    fn guest_sort_works() {
        let mut ram = [0u32; 256];
        for (k, slot) in ram.iter_mut().take(64).enumerate() {
            *slot = (97 - k as u32) * 1000;
        }
        let mut cs = 0;
        run_guest(&guest_program(), &mut ram, &mut cs);
        let sorted: Vec<u32> = ram[..32].to_vec();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "{sorted:?}");
    }

    #[test]
    fn matches_reference_small() {
        let w = build(2);
        let out = w.run_to_halt(20_000_000);
        assert_eq!(out, w.expected_output);
    }

    #[test]
    fn rounds_differ() {
        let w = build(3);
        let out = w.run_to_halt(30_000_000);
        assert_eq!(out.len(), 3);
        assert_ne!(out[0], out[1]);
    }
}
