//! `compress` — LZW-style compression kernel (analog of SpecInt95
//! *compress*).
//!
//! Character of the original preserved: a tight hash-probe loop over a
//! byte stream, small static code footprint, data-dependent hit/miss
//! branches, and a table-clearing phase between rounds.

use crate::util::{bytes_directive, Lcg};
use crate::Workload;
use ntp_isa::asm::assemble;

const TABLE_SLOTS: u32 = 4096;
const INSERT_CAP: u32 = 3328;
const HASH_MUL: u32 = 0x9E37_79B1;

/// Generates the input byte stream: skewed distribution with runs, like
/// text.
fn make_input(len: usize, seed: u32) -> Vec<u8> {
    let mut lcg = Lcg::new(seed);
    let alphabet: Vec<u8> = (0..16).map(|k| b'a' + k).collect();
    let mut out = Vec::with_capacity(len);
    let mut prev = b'a';
    for _ in 0..len {
        let r = lcg.next_u32();
        let b = if (r >> 20) & 7 < 3 {
            prev
        } else {
            alphabet[((r >> 24) & 15) as usize]
        };
        out.push(b);
        prev = b;
    }
    out
}

/// The Rust reference implementation, mirroring the TRISC program
/// instruction-for-instruction at the semantic level.
fn reference(input: &[u8], rounds: u32) -> Vec<u32> {
    let n = input.len() as u32;
    let mut out = Vec::new();
    let mut next_code: u32 = 0;
    let mut round = rounds;
    while round > 0 {
        let mut table = vec![(0u32, 0u32); TABLE_SLOTS as usize];
        let start = (round.wrapping_mul(17)) & 3;
        let mut prefix = input[start as usize] as u32;
        let mut i = start + 1;
        next_code = 256;
        let mut checksum: u32 = 0;
        while i < n {
            let c = input[i as usize] as u32;
            let key = (prefix << 8) | c;
            let mut h = key.wrapping_mul(HASH_MUL) >> 20 & (TABLE_SLOTS - 1);
            loop {
                let (k, code) = table[h as usize];
                if k == 0 {
                    // miss: emit prefix
                    checksum = checksum.wrapping_mul(31).wrapping_add(prefix);
                    if next_code < INSERT_CAP {
                        table[h as usize] = (key + 1, next_code);
                        next_code += 1;
                    }
                    prefix = c;
                    break;
                }
                if k == key + 1 {
                    prefix = code;
                    break;
                }
                h = (h + 1) & (TABLE_SLOTS - 1);
            }
            i += 1;
        }
        checksum = checksum.wrapping_mul(31).wrapping_add(prefix);
        out.push(checksum);
        round -= 1;
    }
    out.push(next_code);
    out
}

/// Builds the workload; `rounds` scales run length (~100K instructions per
/// round).
pub fn build(rounds: u32) -> Workload {
    assert!(rounds >= 1);
    let input = make_input(4096, 0xC0FF_EE01);
    let n = input.len() as u32;
    let src = format!(
        "
; compress — LZW hash-probe kernel
main:   la   s0, input
        la   s1, table
        li   s2, {n}
        li   s7, {rounds}
        li   t9, 0x9E3779B1
round_loop:
        ; clear the table (4096 slots x 8 bytes)
        la   t0, table
        li   t1, {slots}
clr:    sw   zero, 0(t0)
        sw   zero, 4(t0)
        addi t0, t0, 8
        addi t1, t1, -1
        bnez t1, clr
        ; start = (round * 17) & 3 (4-round periodic input)
        li   t0, 17
        mul  t0, s7, t0
        andi t0, t0, 3
        add  t1, s0, t0
        lbu  s4, 0(t1)          ; prefix = input[start]
        addi s6, t0, 1          ; i = start + 1
        li   s3, 256            ; next_code
        li   s5, 0              ; checksum
byte_loop:
        bgeu s6, s2, round_end
        add  t1, s0, s6
        lbu  t2, 0(t1)          ; c
        sll  t3, s4, 8
        or   t3, t3, t2         ; key
        mul  t4, t3, t9
        srl  t4, t4, 20
        andi t4, t4, {mask}     ; h
probe:
        sll  t5, t4, 3
        add  t5, s1, t5
        lw   t6, 0(t5)
        beqz t6, miss
        addi t7, t3, 1
        beq  t6, t7, hit
        addi t4, t4, 1
        andi t4, t4, {mask}
        j    probe
hit:
        lw   s4, 4(t5)
        addi s6, s6, 1
        j    byte_loop
miss:
        li   t7, 31
        mul  t8, s5, t7
        add  s5, t8, s4         ; checksum = checksum*31 + prefix
        li   t7, {cap}
        bgeu s3, t7, no_insert
        addi t7, t3, 1
        sw   t7, 0(t5)
        sw   s3, 4(t5)
        addi s3, s3, 1
no_insert:
        move s4, t2
        addi s6, s6, 1
        j    byte_loop
round_end:
        li   t7, 31
        mul  t8, s5, t7
        add  s5, t8, s4
        out  s5
        addi s7, s7, -1
        bnez s7, round_loop
        out  s3
        halt
        .data
input:
{input_bytes}
        .align 3
table:  .space {table_bytes}
",
        slots = TABLE_SLOTS,
        mask = TABLE_SLOTS - 1,
        cap = INSERT_CAP,
        table_bytes = TABLE_SLOTS * 8,
        input_bytes = bytes_directive(&input),
    );
    let program = assemble(&src).expect("compress workload assembles");
    Workload {
        name: "compress",
        analog_of: "SpecInt95 compress (input: synthetic text, LZW kernel)",
        description: "LZW hash-probe compression over a skewed byte stream",
        program,
        expected_output: reference(&input, rounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_small() {
        let w = build(2);
        let out = w.run_to_halt(10_000_000);
        assert_eq!(out, w.expected_output);
        assert_eq!(out.len(), 3); // 2 round checksums + final next_code
    }

    #[test]
    fn rounds_differ_due_to_start_offset() {
        let w = build(3);
        let out = w.run_to_halt(10_000_000);
        assert_ne!(out[0], out[1], "different start offsets change checksums");
    }

    #[test]
    fn compression_actually_happens() {
        let w = build(1);
        let out = w.run_to_halt(10_000_000);
        let next_code = *out.last().unwrap();
        assert!(next_code > 600, "dictionary grew: {next_code}");
    }
}
