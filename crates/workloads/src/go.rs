//! `go` — board-game influence evaluator (analog of SpecInt95 *go*).
//!
//! Character preserved: heavily data-dependent branch ladders over a board,
//! four structurally distinct direction-scan blocks, and evolving board
//! state — the largest static-trace working set of the suite, stressing
//! predictor table capacity the way go stresses it in the paper.

use crate::util::{Lcg, LCG_ADD, LCG_MUL};
use crate::Workload;
use ntp_isa::asm::assemble;

const W: u32 = 18; // padded board stride; playable area is 15x15
const SIZE: u32 = 15;
const WALL: u32 = 3;
const INIT_STONES: u32 = 40;
const MOVES_PER_ROUND: u32 = 25;

/// One direction scan: identical math in all four directions; the TRISC
/// code unrolls them as distinct blocks.
fn scan(board: &[u8], p: i32, dir: i32, me: u32) -> i32 {
    let mut q = p;
    let mut w: i32 = 16;
    for _ in 0..3 {
        q += dir;
        let v = board[q as usize] as u32;
        if v == 0 {
            w >>= 1;
            continue;
        }
        if v == me {
            return w * 3;
        }
        if v == WALL {
            return -1;
        }
        return w * 2;
    }
    0
}

fn neighbor_bonus(board: &[u8], p: i32, me: u32) -> i32 {
    let mut n = 0i32;
    for dir in [1i32, -1, W as i32, -(W as i32)] {
        if board[(p + dir) as usize] as u32 == me {
            n += 1;
        }
    }
    n * n * 5
}

/// Empty neighbours of `q` (a stone's liberties, to depth one).
fn liberties(board: &[u8], q: i32) -> u32 {
    let mut n = 0;
    for dir in [1i32, -1, W as i32, -(W as i32)] {
        if board[(q + dir) as usize] == 0 {
            n += 1;
        }
    }
    n
}

/// Capture-threat bonus: +40 for each adjacent enemy stone left with at
/// most one liberty (it is in atari or captured outright).
fn atari_bonus(board: &[u8], p: i32, me: u32) -> i32 {
    let enemy = (3 - me) as u8;
    let mut bonus = 0i32;
    for dir in [1i32, -1, W as i32, -(W as i32)] {
        let q = p + dir;
        if board[q as usize] == enemy && liberties(board, q) <= 1 {
            bonus += 40;
        }
    }
    bonus
}

struct RefGo {
    board: Vec<u8>,
    lcg: u32,
    saved_lcg: u32,
    checksum: u32,
}

impl RefGo {
    fn new() -> RefGo {
        RefGo {
            board: vec![0; (W * W) as usize],
            lcg: 0x60_60_60,
            saved_lcg: 0x60_60_60,
            checksum: 0,
        }
    }

    fn next(&mut self) -> u32 {
        self.lcg = self.lcg.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
        self.lcg
    }

    fn reset_board(&mut self) {
        for v in self.board.iter_mut() {
            *v = WALL as u8;
        }
        for r in 0..SIZE {
            for c in 0..SIZE {
                self.board[((r + 1) * W + c + 1) as usize] = 0;
            }
        }
        for _ in 0..INIT_STONES {
            let x = self.next();
            let pos = (x >> 8) % (SIZE * SIZE);
            let idx = ((pos / SIZE + 1) * W + pos % SIZE + 1) as usize;
            let color = 1 + (x & 1) as u8;
            if self.board[idx] == 0 {
                self.board[idx] = color;
            }
        }
    }

    /// Plays one round. `fresh` chooses whether the initial position is
    /// drawn freshly from the LCG or replays the previous fresh position
    /// (positions repeat with period 4 so predictors can learn the paths,
    /// as repeated inputs let them in the original benchmark).
    fn round(&mut self, fresh: bool) {
        if fresh {
            self.saved_lcg = self.lcg;
        } else {
            self.lcg = self.saved_lcg;
        }
        self.reset_board();
        let mut me: u32 = 1;
        for _ in 0..MOVES_PER_ROUND {
            let mut best_pos: i32 = -1;
            let mut best_score: i32 = i32::MIN + 1;
            for r in 0..SIZE {
                for c in 0..SIZE {
                    let p = ((r + 1) * W + c + 1) as i32;
                    if self.board[p as usize] != 0 {
                        continue;
                    }
                    let mut score = 0i32;
                    score += scan(&self.board, p, 1, me);
                    score += scan(&self.board, p, -1, me);
                    score += scan(&self.board, p, W as i32, me);
                    score += scan(&self.board, p, -(W as i32), me);
                    score += neighbor_bonus(&self.board, p, me);
                    score += atari_bonus(&self.board, p, me);
                    if score > best_score {
                        best_score = score;
                        best_pos = p;
                    }
                }
            }
            if best_pos < 0 {
                break;
            }
            self.board[best_pos as usize] = me as u8;
            self.checksum = self
                .checksum
                .wrapping_mul(31)
                .wrapping_add((best_pos as u32).wrapping_mul(me))
                .wrapping_add(best_score as u32);
            me = 3 - me;
        }
    }
}

fn reference(rounds: u32) -> Vec<u32> {
    let mut g = RefGo::new();
    let mut out = Vec::new();
    for k in 0..rounds {
        g.round(k % 4 == 0);
        out.push(g.checksum);
    }
    out
}

/// Emits one unrolled direction-scan block. `dir` is the cell offset;
/// result is accumulated into s5 (score). Position is in s4.
fn scan_block(tag: &str, dir: i32) -> String {
    format!(
        "
; ---- scan direction {dir} ----
        move t0, s4             ; q = p
        li   t1, 16             ; w
        li   t2, 3              ; steps
scan{tag}_loop:
        addi t0, t0, {dir}
        add  t3, fp, t0
        lbu  t4, 0(t3)
        bnez t4, scan{tag}_stone
        srl  t1, t1, 1
        addi t2, t2, -1
        bnez t2, scan{tag}_loop
        j    scan{tag}_done
scan{tag}_stone:
        beq  t4, s3, scan{tag}_mine
        li   t5, {wall}
        beq  t4, t5, scan{tag}_wall
        sll  t5, t1, 1          ; enemy: w*2
        add  s5, s5, t5
        j    scan{tag}_done
scan{tag}_mine:
        sll  t5, t1, 1
        add  t5, t5, t1         ; w*3
        add  s5, s5, t5
        j    scan{tag}_done
scan{tag}_wall:
        addi s5, s5, -1
scan{tag}_done:
",
        wall = WALL,
    )
}

/// Builds the workload; `rounds` scales run length (~550K instructions per
/// round).
pub fn build(rounds: u32) -> Workload {
    assert!(rounds >= 1);
    let src = format!(
        "
; go — influence-map move selector
; s0 lcg state, s1 rounds, s2 checksum, s3 color, s4 pos, s5 score,
; s6 best_pos, s7 best_score, fp board base
main:   la   fp, board
        li   s0, 0x606060
        li   s1, {rounds}
        li   s2, 0
round:
        ; ---- 4-round-periodic seeding: fresh every 4th round ----
        andi t0, s1, 3
        li   t1, {fresh_phase}
        la   t2, seedsave
        bne  t0, t1, reuse_seed
        sw   s0, 0(t2)
        j    seeded
reuse_seed:
        lw   s0, 0(t2)
seeded:
        ; ---- reset board: fill walls, carve 15x15, sprinkle stones ----
        li   t0, 0
        li   t1, {total}
fillw:  add  t2, fp, t0
        li   t3, {wall}
        sb   t3, 0(t2)
        addi t0, t0, 1
        bne  t0, t1, fillw
        li   t0, 0              ; r
carve_r:
        li   t1, 0              ; c
carve_c:
        addi t2, t0, 1
        li   t3, {w}
        mul  t2, t2, t3
        add  t2, t2, t1
        addi t2, t2, 1
        add  t2, fp, t2
        sb   zero, 0(t2)
        addi t1, t1, 1
        li   t3, {size}
        bne  t1, t3, carve_c
        addi t0, t0, 1
        bne  t0, t3, carve_r
        li   t6, {stones}
sprinkle:
        li   t0, {lcg_mul}
        mul  s0, s0, t0
        li   t0, {lcg_add}
        add  s0, s0, t0
        srl  t1, s0, 8
        li   t2, {area}
        remu t1, t1, t2         ; pos
        li   t2, {size}
        divu t3, t1, t2         ; row
        remu t4, t1, t2         ; col
        addi t3, t3, 1
        li   t2, {w}
        mul  t3, t3, t2
        add  t3, t3, t4
        addi t3, t3, 1
        add  t3, fp, t3
        lbu  t5, 0(t3)
        bnez t5, no_place
        andi t5, s0, 1
        addi t5, t5, 1
        sb   t5, 0(t3)
no_place:
        addi t6, t6, -1
        bnez t6, sprinkle
        ; ---- play moves ----
        li   s3, 1              ; color
        li   t9, {moves}
move_loop:
        li   s6, -1             ; best_pos
        lui  s7, 0x8000
        addi s7, s7, 1          ; best_score = i32::MIN + 1
        li   t7, 0              ; r
eval_r: li   t8, 0              ; c
eval_c:
        addi t0, t7, 1
        li   t1, {w}
        mul  t0, t0, t1
        add  t0, t0, t8
        addi s4, t0, 1          ; p
        add  t0, fp, s4
        lbu  t1, 0(t0)
        bnez t1, eval_next      ; occupied
        li   s5, 0              ; score
{scan_e}
{scan_w}
{scan_s}
{scan_n}
        ; ---- neighbour bonus: n*n*5 ----
        li   t0, 0
        add  t1, fp, s4
        lbu  t2, 1(t1)
        bne  t2, s3, nb1
        addi t0, t0, 1
nb1:    lbu  t2, -1(t1)
        bne  t2, s3, nb2
        addi t0, t0, 1
nb2:    lbu  t2, {w}(t1)
        bne  t2, s3, nb3
        addi t0, t0, 1
nb3:    lbu  t2, -{w}(t1)
        bne  t2, s3, nb4
        addi t0, t0, 1
nb4:    mul  t2, t0, t0
        sll  t3, t2, 2
        add  t2, t2, t3         ; n*n*5
        add  s5, s5, t2
        ; ---- capture-threat (atari) bonus: each direction unrolled ----
        li   t6, 3
        sub  t6, t6, s3         ; enemy colour
        addi a0, s4, 1
        add  t0, fp, a0
        lbu  t1, 0(t0)
        bne  t1, t6, atari_e
        jal  liberties
        li   t0, 1
        bgtu v0, t0, atari_e
        addi s5, s5, 40
atari_e:
        li   t6, 3
        sub  t6, t6, s3
        addi a0, s4, -1
        add  t0, fp, a0
        lbu  t1, 0(t0)
        bne  t1, t6, atari_w
        jal  liberties
        li   t0, 1
        bgtu v0, t0, atari_w
        addi s5, s5, 40
atari_w:
        li   t6, 3
        sub  t6, t6, s3
        addi a0, s4, {w}
        add  t0, fp, a0
        lbu  t1, 0(t0)
        bne  t1, t6, atari_s
        jal  liberties
        li   t0, 1
        bgtu v0, t0, atari_s
        addi s5, s5, 40
atari_s:
        li   t6, 3
        sub  t6, t6, s3
        addi a0, s4, -{w}
        add  t0, fp, a0
        lbu  t1, 0(t0)
        bne  t1, t6, atari_n
        jal  liberties
        li   t0, 1
        bgtu v0, t0, atari_n
        addi s5, s5, 40
atari_n:
        ; ---- argmax ----
        bge  s7, s5, eval_next
        move s7, s5
        move s6, s4
eval_next:
        addi t8, t8, 1
        li   t0, {size}
        bne  t8, t0, eval_c
        addi t7, t7, 1
        bne  t7, t0, eval_r
        ; ---- place best move ----
        bltz s6, round_done
        add  t0, fp, s6
        sb   s3, 0(t0)
        li   t1, 31
        mul  s2, s2, t1
        mul  t2, s6, s3
        add  s2, s2, t2
        add  s2, s2, s7
        li   t3, 3
        sub  s3, t3, s3         ; switch color
        addi t9, t9, -1
        bnez t9, move_loop
round_done:
        out  s2
        addi s1, s1, -1
        bnez s1, round
        halt

; ---- liberties(a0 = stone position) -> v0 = empty neighbours ----
liberties:
        li   v0, 0
        add  t0, fp, a0
        lbu  t1, 1(t0)
        bnez t1, lib1
        addi v0, v0, 1
lib1:   lbu  t1, -1(t0)
        bnez t1, lib2
        addi v0, v0, 1
lib2:   lbu  t1, {w}(t0)
        bnez t1, lib3
        addi v0, v0, 1
lib3:   lbu  t1, -{w}(t0)
        bnez t1, lib4
        addi v0, v0, 1
lib4:   ret
        .data
seedsave:
        .word 0
board:  .space {total}
",
        total = W * W,
        w = W,
        size = SIZE,
        wall = WALL,
        stones = INIT_STONES,
        area = SIZE * SIZE,
        moves = MOVES_PER_ROUND,
        lcg_mul = LCG_MUL,
        lcg_add = LCG_ADD,
        fresh_phase = rounds & 3,
        scan_e = scan_block("e", 1),
        scan_w = scan_block("w", -1),
        scan_s = scan_block("s", W as i32),
        scan_n = scan_block("n", -(W as i32)),
    );
    let program = assemble(&src).expect("go workload assembles");
    let _ = Lcg::new(0); // keep util in the module's dependency surface
    Workload {
        name: "go",
        analog_of: "SpecInt95 go (input: seeded 15x15 positions, 25 moves/round)",
        description: "influence-map board evaluation with unrolled direction scans",
        program,
        expected_output: reference(rounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_small() {
        let w = build(1);
        let out = w.run_to_halt(20_000_000);
        assert_eq!(out, w.expected_output);
    }

    #[test]
    fn multiple_rounds_progress() {
        let w = build(2);
        let out = w.run_to_halt(40_000_000);
        assert_eq!(out, w.expected_output);
        assert_ne!(out[0], out[1]);
    }

    #[test]
    fn reference_places_distinct_moves() {
        let mut g = RefGo::new();
        g.round(true);
        let stones: usize = g.board.iter().filter(|&&v| v == 1 || v == 2).count();
        assert!(stones > INIT_STONES as usize / 2);
    }
}
