//! `jpeg` — integer DCT image coder (analog of SpecInt95 *ijpeg*).
//!
//! Character preserved: long, loop-dominated computation with few and
//! highly biased branches, producing long traces with high prediction
//! accuracy — the benchmark the paper's predictors find easiest after
//! compress.
//!
//! Per block: fill 8x8 pixels from an LCG, two 8x8 fixed-point matrix
//! multiplies (the separable DCT), quantization by division, zigzag scan
//! and run-length encoding into a checksum.

use crate::util::{words_directive, LCG_ADD, LCG_MUL};
use crate::Workload;
use ntp_isa::asm::assemble;

/// Fixed-point DCT basis, `round(cos((2k+1)uπ/16) * 512)`.
fn coef_table() -> [i32; 64] {
    let mut c = [0i32; 64];
    for u in 0..8 {
        for k in 0..8 {
            let angle = (2.0 * k as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            c[u * 8 + k] = (angle.cos() * 512.0).round() as i32;
        }
    }
    c
}

/// JPEG-style luminance quantization values, clamped to small integers.
fn quant_table() -> [i32; 64] {
    const Q: [i32; 64] = [
        16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69,
        56, 14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81,
        104, 113, 92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
    ];
    Q
}

/// The standard zigzag scan order.
fn zigzag_table() -> [i32; 64] {
    const Z: [i32; 64] = [
        0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27,
        20, 13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
        58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
    ];
    Z
}

fn reference(rounds: u32) -> Vec<u32> {
    let coef = coef_table();
    let quant = quant_table();
    let zigzag = zigzag_table();
    let mut lcg: u32 = 0x1234_0001;
    let mut checksum: u32 = 0;
    let mut out = Vec::new();
    for _ in 0..rounds {
        let mut pix = [0i32; 64];
        for p in pix.iter_mut() {
            lcg = lcg.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
            *p = ((lcg >> 24) & 0xFF) as i32 - 128;
        }
        let mut tmp = [0i32; 64];
        for u in 0..8 {
            for x in 0..8 {
                let mut acc = 0i32;
                for k in 0..8 {
                    acc = acc.wrapping_add(coef[u * 8 + k].wrapping_mul(pix[k * 8 + x]));
                }
                tmp[u * 8 + x] = acc >> 9;
            }
        }
        let mut freq = [0i32; 64];
        for u in 0..8 {
            for v in 0..8 {
                let mut acc = 0i32;
                for k in 0..8 {
                    acc = acc.wrapping_add(tmp[u * 8 + k].wrapping_mul(coef[v * 8 + k]));
                }
                freq[u * 8 + v] = acc >> 9;
            }
        }
        let mut run: u32 = 0;
        for &zz in zigzag.iter() {
            let q = freq[zz as usize] / quant[zz as usize];
            if q == 0 {
                run += 1;
            } else {
                let sym = (run << 16) ^ ((q as u32) & 0xFFFF);
                checksum = checksum.wrapping_mul(31).wrapping_add(sym);
                run = 0;
            }
        }
        checksum = checksum.wrapping_mul(31).wrapping_add(run);
        out.push(checksum);
    }
    out
}

/// Builds the workload; each round codes one 8x8 block (~9K instructions).
pub fn build(rounds: u32) -> Workload {
    assert!(rounds >= 1);
    let coef: Vec<u32> = coef_table().iter().map(|&v| v as u32).collect();
    let quant: Vec<u32> = quant_table().iter().map(|&v| v as u32).collect();
    let zigzag: Vec<u32> = zigzag_table().iter().map(|&v| v as u32).collect();
    let src = format!(
        "
; jpeg — 8x8 integer DCT + quantize + zigzag RLE
; a0 pix, a1 tmp, a2 freq, a3 coef, s1 quant, s2 zigzag,
; s0 lcg, s3 checksum, s7 rounds
main:   la   a0, pix
        la   a1, tmpbuf
        la   a2, freq
        la   a3, coef
        la   s1, quant
        la   s2, zigzag
        li   s0, 0x12340001
        li   s3, 0
        li   s7, {rounds}
block:
        ; ---- fill pixels ----
        li   t0, 0
fill:   li   t1, {lcg_mul}
        mul  s0, s0, t1
        li   t1, {lcg_add}
        add  s0, s0, t1
        srl  t1, s0, 24
        addi t1, t1, -128
        sll  t2, t0, 2
        add  t2, a0, t2
        sw   t1, 0(t2)
        addi t0, t0, 1
        li   t1, 64
        bne  t0, t1, fill
        ; ---- stage 1: tmp[u][x] = (sum_k coef[u][k]*pix[k][x]) >> 9 ----
        li   t0, 0              ; u
s1_u:   li   t1, 0              ; x
s1_x:   li   t2, 0              ; k
        li   t3, 0              ; acc
s1_k:   sll  t4, t0, 3
        add  t4, t4, t2
        sll  t4, t4, 2
        add  t4, a3, t4
        lw   t5, 0(t4)          ; coef[u*8+k]
        sll  t4, t2, 3
        add  t4, t4, t1
        sll  t4, t4, 2
        add  t4, a0, t4
        lw   t6, 0(t4)          ; pix[k*8+x]
        mul  t5, t5, t6
        add  t3, t3, t5
        addi t2, t2, 1
        li   t4, 8
        bne  t2, t4, s1_k
        sra  t3, t3, 9
        sll  t4, t0, 3
        add  t4, t4, t1
        sll  t4, t4, 2
        add  t4, a1, t4
        sw   t3, 0(t4)
        addi t1, t1, 1
        li   t4, 8
        bne  t1, t4, s1_x
        addi t0, t0, 1
        bne  t0, t4, s1_u
        ; ---- stage 2: freq[u][v] = (sum_k tmp[u][k]*coef[v][k]) >> 9 ----
        li   t0, 0              ; u
s2_u:   li   t1, 0              ; v
s2_v:   li   t2, 0              ; k
        li   t3, 0              ; acc
s2_k:   sll  t4, t0, 3
        add  t4, t4, t2
        sll  t4, t4, 2
        add  t4, a1, t4
        lw   t5, 0(t4)          ; tmp[u*8+k]
        sll  t4, t1, 3
        add  t4, t4, t2
        sll  t4, t4, 2
        add  t4, a3, t4
        lw   t6, 0(t4)          ; coef[v*8+k]
        mul  t5, t5, t6
        add  t3, t3, t5
        addi t2, t2, 1
        li   t4, 8
        bne  t2, t4, s2_k
        sra  t3, t3, 9
        sll  t4, t0, 3
        add  t4, t4, t1
        sll  t4, t4, 2
        add  t4, a2, t4
        sw   t3, 0(t4)
        addi t1, t1, 1
        li   t4, 8
        bne  t1, t4, s2_v
        addi t0, t0, 1
        bne  t0, t4, s2_u
        ; ---- quantize + zigzag + RLE ----
        li   t0, 0              ; n
        li   t7, 0              ; run
rle:    sll  t1, t0, 2
        add  t1, s2, t1
        lw   t2, 0(t1)          ; zz index
        sll  t3, t2, 2
        add  t4, a2, t3
        lw   t5, 0(t4)          ; freq[zz]
        add  t4, s1, t3
        lw   t6, 0(t4)          ; quant[zz]
        div  t5, t5, t6
        bnez t5, rle_emit
        addi t7, t7, 1
        j    rle_next
rle_emit:
        sll  t8, t7, 16
        andi t9, t5, 0xFFFF
        xor  t8, t8, t9
        li   t9, 31
        mul  s3, s3, t9
        add  s3, s3, t8
        li   t7, 0
rle_next:
        addi t0, t0, 1
        li   t1, 64
        bne  t0, t1, rle
        li   t9, 31
        mul  s3, s3, t9
        add  s3, s3, t7
        out  s3
        addi s7, s7, -1
        bnez s7, block
        halt
        .data
coef:
{coef_words}
quant:
{quant_words}
zigzag:
{zigzag_words}
pix:    .space 256
tmpbuf: .space 256
freq:   .space 256
",
        lcg_mul = LCG_MUL,
        lcg_add = LCG_ADD,
        coef_words = words_directive(&coef),
        quant_words = words_directive(&quant),
        zigzag_words = words_directive(&zigzag),
    );
    let program = assemble(&src).expect("jpeg workload assembles");
    Workload {
        name: "jpeg",
        analog_of: "SpecInt95 ijpeg (input: LCG-generated 8x8 blocks)",
        description: "integer DCT, quantization, zigzag RLE per block",
        program,
        expected_output: reference(rounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_small() {
        let w = build(3);
        let out = w.run_to_halt(10_000_000);
        assert_eq!(out, w.expected_output);
    }

    #[test]
    fn dc_coefficient_dominates() {
        // The DCT of random noise still concentrates energy at low
        // frequencies after quantization: runs of zeros must appear.
        let r = reference(1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn coef_table_is_symmetric_in_magnitude() {
        let c = coef_table();
        for k in 0..8 {
            assert_eq!(c[k], 512, "u=0 row is flat");
            assert_eq!(c[8 + k].abs(), c[8 + 7 - k].abs(), "u=1 row symmetry");
        }
    }
}
