//! Round-trip invariants for the 36-bit packed trace identifier and its
//! 16-bit hash, across randomized PCs — including ones at and above the
//! 30-bit word-aligned boundary (`start_pc >= 1 << 32 - 2` word bits) and
//! deliberately byte-misaligned ones.
//!
//! The contracts under test (what the predictor tables rely on):
//!
//! * **packed equality ⇔ identifier equality** for word-aligned PCs:
//!   `packed()` is injective over `(start_pc & !3, branch_bits)`;
//! * **branch-count lower bound**: `from_packed` cannot recover the true
//!   branch count (hardware never stores it); it reports the position of
//!   the highest set outcome bit, which is always `<=` the true count, and
//!   the recovered id re-packs to the same 36 bits;
//! * **hash low bits**: the low 2 bits of `hashed()` are exactly the first
//!   two branch outcomes.

use ntp_trace::{HashedId, TraceId, HASHED_ID_BITS, TRACE_ID_BITS};

/// Deterministic xorshift64 so failures reproduce from the printed seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A randomized trace id: arbitrary 32-bit PC (word-aligned), 0–6 branches.
fn random_id(rng: &mut Rng) -> TraceId {
    let r = rng.next();
    let pc = (r as u32) & !3; // word-aligned
    let count = ((r >> 32) % 7) as u8;
    let bits = (r >> 40) as u8;
    TraceId::new(pc, bits, count)
}

const SEED: u64 = 0xC0FF_EE00_0001;

#[test]
fn packed_equality_iff_id_equality() {
    let mut rng = Rng(SEED);
    let ids: Vec<TraceId> = (0..512).map(|_| random_id(&mut rng)).collect();
    for (i, a) in ids.iter().enumerate() {
        for b in &ids[i..] {
            let same_identity = a.start_pc == b.start_pc && a.branch_bits == b.branch_bits;
            assert_eq!(
                a.packed() == b.packed(),
                same_identity,
                "packed() must separate exactly the distinct ids: {a} vs {b}"
            );
        }
    }
}

#[test]
fn packed_roundtrip_above_the_30_bit_boundary() {
    // PCs whose word address needs all 30 stored bits (>= 1 << 31 bytes)
    // and PCs straddling the boundary exactly.
    let mut rng = Rng(SEED ^ 0x5DEE_CE66);
    for k in 0..2048u64 {
        let pc = if k % 3 == 0 {
            // force the high word bits on
            (0xC000_0000u32 | (rng.next() as u32)) & !3
        } else {
            (rng.next() as u32) & !3
        };
        let count = (k % 7) as u8;
        let id = TraceId::new(pc, (rng.next() >> 17) as u8, count);
        let packed = id.packed();
        assert!(
            packed < 1u64 << TRACE_ID_BITS,
            "fits in 36 bits: {packed:#x}"
        );
        let back = TraceId::from_packed(packed);
        assert_eq!(back.start_pc, id.start_pc, "word-aligned PC survives");
        assert_eq!(back.branch_bits, id.branch_bits, "outcome bits survive");
        assert_eq!(back.packed(), packed, "re-pack is the identity");
    }
}

#[test]
fn from_packed_branch_count_is_a_lower_bound() {
    let mut rng = Rng(SEED ^ 0xDA7A_F00D);
    for _ in 0..2048 {
        let id = random_id(&mut rng);
        let back = TraceId::from_packed(id.packed());
        assert!(
            back.branch_count <= id.branch_count,
            "recovered count {} must lower-bound the true count {} ({id})",
            back.branch_count,
            id.branch_count
        );
        // The bound is tight exactly when the last branch was taken.
        if id.branch_count > 0 && id.outcome(id.branch_count as usize - 1) {
            assert_eq!(back.branch_count, id.branch_count, "{id}");
        }
        // All recovered outcome bits are real.
        assert_eq!(back.branch_bits, id.branch_bits);
    }
}

#[test]
fn byte_misaligned_pcs_collapse_to_their_word() {
    // The packed form stores the *word* address: the two byte bits are
    // dropped by construction (instructions are word-aligned; a misaligned
    // PC cannot name a different trace).
    let mut rng = Rng(SEED ^ 0xA11A_57ED);
    for _ in 0..512 {
        let r = rng.next();
        let pc = r as u32;
        let id = TraceId::new(pc, (r >> 36) as u8, ((r >> 33) % 7) as u8);
        let aligned = TraceId::new(pc & !3, id.branch_bits, id.branch_count);
        assert_eq!(id.packed(), aligned.packed(), "pc={pc:#x}");
        assert_eq!(
            TraceId::from_packed(id.packed()).start_pc,
            pc & !3,
            "round trip lands on the word"
        );
    }
}

#[test]
fn hashed_low_two_bits_are_first_two_outcomes() {
    let mut rng = Rng(SEED ^ 0x0DD5_EED5);
    for _ in 0..2048 {
        let id = random_id(&mut rng);
        let h = id.hashed();
        let expect_low2 = if id.branch_count >= 2 {
            id.branch_bits & 0b11
        } else {
            // fewer than two branches: the missing outcomes are zero bits
            id.branch_bits & ((1 << id.branch_count) - 1) & 0b11
        };
        assert_eq!(
            (h.0 & 0b11) as u8,
            expect_low2,
            "hash low-2 outcome contract for {id}"
        );
        // And the hash is a pure function of the identifier.
        assert_eq!(h, id.hashed());
        assert_eq!(h, HashedId::from(id));
    }
}

#[test]
fn hashed_uses_all_sixteen_bits() {
    // Sweep enough ids that every hash bit position is exercised; a stuck
    // bit would mean the secondary index/tag space is silently halved.
    let mut rng = Rng(SEED ^ 0xB17_C0B7);
    let mut ones = 0u16;
    let mut zeros = 0u16;
    for _ in 0..4096 {
        let h = random_id(&mut rng).hashed().0;
        ones |= h;
        zeros |= !h;
    }
    assert_eq!(ones, u16::MAX, "every hash bit takes value 1 somewhere");
    assert_eq!(zeros, u16::MAX, "every hash bit takes value 0 somewhere");
    assert_eq!(HASHED_ID_BITS, 16);
}
