//! Telemetry integration: [`ToJson`] for the trace-construction stats, so
//! Table-1/Table-2 inputs land in `BENCH_*.json` reports with both the raw
//! counters and the derived per-trace ratios.

use crate::{ControlMix, RedundancyStats, TraceStats};
use ntp_telemetry::{Json, ToJson};

impl ToJson for TraceStats {
    /// Counters first, derived means last (Table 1/2 columns).
    fn to_json(&self) -> Json {
        Json::object()
            .with("traces", Json::U64(self.traces()))
            .with("instrs", Json::U64(self.instrs()))
            .with("cond_branches", Json::U64(self.cond_branches()))
            .with("calls", Json::U64(self.calls()))
            .with("returns", Json::U64(self.returns()))
            .with("indirect_endings", Json::U64(self.indirect_endings()))
            .with("static_traces", Json::U64(self.static_traces() as u64))
            .with("avg_trace_len", Json::F64(self.avg_trace_len()))
            .with("branches_per_trace", Json::F64(self.branches_per_trace()))
    }
}

impl ToJson for RedundancyStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("static_traces", Json::U64(self.static_traces() as u64))
            .with("unique_instrs", Json::U64(self.unique_instrs() as u64))
            .with("stored_instrs", Json::U64(self.stored_instrs()))
            .with("duplication_factor", Json::F64(self.duplication_factor()))
            .with("duplicated_fraction", Json::F64(self.duplicated_fraction()))
    }
}

impl ToJson for ControlMix {
    fn to_json(&self) -> Json {
        Json::object()
            .with("instrs", Json::U64(self.instrs))
            .with("cond_branches", Json::U64(self.cond_branches))
            .with("taken_branches", Json::U64(self.taken_branches))
            .with("jumps", Json::U64(self.jumps))
            .with("calls", Json::U64(self.calls))
            .with("indirect_jumps", Json::U64(self.indirect_jumps))
            .with("indirect_calls", Json::U64(self.indirect_calls))
            .with("returns", Json::U64(self.returns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_traces, TraceConfig};
    use ntp_isa::asm::assemble;
    use ntp_sim::Machine;

    #[test]
    fn trace_stats_json_round_trips() {
        let src = "
main:   li   t0, 6
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut stats = TraceStats::new();
        let mut red = RedundancyStats::new();
        run_traces(&mut m, 10_000, TraceConfig::default(), |t| {
            stats.record(t);
            red.record(t);
        })
        .unwrap();

        let j = stats.to_json();
        assert_eq!(j.get("instrs").and_then(Json::as_u64), Some(stats.instrs()));
        assert!(j.get("avg_trace_len").and_then(Json::as_f64).unwrap() > 1.0);
        let parsed = ntp_telemetry::json::parse(&j.render()).unwrap();
        assert_eq!(parsed, j);

        let rj = red.to_json();
        assert_eq!(
            rj.get("static_traces").and_then(Json::as_u64),
            Some(red.static_traces() as u64)
        );
        assert!(ntp_telemetry::json::parse(&rj.render()).is_ok());
    }

    #[test]
    fn control_mix_json_has_all_kinds() {
        let mix = ControlMix {
            instrs: 100,
            cond_branches: 10,
            taken_branches: 7,
            jumps: 2,
            calls: 3,
            indirect_jumps: 1,
            indirect_calls: 1,
            returns: 4,
        };
        let j = mix.to_json();
        for key in [
            "instrs",
            "cond_branches",
            "taken_branches",
            "jumps",
            "calls",
            "indirect_jumps",
            "indirect_calls",
            "returns",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("taken_branches"), Some(&Json::U64(7)));
    }
}
