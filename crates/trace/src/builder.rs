//! Trace selection: chopping the dynamic instruction stream into traces.

use crate::trace::{CtrlInfo, MAX_TRACE_BRANCHES, MAX_TRACE_LEN};
use crate::{Trace, TraceId};
use ntp_sim::{Machine, SimError, Step, StopReason};

/// Trace-selection limits and heuristics.
///
/// The defaults are the paper's: at most 16 instructions and 6 conditional
/// branches per trace, and any instruction with an indirect target ends its
/// trace. The two `stop_at_*` heuristics implement the selection-policy
/// study the paper defers ("a study of the relation of trace selection and
/// trace predictability is beyond the scope of this paper", §4.2):
/// stopping at calls/returns aligns traces with procedure boundaries;
/// stopping at backward taken branches aligns them with loop iterations.
/// Both reduce redundancy in a trace cache at some cost in trace length.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum instructions per trace.
    pub max_len: usize,
    /// Maximum embedded conditional branches per trace.
    pub max_branches: usize,
    /// End a trace after any call instruction (direct calls; indirect calls
    /// already end traces).
    pub stop_at_calls: bool,
    /// End a trace after a taken backward conditional branch (a loop
    /// back-edge).
    pub stop_at_loop_back_edges: bool,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            max_len: MAX_TRACE_LEN,
            max_branches: MAX_TRACE_BRANCHES,
            stop_at_calls: false,
            stop_at_loop_back_edges: false,
        }
    }
}

impl TraceConfig {
    /// The paper's selection policy with a different length cap.
    ///
    /// # Panics
    ///
    /// Panics (in [`TraceBuilder::new`]) if `max_len` exceeds
    /// [`MAX_TRACE_LEN`].
    pub fn with_max_len(max_len: usize) -> TraceConfig {
        TraceConfig {
            max_len,
            ..TraceConfig::default()
        }
    }

    /// Validates the limits without panicking: `max_len` must be
    /// `1..=`[`MAX_TRACE_LEN`] and `max_branches`
    /// `1..=`[`MAX_TRACE_BRANCHES`] (the identifier's 6-bit outcome field).
    pub fn try_validate(&self) -> Result<(), TraceConfigError> {
        if !(1..=MAX_TRACE_LEN).contains(&self.max_len) {
            return Err(TraceConfigError::MaxLenOutOfRange {
                max_len: self.max_len,
            });
        }
        if !(1..=MAX_TRACE_BRANCHES).contains(&self.max_branches) {
            return Err(TraceConfigError::MaxBranchesOutOfRange {
                max_branches: self.max_branches,
            });
        }
        Ok(())
    }
}

/// A rejected [`TraceConfig`]; the [`std::fmt::Display`] form names the
/// offending field and its legal range.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceConfigError {
    /// `max_len` was zero or above [`MAX_TRACE_LEN`].
    MaxLenOutOfRange {
        /// The rejected value.
        max_len: usize,
    },
    /// `max_branches` was zero or above [`MAX_TRACE_BRANCHES`].
    MaxBranchesOutOfRange {
        /// The rejected value.
        max_branches: usize,
    },
}

impl std::fmt::Display for TraceConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceConfigError::MaxLenOutOfRange { max_len } => write!(
                f,
                "trace.max_len = {max_len} is outside the legal range 1..={MAX_TRACE_LEN}"
            ),
            TraceConfigError::MaxBranchesOutOfRange { max_branches } => write!(
                f,
                "trace.max_branches = {max_branches} is outside the legal range \
                 1..={MAX_TRACE_BRANCHES}"
            ),
        }
    }
}

impl std::error::Error for TraceConfigError {}

#[derive(Copy, Clone)]
struct Partial {
    start_pc: u32,
    len: u8,
    branch_bits: u8,
    branch_count: u8,
    call_count: u8,
    last_pc: u32,
    controls: [CtrlInfo; MAX_TRACE_LEN],
    n_controls: u8,
}

impl Partial {
    fn new(pc: u32) -> Partial {
        Partial {
            start_pc: pc,
            len: 0,
            branch_bits: 0,
            branch_count: 0,
            call_count: 0,
            last_pc: pc,
            controls: [CtrlInfo {
                pc: 0,
                target: 0,
                kind: ntp_isa::ControlKind::None,
                taken: false,
            }; MAX_TRACE_LEN],
            n_controls: 0,
        }
    }

    fn finish(&self, ends_in_return: bool, ends_in_indirect: bool) -> Trace {
        Trace::from_parts(
            TraceId::new(self.start_pc, self.branch_bits, self.branch_count),
            self.len,
            self.call_count,
            ends_in_return,
            ends_in_indirect,
            self.last_pc,
            self.controls,
            self.n_controls,
        )
    }
}

/// Incremental trace selector.
///
/// Feed it every retired [`Step`]; it emits a [`Trace`] whenever one
/// completes. Call [`TraceBuilder::flush`] at the end of the run to obtain
/// the final partial trace.
///
/// # Examples
///
/// ```
/// use ntp_isa::asm::assemble;
/// use ntp_sim::Machine;
/// use ntp_trace::{TraceBuilder, TraceConfig};
///
/// let p = assemble("main: jal f\n halt\nf: ret\n")?;
/// let mut m = Machine::new(p);
/// let mut builder = TraceBuilder::new(TraceConfig::default());
/// let mut traces = Vec::new();
/// m.run_with(100, |step| {
///     if let Some(t) = builder.push(step) {
///         traces.push(t);
///     }
/// })?;
/// traces.extend(builder.flush());
/// // `ret` has an indirect target, so it ends the first trace.
/// assert_eq!(traces[0].len(), 2);
/// assert!(traces[0].ends_in_return());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct TraceBuilder {
    cfg: TraceConfig,
    cur: Option<Partial>,
}

impl TraceBuilder {
    /// Creates a builder with the given limits.
    ///
    /// # Panics
    ///
    /// Panics if `max_len` is 0 or exceeds [`MAX_TRACE_LEN`], or if
    /// `max_branches` exceeds [`MAX_TRACE_BRANCHES`].
    pub fn new(cfg: TraceConfig) -> TraceBuilder {
        match TraceBuilder::try_new(cfg) {
            Ok(b) => b,
            Err(e) => panic!("invalid trace config: {e}"),
        }
    }

    /// Creates a builder, rejecting invalid limits with a typed
    /// [`TraceConfigError`] instead of panicking.
    pub fn try_new(cfg: TraceConfig) -> Result<TraceBuilder, TraceConfigError> {
        cfg.try_validate()?;
        Ok(TraceBuilder { cfg, cur: None })
    }

    /// The limits in force.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Appends one retired instruction; returns a trace if this instruction
    /// completed one.
    pub fn push(&mut self, step: &Step) -> Option<Trace> {
        let mut completed = None;

        let is_branch = step
            .control
            .map(|c| c.kind == ntp_isa::ControlKind::CondBranch)
            .unwrap_or(false);

        // A 7th conditional branch may not join this trace: seal the current
        // trace first and start a fresh one at this instruction.
        if is_branch {
            if let Some(cur) = &self.cur {
                if cur.branch_count as usize == self.cfg.max_branches {
                    completed = Some(cur.finish(false, false));
                    self.cur = None;
                }
            }
        }

        let cur = self.cur.get_or_insert_with(|| Partial::new(step.pc));
        cur.len += 1;
        cur.last_pc = step.pc;

        let mut ends_in_return = false;
        let mut ends_in_indirect = false;
        let mut seal = false;

        if let Some(ev) = step.control {
            cur.controls[cur.n_controls as usize] = CtrlInfo {
                pc: step.pc,
                target: ev.target,
                kind: ev.kind,
                taken: ev.taken,
            };
            cur.n_controls += 1;
            match ev.kind {
                ntp_isa::ControlKind::CondBranch => {
                    if ev.taken {
                        cur.branch_bits |= 1 << cur.branch_count;
                        if self.cfg.stop_at_loop_back_edges && ev.target <= step.pc {
                            seal = true;
                        }
                    }
                    cur.branch_count += 1;
                }
                ntp_isa::ControlKind::Call => {
                    cur.call_count += 1;
                    if self.cfg.stop_at_calls {
                        seal = true;
                    }
                }
                ntp_isa::ControlKind::IndirectCall => {
                    cur.call_count += 1;
                    ends_in_indirect = true;
                    seal = true;
                }
                ntp_isa::ControlKind::IndirectJump => {
                    ends_in_indirect = true;
                    seal = true;
                }
                ntp_isa::ControlKind::Return => {
                    ends_in_return = true;
                    ends_in_indirect = true;
                    seal = true;
                }
                ntp_isa::ControlKind::Jump | ntp_isa::ControlKind::None => {}
            }
        }

        if cur.len as usize == self.cfg.max_len {
            seal = true;
        }

        if seal {
            let done = cur.finish(ends_in_return, ends_in_indirect);
            self.cur = None;
            debug_assert!(completed.is_none(), "at most one trace completes per step");
            completed = Some(done);
        }
        completed
    }

    /// Emits the in-progress partial trace, if any (call at end of run).
    pub fn flush(&mut self) -> Option<Trace> {
        self.cur.take().map(|p| p.finish(false, false))
    }
}

/// Runs `machine` for up to `budget` instructions, invoking `visit` on every
/// completed trace (including the final partial one).
///
/// # Errors
///
/// Propagates the first [`SimError`] from the machine.
pub fn run_traces<F: FnMut(&Trace)>(
    machine: &mut Machine,
    budget: u64,
    cfg: TraceConfig,
    mut visit: F,
) -> Result<StopReason, SimError> {
    let mut builder = TraceBuilder::new(cfg);
    let stop = machine.run_with(budget, |step| {
        if let Some(t) = builder.push(step) {
            visit(&t);
        }
    })?;
    if let Some(t) = builder.flush() {
        visit(&t);
    }
    Ok(stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_isa::asm::assemble;

    fn traces_of(src: &str, budget: u64) -> Vec<Trace> {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut out = Vec::new();
        run_traces(&mut m, budget, TraceConfig::default(), |t| out.push(*t)).unwrap();
        out
    }

    #[test]
    fn straightline_code_chunks_at_16() {
        let body = "        addi t0, t0, 1\n".repeat(40);
        let src = format!("main:\n{body}        halt\n");
        let ts = traces_of(&src, 1000);
        // 41 instructions: 16 + 16 + 9.
        assert_eq!(
            ts.iter().map(|t| t.len()).collect::<Vec<_>>(),
            vec![16, 16, 9]
        );
        assert_eq!(ts[1].id().start_pc, ts[0].id().start_pc + 64);
    }

    #[test]
    fn return_ends_trace() {
        let ts = traces_of("main: jal f\n halt\nf: ret\n", 100);
        // Trace 1: jal + ret (the return seals it). Trace 2: halt (partial).
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].len(), 2);
        assert!(ts[0].ends_in_return());
        assert_eq!(ts[1].len(), 1);
    }

    #[test]
    fn branch_outcomes_recorded_in_order() {
        let src = "
main:   li   t0, 1
        beqz t0, a      ; not taken
a:      bnez t0, b      ; taken
b:      beqz zero, c    ; taken
c:      halt
";
        let ts = traces_of(src, 100);
        assert_eq!(ts.len(), 1);
        let id = ts[0].id();
        assert_eq!(id.branch_count, 3);
        assert!(!id.outcome(0));
        assert!(id.outcome(1));
        assert!(id.outcome(2));
    }

    #[test]
    fn seventh_branch_starts_new_trace() {
        // 7 consecutive not-taken branches.
        let mut src = String::from("main:\n");
        for k in 0..7 {
            src.push_str(&format!("        bnez zero, l{k}\nl{k}:\n"));
        }
        src.push_str("        halt\n");
        let ts = traces_of(&src, 100);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].branch_count(), 6);
        assert_eq!(ts[0].len(), 6);
        assert_eq!(ts[1].branch_count(), 1);
    }

    #[test]
    fn calls_counted() {
        let src = "
main:   jal f
        jal f
        halt
f:      ret
";
        let ts = traces_of(src, 100);
        // Trace 1: jal; f: ret (ends trace). Trace 2: jal; ret. Trace 3: halt.
        assert_eq!(ts[0].call_count(), 1);
        assert!(ts[0].ends_in_return());
        assert_eq!(ts[0].len(), 2);
    }

    #[test]
    fn indirect_call_ends_trace_and_counts_call() {
        let src = "
main:   la   t0, f
        jalr t0
        halt
f:      ret
";
        let ts = traces_of(src, 100);
        assert_eq!(ts[0].call_count(), 1);
        assert!(ts[0].ends_in_indirect());
        assert!(!ts[0].ends_in_return());
        assert_eq!(ts[0].len(), 3); // lui, ori, jalr
    }

    #[test]
    fn flush_emits_partial_trace() {
        let ts = traces_of("main: j main\n", 5);
        // Five iterations of a 1-instruction loop: j is direct, embedded.
        let total: usize = ts.iter().map(|t| t.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn deterministic_selection_gives_unique_ids() {
        // Same program point revisited must produce identical traces.
        let src = "
main:   li   t0, 20
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
        let ts = traces_of(src, 1000);
        use std::collections::HashMap;
        let mut seen: HashMap<u64, (usize, u32)> = HashMap::new();
        for t in &ts[..ts.len() - 1] {
            let e = seen
                .entry(t.id().packed())
                .or_insert((t.len(), t.last_pc()));
            assert_eq!(*e, (t.len(), t.last_pc()), "same id, same contents");
        }
    }

    #[test]
    fn stop_at_calls_ends_trace_after_jal() {
        let p = assemble("main: jal f\n addi t0, t0, 1\n halt\nf: ret\n").unwrap();
        let mut m = Machine::new(p);
        let mut ts = Vec::new();
        let cfg = TraceConfig {
            stop_at_calls: true,
            ..TraceConfig::default()
        };
        run_traces(&mut m, 100, cfg, |t| ts.push(*t)).unwrap();
        // jal alone | ret | addi+halt
        assert_eq!(ts[0].len(), 1);
        assert_eq!(ts[0].call_count(), 1);
        assert!(ts[1].ends_in_return());
    }

    #[test]
    fn stop_at_back_edges_aligns_with_iterations() {
        let src = "
main:   li   t0, 5
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut ts = Vec::new();
        let cfg = TraceConfig {
            stop_at_loop_back_edges: true,
            ..TraceConfig::default()
        };
        run_traces(&mut m, 100, cfg, |t| ts.push(*t)).unwrap();
        // First trace: li, addi, bnez(taken back edge). Then one trace per
        // iteration, then the final not-taken + halt.
        assert_eq!(ts[0].len(), 3);
        assert_eq!(ts[1].len(), 2);
        assert_eq!(ts[1].branch_count(), 1);
        // Iterations 2–4 are taken back edges (iteration 5 falls through
        // into the halt).
        let back_edge_traces = ts.iter().filter(|t| t.len() == 2).count();
        assert_eq!(back_edge_traces, 3, "{ts:?}");
    }

    #[test]
    fn shorter_max_len_still_partitions_stream() {
        let body = "        addi t0, t0, 1\n".repeat(20);
        let src = format!("main:\n{body}        halt\n");
        let p = assemble(&src).unwrap();
        let mut m = Machine::new(p);
        let mut total = 0usize;
        run_traces(&mut m, 1000, TraceConfig::with_max_len(8), |t| {
            assert!(t.len() <= 8);
            total += t.len();
        })
        .unwrap();
        assert_eq!(total, 21);
    }

    #[test]
    fn controls_slice_matches_branch_count() {
        let ts = traces_of("main: beqz zero, x\nx: jal f\n halt\nf: ret\n", 100);
        let t = &ts[0];
        assert_eq!(t.cond_branches().count(), t.branch_count());
        assert_eq!(t.controls().len(), 3); // beqz, jal, ret
    }
}
