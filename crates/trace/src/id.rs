//! Trace naming: 36-bit trace identifiers and their 16-bit hashed form.

use std::fmt;

/// Number of bits in a packed [`TraceId`] (30 PC bits + 6 outcome bits).
pub const TRACE_ID_BITS: u32 = 36;

/// Number of bits in a [`HashedId`].
pub const HASHED_ID_BITS: u32 = 16;

/// A trace identifier, per §3.1 of the paper: the PC of the first instruction
/// plus the outcomes of up to six embedded conditional branches.
///
/// Instructions with indirect targets are never internal to a trace, so this
/// pair names a trace uniquely under a deterministic selection policy.
/// Outcome bits beyond the last conditional branch are zero.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId {
    /// Address of the first instruction in the trace.
    pub start_pc: u32,
    /// Bit `i` holds the outcome of the `i`-th conditional branch
    /// (1 = taken); bits beyond [`TraceId::branch_count`] are zero.
    pub branch_bits: u8,
    /// Number of conditional branches embedded in the trace (0–6).
    pub branch_count: u8,
}

impl TraceId {
    /// Builds an identifier, masking `branch_bits` to `branch_count` bits.
    ///
    /// # Panics
    ///
    /// Panics if `branch_count > 6`.
    #[inline]
    pub fn new(start_pc: u32, branch_bits: u8, branch_count: u8) -> TraceId {
        assert!(branch_count <= 6, "a trace holds at most 6 branches");
        let mask = (1u16 << branch_count) as u8 - 1;
        TraceId {
            start_pc,
            branch_bits: branch_bits & mask,
            branch_count,
        }
    }

    /// The 36-bit packed form: 30 bits of word-aligned PC and 6 outcome bits.
    ///
    /// This is what a hardware table entry would store (the paper's "36-bit
    /// identifier").
    #[inline]
    pub fn packed(self) -> u64 {
        (((self.start_pc >> 2) as u64 & 0x3FFF_FFFF) << 6) | (self.branch_bits as u64 & 0x3F)
    }

    /// Reconstructs an identifier from its packed form.
    ///
    /// The branch count is not stored in hardware; the returned value uses
    /// the position of the highest set outcome bit as a lower bound (0 if no
    /// branch was taken). Equality of trace IDs in packed form is what the
    /// predictor tables rely on.
    #[inline]
    pub fn from_packed(packed: u64) -> TraceId {
        let branch_bits = (packed & 0x3F) as u8;
        let count = 8 - branch_bits.leading_zeros() as u8;
        TraceId {
            start_pc: (((packed >> 6) & 0x3FFF_FFFF) as u32) << 2,
            branch_bits,
            branch_count: count,
        }
    }

    /// The outcome of the `i`-th conditional branch in the trace.
    ///
    /// # Panics
    ///
    /// Panics if `i >= branch_count`.
    #[inline]
    pub fn outcome(self, i: usize) -> bool {
        assert!(i < self.branch_count as usize);
        (self.branch_bits >> i) & 1 == 1
    }

    /// The 16-bit hashed identifier used in path history registers, table
    /// tags and trace-cache indexing (§3.2 of the paper):
    ///
    /// * bits `[1:0]`: outcomes of the first two conditional branches;
    /// * bits `[3:2]`: the two least-significant *word* bits of the start PC
    ///   (byte bits are always zero);
    /// * bits `[15:4]`: the remaining outcome bits XORed with the next
    ///   least-significant PC bits.
    #[inline]
    pub fn hashed(self) -> HashedId {
        let b = self.branch_bits as u32;
        let low2 = b & 0b11;
        let pc_low = (self.start_pc >> 2) & 0b11;
        let rest = (b >> 2) & 0xF;
        let upper = ((self.start_pc >> 4) & 0xFFF) ^ rest;
        HashedId(((upper << 4) | (pc_low << 2) | low2) as u16)
    }
}

impl fmt::Debug for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceId({self})")
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.start_pc)?;
        f.write_str(":")?;
        for i in 0..self.branch_count {
            f.write_str(if (self.branch_bits >> i) & 1 == 1 {
                "T"
            } else {
                "N"
            })?;
        }
        Ok(())
    }
}

/// The 16-bit hashed form of a [`TraceId`].
///
/// Path history registers hold these; the secondary predictor indexes with
/// one; the correlating-table tag holds the low 10 bits of one; and the
/// cost-reduced predictor stores one instead of a full trace ID.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct HashedId(pub u16);

impl HashedId {
    /// The low `n` bits, used for tags and table indexing.
    ///
    /// A hashed identifier only has [`HASHED_ID_BITS`] bits, so `n` is
    /// clamped to 16: any wider request returns the whole value. The clamp
    /// happens *before* the mask is built — the previous shape computed
    /// `(1u32 << n) - 1` first, which for `n >= 32` is an overflowing shift
    /// (a panic in debug builds, a wrapped mask in release), so a DOLC or
    /// tag width that slipped past validation turned into a crash or a
    /// silently truncated index here.
    #[inline]
    pub fn low_bits(self, n: u32) -> u32 {
        let n = n.min(HASHED_ID_BITS);
        (self.0 as u32) & ((1u32 << n) - 1)
    }
}

impl fmt::Debug for HashedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HashedId({:#06x})", self.0)
    }
}

impl fmt::Display for HashedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

impl From<TraceId> for HashedId {
    fn from(id: TraceId) -> HashedId {
        id.hashed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_roundtrip_preserves_identity() {
        let id = TraceId::new(0x0040_1234, 0b101101, 6);
        let back = TraceId::from_packed(id.packed());
        assert_eq!(back.start_pc, id.start_pc);
        assert_eq!(back.branch_bits, id.branch_bits);
    }

    #[test]
    fn new_masks_stray_bits() {
        let id = TraceId::new(0x400000, 0xFF, 3);
        assert_eq!(id.branch_bits, 0b111);
    }

    #[test]
    #[should_panic]
    fn too_many_branches_panics() {
        let _ = TraceId::new(0, 0, 7);
    }

    #[test]
    fn outcome_indexing() {
        let id = TraceId::new(0x400000, 0b0000_0101, 4);
        assert!(id.outcome(0));
        assert!(!id.outcome(1));
        assert!(id.outcome(2));
        assert!(!id.outcome(3));
    }

    #[test]
    fn hash_separates_first_two_outcomes() {
        // The two low bits of the hash are exactly the first two outcomes.
        for bits in 0..4u8 {
            let id = TraceId::new(0x0040_0000, bits, 2);
            assert_eq!(id.hashed().0 & 0b11, bits as u16);
        }
    }

    #[test]
    fn hash_mixes_pc() {
        let a = TraceId::new(0x0040_0000, 0, 0).hashed();
        let b = TraceId::new(0x0040_0010, 0, 0).hashed();
        assert_ne!(a, b);
    }

    #[test]
    fn hash_differs_for_later_outcomes() {
        let a = TraceId::new(0x0040_0000, 0b000100, 6).hashed();
        let b = TraceId::new(0x0040_0000, 0b000000, 6).hashed();
        assert_ne!(a, b);
    }

    #[test]
    fn low_bits_mask() {
        let h = HashedId(0xABCD);
        assert_eq!(h.low_bits(10), 0xABCD & 0x3FF);
        assert_eq!(h.low_bits(16), 0xABCD);
    }

    #[test]
    fn low_bits_clamps_wide_requests_across_0_to_36() {
        // Regression: `(1u32 << n) - 1` before the clamp is an overflowing
        // shift for n >= 32 (debug panic, wrapped mask in release). Any
        // n >= 16 must return the whole 16-bit value, for every value.
        let mut x = 0x9E3779B9u64; // deterministic xorshift-ish walk
        for _ in 0..512 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let h = HashedId(x as u16);
            for n in 0..=36u32 {
                let expect = if n >= 16 {
                    h.0 as u32
                } else {
                    (h.0 as u32) & ((1u32 << n) - 1)
                };
                assert_eq!(h.low_bits(n), expect, "h={h} n={n}");
            }
        }
        // Boundary spot checks, including the old panic range.
        assert_eq!(HashedId(0xFFFF).low_bits(0), 0);
        assert_eq!(HashedId(0xFFFF).low_bits(16), 0xFFFF);
        assert_eq!(HashedId(0xFFFF).low_bits(17), 0xFFFF);
        assert_eq!(HashedId(0xFFFF).low_bits(32), 0xFFFF);
        assert_eq!(HashedId(0xFFFF).low_bits(36), 0xFFFF);
    }

    #[test]
    fn display_forms() {
        let id = TraceId::new(0x0040_0004, 0b01, 2);
        assert_eq!(id.to_string(), "0x00400004:TN");
        assert_eq!(
            format!("{}", id.hashed()),
            format!("{:#06x}", id.hashed().0)
        );
    }
}
