//! Completed traces and their embedded control-flow records.

use crate::TraceId;
use ntp_isa::ControlKind;
use std::fmt;

/// Maximum number of instructions in a trace (the paper's limit of 16).
pub const MAX_TRACE_LEN: usize = 16;

/// Maximum number of conditional branches embedded in a trace.
pub const MAX_TRACE_BRANCHES: usize = 6;

/// A control-transfer instruction observed inside a trace.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CtrlInfo {
    /// Address of the control instruction.
    pub pc: u32,
    /// Taken-path target (for a not-taken conditional branch: the target it
    /// would have jumped to; for indirect transfers: the actual destination).
    pub target: u32,
    /// Control-flow class.
    pub kind: ControlKind,
    /// Whether control transferred.
    pub taken: bool,
}

/// A completed trace: up to 16 instructions ending at a trace boundary.
///
/// A trace ends when it reaches 16 instructions, when appending another
/// conditional branch would exceed six, or immediately after an instruction
/// with an indirect target (indirect jump/call or return) — the rules of
/// §3.1/§4.2 of the paper.
#[derive(Copy, Clone, Debug)]
pub struct Trace {
    id: TraceId,
    len: u8,
    call_count: u8,
    ends_in_return: bool,
    ends_in_indirect: bool,
    last_pc: u32,
    controls: [CtrlInfo; MAX_TRACE_LEN],
    n_controls: u8,
}

impl Trace {
    #[allow(clippy::too_many_arguments)] // crate-private constructor fed by the builder
    pub(crate) fn from_parts(
        id: TraceId,
        len: u8,
        call_count: u8,
        ends_in_return: bool,
        ends_in_indirect: bool,
        last_pc: u32,
        controls: [CtrlInfo; MAX_TRACE_LEN],
        n_controls: u8,
    ) -> Trace {
        Trace {
            id,
            len,
            call_count,
            ends_in_return,
            ends_in_indirect,
            last_pc,
            controls,
            n_controls,
        }
    }

    /// The trace's identifier (start PC + branch outcomes).
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Number of instructions in the trace (1–16).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: traces contain at least one instruction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of call instructions (`jal`/`jalr`) in the trace — the field
    /// the return history stack consumes.
    pub fn call_count(&self) -> u8 {
        self.call_count
    }

    /// True if the last instruction is a return (`jr ra`).
    pub fn ends_in_return(&self) -> bool {
        self.ends_in_return
    }

    /// True if the last instruction has an indirect target (including
    /// returns).
    pub fn ends_in_indirect(&self) -> bool {
        self.ends_in_indirect
    }

    /// Address of the last instruction in the trace.
    pub fn last_pc(&self) -> u32 {
        self.last_pc
    }

    /// Number of embedded conditional branches (0–6).
    pub fn branch_count(&self) -> usize {
        self.id.branch_count as usize
    }

    /// All control-transfer instructions in the trace, in program order.
    pub fn controls(&self) -> &[CtrlInfo] {
        &self.controls[..self.n_controls as usize]
    }

    /// Only the conditional branches, in program order.
    pub fn cond_branches(&self) -> impl Iterator<Item = &CtrlInfo> {
        self.controls()
            .iter()
            .filter(|c| c.kind == ControlKind::CondBranch)
    }

    /// The address of the instruction that follows the trace when the trace
    /// does not end in a control transfer (the fall-through successor).
    pub fn fallthrough(&self) -> u32 {
        self.last_pc.wrapping_add(4)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} len={} calls={}{}",
            self.id,
            self.len,
            self.call_count,
            if self.ends_in_return { " ret" } else { "" }
        )
    }
}
