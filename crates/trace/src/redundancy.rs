//! Trace-cache redundancy accounting.
//!
//! The paper's introduction notes that "the same instructions may appear in
//! more than one trace" and that selection heuristics should limit that
//! redundancy. This module quantifies it: across the *static* set of traces
//! observed, how many times is each instruction address stored?

use crate::Trace;
use std::collections::{HashMap, HashSet};

/// Measures how much a trace cache would duplicate instructions under a
/// given selection policy.
///
/// # Examples
///
/// ```
/// use ntp_trace::RedundancyStats;
/// let stats = RedundancyStats::new();
/// assert_eq!(stats.static_traces(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RedundancyStats {
    seen_traces: HashSet<u64>,
    /// instruction pc → number of distinct static traces containing it.
    copies: HashMap<u32, u32>,
    stored_instrs: u64,
}

impl RedundancyStats {
    /// Creates an empty accumulator.
    pub fn new() -> RedundancyStats {
        RedundancyStats::default()
    }

    /// Folds one dynamic trace in; only the first occurrence of each static
    /// trace contributes (a trace cache stores each trace once).
    pub fn record(&mut self, trace: &Trace) {
        if !self.seen_traces.insert(trace.id().packed()) {
            return;
        }
        self.stored_instrs += trace.len() as u64;
        // Walk the trace's instruction addresses: between control transfers
        // the addresses are sequential; a taken control jumps to its target.
        let mut pc = trace.id().start_pc;
        let mut controls = trace.controls().iter().peekable();
        for _ in 0..trace.len() {
            *self.copies.entry(pc).or_insert(0) += 1;
            let mut next = pc.wrapping_add(4);
            if let Some(c) = controls.peek() {
                if c.pc == pc {
                    if c.taken {
                        next = c.target;
                    }
                    controls.next();
                }
            }
            pc = next;
        }
    }

    /// Distinct static traces recorded.
    pub fn static_traces(&self) -> usize {
        self.seen_traces.len()
    }

    /// Distinct instruction addresses covered.
    pub fn unique_instrs(&self) -> usize {
        self.copies.len()
    }

    /// Instruction slots a trace cache would dedicate to these traces.
    pub fn stored_instrs(&self) -> u64 {
        self.stored_instrs
    }

    /// Mean number of stored copies per instruction — 1.0 means no
    /// duplication; the paper's heuristics aim to keep this low.
    pub fn duplication_factor(&self) -> f64 {
        if self.copies.is_empty() {
            0.0
        } else {
            self.stored_instrs as f64 / self.copies.len() as f64
        }
    }

    /// Fraction of instructions stored in more than one trace.
    pub fn duplicated_fraction(&self) -> f64 {
        if self.copies.is_empty() {
            return 0.0;
        }
        let dup = self.copies.values().filter(|&&n| n > 1).count();
        dup as f64 / self.copies.len() as f64
    }

    /// Plain-data snapshot for persistence (the on-disk trace cache). Both
    /// the static-trace set and the per-instruction copy counts come back
    /// **sorted** so the serialized form is deterministic.
    pub fn to_raw(&self) -> RedundancyRaw {
        let mut seen_traces: Vec<u64> = self.seen_traces.iter().copied().collect();
        seen_traces.sort_unstable();
        let mut copies: Vec<(u32, u32)> = self.copies.iter().map(|(&pc, &n)| (pc, n)).collect();
        copies.sort_unstable();
        RedundancyRaw {
            seen_traces,
            copies,
            stored_instrs: self.stored_instrs,
        }
    }

    /// Rebuilds an accumulator from a [`RedundancyRaw`] snapshot; the
    /// result is observationally identical to the snapshotted accumulator
    /// (including further [`RedundancyStats::record`] calls, which keep
    /// deduplicating against the restored static-trace set).
    pub fn from_raw(raw: RedundancyRaw) -> RedundancyStats {
        RedundancyStats {
            seen_traces: raw.seen_traces.into_iter().collect(),
            copies: raw.copies.into_iter().collect(),
            stored_instrs: raw.stored_instrs,
        }
    }
}

/// The plain-data form of [`RedundancyStats`] used by persistence layers
/// (see [`RedundancyStats::to_raw`] / [`RedundancyStats::from_raw`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RedundancyRaw {
    /// Distinct packed trace identifiers, sorted ascending.
    pub seen_traces: Vec<u64>,
    /// `(instruction pc, distinct static traces containing it)`, sorted by
    /// pc.
    pub copies: Vec<(u32, u32)>,
    /// Instruction slots a trace cache would dedicate to these traces.
    pub stored_instrs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_traces, TraceConfig};
    use ntp_isa::asm::assemble;
    use ntp_sim::Machine;

    fn stats_of(src: &str) -> RedundancyStats {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut stats = RedundancyStats::new();
        run_traces(&mut m, 100_000, TraceConfig::default(), |t| stats.record(t)).unwrap();
        stats
    }

    #[test]
    fn straightline_code_has_no_duplication() {
        let body = "        addi t0, t0, 1\n".repeat(30);
        let stats = stats_of(&format!("main:\n{body}        halt\n"));
        assert!((stats.duplication_factor() - 1.0).abs() < 1e-9);
        assert_eq!(stats.duplicated_fraction(), 0.0);
    }

    #[test]
    fn shared_blocks_are_counted_once_per_trace() {
        // A diamond revisited with both outcomes: block D lands in two
        // static traces.
        let src = "
main:   li   s0, 10
loop:   andi t0, s0, 1
        beqz t0, right
        addi s1, s1, 1
        j    join
right:  addi s1, s1, 2
join:   addi s2, s2, 1
        addi s0, s0, -1
        bnez s0, loop
        halt
";
        let stats = stats_of(src);
        assert!(
            stats.duplication_factor() > 1.05,
            "{}",
            stats.duplication_factor()
        );
        assert!(stats.duplicated_fraction() > 0.2);
        assert!(stats.unique_instrs() <= 12);
    }

    #[test]
    fn dynamic_repeats_do_not_inflate() {
        // The same loop trace executed many times is stored once.
        let src = "
main:   li   t0, 100
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
        let a = stats_of(src);
        let b = stats_of(&src.replace("100", "1000"));
        // 10x the dynamic traces, but the static set only wobbles by the
        // differing final partial trace.
        assert!(
            (a.static_traces() as i64 - b.static_traces() as i64).abs() <= 2,
            "{} vs {}",
            a.static_traces(),
            b.static_traces()
        );
    }

    #[test]
    fn raw_round_trip_preserves_every_accessor() {
        let src = "
main:   li   s0, 10
loop:   andi t0, s0, 1
        beqz t0, right
        addi s1, s1, 1
        j    join
right:  addi s1, s1, 2
join:   addi s0, s0, -1
        bnez s0, loop
        halt
";
        let stats = stats_of(src);
        let raw = stats.to_raw();
        assert!(raw.seen_traces.windows(2).all(|w| w[0] < w[1]), "sorted");
        assert!(raw.copies.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        let back = RedundancyStats::from_raw(raw.clone());
        assert_eq!(back.static_traces(), stats.static_traces());
        assert_eq!(back.unique_instrs(), stats.unique_instrs());
        assert_eq!(back.stored_instrs(), stats.stored_instrs());
        assert_eq!(back.duplication_factor(), stats.duplication_factor());
        assert_eq!(back.duplicated_fraction(), stats.duplicated_fraction());
        assert_eq!(back.to_raw(), raw);
    }
}
