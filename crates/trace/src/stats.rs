//! Aggregate statistics over a trace stream (the paper's Tables 1 and 2
//! inputs: instruction counts, average trace length, static trace count,
//! branches per trace).

use crate::Trace;
use ntp_isa::ControlKind;
use std::collections::HashSet;

/// Streaming statistics accumulator for traces.
///
/// # Examples
///
/// ```
/// use ntp_trace::TraceStats;
/// let stats = TraceStats::new();
/// assert_eq!(stats.traces(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    traces: u64,
    instrs: u64,
    cond_branches: u64,
    calls: u64,
    returns: u64,
    indirect: u64,
    static_ids: HashSet<u64>,
}

impl TraceStats {
    /// Creates an empty accumulator.
    pub fn new() -> TraceStats {
        TraceStats::default()
    }

    /// Folds one trace into the statistics.
    pub fn record(&mut self, trace: &Trace) {
        self.traces += 1;
        self.instrs += trace.len() as u64;
        self.cond_branches += trace.branch_count() as u64;
        self.calls += trace.call_count() as u64;
        if trace.ends_in_return() {
            self.returns += 1;
        }
        if trace.ends_in_indirect() {
            self.indirect += 1;
        }
        self.static_ids.insert(trace.id().packed());
    }

    /// Dynamic traces observed.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Instructions covered by those traces.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Conditional branches embedded in traces.
    pub fn cond_branches(&self) -> u64 {
        self.cond_branches
    }

    /// Call instructions observed.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Traces ending in a return.
    pub fn returns(&self) -> u64 {
        self.returns
    }

    /// Traces ending in any indirect-target instruction.
    pub fn indirect_endings(&self) -> u64 {
        self.indirect
    }

    /// Distinct trace identifiers seen (the paper's "static traces").
    pub fn static_traces(&self) -> usize {
        self.static_ids.len()
    }

    /// Mean instructions per trace.
    pub fn avg_trace_len(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            self.instrs as f64 / self.traces as f64
        }
    }

    /// Mean conditional branches per trace (Table 2's "Number of Branches
    /// per Trace").
    pub fn branches_per_trace(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            self.cond_branches as f64 / self.traces as f64
        }
    }

    /// Plain-data snapshot of every counter, for persistence (the on-disk
    /// trace cache). The static-id set comes back **sorted** so the
    /// serialized form is deterministic.
    pub fn to_raw(&self) -> TraceStatsRaw {
        let mut static_ids: Vec<u64> = self.static_ids.iter().copied().collect();
        static_ids.sort_unstable();
        TraceStatsRaw {
            traces: self.traces,
            instrs: self.instrs,
            cond_branches: self.cond_branches,
            calls: self.calls,
            returns: self.returns,
            indirect: self.indirect,
            static_ids,
        }
    }

    /// Rebuilds an accumulator from a [`TraceStatsRaw`] snapshot. The
    /// result is observationally identical to the accumulator the snapshot
    /// was taken from (every accessor and [`ToJson`] output agrees).
    ///
    /// [`ToJson`]: ntp_telemetry::ToJson
    pub fn from_raw(raw: TraceStatsRaw) -> TraceStats {
        TraceStats {
            traces: raw.traces,
            instrs: raw.instrs,
            cond_branches: raw.cond_branches,
            calls: raw.calls,
            returns: raw.returns,
            indirect: raw.indirect,
            static_ids: raw.static_ids.into_iter().collect(),
        }
    }
}

/// The plain-data form of [`TraceStats`] used by persistence layers (see
/// [`TraceStats::to_raw`] / [`TraceStats::from_raw`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStatsRaw {
    /// Dynamic traces observed.
    pub traces: u64,
    /// Instructions covered by those traces.
    pub instrs: u64,
    /// Conditional branches embedded in traces.
    pub cond_branches: u64,
    /// Call instructions observed.
    pub calls: u64,
    /// Traces ending in a return.
    pub returns: u64,
    /// Traces ending in any indirect-target instruction.
    pub indirect: u64,
    /// Distinct packed trace identifiers, sorted ascending.
    pub static_ids: Vec<u64>,
}

/// Classifies every control event kind for instruction-mix reporting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ControlMix {
    /// Conditional branches retired.
    pub cond_branches: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
    /// Direct jumps.
    pub jumps: u64,
    /// Direct calls.
    pub calls: u64,
    /// Indirect jumps (excluding returns).
    pub indirect_jumps: u64,
    /// Indirect calls.
    pub indirect_calls: u64,
    /// Returns.
    pub returns: u64,
    /// All instructions retired.
    pub instrs: u64,
}

impl ControlMix {
    /// Creates an empty mix.
    pub fn new() -> ControlMix {
        ControlMix::default()
    }

    /// Folds one retired instruction into the mix.
    pub fn record(&mut self, step: &ntp_sim::Step) {
        self.instrs += 1;
        if let Some(ev) = step.control {
            match ev.kind {
                ControlKind::CondBranch => {
                    self.cond_branches += 1;
                    if ev.taken {
                        self.taken_branches += 1;
                    }
                }
                ControlKind::Jump => self.jumps += 1,
                ControlKind::Call => self.calls += 1,
                ControlKind::IndirectJump => self.indirect_jumps += 1,
                ControlKind::IndirectCall => self.indirect_calls += 1,
                ControlKind::Return => self.returns += 1,
                ControlKind::None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_traces, TraceConfig};
    use ntp_isa::asm::assemble;
    use ntp_sim::Machine;

    #[test]
    fn loop_statistics() {
        let src = "
main:   li   t0, 10
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut stats = TraceStats::new();
        run_traces(&mut m, 10_000, TraceConfig::default(), |t| stats.record(t)).unwrap();
        // li (1 instr) + 10 iterations of (addi + bnez) + halt = 22.
        assert_eq!(stats.instrs(), 22);
        assert_eq!(stats.cond_branches(), 10);
        assert!(stats.traces() >= 2);
        assert!(stats.avg_trace_len() > 1.0);
        assert!(stats.static_traces() >= 2);
        assert!(stats.branches_per_trace() > 0.0);
    }

    #[test]
    fn raw_round_trip_preserves_every_accessor() {
        let src = "
main:   li   t0, 9
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut stats = TraceStats::new();
        run_traces(&mut m, 10_000, TraceConfig::default(), |t| stats.record(t)).unwrap();

        let raw = stats.to_raw();
        assert!(raw.static_ids.windows(2).all(|w| w[0] < w[1]), "sorted");
        let back = TraceStats::from_raw(raw.clone());
        assert_eq!(back.traces(), stats.traces());
        assert_eq!(back.instrs(), stats.instrs());
        assert_eq!(back.cond_branches(), stats.cond_branches());
        assert_eq!(back.calls(), stats.calls());
        assert_eq!(back.returns(), stats.returns());
        assert_eq!(back.indirect_endings(), stats.indirect_endings());
        assert_eq!(back.static_traces(), stats.static_traces());
        assert_eq!(back.avg_trace_len(), stats.avg_trace_len());
        assert_eq!(back.branches_per_trace(), stats.branches_per_trace());
        // Snapshotting the round-tripped accumulator is a fixed point.
        assert_eq!(back.to_raw(), raw);
    }

    #[test]
    fn control_mix_counts() {
        let src = "
main:   jal  f
        la   t0, f2
        jalr t0
        beqz zero, over
over:   j    end
end:    halt
f:      ret
f2:     ret
";
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut mix = ControlMix::new();
        m.run_with(100, |s| mix.record(s)).unwrap();
        assert_eq!(mix.calls, 1);
        assert_eq!(mix.indirect_calls, 1);
        assert_eq!(mix.returns, 2);
        assert_eq!(mix.jumps, 1);
        assert_eq!(mix.cond_branches, 1);
        assert_eq!(mix.taken_branches, 1);
    }
}
