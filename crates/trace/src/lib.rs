//! # ntp-trace — trace selection, naming and hashing
//!
//! A *trace* is a dynamic sequence of up to 16 instructions, possibly
//! spanning several basic blocks, with up to 6 embedded conditional branches
//! and no internal indirect-target instructions. The trace cache stores
//! traces; the next-trace predictor predicts them. This crate converts the
//! dynamic instruction stream produced by [`ntp_sim`] into traces:
//!
//! * [`TraceBuilder`]/[`run_traces`] — trace selection;
//! * [`TraceId`] — the paper's 36-bit identifier (start PC + branch
//!   outcomes) and its 16-bit [`HashedId`] form used in path histories;
//! * [`TraceRecord`] — the compact 8-byte replay form;
//! * [`TraceStats`]/[`ControlMix`] — the workload statistics of Tables 1–2.
//!
//! # Example
//!
//! ```
//! use ntp_isa::asm::assemble;
//! use ntp_sim::Machine;
//! use ntp_trace::{run_traces, TraceConfig, TraceStats};
//!
//! let p = assemble(
//!     "
//! main:   li   t0, 50
//! loop:   addi t0, t0, -1
//!         bnez t0, loop
//!         halt
//! ",
//! )?;
//! let mut m = Machine::new(p);
//! let mut stats = TraceStats::new();
//! run_traces(&mut m, 100_000, TraceConfig::default(), |t| stats.record(t))?;
//! assert_eq!(stats.cond_branches(), 50);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod builder;
mod id;
mod record;
mod redundancy;
mod stats;
mod telemetry;
mod trace;

pub use builder::{run_traces, TraceBuilder, TraceConfig, TraceConfigError};
pub use id::{HashedId, TraceId, HASHED_ID_BITS, TRACE_ID_BITS};
pub use record::TraceRecord;
pub use redundancy::{RedundancyRaw, RedundancyStats};
pub use stats::{ControlMix, TraceStats, TraceStatsRaw};
pub use trace::{CtrlInfo, Trace, MAX_TRACE_BRANCHES, MAX_TRACE_LEN};
