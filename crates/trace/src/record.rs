//! Compact trace records for cheap replay.
//!
//! A full [`Trace`] carries per-control-instruction detail (~200 bytes) that
//! only streaming consumers need. Predictor accuracy sweeps replay the same
//! trace sequence dozens of times, so they cache the 8-byte [`TraceRecord`]
//! form — everything a next-trace predictor (including its return history
//! stack) observes.

use crate::{Trace, TraceId};

/// The compact (8-byte) form of a trace, sufficient to drive any next-trace
/// predictor.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TraceRecord {
    /// Start PC of the trace.
    pub start_pc: u32,
    /// Embedded conditional branch outcomes (bit `i` = branch `i` taken).
    pub branch_bits: u8,
    /// Number of embedded conditional branches.
    pub branch_count: u8,
    /// Instructions in the trace.
    pub len: u8,
    /// Packed flags: bits `[2:0]` call count (saturating at 7), bit 3
    /// ends-in-return, bit 4 ends-in-indirect.
    flags: u8,
}

impl TraceRecord {
    /// Builds a record directly (for synthetic streams and tests; real
    /// streams convert from [`Trace`]).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds 16, or `call_count > 7`.
    pub fn new(
        id: TraceId,
        len: u8,
        call_count: u8,
        ends_in_return: bool,
        ends_in_indirect: bool,
    ) -> TraceRecord {
        assert!((1..=16).contains(&len), "trace length must be 1..=16");
        assert!(call_count <= 7, "call count saturates at 7");
        TraceRecord {
            start_pc: id.start_pc,
            branch_bits: id.branch_bits,
            branch_count: id.branch_count,
            len,
            flags: call_count | (u8::from(ends_in_return) << 3) | (u8::from(ends_in_indirect) << 4),
        }
    }

    /// The trace's identifier.
    #[inline]
    pub fn id(&self) -> TraceId {
        TraceId::new(self.start_pc, self.branch_bits, self.branch_count)
    }

    /// Number of calls in the trace (saturated at 7).
    #[inline]
    pub fn call_count(&self) -> u8 {
        self.flags & 0b111
    }

    /// True if the trace ends in a return.
    #[inline]
    pub fn ends_in_return(&self) -> bool {
        self.flags & 0b1000 != 0
    }

    /// True if the trace ends in any indirect-target instruction.
    #[inline]
    pub fn ends_in_indirect(&self) -> bool {
        self.flags & 0b1_0000 != 0
    }
}

impl From<&Trace> for TraceRecord {
    fn from(t: &Trace) -> TraceRecord {
        let id = t.id();
        let calls = t.call_count().min(7);
        let flags =
            calls | (u8::from(t.ends_in_return()) << 3) | (u8::from(t.ends_in_indirect()) << 4);
        TraceRecord {
            start_pc: id.start_pc,
            branch_bits: id.branch_bits,
            branch_count: id.branch_count,
            len: t.len() as u8,
            flags,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_traces, TraceConfig};
    use ntp_isa::asm::assemble;
    use ntp_sim::Machine;

    #[test]
    fn record_preserves_predictor_visible_state() {
        let p = assemble("main: jal f\n halt\nf: jal g\n ret\ng: ret\n").unwrap();
        let mut m = Machine::new(p);
        let mut pairs = Vec::new();
        run_traces(&mut m, 100, TraceConfig::default(), |t| {
            pairs.push((*t, TraceRecord::from(t)));
        })
        .unwrap();
        assert!(!pairs.is_empty());
        for (t, r) in pairs {
            assert_eq!(r.id(), t.id());
            assert_eq!(r.len as usize, t.len());
            assert_eq!(r.call_count(), t.call_count().min(7));
            assert_eq!(r.ends_in_return(), t.ends_in_return());
            assert_eq!(r.ends_in_indirect(), t.ends_in_indirect());
        }
    }

    #[test]
    fn record_is_small() {
        assert_eq!(std::mem::size_of::<TraceRecord>(), 8);
    }
}
