//! Segmented byte-addressable memory for the TRISC machine.

use crate::SimError;
use ntp_isa::STACK_TOP;

/// Capacity configuration for a [`Memory`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Bytes of data segment (default 16 MiB).
    pub data_capacity: u32,
    /// Bytes of stack segment (default 4 MiB), growing down from
    /// [`ntp_isa::STACK_TOP`].
    pub stack_capacity: u32,
}

impl Default for MemoryConfig {
    fn default() -> MemoryConfig {
        MemoryConfig {
            data_capacity: 16 << 20,
            stack_capacity: 4 << 20,
        }
    }
}

/// Byte-addressable memory with three segments: read-only text, a data
/// segment (initialized data + heap) and a downward-growing stack.
///
/// Accesses must be naturally aligned; unaligned or out-of-segment accesses
/// return [`SimError::MemFault`].
#[derive(Clone, Debug)]
pub struct Memory {
    text: Vec<u8>,
    text_base: u32,
    data: Vec<u8>,
    data_base: u32,
    stack: Vec<u8>,
    stack_base: u32,
}

impl Memory {
    /// Creates memory with the given text/data images and capacities.
    ///
    /// # Panics
    ///
    /// Panics if the initialized data image exceeds `config.data_capacity`.
    pub fn new(
        text: Vec<u8>,
        text_base: u32,
        data_image: &[u8],
        data_base: u32,
        config: MemoryConfig,
    ) -> Memory {
        assert!(
            data_image.len() <= config.data_capacity as usize,
            "data image ({} bytes) exceeds data capacity ({})",
            data_image.len(),
            config.data_capacity
        );
        let mut data = vec![0u8; config.data_capacity as usize];
        data[..data_image.len()].copy_from_slice(data_image);
        Memory {
            text,
            text_base,
            data,
            data_base,
            stack: vec![0u8; config.stack_capacity as usize],
            stack_base: STACK_TOP - config.stack_capacity,
        }
    }

    fn locate(&self, addr: u32, len: u32) -> Option<(&[u8], usize)> {
        let end = addr.checked_add(len)?;
        if addr >= self.data_base && end <= self.data_base + self.data.len() as u32 {
            Some((&self.data, (addr - self.data_base) as usize))
        } else if addr >= self.stack_base && end <= self.stack_base + self.stack.len() as u32 {
            Some((&self.stack, (addr - self.stack_base) as usize))
        } else if addr >= self.text_base && end <= self.text_base + self.text.len() as u32 {
            Some((&self.text, (addr - self.text_base) as usize))
        } else {
            None
        }
    }

    fn locate_mut(&mut self, addr: u32, len: u32) -> Option<(&mut [u8], usize)> {
        let end = addr.checked_add(len)?;
        if addr >= self.data_base && end <= self.data_base + self.data.len() as u32 {
            Some((&mut self.data, (addr - self.data_base) as usize))
        } else if addr >= self.stack_base && end <= self.stack_base + self.stack.len() as u32 {
            Some((&mut self.stack, (addr - self.stack_base) as usize))
        } else {
            None
        }
    }

    fn fault(addr: u32) -> SimError {
        SimError::MemFault { addr }
    }

    /// Loads a byte.
    pub fn load8(&self, addr: u32) -> Result<u8, SimError> {
        let (seg, off) = self.locate(addr, 1).ok_or_else(|| Self::fault(addr))?;
        Ok(seg[off])
    }

    /// Loads a naturally-aligned halfword (little-endian).
    pub fn load16(&self, addr: u32) -> Result<u16, SimError> {
        if addr & 1 != 0 {
            return Err(Self::fault(addr));
        }
        let (seg, off) = self.locate(addr, 2).ok_or_else(|| Self::fault(addr))?;
        Ok(u16::from_le_bytes([seg[off], seg[off + 1]]))
    }

    /// Loads a naturally-aligned word (little-endian).
    pub fn load32(&self, addr: u32) -> Result<u32, SimError> {
        if addr & 3 != 0 {
            return Err(Self::fault(addr));
        }
        let (seg, off) = self.locate(addr, 4).ok_or_else(|| Self::fault(addr))?;
        Ok(u32::from_le_bytes([
            seg[off],
            seg[off + 1],
            seg[off + 2],
            seg[off + 3],
        ]))
    }

    /// Stores a byte. Text is not writable.
    pub fn store8(&mut self, addr: u32, v: u8) -> Result<(), SimError> {
        let (seg, off) = self.locate_mut(addr, 1).ok_or_else(|| Self::fault(addr))?;
        seg[off] = v;
        Ok(())
    }

    /// Stores a naturally-aligned halfword.
    pub fn store16(&mut self, addr: u32, v: u16) -> Result<(), SimError> {
        if addr & 1 != 0 {
            return Err(Self::fault(addr));
        }
        let (seg, off) = self.locate_mut(addr, 2).ok_or_else(|| Self::fault(addr))?;
        seg[off..off + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Stores a naturally-aligned word.
    pub fn store32(&mut self, addr: u32, v: u32) -> Result<(), SimError> {
        if addr & 3 != 0 {
            return Err(Self::fault(addr));
        }
        let (seg, off) = self.locate_mut(addr, 4).ok_or_else(|| Self::fault(addr))?;
        seg[off..off + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_isa::{DATA_BASE, TEXT_BASE};

    fn mem() -> Memory {
        Memory::new(
            vec![1, 2, 3, 4],
            TEXT_BASE,
            &[10, 20, 30, 40],
            DATA_BASE,
            MemoryConfig {
                data_capacity: 4096,
                stack_capacity: 4096,
            },
        )
    }

    #[test]
    fn data_roundtrip() {
        let mut m = mem();
        m.store32(DATA_BASE + 8, 0xDEADBEEF).unwrap();
        assert_eq!(m.load32(DATA_BASE + 8).unwrap(), 0xDEADBEEF);
        m.store16(DATA_BASE + 12, 0xBEAD).unwrap();
        assert_eq!(m.load16(DATA_BASE + 12).unwrap(), 0xBEAD);
        m.store8(DATA_BASE + 14, 0x7F).unwrap();
        assert_eq!(m.load8(DATA_BASE + 14).unwrap(), 0x7F);
    }

    #[test]
    fn initialized_image_visible() {
        let m = mem();
        assert_eq!(
            m.load32(DATA_BASE).unwrap(),
            u32::from_le_bytes([10, 20, 30, 40])
        );
    }

    #[test]
    fn stack_accessible() {
        let mut m = mem();
        m.store32(STACK_TOP - 8, 99).unwrap();
        assert_eq!(m.load32(STACK_TOP - 8).unwrap(), 99);
    }

    #[test]
    fn text_readable_not_writable() {
        let mut m = mem();
        assert_eq!(
            m.load32(TEXT_BASE).unwrap(),
            u32::from_le_bytes([1, 2, 3, 4])
        );
        assert!(m.store32(TEXT_BASE, 0).is_err());
    }

    #[test]
    fn unaligned_faults() {
        let m = mem();
        assert!(m.load32(DATA_BASE + 1).is_err());
        assert!(m.load16(DATA_BASE + 1).is_err());
    }

    #[test]
    fn out_of_segment_faults() {
        let mut m = mem();
        assert!(m.load32(0).is_err());
        assert!(m.load32(DATA_BASE + 4096).is_err());
        assert!(m.store8(STACK_TOP - 4096 - 1, 0).is_err());
        assert!(m.load32(u32::MAX - 2).is_err());
    }

    #[test]
    fn cross_segment_end_faults() {
        let m = mem();
        // Word straddling the end of data capacity.
        assert!(m.load32(DATA_BASE + 4094).is_err());
    }
}
