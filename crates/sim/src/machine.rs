//! The TRISC functional machine.

use crate::{Memory, MemoryConfig};
use ntp_isa::{ControlKind, Instr, Program, Reg, STACK_TOP};
use std::fmt;

/// Simulation error (all are fatal to the run).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Load/store touched an unmapped or misaligned address.
    MemFault {
        /// The faulting address.
        addr: u32,
    },
    /// The program counter left the text segment.
    PcOutOfRange {
        /// The invalid program counter.
        pc: u32,
    },
    /// An instruction executed after the machine halted.
    Halted,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MemFault { addr } => write!(f, "memory fault at 0x{addr:08x}"),
            SimError::PcOutOfRange { pc } => write!(f, "pc 0x{pc:08x} outside text segment"),
            SimError::Halted => f.write_str("machine is halted"),
        }
    }
}

impl std::error::Error for SimError {}

/// Why [`Machine::run`] stopped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction retired.
    Halted,
    /// The instruction budget was exhausted first.
    BudgetExhausted,
}

/// A retired control-transfer instruction, as observed by front-end
/// predictors.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ControlEvent {
    /// Control-flow class of the instruction.
    pub kind: ControlKind,
    /// Whether control actually transferred (always true except for
    /// not-taken conditional branches).
    pub taken: bool,
    /// The taken-path target: for a not-taken conditional branch this is the
    /// target the branch *would have* jumped to; for indirect transfers it is
    /// the actual destination.
    pub target: u32,
}

/// One retired instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// Address of the instruction.
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// Control-flow outcome, if the instruction transfers control.
    pub control: Option<ControlEvent>,
}

impl Step {
    /// The address of the next instruction to execute.
    pub fn next_pc(&self) -> u32 {
        match self.control {
            Some(ev) if ev.taken => ev.target,
            _ => self.pc.wrapping_add(4),
        }
    }
}

/// A functional TRISC machine executing one [`Program`].
///
/// # Examples
///
/// ```
/// use ntp_isa::asm::assemble;
/// use ntp_sim::Machine;
///
/// let p = assemble("main: addi v0, zero, 21\n add v0, v0, v0\n out v0\n halt\n")?;
/// let mut m = Machine::new(p);
/// m.run(100)?;
/// assert_eq!(m.output(), &[42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    program: Program,
    regs: [u32; 32],
    pc: u32,
    mem: Memory,
    icount: u64,
    halted: bool,
    output: Vec<u32>,
}

impl Machine {
    /// Builds a machine with default memory capacities, loads the program's
    /// data image, and points `pc` at the entry label.
    pub fn new(program: Program) -> Machine {
        Machine::with_config(program, MemoryConfig::default())
    }

    /// Builds a machine with explicit memory capacities.
    ///
    /// # Panics
    ///
    /// Panics if the program's initialized data exceeds the data capacity.
    pub fn with_config(program: Program, config: MemoryConfig) -> Machine {
        let text_bytes: Vec<u8> = program
            .encode_text()
            .into_iter()
            .flat_map(u32::to_le_bytes)
            .collect();
        let mem = Memory::new(
            text_bytes,
            program.text_base,
            &program.data,
            program.data_base,
            config,
        );
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = STACK_TOP;
        let pc = program.entry;
        Machine {
            program,
            regs,
            pc,
            mem,
            icount: 0,
            halted: false,
            output: Vec::new(),
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads a register (reads of `r0` always return 0).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    /// Instructions retired so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// True once a `halt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Values emitted by `out` instructions, in order.
    pub fn output(&self) -> &[u32] {
        &self.output
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Direct access to memory (e.g. to poke workload inputs at a symbol).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Writes consecutive words starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemFault`] on unmapped or misaligned addresses.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) -> Result<(), SimError> {
        for (k, &w) in words.iter().enumerate() {
            self.mem.store32(addr + (k as u32) * 4, w)?;
        }
        Ok(())
    }

    /// Fills `buf` with consecutive words starting at `addr`.
    ///
    /// The caller provides the destination, so repeated reads (polling a
    /// buffer every step, the bench capture loop) reuse one allocation
    /// instead of collecting a fresh `Vec` per call. See
    /// [`Machine::read_words_vec`] for the allocating convenience form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemFault`] on unmapped or misaligned addresses;
    /// `buf` contents are unspecified after an error.
    pub fn read_words(&self, addr: u32, buf: &mut [u32]) -> Result<(), SimError> {
        for (k, slot) in buf.iter_mut().enumerate() {
            *slot = self.mem.load32(addr + (k as u32) * 4)?;
        }
        Ok(())
    }

    /// Reads `n` consecutive words starting at `addr` into a fresh `Vec`
    /// (allocating convenience wrapper over [`Machine::read_words`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemFault`] on unmapped or misaligned addresses.
    pub fn read_words_vec(&self, addr: u32, n: usize) -> Result<Vec<u32>, SimError> {
        let mut buf = vec![0u32; n];
        self.read_words(addr, &mut buf)?;
        Ok(buf)
    }

    /// Executes one instruction and reports what retired.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Halted`] if the machine already halted, and
    /// propagates memory faults and control transfers out of the text
    /// segment.
    pub fn step(&mut self) -> Result<Step, SimError> {
        use Instr::*;
        if self.halted {
            return Err(SimError::Halted);
        }
        let pc = self.pc;
        let instr = *self
            .program
            .instr_at(pc)
            .ok_or(SimError::PcOutOfRange { pc })?;

        let mut control: Option<ControlEvent> = None;
        let mut next = pc.wrapping_add(4);

        macro_rules! alu {
            ($d:expr, $v:expr) => {{
                let v = $v;
                self.set_reg($d, v);
            }};
        }

        match instr {
            Add(d, s, t) => alu!(d, self.reg(s).wrapping_add(self.reg(t))),
            Sub(d, s, t) => alu!(d, self.reg(s).wrapping_sub(self.reg(t))),
            And(d, s, t) => alu!(d, self.reg(s) & self.reg(t)),
            Or(d, s, t) => alu!(d, self.reg(s) | self.reg(t)),
            Xor(d, s, t) => alu!(d, self.reg(s) ^ self.reg(t)),
            Nor(d, s, t) => alu!(d, !(self.reg(s) | self.reg(t))),
            Slt(d, s, t) => alu!(d, ((self.reg(s) as i32) < (self.reg(t) as i32)) as u32),
            Sltu(d, s, t) => alu!(d, (self.reg(s) < self.reg(t)) as u32),
            Sllv(d, s, t) => alu!(d, self.reg(s) << (self.reg(t) & 31)),
            Srlv(d, s, t) => alu!(d, self.reg(s) >> (self.reg(t) & 31)),
            Srav(d, s, t) => alu!(d, ((self.reg(s) as i32) >> (self.reg(t) & 31)) as u32),
            Mul(d, s, t) => alu!(d, self.reg(s).wrapping_mul(self.reg(t))),
            Div(d, s, t) => {
                let (a, b) = (self.reg(s) as i32, self.reg(t) as i32);
                let v = if b == 0 {
                    -1
                } else if a == i32::MIN && b == -1 {
                    i32::MIN
                } else {
                    a / b
                };
                alu!(d, v as u32)
            }
            Divu(d, s, t) => {
                let (a, b) = (self.reg(s), self.reg(t));
                alu!(d, a.checked_div(b).unwrap_or(u32::MAX))
            }
            Rem(d, s, t) => {
                let (a, b) = (self.reg(s) as i32, self.reg(t) as i32);
                let v = if b == 0 {
                    a
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    a % b
                };
                alu!(d, v as u32)
            }
            Remu(d, s, t) => {
                let (a, b) = (self.reg(s), self.reg(t));
                alu!(d, if b == 0 { a } else { a % b })
            }
            Sll(d, s, sh) => alu!(d, self.reg(s) << sh),
            Srl(d, s, sh) => alu!(d, self.reg(s) >> sh),
            Sra(d, s, sh) => alu!(d, ((self.reg(s) as i32) >> sh) as u32),
            Addi(d, s, imm) => alu!(d, self.reg(s).wrapping_add(imm as i32 as u32)),
            Andi(d, s, imm) => alu!(d, self.reg(s) & imm as u32),
            Ori(d, s, imm) => alu!(d, self.reg(s) | imm as u32),
            Xori(d, s, imm) => alu!(d, self.reg(s) ^ imm as u32),
            Slti(d, s, imm) => alu!(d, ((self.reg(s) as i32) < imm as i32) as u32),
            Sltiu(d, s, imm) => alu!(d, (self.reg(s) < imm as i32 as u32) as u32),
            Lui(d, imm) => alu!(d, (imm as u32) << 16),
            Lw(d, b, off) => {
                let v = self
                    .mem
                    .load32(self.reg(b).wrapping_add(off as i32 as u32))?;
                alu!(d, v)
            }
            Lh(d, b, off) => {
                let v = self
                    .mem
                    .load16(self.reg(b).wrapping_add(off as i32 as u32))?;
                alu!(d, v as i16 as i32 as u32)
            }
            Lhu(d, b, off) => {
                let v = self
                    .mem
                    .load16(self.reg(b).wrapping_add(off as i32 as u32))?;
                alu!(d, v as u32)
            }
            Lb(d, b, off) => {
                let v = self
                    .mem
                    .load8(self.reg(b).wrapping_add(off as i32 as u32))?;
                alu!(d, v as i8 as i32 as u32)
            }
            Lbu(d, b, off) => {
                let v = self
                    .mem
                    .load8(self.reg(b).wrapping_add(off as i32 as u32))?;
                alu!(d, v as u32)
            }
            Sw(src, b, off) => {
                self.mem
                    .store32(self.reg(b).wrapping_add(off as i32 as u32), self.reg(src))?;
            }
            Sh(src, b, off) => {
                self.mem.store16(
                    self.reg(b).wrapping_add(off as i32 as u32),
                    self.reg(src) as u16,
                )?;
            }
            Sb(src, b, off) => {
                self.mem.store8(
                    self.reg(b).wrapping_add(off as i32 as u32),
                    self.reg(src) as u8,
                )?;
            }
            Beq(s, t, _)
            | Bne(s, t, _)
            | Blt(s, t, _)
            | Bge(s, t, _)
            | Bltu(s, t, _)
            | Bgeu(s, t, _) => {
                let (a, b) = (self.reg(s), self.reg(t));
                let taken = match instr {
                    Beq(..) => a == b,
                    Bne(..) => a != b,
                    Blt(..) => (a as i32) < (b as i32),
                    Bge(..) => (a as i32) >= (b as i32),
                    Bltu(..) => a < b,
                    _ => a >= b,
                };
                let target = instr.direct_target(pc).expect("branch has direct target");
                if taken {
                    next = target;
                }
                control = Some(ControlEvent {
                    kind: ControlKind::CondBranch,
                    taken,
                    target,
                });
            }
            J(_) | Jal(_) => {
                let target = instr.direct_target(pc).expect("jump has direct target");
                if matches!(instr, Jal(_)) {
                    self.set_reg(Reg::RA, pc.wrapping_add(4));
                }
                next = target;
                control = Some(ControlEvent {
                    kind: instr.control_kind(),
                    taken: true,
                    target,
                });
            }
            Jr(s) => {
                let target = self.reg(s);
                next = target;
                control = Some(ControlEvent {
                    kind: instr.control_kind(),
                    taken: true,
                    target,
                });
            }
            Jalr(d, s) => {
                let target = self.reg(s);
                self.set_reg(d, pc.wrapping_add(4));
                next = target;
                control = Some(ControlEvent {
                    kind: ControlKind::IndirectCall,
                    taken: true,
                    target,
                });
            }
            Halt => {
                self.halted = true;
            }
            Out(s) => {
                self.output.push(self.reg(s));
            }
        }

        self.pc = next;
        self.icount += 1;
        Ok(Step { pc, instr, control })
    }

    /// Runs until `halt` or until `budget` instructions have retired.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run(&mut self, budget: u64) -> Result<StopReason, SimError> {
        self.run_with(budget, |_| {})
    }

    /// Runs like [`Machine::run`], invoking `visit` on every retired
    /// instruction. This is the streaming interface the trace builder and
    /// baseline predictors consume.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run_with<F: FnMut(&Step)>(
        &mut self,
        budget: u64,
        mut visit: F,
    ) -> Result<StopReason, SimError> {
        for _ in 0..budget {
            if self.halted {
                return Ok(StopReason::Halted);
            }
            let step = self.step()?;
            visit(&step);
        }
        if self.halted {
            Ok(StopReason::Halted)
        } else {
            Ok(StopReason::BudgetExhausted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_isa::asm::assemble;

    fn run_src(src: &str) -> Machine {
        let p = assemble(src).expect("assembles");
        let mut m = Machine::new(p);
        m.run(1_000_000).expect("runs");
        assert!(m.halted());
        m
    }

    #[test]
    fn arithmetic_basics() {
        let m = run_src(
            "
main:   li   t0, 7
        li   t1, -3
        add  t2, t0, t1
        out  t2
        sub  t2, t0, t1
        out  t2
        mul  t2, t0, t1
        out  t2
        div  t2, t0, t1
        out  t2
        rem  t2, t0, t1
        out  t2
        halt
",
        );
        assert_eq!(m.output(), &[4, 10, (-21i32) as u32, (-2i32) as u32, 1]);
    }

    #[test]
    fn division_by_zero_semantics() {
        let m = run_src(
            "
main:   li   t0, 9
        li   t1, 0
        div  t2, t0, t1
        out  t2
        divu t2, t0, t1
        out  t2
        rem  t2, t0, t1
        out  t2
        halt
",
        );
        assert_eq!(m.output(), &[u32::MAX, u32::MAX, 9]);
    }

    #[test]
    fn shifts_and_logic() {
        let m = run_src(
            "
main:   li   t0, 0xF0
        sll  t1, t0, 4
        out  t1
        srl  t1, t0, 4
        out  t1
        li   t0, -16
        sra  t1, t0, 2
        out  t1
        li   t2, 2
        sllv t1, t0, t2
        out  t1
        halt
",
        );
        assert_eq!(m.output(), &[0xF00, 0x0F, (-4i32) as u32, (-64i32) as u32]);
    }

    #[test]
    fn memory_and_data_labels() {
        let m = run_src(
            "
main:   la   t0, nums
        lw   t1, 0(t0)
        lw   t2, 4(t0)
        add  t3, t1, t2
        sw   t3, 8(t0)
        lw   t4, 8(t0)
        out  t4
        lb   t5, 12(t0)
        out  t5
        lbu  t6, 12(t0)
        out  t6
        halt
        .data
nums:   .word 100, 23, 0
        .byte -1
",
        );
        assert_eq!(m.output(), &[123, u32::MAX, 255]);
    }

    #[test]
    fn call_and_return() {
        let m = run_src(
            "
main:   li   a0, 5
        jal  double
        out  v0
        halt
double: add  v0, a0, a0
        ret
",
        );
        assert_eq!(m.output(), &[10]);
    }

    #[test]
    fn recursion_factorial() {
        let m = run_src(
            "
main:   li   a0, 6
        jal  fact
        out  v0
        halt
fact:   addi sp, sp, -8
        sw   ra, 4(sp)
        sw   a0, 0(sp)
        li   v0, 1
        blez a0, fbase
        addi a0, a0, -1
        jal  fact
        lw   a0, 0(sp)
        mul  v0, v0, a0
fbase:  lw   ra, 4(sp)
        addi sp, sp, 8
        ret
",
        );
        assert_eq!(m.output(), &[720]);
    }

    #[test]
    fn indirect_jump_table() {
        let m = run_src(
            "
main:   la   t0, table
        li   t1, 1
        sll  t2, t1, 2
        add  t3, t0, t2
        lw   t4, 0(t3)
        jr   t4
case0:  out  zero
        halt
case1:  li   v0, 11
        out  v0
        halt
        .data
table:  .word case0, case1
",
        );
        assert_eq!(m.output(), &[11]);
    }

    #[test]
    fn control_events_reported() {
        let p = assemble(
            "
main:   beqz zero, skip
        nop
skip:   jal  f
        halt
f:      ret
",
        )
        .unwrap();
        let mut m = Machine::new(p);
        let b = m.step().unwrap();
        let ev = b.control.unwrap();
        assert_eq!(ev.kind, ControlKind::CondBranch);
        assert!(ev.taken);
        assert_eq!(b.next_pc(), ev.target);
        let j = m.step().unwrap();
        assert_eq!(j.control.unwrap().kind, ControlKind::Call);
        let r = m.step().unwrap();
        assert_eq!(r.control.unwrap().kind, ControlKind::Return);
        assert_eq!(r.control.unwrap().target, j.pc + 4);
    }

    #[test]
    fn not_taken_branch_records_would_be_target() {
        let p = assemble("main: li t0, 1\n beqz t0, away\n halt\naway: halt\n").unwrap();
        let mut m = Machine::new(p);
        m.step().unwrap();
        let b = m.step().unwrap();
        let ev = b.control.unwrap();
        assert!(!ev.taken);
        assert_eq!(ev.target, m.program().symbol("away").unwrap());
        assert_eq!(b.next_pc(), b.pc + 4);
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let p = assemble("main: j main\n").unwrap();
        let mut m = Machine::new(p);
        assert_eq!(m.run(1000).unwrap(), StopReason::BudgetExhausted);
        assert_eq!(m.icount(), 1000);
    }

    #[test]
    fn stepping_after_halt_errors() {
        let p = assemble("main: halt\n").unwrap();
        let mut m = Machine::new(p);
        m.step().unwrap();
        assert_eq!(m.step(), Err(SimError::Halted));
    }

    #[test]
    fn wild_jump_faults() {
        let p = assemble("main: li t0, 0x100\n jr t0\n").unwrap();
        let mut m = Machine::new(p);
        m.step().unwrap();
        m.step().unwrap();
        assert!(matches!(m.step(), Err(SimError::PcOutOfRange { .. })));
    }

    #[test]
    fn r0_is_immutable() {
        let m = run_src("main: li t0, 5\n add zero, t0, t0\n out zero\n halt\n");
        assert_eq!(m.output(), &[0]);
    }

    #[test]
    fn poke_and_peek_words() {
        let p = assemble("main: halt\n .data\nbuf: .space 16\n").unwrap();
        let mut m = Machine::new(p);
        let buf = m.program().symbol("buf").unwrap();
        m.write_words(buf, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u32; 4];
        m.read_words(buf, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        assert_eq!(m.read_words_vec(buf, 4).unwrap(), vec![1, 2, 3, 4]);
        // The fill form reports faults without allocating.
        assert!(m.read_words(0xFFFF_FFF0, &mut out).is_err());
    }
}
