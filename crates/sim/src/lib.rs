//! # ntp-sim — functional simulation of TRISC programs
//!
//! This crate plays the role SimpleScalar's functional simulator played in
//! the original paper: it executes an assembled [`ntp_isa::Program`] and
//! produces the dynamic instruction stream — in particular the control-flow
//! events ([`ControlEvent`]) that trace selection and all predictors consume.
//!
//! The machine is deliberately simple: in-order, one instruction per
//! [`Machine::step`], with a segmented memory ([`Memory`]) holding read-only
//! text, a data segment and a downward-growing stack.
//!
//! # Example
//!
//! ```
//! use ntp_isa::asm::assemble;
//! use ntp_sim::{Machine, StopReason};
//!
//! let p = assemble(
//!     "
//! main:   li   t0, 10
//! loop:   addi t0, t0, -1
//!         bnez t0, loop
//!         out  t0
//!         halt
//! ",
//! )?;
//! let mut branches = 0u32;
//! let mut m = Machine::new(p);
//! let stop = m.run_with(1_000, |step| {
//!     if step.control.is_some() {
//!         branches += 1;
//!     }
//! })?;
//! assert_eq!(stop, StopReason::Halted);
//! assert_eq!(branches, 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod machine;
mod memory;

pub use machine::{ControlEvent, Machine, SimError, Step, StopReason};
pub use memory::{Memory, MemoryConfig};
