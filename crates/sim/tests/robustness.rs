//! Simulator robustness: no input program may panic the machine — faults
//! must surface as `SimError` values.

// Compiled only with `--features proptest`: the proptest dev-dependency
// is gated so the offline tier-1 build resolves without a registry.
#![cfg(feature = "proptest")]

use ntp_isa::{decode, Instr, Program};
use ntp_sim::{Machine, MemoryConfig, SimError};
use proptest::prelude::*;

proptest! {
    /// Random (decodable) instruction soup either runs, halts, or faults
    /// cleanly — never panics, never violates the budget.
    #[test]
    fn random_programs_never_panic(words in prop::collection::vec(any::<u32>(), 1..200)) {
        let instrs: Vec<Instr> = words.iter().filter_map(|&w| decode(w).ok()).collect();
        prop_assume!(!instrs.is_empty());
        let mut p = Program::new();
        p.instrs = instrs;
        let mut m = Machine::with_config(
            p,
            MemoryConfig {
                data_capacity: 1 << 16,
                stack_capacity: 1 << 16,
            },
        );
        let budget = 5_000u64;
        match m.run(budget) {
            Ok(_) => prop_assert!(m.icount() <= budget),
            Err(SimError::MemFault { .. } | SimError::PcOutOfRange { .. }) => {}
            Err(SimError::Halted) => prop_assert!(false, "run() never reports Halted"),
        }
    }

    /// Loads reproduce stores at arbitrary aligned data addresses.
    #[test]
    fn store_load_roundtrip(off in (0u32..16000).prop_map(|v| v * 4), val in any::<u32>()) {
        let p = ntp_isa::asm::assemble("main: halt\n.data\nbase: .space 64000\n").unwrap();
        let base = p.symbol("base").unwrap();
        let mut m = Machine::new(p);
        m.mem_mut().store32(base + off, val).unwrap();
        prop_assert_eq!(m.mem().load32(base + off).unwrap(), val);
        // Byte views agree with little-endian layout.
        prop_assert_eq!(m.mem().load8(base + off).unwrap(), (val & 0xFF) as u8);
    }
}

#[test]
fn sign_extension_loads() {
    let src = "
main:   la   t0, data
        lh   t1, 0(t0)
        out  t1
        lhu  t2, 0(t0)
        out  t2
        lb   t3, 2(t0)
        out  t3
        halt
        .data
data:   .half 0x8001
        .byte 0x80
";
    let p = ntp_isa::asm::assemble(src).unwrap();
    let mut m = Machine::new(p);
    m.run(100).unwrap();
    assert_eq!(
        m.output(),
        &[0xFFFF_8001, 0x0000_8001, 0xFFFF_FF80],
        "lh sign-extends, lhu zero-extends, lb sign-extends"
    );
}

#[test]
fn stack_depth_limits_are_faults_not_ub() {
    // Infinite recursion eventually leaves the stack segment and faults.
    let src = "
main:   jal  f
        halt
f:      addi sp, sp, -64
        sw   ra, 0(sp)
        jal  f
        ret
";
    let p = ntp_isa::asm::assemble(src).unwrap();
    let mut m = Machine::with_config(
        p,
        MemoryConfig {
            data_capacity: 4096,
            stack_capacity: 64 * 128,
        },
    );
    let err = m.run(1_000_000).unwrap_err();
    assert!(matches!(err, SimError::MemFault { .. }), "{err}");
}

#[test]
fn visitor_sees_every_retired_instruction() {
    let src = "
main:   li   t0, 9
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
    let p = ntp_isa::asm::assemble(src).unwrap();
    let mut m = Machine::new(p);
    let mut pcs = Vec::new();
    m.run_with(1000, |s| pcs.push(s.pc)).unwrap();
    assert_eq!(pcs.len() as u64, m.icount());
    // Consecutive steps chain: each next_pc equals the following pc.
    let p2 = ntp_isa::asm::assemble(src).unwrap();
    let mut m2 = Machine::new(p2);
    let mut prev_next: Option<u32> = None;
    m2.run_with(1000, |s| {
        if let Some(expect) = prev_next {
            assert_eq!(s.pc, expect);
        }
        prev_next = Some(s.next_pc());
    })
    .unwrap();
}

#[test]
fn out_is_ordered_and_unbounded() {
    let src = "
main:   li   t0, 200
loop:   out  t0
        addi t0, t0, -1
        bnez t0, loop
        halt
";
    let p = ntp_isa::asm::assemble(src).unwrap();
    let mut m = Machine::new(p);
    m.run(10_000).unwrap();
    assert_eq!(m.output().len(), 200);
    assert_eq!(m.output()[0], 200);
    assert_eq!(*m.output().last().unwrap(), 1);
}
