//! # ntp-hash — shared hashing primitives
//!
//! The FNV-1a 64-bit hash every checksum and fingerprint in the workspace
//! uses: fast, streaming, zero-dependency, and stable across platforms.
//! Both persistent formats (`ntp-tracefile`'s `.ntc` codec) and wire
//! protocols (`ntp-serve`'s frame checksums) depend on that stability, so
//! the implementation lives in exactly one crate and everything else
//! re-exports it.

#![warn(missing_docs)]

/// FNV-1a offset basis.
const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01B3;

/// A streaming FNV-1a 64-bit hasher.
///
/// # Examples
///
/// ```
/// use ntp_hash::Fnv64;
/// let mut h = Fnv64::new();
/// h.update(b"hello");
/// let split = {
///     let mut h = Fnv64::new();
///     h.update(b"he");
///     h.update(b"llo");
///     h.finish()
/// };
/// assert_eq!(h.finish(), split, "streaming splits do not change the hash");
/// ```
#[derive(Copy, Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: OFFSET }
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= b as u64;
            s = s.wrapping_mul(PRIME);
        }
        self.state = s;
    }

    /// The hash of everything folded in so far (the hasher keeps running).
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn one_bit_changes_hash() {
        let a = fnv64(b"NTPC cache payload");
        let b = fnv64(b"NTPC cache paylaod");
        assert_ne!(a, b);
    }

    #[test]
    fn streaming_is_byte_order_sensitive() {
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}

/// A fast word-wise hasher for **in-memory** hash maps.
///
/// This is a Fibonacci-style multiplicative hasher over 8-byte words
/// (the design popularised by rustc's FxHash): one rotate, one XOR and one
/// multiply per word, an order of magnitude cheaper than the standard
/// library's SipHash for short fixed-shape keys. It makes no DoS-resistance
/// or cross-version-stability promises — never persist its output or put it
/// on a wire; [`Fnv64`] is the stable hash for formats and checksums.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use ntp_hash::FxBuild;
/// let mut m: HashMap<u64, &str, FxBuild> = HashMap::default();
/// m.insert(7, "seven");
/// assert_eq!(m.get(&7), Some(&"seven"));
/// ```
#[derive(Copy, Clone, Debug, Default)]
pub struct FxHasher64 {
    state: u64,
}

/// `BuildHasher` for [`FxHasher64`], usable as a `HashMap`'s third type
/// parameter.
pub type FxBuild = std::hash::BuildHasherDefault<FxHasher64>;

impl FxHasher64 {
    /// 2^64 / φ, the usual Fibonacci-hashing multiplier.
    const K: u64 = 0x9E37_79B9_7F4A_7C15;

    #[inline]
    fn word(&mut self, w: u64) {
        self.state = (self.state.rotate_left(5) ^ w).wrapping_mul(Self::K);
    }
}

impl std::hash::Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.word(v as u64);
    }
}

#[cfg(test)]
mod fx_tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuild::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal_and_spread() {
        #[derive(Hash)]
        struct Key {
            ids: [u64; 8],
            len: u8,
        }
        let a = Key {
            ids: [1, 2, 3, 0, 0, 0, 0, 0],
            len: 3,
        };
        let b = Key {
            ids: [1, 2, 3, 0, 0, 0, 0, 0],
            len: 3,
        };
        let c = Key {
            ids: [1, 2, 4, 0, 0, 0, 0, 0],
            len: 3,
        };
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&a), hash_of(&c));

        // Nearby u64 keys should not collide en masse.
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..4096 {
            seen.insert(hash_of(&k) >> 52); // top 12 bits drive bucket choice
        }
        assert!(seen.len() > 1024, "only {} distinct top-12s", seen.len());
    }

    #[test]
    fn write_handles_unaligned_tails() {
        use std::hash::Hasher;
        let mut a = FxHasher64::default();
        a.write(b"abcdefghi"); // 8-byte chunk + 1-byte tail
        let mut b = FxHasher64::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
