//! # ntp-hash — shared hashing primitives
//!
//! The FNV-1a 64-bit hash every checksum and fingerprint in the workspace
//! uses: fast, streaming, zero-dependency, and stable across platforms.
//! Both persistent formats (`ntp-tracefile`'s `.ntc` codec) and wire
//! protocols (`ntp-serve`'s frame checksums) depend on that stability, so
//! the implementation lives in exactly one crate and everything else
//! re-exports it.

#![warn(missing_docs)]

/// FNV-1a offset basis.
const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01B3;

/// A streaming FNV-1a 64-bit hasher.
///
/// # Examples
///
/// ```
/// use ntp_hash::Fnv64;
/// let mut h = Fnv64::new();
/// h.update(b"hello");
/// let split = {
///     let mut h = Fnv64::new();
///     h.update(b"he");
///     h.update(b"llo");
///     h.finish()
/// };
/// assert_eq!(h.finish(), split, "streaming splits do not change the hash");
/// ```
#[derive(Copy, Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: OFFSET }
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= b as u64;
            s = s.wrapping_mul(PRIME);
        }
        self.state = s;
    }

    /// The hash of everything folded in so far (the hasher keeps running).
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn one_bit_changes_hash() {
        let a = fnv64(b"NTPC cache payload");
        let b = fnv64(b"NTPC cache paylaod");
        assert_ne!(a, b);
    }

    #[test]
    fn streaming_is_byte_order_sensitive() {
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
