//! Telemetry integration for the engine models: `Display` one-liners for
//! run summaries and [`ToJson`] trees for `BENCH_*.json` reports.
//!
//! Every stats struct in this crate renders the same way in both forms:
//! raw counters first, derived rates last, so a JSON consumer and a log
//! reader see the same story.

use crate::{EngineStats, FetchStats, TraceCacheStats, TraceProcessorStats};
use ntp_telemetry::{Json, ToJson};
use std::fmt;

impl fmt::Display for EngineStats {
    /// `ipc 5.33, 1200 cycles (stall 40, squash 80), 6400 instrs; <prediction>`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ipc {:.2}, {} cycles (stall {}, squash {}), {} instrs; {}",
            self.ipc(),
            self.cycles,
            self.stall_cycles,
            self.squash_cycles,
            self.instrs,
            self.prediction
        )
    }
}

impl ToJson for EngineStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("cycles", Json::U64(self.cycles))
            .with("instrs", Json::U64(self.instrs))
            .with("stall_cycles", Json::U64(self.stall_cycles))
            .with("squash_cycles", Json::U64(self.squash_cycles))
            .with("ipc", Json::F64(self.ipc()))
            .with("prediction", self.prediction.to_json())
    }
}

impl fmt::Display for FetchStats {
    /// `bandwidth 12.80 instr/cycle, 1000 traces, 5 mispredicts (0.50%), 8 cache misses`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bandwidth {:.2} instr/cycle, {} traces, {} mispredicts ({:.2}%), {} cache misses",
            self.fetch_bandwidth(),
            self.traces,
            self.mispredicts,
            self.mispredict_pct(),
            self.cache_misses
        )
    }
}

impl ToJson for FetchStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("cycles", Json::U64(self.cycles))
            .with("instrs", Json::U64(self.instrs))
            .with("traces", Json::U64(self.traces))
            .with("mispredicts", Json::U64(self.mispredicts))
            .with("cache_misses", Json::U64(self.cache_misses))
            .with("fetch_bandwidth", Json::F64(self.fetch_bandwidth()))
            .with("mispredict_pct", Json::F64(self.mispredict_pct()))
    }
}

impl fmt::Display for TraceCacheStats {
    /// `950 hits, 50 misses (hit rate 0.950), 12 evictions`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses (hit rate {:.3}), {} evictions",
            self.hits,
            self.misses,
            self.hit_rate(),
            self.evictions
        )
    }
}

impl ToJson for TraceCacheStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("hits", Json::U64(self.hits))
            .with("misses", Json::U64(self.misses))
            .with("evictions", Json::U64(self.evictions))
            .with("hit_rate", Json::F64(self.hit_rate()))
    }
}

impl fmt::Display for TraceProcessorStats {
    /// `ipc 9.14, 3200 cycles, 500 traces, 7 mispredicts (1.40%)`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ipc {:.2}, {} cycles, {} traces, {} mispredicts ({:.2}%)",
            self.ipc(),
            self.cycles,
            self.traces,
            self.mispredicts,
            self.mispredict_pct()
        )
    }
}

impl ToJson for TraceProcessorStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("cycles", Json::U64(self.cycles))
            .with("instrs", Json::U64(self.instrs))
            .with("traces", Json::U64(self.traces))
            .with("mispredicts", Json::U64(self.mispredicts))
            .with("ipc", Json::F64(self.ipc()))
            .with("mispredict_pct", Json::F64(self.mispredict_pct()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_core::PredictorStats;

    fn engine_stats() -> EngineStats {
        EngineStats {
            prediction: PredictorStats {
                predictions: 100,
                correct: 90,
                from_correlated: 60,
                from_secondary: 30,
                cold: 10,
                ..PredictorStats::new()
            },
            cycles: 1200,
            instrs: 6400,
            stall_cycles: 40,
            squash_cycles: 80,
        }
    }

    #[test]
    fn engine_stats_golden_line() {
        assert_eq!(
            engine_stats().to_string(),
            "ipc 5.33, 1200 cycles (stall 40, squash 80), 6400 instrs; \
             100 predictions, 10.00% mispredict (corr 60, sec 30, cold 10)"
        );
    }

    #[test]
    fn fetch_stats_golden_line() {
        let s = FetchStats {
            cycles: 1250,
            instrs: 16000,
            traces: 1000,
            mispredicts: 5,
            cache_misses: 8,
        };
        assert_eq!(
            s.to_string(),
            "bandwidth 12.80 instr/cycle, 1000 traces, 5 mispredicts (0.50%), 8 cache misses"
        );
    }

    #[test]
    fn trace_cache_stats_golden_line() {
        let s = TraceCacheStats {
            hits: 950,
            misses: 50,
            evictions: 12,
        };
        assert_eq!(
            s.to_string(),
            "950 hits, 50 misses (hit rate 0.950), 12 evictions"
        );
    }

    #[test]
    fn trace_processor_stats_golden_line() {
        let s = TraceProcessorStats {
            cycles: 3200,
            instrs: 29234,
            traces: 500,
            mispredicts: 7,
        };
        assert_eq!(
            s.to_string(),
            "ipc 9.14, 3200 cycles, 500 traces, 7 mispredicts (1.40%)"
        );
    }

    #[test]
    fn zeroed_stats_render_without_panicking() {
        // Division guards hold in both render paths for all four types.
        assert!(EngineStats::default().to_string().starts_with("ipc 0.00"));
        assert!(FetchStats::default()
            .to_string()
            .starts_with("bandwidth 0.00"));
        assert!(TraceCacheStats::default()
            .to_string()
            .contains("hit rate 0.000"));
        assert!(TraceProcessorStats::default()
            .to_string()
            .starts_with("ipc 0.00"));
        for j in [
            EngineStats::default().to_json(),
            FetchStats::default().to_json(),
            TraceCacheStats::default().to_json(),
            TraceProcessorStats::default().to_json(),
        ] {
            assert!(ntp_telemetry::json::parse(&j.render()).is_ok());
        }
    }

    #[test]
    fn json_mirrors_display_fields() {
        let j = engine_stats().to_json();
        assert_eq!(j.get("cycles").and_then(Json::as_u64), Some(1200));
        assert_eq!(j.get("stall_cycles").and_then(Json::as_u64), Some(40));
        assert_eq!(j.get("squash_cycles").and_then(Json::as_u64), Some(80));
        let ipc = j.get("ipc").and_then(Json::as_f64).unwrap();
        assert!((ipc - 6400.0 / 1200.0).abs() < 1e-12);
        assert_eq!(
            j.get("prediction")
                .and_then(|p| p.get("predictions"))
                .and_then(Json::as_u64),
            Some(100)
        );
    }
}
