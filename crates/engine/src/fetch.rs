//! A trace-cache fetch engine: next-trace predictor + trace cache working
//! together, reporting fetch bandwidth.
//!
//! This is the consumer the predictor exists for: each cycle the predictor
//! names the next trace, the trace cache supplies it in one access if
//! present, and mispredictions/misses cost stall cycles. It backs the
//! `fetch_engine` example and the engine Criterion bench.

use crate::{TraceCache, TraceCacheConfig};
use ntp_core::{NextTracePredictor, TracePredictor};
use ntp_trace::TraceRecord;

/// Penalties of the fetch model, in cycles.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FetchConfig {
    /// Extra cycles to rebuild a trace from the instruction cache on a
    /// trace-cache miss.
    pub miss_penalty: u32,
    /// Extra cycles after a next-trace misprediction.
    pub mispredict_penalty: u32,
    /// Trace cache geometry.
    pub cache: TraceCacheConfig,
}

impl Default for FetchConfig {
    fn default() -> FetchConfig {
        FetchConfig {
            miss_penalty: 4,
            mispredict_penalty: 8,
            cache: TraceCacheConfig::default(),
        }
    }
}

/// Bandwidth results of a fetch run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Cycles spent.
    pub cycles: u64,
    /// Instructions delivered.
    pub instrs: u64,
    /// Traces delivered.
    pub traces: u64,
    /// Next-trace mispredictions.
    pub mispredicts: u64,
    /// Trace-cache misses.
    pub cache_misses: u64,
}

impl FetchStats {
    /// Delivered instructions per cycle — the fetch bandwidth the trace
    /// cache exists to raise.
    pub fn fetch_bandwidth(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate in percent.
    pub fn mispredict_pct(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            100.0 * self.mispredicts as f64 / self.traces as f64
        }
    }
}

/// A predictor-driven trace-cache front end.
///
/// # Examples
///
/// ```
/// use ntp_core::{NextTracePredictor, PredictorConfig};
/// use ntp_engine::{FetchConfig, FetchEngine};
/// use ntp_trace::{TraceId, TraceRecord};
///
/// let mut fe = FetchEngine::new(
///     NextTracePredictor::new(PredictorConfig::paper(12, 3)),
///     FetchConfig::default(),
/// );
/// let stream: Vec<TraceRecord> = (0..100)
///     .map(|k| TraceRecord::new(TraceId::new(0x0040_0004 + (k % 3) * 68, 0, 0), 16, 0, false, false))
///     .collect();
/// let stats = fe.run(&stream);
/// assert!(stats.fetch_bandwidth() > 4.0, "{}", stats.fetch_bandwidth());
/// ```
pub struct FetchEngine {
    predictor: NextTracePredictor,
    cache: TraceCache,
    cfg: FetchConfig,
}

impl FetchEngine {
    /// Builds a front end around a predictor.
    pub fn new(predictor: NextTracePredictor, cfg: FetchConfig) -> FetchEngine {
        FetchEngine {
            predictor,
            cache: TraceCache::new(cfg.cache),
            cfg,
        }
    }

    /// The trace cache (for hit-rate inspection).
    pub fn cache(&self) -> &TraceCache {
        &self.cache
    }

    /// Fetches the given committed trace stream, one trace per cycle in the
    /// best case, and returns bandwidth statistics.
    pub fn run(&mut self, records: &[TraceRecord]) -> FetchStats {
        let mut stats = FetchStats::default();
        for rec in records {
            let pred = self.predictor.predict();
            let correct = pred.is_correct(rec.id());

            let mut cycles = 1u64;
            if !correct {
                stats.mispredicts += 1;
                cycles += self.cfg.mispredict_penalty as u64;
            }
            if self.cache.lookup(rec.id()).is_none() {
                stats.cache_misses += 1;
                cycles += self.cfg.miss_penalty as u64;
                self.cache.insert(rec);
            }
            self.predictor.update(rec);

            stats.cycles += cycles;
            stats.instrs += rec.len as u64;
            stats.traces += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_core::PredictorConfig;
    use ntp_trace::TraceId;

    fn stream(period: u32, n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|k| {
                TraceRecord::new(
                    TraceId::new(0x0040_0004 + (k as u32 % period) * 0x44, 0, 0),
                    14,
                    0,
                    false,
                    false,
                )
            })
            .collect()
    }

    fn engine() -> FetchEngine {
        FetchEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 3)),
            FetchConfig::default(),
        )
    }

    #[test]
    fn warm_stream_approaches_trace_width() {
        let stats = engine().run(&stream(4, 3000));
        assert!(
            stats.fetch_bandwidth() > 10.0,
            "bandwidth {}",
            stats.fetch_bandwidth()
        );
        assert!(stats.mispredict_pct() < 2.0);
    }

    #[test]
    fn cache_misses_are_cold_only() {
        let mut fe = engine();
        let stats = fe.run(&stream(8, 1000));
        assert_eq!(stats.cache_misses, 8, "one fill per distinct trace");
        assert!(fe.cache().stats().hit_rate() > 0.95);
    }

    #[test]
    fn mispredictions_reduce_bandwidth() {
        let noisy: Vec<TraceRecord> = (0..1000u32)
            .map(|k| {
                TraceRecord::new(
                    TraceId::new(
                        0x0040_0004 + (k.wrapping_mul(2654435761) % 300) * 0x24,
                        0,
                        0,
                    ),
                    14,
                    0,
                    false,
                    false,
                )
            })
            .collect();
        let warm = engine().run(&stream(4, 1000));
        let cold = engine().run(&noisy);
        assert!(cold.fetch_bandwidth() < warm.fetch_bandwidth());
    }
}
