//! The delayed-update execution model of §5.4 (Table 4).
//!
//! In the immediate-update methodology, the prediction table is trained
//! before the next prediction is made. In a real processor the history
//! register is updated speculatively at fetch (and repaired on a
//! misprediction), while the table is trained only when the trace's last
//! instruction *retires* — several traces later. This module replays a
//! recorded trace stream through that protocol with a simple cycle model:
//!
//! * one trace fetched per cycle, subject to instruction-window occupancy;
//! * in-order retirement of `issue_width` instructions per cycle;
//! * a trace's table update (captured at prediction time as an index
//!   snapshot) is applied when it fully retires;
//! * a misprediction inserts a resolution bubble during which fetch stalls
//!   but retirement (and therefore training) continues, and the history
//!   register is repaired.

use ntp_core::{ConfigError, IndexSnapshot, NextTracePredictor, PredictorStats};
use ntp_trace::{TraceRecord, MAX_TRACE_LEN};
use std::collections::VecDeque;

/// Timing parameters of the engine (paper: 8-way, 64-entry window).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Instructions retired per cycle.
    pub issue_width: u32,
    /// Instruction-window capacity.
    pub window: u32,
    /// Cycles of fetch stall after a trace misprediction resolves.
    pub mispredict_penalty: u32,
}

impl EngineConfig {
    /// Checks the timing parameters, returning the first fault found.
    ///
    /// The critical check is `window >= MAX_TRACE_LEN`: the fetch stage
    /// stalls until the window can hold the *whole* incoming trace, so a
    /// window smaller than the longest legal trace (16 instructions) could
    /// reach a state where the in-flight queue is empty, nothing can ever
    /// retire, and the stall loop spins forever. Rejecting the config here
    /// turns that hang into an immediate, named diagnostic.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.issue_width == 0 {
            return Err(ConfigError::OutOfRange {
                field: "engine.issue_width",
                value: 0,
                min: 1,
                max: u32::MAX as u64,
            });
        }
        if self.window < MAX_TRACE_LEN as u32 {
            return Err(ConfigError::WindowSmallerThanTrace {
                window: self.window,
                max_trace_len: MAX_TRACE_LEN as u32,
            });
        }
        Ok(())
    }

    /// Panicking form of [`EngineConfig::try_validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] diagnostic if the config is invalid.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid engine config: {e}");
        }
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            issue_width: 8,
            window: 64,
            mispredict_penalty: 8,
        }
    }
}

/// Results of a delayed-update run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Prediction accuracy accounting (same shape as immediate-update
    /// evaluation, so Table 4 compares directly).
    pub prediction: PredictorStats,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions fetched and retired.
    pub instrs: u64,
    /// Cycles fetch stalled on a full instruction window (included in
    /// `cycles`).
    pub stall_cycles: u64,
    /// Cycles lost to misprediction-resolution bubbles (included in
    /// `cycles`).
    pub squash_cycles: u64,
}

impl EngineStats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }
}

struct InFlight {
    snapshot: IndexSnapshot,
    record: TraceRecord,
    remaining: u32,
}

/// Replays a trace stream through a predictor with retire-time training and
/// speculative, repair-on-mispredict history.
///
/// # Examples
///
/// ```
/// use ntp_core::{NextTracePredictor, PredictorConfig};
/// use ntp_engine::{DelayedUpdateEngine, EngineConfig};
/// use ntp_trace::{TraceId, TraceRecord};
///
/// let records: Vec<TraceRecord> = (0..50)
///     .map(|k| TraceRecord::new(TraceId::new(0x0040_0000 + (k % 5) * 64, 0, 0), 12, 0, false, false))
///     .collect();
/// let predictor = NextTracePredictor::new(PredictorConfig::paper(12, 3));
/// let mut engine = DelayedUpdateEngine::new(predictor, EngineConfig::default());
/// let stats = engine.run(&records);
/// assert_eq!(stats.prediction.predictions, 50);
/// assert!(stats.ipc() > 0.0);
/// ```
pub struct DelayedUpdateEngine {
    predictor: NextTracePredictor,
    cfg: EngineConfig,
    in_flight: VecDeque<InFlight>,
    occupancy: u32,
}

impl DelayedUpdateEngine {
    /// Wraps a (fresh or pre-trained) predictor.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`EngineConfig::try_validate`] — in particular
    /// if the instruction window is smaller than the maximum trace length,
    /// which previously hung `run` in an unbounded stall loop.
    pub fn new(predictor: NextTracePredictor, cfg: EngineConfig) -> DelayedUpdateEngine {
        match DelayedUpdateEngine::try_new(predictor, cfg) {
            Ok(e) => e,
            Err(e) => panic!("invalid engine config: {e}"),
        }
    }

    /// Non-panicking constructor: validates `cfg` first.
    pub fn try_new(
        predictor: NextTracePredictor,
        cfg: EngineConfig,
    ) -> Result<DelayedUpdateEngine, ConfigError> {
        cfg.try_validate()?;
        Ok(DelayedUpdateEngine {
            predictor,
            cfg,
            in_flight: VecDeque::new(),
            occupancy: 0,
        })
    }

    /// The wrapped predictor (e.g. to inspect after a run).
    pub fn predictor(&self) -> &NextTracePredictor {
        &self.predictor
    }

    /// Retires up to `issue_width` instructions; trains traces that
    /// complete.
    fn retire_one_cycle(&mut self) {
        let mut budget = self.cfg.issue_width;
        while budget > 0 {
            let Some(front) = self.in_flight.front_mut() else {
                return;
            };
            let step = front.remaining.min(budget);
            front.remaining -= step;
            budget -= step;
            self.occupancy -= step;
            if front.remaining == 0 {
                let done = self.in_flight.pop_front().expect("front exists");
                self.predictor.train_at(done.snapshot, &done.record);
            }
        }
    }

    /// Runs the cycle model over a recorded trace stream.
    pub fn run(&mut self, records: &[TraceRecord]) -> EngineStats {
        let mut stats = EngineStats::default();
        for rec in records {
            // Stall fetch while the window cannot hold this trace.
            while self.occupancy + rec.len as u32 > self.cfg.window {
                if self.in_flight.is_empty() {
                    // Defensive guard: an *empty* window that still cannot
                    // hold the trace means the trace is longer than the
                    // window itself. Retiring cannot make progress, so the
                    // old code spun here forever. Config validation rejects
                    // such windows up front; this break keeps even a
                    // hand-rolled engine from hanging.
                    break;
                }
                self.retire_one_cycle();
                stats.cycles += 1;
                stats.stall_cycles += 1;
            }

            // Predict with the *current* (possibly stale) tables and the
            // speculative history.
            let snapshot = self.predictor.indices();
            let pred = self.predictor.predict_at(snapshot);
            stats.prediction.score(&pred, rec);
            let correct = pred.is_correct(rec.id());

            // The front end advances its history speculatively. On a
            // correct prediction the speculative state equals this; on a
            // misprediction the wrong-path state is repaired at resolution,
            // leaving exactly this state. Either way training is deferred.
            self.predictor
                .advance_history(rec.id(), rec.call_count(), rec.ends_in_return());

            self.in_flight.push_back(InFlight {
                snapshot,
                record: *rec,
                remaining: rec.len as u32,
            });
            self.occupancy += rec.len as u32;
            stats.instrs += rec.len as u64;

            // One fetch cycle, plus a resolution bubble on mispredictions
            // (retirement — and therefore training — continues during the
            // bubble).
            self.retire_one_cycle();
            stats.cycles += 1;
            if !correct {
                for _ in 0..self.cfg.mispredict_penalty {
                    self.retire_one_cycle();
                    stats.cycles += 1;
                    stats.squash_cycles += 1;
                }
            }
        }
        // Drain.
        while !self.in_flight.is_empty() {
            self.retire_one_cycle();
            stats.cycles += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_core::{evaluate, PredictorConfig};
    use ntp_trace::TraceId;

    fn rec(pc: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 12, 0, false, false)
    }

    fn cycle_stream(period: u32, n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|k| rec(0x0040_0004 + (k as u32 % period) * 0x44))
            .collect()
    }

    #[test]
    fn learns_despite_delay() {
        let records = cycle_stream(5, 2000);
        let mut e = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 3)),
            EngineConfig::default(),
        );
        let stats = e.run(&records);
        assert!(
            stats.prediction.mispredict_pct() < 5.0,
            "{}",
            stats.prediction.mispredict_pct()
        );
    }

    #[test]
    fn delay_costs_little_on_stable_streams() {
        let records = cycle_stream(7, 5000);
        let mut ideal = NextTracePredictor::new(PredictorConfig::paper(12, 3));
        let ideal_stats = evaluate(&mut ideal, &records);
        let mut e = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 3)),
            EngineConfig::default(),
        );
        let real = e.run(&records);
        let diff = real.prediction.mispredict_pct() - ideal_stats.mispredict_pct();
        assert!(diff.abs() < 2.0, "ideal vs delayed diverge: {diff}");
    }

    #[test]
    fn mispredictions_add_cycles() {
        // Random-ish stream: lots of mispredictions, so bubbles pile up.
        let noisy: Vec<TraceRecord> = (0..500u32)
            .map(|k| rec(0x0040_0004 + (k.wrapping_mul(2654435761) % 200) * 0x24))
            .collect();
        let stable = cycle_stream(3, 500);
        let run = |records: &[TraceRecord]| {
            let mut e = DelayedUpdateEngine::new(
                NextTracePredictor::new(PredictorConfig::paper(12, 3)),
                EngineConfig::default(),
            );
            e.run(records)
        };
        let a = run(&noisy);
        let b = run(&stable);
        assert!(a.cycles > b.cycles, "{} vs {}", a.cycles, b.cycles);
        assert!(a.ipc() < b.ipc());
    }

    #[test]
    fn cycle_breakdown_accounts_stalls_and_squashes() {
        let noisy: Vec<TraceRecord> = (0..500u32)
            .map(|k| rec(0x0040_0004 + (k.wrapping_mul(2654435761) % 200) * 0x24))
            .collect();
        let mut e = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 3)),
            EngineConfig {
                issue_width: 4,
                window: 24,
                mispredict_penalty: 8,
            },
        );
        let stats = e.run(&noisy);
        assert!(stats.squash_cycles > 0, "noisy stream must squash");
        assert!(
            stats.stall_cycles > 0,
            "12-instr traces in a 24-slot window stall"
        );
        assert!(
            stats.stall_cycles + stats.squash_cycles <= stats.cycles,
            "breakdown is a subset of total cycles"
        );
        let missed = stats.prediction.predictions - stats.prediction.correct;
        assert_eq!(stats.squash_cycles, missed * 8, "penalty per miss");
    }

    #[test]
    fn tiny_window_is_rejected_not_hung() {
        // Regression: window 8 < MAX_TRACE_LEN used to pass construction and
        // then spin forever in run() the first time a longer trace arrived
        // with an empty in-flight queue. It must now fail validation with a
        // named diagnostic.
        let cfg = EngineConfig {
            issue_width: 4,
            window: 8,
            mispredict_penalty: 8,
        };
        let err = cfg.try_validate().expect_err("window 8 must be rejected");
        let msg = err.to_string();
        assert!(msg.contains("window"), "diagnostic names the field: {msg}");
        assert!(
            DelayedUpdateEngine::try_new(
                NextTracePredictor::new(PredictorConfig::paper(12, 3)),
                cfg
            )
            .is_err(),
            "try_new must refuse the hanging config"
        );
    }

    #[test]
    #[should_panic(expected = "invalid engine config")]
    fn new_panics_on_tiny_window() {
        let _ = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 3)),
            EngineConfig {
                issue_width: 4,
                window: 8,
                mispredict_penalty: 8,
            },
        );
    }

    #[test]
    fn zero_issue_width_is_rejected() {
        let cfg = EngineConfig {
            issue_width: 0,
            window: 64,
            mispredict_penalty: 8,
        };
        assert!(cfg.try_validate().is_err());
    }

    #[test]
    fn minimum_window_equals_max_trace_len_and_terminates() {
        // window == 16 is the smallest legal window; 16-instr traces fill it
        // exactly and the run must terminate with every instruction retired.
        let records: Vec<TraceRecord> = (0..200)
            .map(|k: u32| {
                TraceRecord::new(
                    TraceId::new(0x0040_0004 + (k % 4) * 0x44, 0, 0),
                    16,
                    0,
                    false,
                    false,
                )
            })
            .collect();
        let mut e = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 3)),
            EngineConfig {
                issue_width: 4,
                window: 16,
                mispredict_penalty: 2,
            },
        );
        let stats = e.run(&records);
        assert_eq!(stats.instrs, 200 * 16);
        assert_eq!(stats.prediction.predictions, 200);
    }

    #[test]
    fn window_bounds_inflight_instructions() {
        let records = cycle_stream(4, 100);
        let mut e = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 0)),
            EngineConfig {
                issue_width: 1,
                window: 16,
                mispredict_penalty: 2,
            },
        );
        let stats = e.run(&records);
        // 100 traces x 12 instrs at 1 instr/cycle ⇒ at least 1200 cycles.
        assert!(stats.cycles >= 1200);
        assert_eq!(stats.instrs, 1200);
    }
}
