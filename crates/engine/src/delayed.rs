//! The delayed-update execution model of §5.4 (Table 4).
//!
//! In the immediate-update methodology, the prediction table is trained
//! before the next prediction is made. In a real processor the history
//! register is updated speculatively at fetch (and repaired on a
//! misprediction), while the table is trained only when the trace's last
//! instruction *retires* — several traces later. This module replays a
//! recorded trace stream through that protocol with a simple cycle model:
//!
//! * one trace fetched per cycle, subject to instruction-window occupancy;
//! * in-order retirement of `issue_width` instructions per cycle;
//! * a trace's table update (captured at prediction time as an index
//!   snapshot) is applied when it fully retires;
//! * a misprediction inserts a resolution bubble during which fetch stalls
//!   but retirement (and therefore training) continues, and the history
//!   register is repaired.

use ntp_core::{IndexSnapshot, NextTracePredictor, PredictorStats};
use ntp_trace::TraceRecord;
use std::collections::VecDeque;

/// Timing parameters of the engine (paper: 8-way, 64-entry window).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Instructions retired per cycle.
    pub issue_width: u32,
    /// Instruction-window capacity.
    pub window: u32,
    /// Cycles of fetch stall after a trace misprediction resolves.
    pub mispredict_penalty: u32,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            issue_width: 8,
            window: 64,
            mispredict_penalty: 8,
        }
    }
}

/// Results of a delayed-update run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Prediction accuracy accounting (same shape as immediate-update
    /// evaluation, so Table 4 compares directly).
    pub prediction: PredictorStats,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions fetched and retired.
    pub instrs: u64,
    /// Cycles fetch stalled on a full instruction window (included in
    /// `cycles`).
    pub stall_cycles: u64,
    /// Cycles lost to misprediction-resolution bubbles (included in
    /// `cycles`).
    pub squash_cycles: u64,
}

impl EngineStats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }
}

struct InFlight {
    snapshot: IndexSnapshot,
    record: TraceRecord,
    remaining: u32,
}

/// Replays a trace stream through a predictor with retire-time training and
/// speculative, repair-on-mispredict history.
///
/// # Examples
///
/// ```
/// use ntp_core::{NextTracePredictor, PredictorConfig};
/// use ntp_engine::{DelayedUpdateEngine, EngineConfig};
/// use ntp_trace::{TraceId, TraceRecord};
///
/// let records: Vec<TraceRecord> = (0..50)
///     .map(|k| TraceRecord::new(TraceId::new(0x0040_0000 + (k % 5) * 64, 0, 0), 12, 0, false, false))
///     .collect();
/// let predictor = NextTracePredictor::new(PredictorConfig::paper(12, 3));
/// let mut engine = DelayedUpdateEngine::new(predictor, EngineConfig::default());
/// let stats = engine.run(&records);
/// assert_eq!(stats.prediction.predictions, 50);
/// assert!(stats.ipc() > 0.0);
/// ```
pub struct DelayedUpdateEngine {
    predictor: NextTracePredictor,
    cfg: EngineConfig,
    in_flight: VecDeque<InFlight>,
    occupancy: u32,
}

impl DelayedUpdateEngine {
    /// Wraps a (fresh or pre-trained) predictor.
    pub fn new(predictor: NextTracePredictor, cfg: EngineConfig) -> DelayedUpdateEngine {
        DelayedUpdateEngine {
            predictor,
            cfg,
            in_flight: VecDeque::new(),
            occupancy: 0,
        }
    }

    /// The wrapped predictor (e.g. to inspect after a run).
    pub fn predictor(&self) -> &NextTracePredictor {
        &self.predictor
    }

    /// Retires up to `issue_width` instructions; trains traces that
    /// complete.
    fn retire_one_cycle(&mut self) {
        let mut budget = self.cfg.issue_width;
        while budget > 0 {
            let Some(front) = self.in_flight.front_mut() else {
                return;
            };
            let step = front.remaining.min(budget);
            front.remaining -= step;
            budget -= step;
            self.occupancy -= step;
            if front.remaining == 0 {
                let done = self.in_flight.pop_front().expect("front exists");
                self.predictor.train_at(done.snapshot, &done.record);
            }
        }
    }

    /// Runs the cycle model over a recorded trace stream.
    pub fn run(&mut self, records: &[TraceRecord]) -> EngineStats {
        let mut stats = EngineStats::default();
        for rec in records {
            // Stall fetch while the window cannot hold this trace.
            while self.occupancy + rec.len as u32 > self.cfg.window {
                self.retire_one_cycle();
                stats.cycles += 1;
                stats.stall_cycles += 1;
            }

            // Predict with the *current* (possibly stale) tables and the
            // speculative history.
            let snapshot = self.predictor.indices();
            let pred = self.predictor.predict_at(snapshot);
            stats.prediction.score(&pred, rec);
            let correct = pred.is_correct(rec.id());

            // The front end advances its history speculatively. On a
            // correct prediction the speculative state equals this; on a
            // misprediction the wrong-path state is repaired at resolution,
            // leaving exactly this state. Either way training is deferred.
            self.predictor
                .advance_history(rec.id(), rec.call_count(), rec.ends_in_return());

            self.in_flight.push_back(InFlight {
                snapshot,
                record: *rec,
                remaining: rec.len as u32,
            });
            self.occupancy += rec.len as u32;
            stats.instrs += rec.len as u64;

            // One fetch cycle, plus a resolution bubble on mispredictions
            // (retirement — and therefore training — continues during the
            // bubble).
            self.retire_one_cycle();
            stats.cycles += 1;
            if !correct {
                for _ in 0..self.cfg.mispredict_penalty {
                    self.retire_one_cycle();
                    stats.cycles += 1;
                    stats.squash_cycles += 1;
                }
            }
        }
        // Drain.
        while !self.in_flight.is_empty() {
            self.retire_one_cycle();
            stats.cycles += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_core::{evaluate, PredictorConfig};
    use ntp_trace::TraceId;

    fn rec(pc: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 12, 0, false, false)
    }

    fn cycle_stream(period: u32, n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|k| rec(0x0040_0004 + (k as u32 % period) * 0x44))
            .collect()
    }

    #[test]
    fn learns_despite_delay() {
        let records = cycle_stream(5, 2000);
        let mut e = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 3)),
            EngineConfig::default(),
        );
        let stats = e.run(&records);
        assert!(
            stats.prediction.mispredict_pct() < 5.0,
            "{}",
            stats.prediction.mispredict_pct()
        );
    }

    #[test]
    fn delay_costs_little_on_stable_streams() {
        let records = cycle_stream(7, 5000);
        let mut ideal = NextTracePredictor::new(PredictorConfig::paper(12, 3));
        let ideal_stats = evaluate(&mut ideal, &records);
        let mut e = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 3)),
            EngineConfig::default(),
        );
        let real = e.run(&records);
        let diff = real.prediction.mispredict_pct() - ideal_stats.mispredict_pct();
        assert!(diff.abs() < 2.0, "ideal vs delayed diverge: {diff}");
    }

    #[test]
    fn mispredictions_add_cycles() {
        // Random-ish stream: lots of mispredictions, so bubbles pile up.
        let noisy: Vec<TraceRecord> = (0..500u32)
            .map(|k| rec(0x0040_0004 + (k.wrapping_mul(2654435761) % 200) * 0x24))
            .collect();
        let stable = cycle_stream(3, 500);
        let run = |records: &[TraceRecord]| {
            let mut e = DelayedUpdateEngine::new(
                NextTracePredictor::new(PredictorConfig::paper(12, 3)),
                EngineConfig::default(),
            );
            e.run(records)
        };
        let a = run(&noisy);
        let b = run(&stable);
        assert!(a.cycles > b.cycles, "{} vs {}", a.cycles, b.cycles);
        assert!(a.ipc() < b.ipc());
    }

    #[test]
    fn cycle_breakdown_accounts_stalls_and_squashes() {
        let noisy: Vec<TraceRecord> = (0..500u32)
            .map(|k| rec(0x0040_0004 + (k.wrapping_mul(2654435761) % 200) * 0x24))
            .collect();
        let mut e = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 3)),
            EngineConfig {
                issue_width: 4,
                window: 24,
                mispredict_penalty: 8,
            },
        );
        let stats = e.run(&noisy);
        assert!(stats.squash_cycles > 0, "noisy stream must squash");
        assert!(
            stats.stall_cycles > 0,
            "12-instr traces in a 24-slot window stall"
        );
        assert!(
            stats.stall_cycles + stats.squash_cycles <= stats.cycles,
            "breakdown is a subset of total cycles"
        );
        let missed = stats.prediction.predictions - stats.prediction.correct;
        assert_eq!(stats.squash_cycles, missed * 8, "penalty per miss");
    }

    #[test]
    fn window_bounds_inflight_instructions() {
        let records = cycle_stream(4, 100);
        let mut e = DelayedUpdateEngine::new(
            NextTracePredictor::new(PredictorConfig::paper(12, 0)),
            EngineConfig {
                issue_width: 1,
                window: 16,
                mispredict_penalty: 2,
            },
        );
        let stats = e.run(&records);
        // 100 traces x 12 instrs at 1 instr/cycle ⇒ at least 1200 cycles.
        assert!(stats.cycles >= 1200);
        assert_eq!(stats.instrs, 1200);
    }
}
