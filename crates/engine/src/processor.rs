//! A trace-processor throughput model (Rotenberg, Jacobson, Sazeides &
//! Smith, *Trace Processors*, MICRO-30, 1997 — the architecture this
//! predictor was built for).
//!
//! A trace processor distributes whole traces to parallel processing
//! elements (PEs): a sequencer driven by the next-trace predictor assigns
//! one trace per cycle to a free PE; traces execute concurrently and retire
//! in order. Next-trace prediction quality is the lever on throughput — a
//! misprediction serializes the machine back to one trace at a time.
//!
//! The model is deliberately coarse (no data dependences between traces;
//! fixed per-trace execution latency) but captures the first-order
//! interaction the paper cares about: PE-level parallelism × prediction
//! accuracy.

use ntp_core::{NextTracePredictor, TracePredictor};
use ntp_trace::TraceRecord;

/// Parameters of the trace-processor model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceProcessorConfig {
    /// Number of processing elements.
    pub pe_count: usize,
    /// Instructions each PE issues per cycle.
    pub pe_issue: u32,
    /// Fixed per-trace startup latency (dispatch, register read).
    pub exec_base: u32,
    /// Cycles between a misprediction's resolution and the next dispatch.
    pub squash_penalty: u32,
}

impl Default for TraceProcessorConfig {
    fn default() -> TraceProcessorConfig {
        TraceProcessorConfig {
            pe_count: 4,
            pe_issue: 4,
            exec_base: 2,
            squash_penalty: 4,
        }
    }
}

/// Results of a trace-processor run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceProcessorStats {
    /// Cycle the last trace retired.
    pub cycles: u64,
    /// Instructions retired.
    pub instrs: u64,
    /// Traces retired.
    pub traces: u64,
    /// Next-trace mispredictions.
    pub mispredicts: u64,
}

impl TraceProcessorStats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate in percent.
    pub fn mispredict_pct(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            100.0 * self.mispredicts as f64 / self.traces as f64
        }
    }
}

/// The trace-processor model: a sequencer (the predictor) feeding `pe_count`
/// parallel processing elements.
///
/// # Examples
///
/// ```
/// use ntp_core::{NextTracePredictor, PredictorConfig};
/// use ntp_engine::{TraceProcessor, TraceProcessorConfig};
/// use ntp_trace::{TraceId, TraceRecord};
///
/// let stream: Vec<TraceRecord> = (0..500)
///     .map(|k| TraceRecord::new(TraceId::new(0x0040_0004 + (k % 4) * 68, 0, 0), 16, 0, false, false))
///     .collect();
/// let mut tp = TraceProcessor::new(
///     NextTracePredictor::new(PredictorConfig::paper(15, 3)),
///     TraceProcessorConfig::default(),
/// );
/// let stats = tp.run(&stream);
/// // Four 4-wide PEs on a predictable stream beat one PE's issue width.
/// assert!(stats.ipc() > 4.0, "ipc {}", stats.ipc());
/// ```
pub struct TraceProcessor {
    predictor: NextTracePredictor,
    cfg: TraceProcessorConfig,
}

impl TraceProcessor {
    /// Wraps a predictor as the sequencer.
    ///
    /// # Panics
    ///
    /// Panics if `pe_count` or `pe_issue` is zero.
    pub fn new(predictor: NextTracePredictor, cfg: TraceProcessorConfig) -> TraceProcessor {
        assert!(cfg.pe_count > 0 && cfg.pe_issue > 0);
        TraceProcessor { predictor, cfg }
    }

    /// Runs the model over a committed trace stream.
    pub fn run(&mut self, records: &[TraceRecord]) -> TraceProcessorStats {
        let mut stats = TraceProcessorStats::default();
        // Finish time of the trace currently occupying each PE.
        let mut pe_busy_until = vec![0u64; self.cfg.pe_count];
        let mut next_dispatch: u64 = 0;
        let mut last_retire: u64 = 0;

        for rec in records {
            let pred = self.predictor.predict();
            let correct = pred.is_correct(rec.id());
            self.predictor.update(rec);

            // One dispatch per cycle; wait for a free PE.
            let (pe, &free_at) = pe_busy_until
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("pe_count > 0");
            let dispatch = next_dispatch.max(free_at);
            let exec =
                self.cfg.exec_base as u64 + (rec.len as u64).div_ceil(self.cfg.pe_issue as u64);
            let finish = dispatch + exec;
            pe_busy_until[pe] = finish;

            // In-order retirement.
            last_retire = last_retire.max(finish);

            next_dispatch = dispatch + 1;
            if !correct {
                stats.mispredicts += 1;
                // The wrong prediction is discovered when this trace's
                // control flow resolves; everything younger is wrong-path,
                // so the sequencer restarts after the squash.
                next_dispatch = next_dispatch.max(finish + self.cfg.squash_penalty as u64);
                for t in pe_busy_until.iter_mut() {
                    *t = (*t).min(finish);
                }
            }

            stats.traces += 1;
            stats.instrs += rec.len as u64;
        }
        stats.cycles = last_retire;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_core::PredictorConfig;
    use ntp_trace::TraceId;

    fn stream(period: u32, n: usize, len: u8) -> Vec<TraceRecord> {
        (0..n)
            .map(|k| {
                TraceRecord::new(
                    TraceId::new(0x0040_0004 + (k as u32 % period) * 0x44, 0, 0),
                    len,
                    0,
                    false,
                    false,
                )
            })
            .collect()
    }

    fn run(pes: usize, records: &[TraceRecord]) -> TraceProcessorStats {
        let mut tp = TraceProcessor::new(
            NextTracePredictor::new(PredictorConfig::paper(15, 3)),
            TraceProcessorConfig {
                pe_count: pes,
                ..TraceProcessorConfig::default()
            },
        );
        tp.run(records)
    }

    #[test]
    fn more_pes_help_predictable_streams() {
        let records = stream(6, 4000, 16);
        let one = run(1, &records);
        let four = run(4, &records);
        assert!(
            four.ipc() > 1.8 * one.ipc(),
            "4 PEs {} vs 1 PE {}",
            four.ipc(),
            one.ipc()
        );
    }

    #[test]
    fn pes_saturate_at_dispatch_rate() {
        // One trace dispatched per cycle bounds IPC at the trace length.
        let records = stream(3, 4000, 16);
        let lots = run(16, &records);
        assert!(lots.ipc() <= 16.0 + 1e-9);
        assert!(lots.ipc() > 10.0, "{}", lots.ipc());
    }

    #[test]
    fn mispredictions_serialize_the_machine() {
        let predictable = stream(4, 2000, 12);
        let noisy: Vec<TraceRecord> = (0..2000u32)
            .map(|k| {
                TraceRecord::new(
                    TraceId::new(
                        0x0040_0004 + (k.wrapping_mul(2654435761) % 300) * 0x24,
                        0,
                        0,
                    ),
                    12,
                    0,
                    false,
                    false,
                )
            })
            .collect();
        let good = run(4, &predictable);
        let bad = run(4, &noisy);
        assert!(
            good.ipc() > 2.0 * bad.ipc(),
            "predictable {} vs noisy {}",
            good.ipc(),
            bad.ipc()
        );
        assert!(bad.mispredict_pct() > 50.0);
    }

    #[test]
    fn counts_are_conserved() {
        let records = stream(5, 321, 9);
        let stats = run(2, &records);
        assert_eq!(stats.traces, 321);
        assert_eq!(stats.instrs, 321 * 9);
        assert!(stats.cycles > 0);
    }
}
