//! A set-associative trace cache (Rotenberg, Bennett & Smith, MICRO-29).
//!
//! Stores completed traces keyed by their full identifier; indexed by the
//! low bits of the hashed identifier, exactly the index the cost-reduced
//! predictor of §5.5 stores in its tables.

use ntp_trace::{TraceId, TraceRecord};

/// Geometry of a [`TraceCache`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceCacheConfig {
    /// log2 of the number of sets.
    pub set_bits: u32,
    /// Ways per set.
    pub assoc: usize,
}

impl Default for TraceCacheConfig {
    fn default() -> TraceCacheConfig {
        // 256 sets x 4 ways x (16 instrs) ≈ the paper's "64KB trace cache".
        TraceCacheConfig {
            set_bits: 8,
            assoc: 4,
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct Line {
    key: u64,
    record: TraceRecord,
    lru: u64,
}

/// Cache hit/miss counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
}

impl TraceCacheStats {
    /// Hit rate in 0..=1.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative trace cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use ntp_engine::{TraceCache, TraceCacheConfig};
/// use ntp_trace::{TraceId, TraceRecord};
///
/// let mut tc = TraceCache::new(TraceCacheConfig::default());
/// let r = TraceRecord::new(TraceId::new(0x0040_0000, 0b1, 1), 9, 0, false, false);
/// assert!(tc.lookup(r.id()).is_none());
/// tc.insert(&r);
/// assert_eq!(tc.lookup(r.id()).unwrap().len, 9);
/// ```
#[derive(Clone, Debug)]
pub struct TraceCache {
    sets: Vec<Vec<Line>>,
    cfg: TraceCacheConfig,
    tick: u64,
    stats: TraceCacheStats,
}

impl TraceCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `set_bits > 16` or `assoc` is 0.
    pub fn new(cfg: TraceCacheConfig) -> TraceCache {
        assert!(cfg.set_bits <= 16, "index comes from a 16-bit hashed id");
        assert!(cfg.assoc > 0);
        TraceCache {
            sets: vec![Vec::with_capacity(cfg.assoc); 1 << cfg.set_bits],
            cfg,
            tick: 0,
            stats: TraceCacheStats::default(),
        }
    }

    /// The geometry in force.
    pub fn config(&self) -> TraceCacheConfig {
        self.cfg
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> TraceCacheStats {
        self.stats
    }

    fn set_of(&self, id: TraceId) -> usize {
        id.hashed().low_bits(self.cfg.set_bits) as usize
    }

    /// Looks up a trace by identifier, updating LRU and counters.
    pub fn lookup(&mut self, id: TraceId) -> Option<TraceRecord> {
        self.tick += 1;
        let tick = self.tick;
        let key = id.packed();
        let set = self.set_of(id);
        for line in &mut self.sets[set] {
            if line.key == key {
                line.lru = tick;
                self.stats.hits += 1;
                return Some(line.record);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts (or refreshes) a trace after it has been built.
    pub fn insert(&mut self, record: &TraceRecord) {
        self.tick += 1;
        let key = record.id().packed();
        let set = self.set_of(record.id());
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.key == key) {
            line.record = *record;
            line.lru = self.tick;
            return;
        }
        let line = Line {
            key,
            record: *record,
            lru: self.tick,
        };
        if lines.len() < self.cfg.assoc {
            lines.push(line);
        } else {
            let victim = lines
                .iter_mut()
                .min_by_key(|l| l.lru)
                .expect("assoc > 0 so the set is nonempty");
            *victim = line;
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 8, 0, false, false)
    }

    #[test]
    fn fill_then_hit() {
        let mut tc = TraceCache::new(TraceCacheConfig::default());
        let r = rec(0x0040_0004);
        tc.insert(&r);
        assert!(tc.lookup(r.id()).is_some());
        assert_eq!(tc.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut tc = TraceCache::new(TraceCacheConfig {
            set_bits: 1,
            assoc: 2,
        });
        // Three traces mapping to the same set (hashed low bit equal).
        let a = rec(0x0040_0000);
        let b = rec(0x0040_0020);
        let c = rec(0x0040_0040);
        assert_eq!(a.id().hashed().low_bits(1), b.id().hashed().low_bits(1),);
        tc.insert(&a);
        tc.insert(&b);
        let _ = tc.lookup(a.id()); // touch a, making b the LRU
        tc.insert(&c);
        assert!(tc.lookup(a.id()).is_some());
        assert!(tc.lookup(b.id()).is_none(), "b was evicted");
        assert!(tc.lookup(c.id()).is_some());
        assert_eq!(tc.stats().evictions, 1);
    }

    #[test]
    fn distinct_branch_bits_are_distinct_traces() {
        let mut tc = TraceCache::new(TraceCacheConfig::default());
        let t = TraceRecord::new(TraceId::new(0x0040_0000, 0b01, 2), 8, 0, false, false);
        let n = TraceRecord::new(TraceId::new(0x0040_0000, 0b10, 2), 8, 0, false, false);
        tc.insert(&t);
        assert!(tc.lookup(n.id()).is_none());
    }
}
