//! # ntp-engine — execution-engine models around the predictor
//!
//! Three consumers of next-trace prediction:
//!
//! * [`TraceCache`] — a set-associative cache of traces (Rotenberg et al.),
//!   indexed by hashed trace identifiers;
//! * [`DelayedUpdateEngine`] — the §5.4 protocol: speculative history with
//!   misprediction repair, table training at retirement, and a simple
//!   8-wide/64-entry-window cycle model (Table 4);
//! * [`FetchEngine`] — predictor + trace cache delivering instructions,
//!   reporting fetch bandwidth (the metric trace caches exist to raise);
//! * [`TraceProcessor`] — a throughput model of the trace-processor
//!   architecture this predictor was designed for (parallel processing
//!   elements fed by the sequencer).
//!
//! # Example
//!
//! ```
//! use ntp_core::{NextTracePredictor, PredictorConfig};
//! use ntp_engine::{DelayedUpdateEngine, EngineConfig};
//! use ntp_trace::{TraceId, TraceRecord};
//!
//! let stream: Vec<TraceRecord> = (0..200)
//!     .map(|k| TraceRecord::new(TraceId::new(0x0040_0004 + (k % 4) * 68, 0, 0), 12, 0, false, false))
//!     .collect();
//! let predictor = NextTracePredictor::new(PredictorConfig::paper(12, 3));
//! let stats = DelayedUpdateEngine::new(predictor, EngineConfig::default()).run(&stream);
//! println!("IPC {:.2}, mispredict {:.2}%", stats.ipc(), stats.prediction.mispredict_pct());
//! ```

#![warn(missing_docs)]

mod delayed;
mod fetch;
mod processor;
mod telemetry;
mod trace_cache;

pub use delayed::{DelayedUpdateEngine, EngineConfig, EngineStats};
pub use fetch::{FetchConfig, FetchEngine, FetchStats};
pub use processor::{TraceProcessor, TraceProcessorConfig, TraceProcessorStats};
pub use trace_cache::{TraceCache, TraceCacheConfig, TraceCacheStats};
