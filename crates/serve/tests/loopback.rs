//! Loopback end-to-end tests: a real `serve()` server on an ephemeral
//! port, real TCP clients, and the exact-oracle guarantee the crate
//! promises — served statistics are **byte-identical** to the offline
//! [`ntp_core::evaluate`] replay, at one worker and at four.
//!
//! The hostile-input tests speak raw bytes at the socket (bypassing
//! [`Client`]) to prove malformed, checksum-flipped and oversized frames
//! are refused with a typed error reply while the connection — and the
//! server — survive to serve the next well-formed request.

use ntp_serve::{
    config::ServeConfig,
    loadgen::{self, LoadgenConfig, SessionSpec},
    serve, wire, Client, ErrorCode, Request, Response,
};
use ntp_trace::{TraceId, TraceRecord};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// A deterministic synthetic trace stream: a xorshift walk over a small
/// set of trace heads, so the predictor sees learnable structure.
fn synthetic_stream(seed: u64, len: usize) -> Vec<TraceRecord> {
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..len)
        .map(|_| {
            let r = step();
            // 8 distinct heads, word-aligned, within the low code segment.
            let pc = 0x0040_0000 + ((r >> 8) % 8) as u32 * 64;
            let branches = (r % 4) as u8;
            let bits = (r >> 16) as u8 & ((1u8 << branches).wrapping_sub(1));
            let id = TraceId::new(pc, bits, branches);
            let len = 1 + (r >> 24) as u8 % 16;
            TraceRecord::new(id, len, branches, r % 5 == 0, r % 7 == 0)
        })
        .collect()
}

fn cfg_on(port0: &str, workers: usize) -> ServeConfig {
    ServeConfig {
        addr: port0.to_string(),
        workers,
        ..ServeConfig::default()
    }
}

/// Served stats equal the offline oracle exactly, with 1 server worker.
#[test]
fn served_matches_oracle_one_worker() {
    served_matches_oracle(1);
}

/// Served stats equal the offline oracle exactly, with 4 server workers
/// (sessions shard across all of them).
#[test]
fn served_matches_oracle_four_workers() {
    served_matches_oracle(4);
}

fn served_matches_oracle(workers: usize) {
    let handle = serve(cfg_on("127.0.0.1:0", workers)).expect("bind");
    let addr = handle.local_addr().to_string();

    let specs: Vec<SessionSpec> = (0..6)
        .map(|i| SessionSpec {
            name: format!("synth{i}"),
            records: synthetic_stream(0x9E37_79B9 * (i as u64 + 1), 4_000),
        })
        .collect();
    let report = loadgen::run(
        &LoadgenConfig {
            addr: addr.clone(),
            clients: 3,
            chunk: 128,
            bits: 12,
            depth: 5,
        },
        &specs,
    )
    .expect("loadgen runs");

    assert_eq!(report.sessions.len(), 6);
    assert_eq!(report.records, 6 * 4_000);
    for s in &report.sessions {
        assert_eq!(
            s.served, s.oracle,
            "session {} (shard {}) diverged from the offline oracle at {workers} workers",
            s.name, s.shard
        );
        assert!(s.served.predictions == 4_000);
        assert_eq!(s.shard as usize, s.session as usize % workers);
    }
    assert!(report.all_match());
    assert!(report.latency_us.count() >= report.requests);

    Client::connect(&addr)
        .expect("connect")
        .shutdown_server()
        .expect("shutdown");
    let summary = handle.join();
    assert_eq!(summary.sessions, 6);
}

/// Writes one raw frame (length | body | checksum) with an arbitrary body.
fn write_raw(stream: &mut TcpStream, body: &[u8]) {
    wire::write_frame(stream, body).expect("write");
    stream.flush().expect("flush");
}

/// Writes a frame whose checksum is deliberately wrong.
fn write_corrupt(stream: &mut TcpStream, body: &[u8]) {
    let mut buf = Vec::with_capacity(4 + body.len() + 8);
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(body);
    buf.extend_from_slice(&(ntp_hash::fnv64(body) ^ 1).to_le_bytes());
    stream.write_all(&buf).expect("write");
    stream.flush().expect("flush");
}

fn read_reply(stream: &mut TcpStream) -> Response {
    let body = wire::read_frame(stream, 1 << 20).expect("reply frame");
    wire::decode_response(&body).expect("reply decodes")
}

/// A malformed body (unknown kind), a checksum-flipped frame, and an
/// oversized frame each draw a typed error reply — and the **same
/// connection** then completes a full healthy session.
#[test]
fn hostile_frames_get_error_replies_and_the_connection_survives() {
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_frame: 4096, // small cap so the oversized case is cheap
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // 1. Unknown request kind.
    write_raw(&mut stream, &[0x7F, 1, 2, 3]);
    match read_reply(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest error, got {other:?}"),
    }

    // 2. Truncated Hello payload.
    write_raw(&mut stream, &[0x01, 9]);
    match read_reply(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest error, got {other:?}"),
    }

    // 3. Checksum-flipped (otherwise valid) Stats request.
    write_corrupt(
        &mut stream,
        &wire::encode_request(&Request::Stats { session: 7 }),
    );
    match read_reply(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame error, got {other:?}"),
    }

    // 4. Oversized frame: declared 1 MiB > the 4 KiB server cap. The
    //    server discards the whole declared body to stay framed.
    let big = vec![0u8; 1 << 20];
    write_raw(&mut stream, &big);
    match read_reply(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected Oversized error, got {other:?}"),
    }

    // 5. The very same connection still serves a healthy session.
    write_raw(
        &mut stream,
        &wire::encode_request(&Request::Hello {
            session: 42,
            bits: 12,
            depth: 3,
        }),
    );
    match read_reply(&mut stream) {
        Response::HelloOk { session, .. } => assert_eq!(session, 42),
        other => panic!("expected HelloOk, got {other:?}"),
    }
    let rec = TraceRecord::new(TraceId::new(0x0040_0000, 0, 0), 8, 0, false, false);
    for want in [false, true] {
        write_raw(
            &mut stream,
            &wire::encode_request(&Request::Update {
                session: 42,
                record: rec,
            }),
        );
        match read_reply(&mut stream) {
            Response::Updated { correct } => assert_eq!(correct, want),
            other => panic!("expected Updated, got {other:?}"),
        }
    }
    drop(stream);

    Client::connect(addr)
        .expect("connect")
        .shutdown_server()
        .expect("shutdown");
    let summary = handle.join();
    assert_eq!(
        summary.protocol_errors, 4,
        "all four hostile frames counted"
    );
    assert_eq!(summary.sessions, 1);
}

/// Requests against a session that never said Hello are refused with
/// `UnknownSession`; a duplicate Hello is refused with `BadConfig`.
#[test]
fn session_lifecycle_errors_are_typed() {
    let handle = serve(cfg_on("127.0.0.1:0", 2)).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    match client.stats(99) {
        Err(ntp_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownSession)
        }
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    client.hello(99, 12, 3).expect("hello");
    match client.hello(99, 12, 3) {
        Err(ntp_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadConfig)
        }
        other => panic!("expected BadConfig on duplicate hello, got {other:?}"),
    }
    match client.hello(100, 0, 3) {
        Err(ntp_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadConfig)
        }
        other => panic!("expected BadConfig on bits=0, got {other:?}"),
    }

    client.shutdown_server().expect("shutdown");
    handle.join();
}

/// Shutdown drains in-flight work: batches already accepted by a shard
/// queue are fully applied before the server exits, and the final
/// summary accounts for every request.
#[test]
fn shutdown_drains_in_flight_sessions() {
    let handle = serve(cfg_on("127.0.0.1:0", 2)).expect("bind");
    let addr = handle.local_addr();

    let records = synthetic_stream(0xDEAD_BEEF, 2_000);
    let mut client = Client::connect(addr).expect("connect");
    client.hello(5, 12, 5).expect("hello");
    let (mut predictions, mut correct) = (0u64, 0u64);
    for chunk in records.chunks(250) {
        let (p, c) = client.batch(5, chunk).expect("batch");
        predictions += p;
        correct += c;
    }
    // Ask for shutdown while the session's stats are still queryable on
    // the same connection: drain must answer this before exiting.
    let stats = client.stats(5).expect("stats");
    assert_eq!(stats.predictions, predictions);
    assert_eq!(stats.correct, correct);
    client.shutdown_server().expect("shutdown");

    // New connections after the drain began are refused or fail to
    // connect; either way the server exits. (A connect error means the
    // listener already closed: also fine.)
    if let Ok(mut late) = Client::connect(addr) {
        match late.hello(6, 12, 5) {
            Err(ntp_serve::ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::Draining)
            }
            Err(_) => {} // connection torn down mid-handshake: fine
            Ok(_) => panic!("server accepted a session after shutdown"),
        }
    }

    let summary = handle.join();
    assert_eq!(summary.sessions, 1);
    // hello + ceil(2000/250) batches + stats + shutdown.
    assert!(summary.requests > 1 + records.len() as u64 / 250);
}

/// Reads a counter out of a parsed metrics snapshot section.
fn counter(snap: &ntp_telemetry::Json, section: &str, name: &str) -> u64 {
    snap.get(section)
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("missing counter {section}.{name}"))
}

/// The `Metrics` frame reports exactly the work the loadgen did: summed
/// per-shard frame and prediction counters equal the oracle-verified
/// served totals, and the `total` section is the sum of the shards.
#[test]
fn metrics_frame_counts_served_work_exactly() {
    let workers = 2;
    let handle = serve(cfg_on("127.0.0.1:0", workers)).expect("bind");
    let addr = handle.local_addr().to_string();

    let specs: Vec<SessionSpec> = (0..4)
        .map(|i| SessionSpec {
            name: format!("synth{i}"),
            records: synthetic_stream(0xABCD_EF01 * (i as u64 + 1), 2_000),
        })
        .collect();
    let report = loadgen::run(
        &LoadgenConfig {
            addr: addr.clone(),
            clients: 2,
            chunk: 128,
            bits: 12,
            depth: 5,
        },
        &specs,
    )
    .expect("loadgen runs");
    assert!(report.all_match(), "oracle must agree before counting");

    let mut client = Client::connect(&addr).expect("connect");
    let json = client.metrics_json().expect("metrics frame");
    let snap = ntp_telemetry::json::parse(&json).expect("metrics JSON parses");

    let batches: u64 = report.sessions.iter().map(|s| s.batches).sum();
    assert_eq!(counter(&snap, "total", "predictions"), report.records);
    assert_eq!(
        counter(&snap, "total", "predictions.correct"),
        report
            .sessions
            .iter()
            .map(|s| s.served.correct)
            .sum::<u64>()
    );
    assert_eq!(counter(&snap, "total", "frames.batch"), batches);
    assert_eq!(counter(&snap, "total", "frames.hello"), 4);
    assert_eq!(counter(&snap, "total", "frames.stats"), 4);
    assert_eq!(counter(&snap, "total", "sessions.opened"), 4);
    assert_eq!(counter(&snap, "total", "errors.unknown_session"), 0);

    // The total section is exactly the sum of the per-shard sections,
    // and every shard histogram saw every frame it processed.
    for name in ["predictions", "frames.batch", "sessions.opened"] {
        let summed: u64 = (0..workers)
            .map(|k| counter(&snap, &format!("shard{k}"), name))
            .sum();
        assert_eq!(summed, counter(&snap, "total", name), "{name}");
    }
    for k in 0..workers {
        let section = format!("shard{k}");
        let frames: u64 = ["hello", "predict", "update", "batch", "stats"]
            .iter()
            .map(|f| counter(&snap, &section, &format!("frames.{f}")))
            .sum();
        let observed = snap
            .get(section.as_str())
            .and_then(|s| s.get("histograms"))
            .and_then(|h| h.get("latency_us.all"))
            .and_then(|h| h.get("count"))
            .and_then(|v| v.as_u64())
            .expect("latency histogram present");
        assert_eq!(observed, frames, "shard{k} latency count == frames");
    }

    client.shutdown_server().expect("shutdown");
    let summary = handle.join();
    assert_eq!(summary.sessions, 4);
}

/// A checksum-flipped `Metrics` request draws a `BadFrame` reply and the
/// connection survives to fetch a clean snapshot.
#[test]
fn corrupt_metrics_request_is_refused_and_the_connection_survives() {
    let handle = serve(cfg_on("127.0.0.1:0", 2)).expect("bind");
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_corrupt(&mut stream, &wire::encode_request(&Request::Metrics));
    match read_reply(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame error, got {other:?}"),
    }
    write_raw(&mut stream, &wire::encode_request(&Request::Metrics));
    match read_reply(&mut stream) {
        Response::Metrics { json } => {
            let snap = ntp_telemetry::json::parse(&json).expect("snapshot parses");
            assert!(snap.get("total").is_some(), "total section present");
            assert_eq!(
                counter(&snap, "server", "protocol.errors"),
                1,
                "the corrupt frame was counted"
            );
        }
        other => panic!("expected Metrics, got {other:?}"),
    }
    drop(stream);

    Client::connect(addr)
        .expect("connect")
        .shutdown_server()
        .expect("shutdown");
    handle.join();
}

/// The sidecar listener answers plain-HTTP scrapes in both formats
/// without speaking the binary protocol.
#[test]
fn metrics_sidecar_serves_text_and_json_over_http() {
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let maddr = handle.metrics_local_addr().expect("sidecar bound");

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.hello(3, 12, 3).expect("hello");
    let rec = TraceRecord::new(TraceId::new(0x0040_0000, 0, 0), 8, 0, false, false);
    client.update(3, &rec).expect("update");

    let scrape = |path: &str| -> String {
        let mut s = TcpStream::connect(maddr).expect("connect sidecar");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        s.flush().unwrap();
        let mut out = String::new();
        use std::io::Read;
        s.read_to_string(&mut out).expect("read response");
        out
    };

    let text = scrape("/metrics");
    assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text}");
    assert!(text.contains("total.predictions 1\n"), "{text}");
    assert!(text.contains("total.frames.hello 1\n"), "{text}");
    assert!(text.contains("server.conns.accepted "), "{text}");

    let http = scrape("/metrics.json");
    assert!(http.starts_with("HTTP/1.0 200 OK\r\n"), "{http}");
    let body = http.split("\r\n\r\n").nth(1).expect("has a body");
    let snap = ntp_telemetry::json::parse(body).expect("body parses as JSON");
    assert_eq!(counter(&snap, "total", "predictions"), 1);
    assert_eq!(
        counter(&snap, "shard1", "sessions.opened"),
        1,
        "session 3 owns shard 1"
    );

    let missing = scrape("/nope");
    assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

    // Non-GET methods draw a 405 instead of a silent close.
    let posted = {
        let mut s = TcpStream::connect(maddr).expect("connect sidecar");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "POST /metrics HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        s.flush().unwrap();
        let mut out = String::new();
        use std::io::Read;
        s.read_to_string(&mut out).expect("read response");
        out
    };
    assert!(posted.starts_with("HTTP/1.0 405"), "{posted}");

    // The in-process snapshot agrees with the scraped one.
    let snap2 = handle.metrics_snapshot();
    assert_eq!(
        snap2.get("total").unwrap().counter_by_name("predictions"),
        Some(1)
    );

    client.shutdown_server().expect("shutdown");
    let summary = handle.join();
    assert_eq!(summary.sessions, 1);
}

/// The drain path carries per-shard attribution through to the final
/// summary instead of flattening it.
#[test]
fn drain_reports_per_shard_attribution() {
    let handle = serve(cfg_on("127.0.0.1:0", 2)).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Session 0 → shard 0, session 1 → shard 1, with different volumes.
    client.hello(0, 12, 3).expect("hello 0");
    client.hello(1, 12, 3).expect("hello 1");
    let rec = TraceRecord::new(TraceId::new(0x0040_0000, 0, 0), 8, 0, false, false);
    for _ in 0..3 {
        client.update(0, &rec).expect("update 0");
    }
    for _ in 0..5 {
        client.update(1, &rec).expect("update 1");
    }
    let _ = client.stats(7); // unknown session → a typed error on shard 1
    client.shutdown_server().expect("shutdown");

    let summary = handle.join();
    assert_eq!(summary.per_shard.len(), 2);
    let s0 = &summary.per_shard[0];
    let s1 = &summary.per_shard[1];
    assert_eq!((s0.shard, s1.shard), (0, 1));
    assert_eq!((s0.sessions, s1.sessions), (1, 1));
    assert_eq!((s0.predictions, s1.predictions), (3, 5));
    assert_eq!((s0.errors, s1.errors), (0, 1));
    assert!(s0.correct <= 3 && s1.correct <= 5);
    assert_eq!(
        summary.requests,
        summary.per_shard.iter().map(|s| s.requests).sum::<u64>(),
        "whole-server totals are the per-shard sums"
    );
    assert_eq!(summary.sessions, 2);
}

/// The batched shard drain at one worker: eight sessions race their
/// `Update` frames into a single shard queue every round, so drains
/// routinely pick up several queued sessions and resolve them through
/// one gathered sweep.
#[test]
fn batched_drain_matches_oracle_one_worker() {
    batched_drain_matches_oracle(1);
}

/// The batched shard drain with sessions spread over four workers.
#[test]
fn batched_drain_matches_oracle_four_workers() {
    batched_drain_matches_oracle(4);
}

/// Every reply under a batched drain must equal the scalar oracle: the
/// per-update `correct` bit is checked in lockstep against a local
/// predictor, and the final served stats against a fresh
/// [`ntp_core::evaluate`]. With one worker the drain counter must also
/// show that batching actually engaged.
fn batched_drain_matches_oracle(workers: usize) {
    use ntp_core::{evaluate, NextTracePredictor, PredictorConfig, TracePredictor};

    const SESSIONS: usize = 8;
    const ROUNDS: usize = 400;
    let handle = serve(cfg_on("127.0.0.1:0", workers)).expect("bind");
    let addr = handle.local_addr();

    let streams: Vec<Vec<TraceRecord>> = (0..SESSIONS)
        .map(|i| synthetic_stream(0x5EED ^ ((i as u64 + 1) * 7919), ROUNDS))
        .collect();
    let mut conns: Vec<TcpStream> = (0..SESSIONS)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s.set_nodelay(true).unwrap();
            s
        })
        .collect();
    for (i, c) in conns.iter_mut().enumerate() {
        write_raw(
            c,
            &wire::encode_request(&Request::Hello {
                session: i as u64,
                bits: 12,
                depth: 5,
            }),
        );
    }
    for c in conns.iter_mut() {
        assert!(matches!(read_reply(c), Response::HelloOk { .. }));
    }

    let mut oracles: Vec<NextTracePredictor> = (0..SESSIONS)
        .map(|_| NextTracePredictor::new(PredictorConfig::paper(12, 5)))
        .collect();
    #[allow(clippy::needless_range_loop)]
    for round in 0..ROUNDS {
        // Write every session's frame before reading any reply, so the
        // owning shard(s) see several independent sessions queued at once.
        for (i, c) in conns.iter_mut().enumerate() {
            write_raw(
                c,
                &wire::encode_request(&Request::Update {
                    session: i as u64,
                    record: streams[i][round],
                }),
            );
        }
        for (i, c) in conns.iter_mut().enumerate() {
            let rec = &streams[i][round];
            let want = oracles[i].predict().is_correct(rec.id());
            oracles[i].update(rec);
            match read_reply(c) {
                Response::Updated { correct } => {
                    assert_eq!(correct, want, "session {i} round {round}")
                }
                other => panic!("expected Updated, got {other:?}"),
            }
        }
    }

    // Served statistics equal a fresh offline replay, field for field.
    let mut client = Client::connect(addr).expect("connect");
    for (i, stream) in streams.iter().enumerate() {
        let served = client.stats(i as u64).expect("stats");
        let offline = evaluate(
            &mut NextTracePredictor::new(PredictorConfig::paper(12, 5)),
            stream,
        );
        assert_eq!(served, offline, "session {i} diverged at {workers} workers");
    }

    let snap =
        ntp_telemetry::json::parse(&client.metrics_json().expect("metrics")).expect("parses");
    let scraped: u64 = (0..workers)
        .map(|k| counter(&snap, &format!("shard{k}"), "drain.batched"))
        .sum();
    if workers == 1 {
        // 3200 racing updates into one queue: the drain must have found
        // at least one opportunity to batch.
        assert!(scraped > 0, "single-shard drain never batched");
    }

    client.shutdown_server().expect("shutdown");
    let summary = handle.join();
    assert_eq!(summary.sessions, SESSIONS as u64);
    assert_eq!(
        summary.per_shard.iter().map(|s| s.batched).sum::<u64>(),
        scraped,
        "drain summary and scraped counter disagree"
    );
}

/// Graceful drain persists every session to per-shard `.nts` snapshots;
/// a second server warm-starts from them (at a *different* worker count,
/// so sessions re-partition) and continues each session in exact
/// agreement with an offline oracle replaying the concatenated stream.
#[test]
fn warm_start_resumes_drained_sessions_exactly() {
    use ntp_core::{evaluate, NextTracePredictor, PredictorConfig};

    let dir = std::env::temp_dir().join(format!("ntp-warm-{}", std::process::id()));
    let snap_dir = dir.join("snaps");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: a cold two-worker server learns two sessions, then drains
    // into the snapshot directory.
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        snapshot_dir: Some(snap_dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let first: Vec<Vec<TraceRecord>> = (0..2)
        .map(|i| synthetic_stream(0xFEED ^ (i + 1), 1_500))
        .collect();
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for (i, stream) in first.iter().enumerate() {
        client.hello(i as u64, 12, 3).expect("hello");
        client.batch(i as u64, stream).expect("batch");
    }
    let stats0 = client.stats(0).expect("stats 0");
    client.shutdown_server().expect("shutdown");
    let summary = handle.join();
    assert_eq!(
        summary.per_shard.iter().map(|s| s.snapshotted).sum::<u64>(),
        2,
        "both sessions persisted at drain"
    );
    for k in 0..2 {
        assert!(
            snap_dir.join(format!("shard{k}.nts")).is_file(),
            "shard{k}.nts written"
        );
    }

    // Phase 2: warm-start a one-worker server from the directory. Both
    // sessions are live without any Hello, stats carry over exactly, and
    // a duplicate Hello is refused like any existing session.
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        warm_path: Some(snap_dir),
        ..ServeConfig::default()
    })
    .expect("warm bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    assert_eq!(client.stats(0).expect("warm stats"), stats0);
    match client.hello(0, 12, 3) {
        Err(ntp_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadConfig)
        }
        other => panic!("expected BadConfig on a warm session id, got {other:?}"),
    }

    // Continuing session 1 must match an offline oracle that replays the
    // phase-1 and phase-2 streams back to back on one predictor.
    let more = synthetic_stream(0xBADC_0FFE, 800);
    client.batch(1, &more).expect("batch after warm start");
    let served = client.stats(1).expect("stats 1");
    let mut oracle = NextTracePredictor::new(PredictorConfig::paper(12, 3));
    let mut offline = evaluate(&mut oracle, &first[1]);
    offline.merge(&evaluate(&mut oracle, &more));
    assert_eq!(
        served, offline,
        "a warm-started session must continue exactly where the drain stopped"
    );

    let snap = handle.metrics_snapshot();
    assert_eq!(
        snap.get("shard0")
            .and_then(|s| s.counter_by_name("sessions.warmed")),
        Some(2),
        "warm restores are counted per shard"
    );
    client.shutdown_server().expect("shutdown");
    let summary = handle.join();
    assert_eq!(summary.per_shard[0].warmed, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads one raw reply frame (length | body | checksum) verbatim.
fn read_raw_reply(stream: &mut TcpStream) -> Vec<u8> {
    use std::io::Read;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("reply length");
    let body_len = u32::from_le_bytes(len) as usize;
    let mut frame = vec![0u8; 4 + body_len + 8];
    frame[..4].copy_from_slice(&len);
    stream.read_exact(&mut frame[4..]).expect("reply frame");
    frame
}

/// Partial-frame torture: every request frame arrives dribbled a few
/// bytes at a time across many reads, with several frame boundaries
/// deliberately split mid-header, mid-body and mid-checksum. The event
/// loop must reassemble every frame exactly — each reply is compared
/// **byte-for-byte** against the locally framed expected response — with
/// zero protocol errors, and the partial-read counter must show the
/// reassembly path actually engaged.
#[cfg(target_os = "linux")]
#[test]
fn dribbled_frames_reassemble_byte_identically() {
    use ntp_core::{NextTracePredictor, PredictorConfig, TracePredictor};

    let handle = serve(cfg_on("127.0.0.1:0", 1)).expect("bind");
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).unwrap();

    // Dribble the Hello itself: 1 byte per write.
    let hello = {
        let mut buf = Vec::new();
        wire::frame_request(
            &mut buf,
            &Request::Hello {
                session: 0,
                bits: 12,
                depth: 5,
            },
        );
        buf
    };
    for b in &hello {
        stream.write_all(std::slice::from_ref(b)).expect("dribble");
        stream.flush().expect("flush");
    }
    assert!(matches!(read_reply(&mut stream), Response::HelloOk { .. }));

    let records = synthetic_stream(0xD21B_B1E5, 200);
    let mut oracle = NextTracePredictor::new(PredictorConfig::paper(12, 5));
    let mut chop = 0usize;
    for (k, rec) in records.iter().enumerate() {
        let mut frame = Vec::new();
        wire::frame_request(
            &mut frame,
            &Request::Update {
                session: 0,
                record: *rec,
            },
        );
        // Rotate through chunk sizes 1..=5 so splits land inside the
        // 4-byte header, the body and the 8-byte checksum on different
        // iterations.
        let mut off = 0;
        while off < frame.len() {
            chop = chop % 5 + 1;
            let end = (off + chop).min(frame.len());
            stream.write_all(&frame[off..end]).expect("dribble");
            stream.flush().expect("flush");
            off = end;
        }

        let want = oracle.predict().is_correct(rec.id());
        oracle.update(rec);
        let expected = {
            let mut buf = Vec::new();
            wire::append_response_frame(&mut buf, &Response::Updated { correct: want });
            buf
        };
        assert_eq!(
            read_raw_reply(&mut stream),
            expected,
            "reply {k} not byte-identical"
        );
    }
    drop(stream);

    Client::connect(addr)
        .expect("connect")
        .shutdown_server()
        .expect("shutdown");
    let summary = handle.join();
    assert_eq!(summary.protocol_errors, 0, "dribbling is not an error");
    assert!(
        summary.partial_reads > 0,
        "dribbled frames must exercise the reassembly path"
    );
    assert_eq!(summary.sessions, 1);
}

/// Pipelining: a client that fires a whole burst of same-session frames
/// in one write and only then reads gets every reply, in order, each
/// matching the lockstep oracle — and on one worker the coalescing
/// counter must show consecutive same-session frames were gathered into
/// multi-entry jobs rather than woken one by one.
#[cfg(target_os = "linux")]
#[test]
fn pipelined_bursts_reply_in_order_and_coalesce() {
    use ntp_core::{NextTracePredictor, PredictorConfig, TracePredictor};

    let handle = serve(cfg_on("127.0.0.1:0", 1)).expect("bind");
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    write_raw(
        &mut stream,
        &wire::encode_request(&Request::Hello {
            session: 0,
            bits: 12,
            depth: 5,
        }),
    );
    assert!(matches!(read_reply(&mut stream), Response::HelloOk { .. }));

    let records = synthetic_stream(0xC0A1_E5CE, 600);
    let mut oracle = NextTracePredictor::new(PredictorConfig::paper(12, 5));
    for burst in records.chunks(40) {
        let mut buf = Vec::new();
        for rec in burst {
            let mut frame = Vec::new();
            wire::frame_request(
                &mut frame,
                &Request::Update {
                    session: 0,
                    record: *rec,
                },
            );
            buf.extend_from_slice(&frame);
        }
        // One write carries the entire burst: the loop reads several
        // frames per wakeup and must answer them strictly in order.
        stream.write_all(&buf).expect("burst write");
        stream.flush().expect("flush");
        for (k, rec) in burst.iter().enumerate() {
            let want = oracle.predict().is_correct(rec.id());
            oracle.update(rec);
            match read_reply(&mut stream) {
                Response::Updated { correct } => {
                    assert_eq!(correct, want, "burst reply {k} out of order or wrong")
                }
                other => panic!("expected Updated, got {other:?}"),
            }
        }
    }
    drop(stream);

    let mut client = Client::connect(addr).expect("connect");
    let snap =
        ntp_telemetry::json::parse(&client.metrics_json().expect("metrics")).expect("parses");
    assert!(
        counter(&snap, "shard0", "drain.coalesced") > 0,
        "40-frame bursts into one session must coalesce"
    );
    client.shutdown_server().expect("shutdown");
    let summary = handle.join();
    assert_eq!(summary.protocol_errors, 0);
    assert!(summary.per_shard[0].coalesced > 0);
}

/// `event_threads: 0` forces the portable blocking frontend on any
/// platform; the exact-oracle guarantee holds there unchanged.
#[test]
fn blocking_fallback_matches_oracle() {
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        event_threads: 0,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr().to_string();

    let specs: Vec<SessionSpec> = (0..3)
        .map(|i| SessionSpec {
            name: format!("synth{i}"),
            records: synthetic_stream(0xB10C_0000 + i as u64, 2_000),
        })
        .collect();
    let report = loadgen::run(
        &LoadgenConfig {
            addr: addr.clone(),
            clients: 3,
            chunk: 128,
            bits: 12,
            depth: 5,
        },
        &specs,
    )
    .expect("loadgen runs");
    assert!(report.all_match(), "blocking frontend diverged from oracle");

    Client::connect(&addr)
        .expect("connect")
        .shutdown_server()
        .expect("shutdown");
    let summary = handle.join();
    assert_eq!(summary.sessions, 3);
}

/// Open-loop determinism: two runs with the same seed, rate, zipf and
/// duration — against fresh servers — produce the identical schedule
/// (digest and per-session sent counts) and, below capacity, identical
/// oracle-checked outcomes with zero shed load.
#[test]
fn open_loop_schedule_is_deterministic() {
    let specs: Vec<SessionSpec> = (0..3)
        .map(|i| SessionSpec {
            name: format!("synth{i}"),
            records: synthetic_stream(0x00E1_100F ^ (i as u64 + 1), 500),
        })
        .collect();

    let run = || {
        let handle = serve(cfg_on("127.0.0.1:0", 2)).expect("bind");
        let addr = handle.local_addr().to_string();
        let report = ntp_serve::run_open_loop(
            &ntp_serve::OpenLoopConfig {
                addr: addr.clone(),
                conns: 2,
                rate: 2_000.0,
                duration: Duration::from_millis(500),
                zipf: 1.0,
                seed: 0x5EED,
                bits: 12,
                depth: 5,
            },
            &specs,
        )
        .expect("open loop runs");
        Client::connect(&addr)
            .expect("connect")
            .shutdown_server()
            .expect("shutdown");
        handle.join();
        report
    };

    let a = run();
    let b = run();

    assert_eq!(a.offered, 1_000);
    assert_eq!(a.schedule_digest, b.schedule_digest, "schedules diverged");
    assert_eq!(a.busy, 0, "2k/s on 2 workers must be below capacity");
    assert_eq!(b.busy, 0);
    assert_eq!(a.applied, a.offered, "nothing shed below capacity");
    assert!(a.all_match() && b.all_match());
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(x.sent, y.sent, "session {} sent diverged", x.name);
        assert_eq!(x.applied, y.applied);
        assert_eq!(
            x.oracle, y.oracle,
            "session {} oracle stats diverged",
            x.name
        );
        assert_eq!(x.served, y.served, "session {} served diverged", x.name);
    }
    assert!(a.latency_us.count() >= a.applied);
}

/// A corrupted warm snapshot is refused outright: the server logs, starts
/// cold (no partially restored sessions), and serves normally.
#[test]
fn corrupt_warm_snapshot_falls_back_to_cold_start() {
    let dir = std::env::temp_dir().join(format!("ntp-warm-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("seed.nts");

    // A valid single-session snapshot, then one flipped byte in the body.
    let mut p = ntp_core::NextTracePredictor::new(ntp_core::PredictorConfig::paper(12, 3));
    let stats = ntp_core::evaluate(&mut p, &synthetic_stream(0xACED, 600));
    let artifact = ntp_tracefile::SnapshotArtifact {
        sessions: vec![ntp_tracefile::SessionSnapshot::capture(0, &p, &stats)],
    };
    ntp_tracefile::write_snapshot_file(&path, &artifact).expect("write");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        warm_path: Some(path),
        ..ServeConfig::default()
    })
    .expect("bind despite corrupt warm file");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    match client.stats(0) {
        Err(ntp_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownSession, "cold start: no session 0")
        }
        other => panic!("expected UnknownSession after cold start, got {other:?}"),
    }
    client.hello(0, 12, 3).expect("cold server still serves");
    client.shutdown_server().expect("shutdown");
    let summary = handle.join();
    assert_eq!(summary.per_shard.iter().map(|s| s.warmed).sum::<u64>(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
