//! The event-driven connection frontend: a fixed set of epoll readiness
//! loops multiplexing every accepted socket (Linux only).
//!
//! The blocking frontend spends one thread per connection, parked in
//! `read_frame`. This module replaces that with `event_threads`
//! nonblocking loops: the acceptor hands sockets to a [`ConnRouter`],
//! each loop owns its connections outright (no locks on any per-
//! connection state), and a [`crate::poll::WakeFd`] lets shard workers
//! poke the loop when a reply is ready. The shard plane is untouched —
//! decoded frames route into the same bounded queues, replies come back
//! as [`Completion`]s tagged `(conn, seq)` so the loop can restore the
//! strict request order on the wire no matter how shards interleave.
//!
//! Mechanics worth naming:
//!
//! * **Frame reassembly.** Reads land in a [`wire::FrameAssembler`]; a
//!   frame split across any number of reads (or many frames packed into
//!   one read) decodes identically to the blocking reader, including
//!   its oversized-resync and poisoning semantics. Reads that end
//!   mid-frame count `conn.partial_reads`.
//! * **Pipelining + coalescing.** A client may write many frames
//!   without waiting. Consecutive same-session frames decoded from one
//!   read burst are coalesced into a single [`Job::Run`] — one queue
//!   slot, one shard wakeup — which is exactly the feeding pattern the
//!   shard's batched drain wants. Replies still come back one frame per
//!   request, in request order (`next_write`/`pending` reordering).
//! * **Write backpressure.** Replies append to a per-connection buffer
//!   flushed opportunistically; a short write arms `EPOLLOUT` and the
//!   loop finishes the flush when the socket drains, so one slow reader
//!   never blocks the loop.
//! * **Shutdown.** The acceptor holds the only [`ConnRouter`]; when it
//!   exits the injection channels disconnect, and each loop runs its
//!   remaining connections dry before exiting — the same drain story as
//!   the blocking frontend, without a shutdown race on late accepts.
//!
//! Shards never wait on a loop (completions ride an unbounded channel),
//! so a loop calling into `Hub::collect` for an inline `Metrics` frame
//! cannot deadlock against its own connections' in-flight work.

use crate::config::ServeConfig;
use crate::poll::{Epoll, Event, WakeFd};
use crate::server::{note_sockopt, Completion, Hub, Job, LoopShared, ReplySink};
use crate::wire::{self, ErrorCode, FrameAssembler, FrameEvent, Request, Response, WireError};
use ntp_telemetry::ToJson;
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Token reserved for the loop's own wakeup eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

/// Epoll wait timeout: the cadence of idle sweeps and drain checks.
const LOOP_TICK_MS: i32 = 100;

/// Most same-session frames coalesced into one [`Job::Run`] — matches
/// the shard's own per-sweep drain limit, so one run never exceeds what
/// a shard would batch anyway.
const MAX_COALESCE: usize = 64;

/// Read-buffer size per `read(2)`: large enough that a burst of small
/// pipelined frames lands in one syscall.
const READ_CHUNK: usize = 64 << 10;

/// Fans accepted sockets out to the event loops, round-robin. Held only
/// by the acceptor: dropping it closes every loop's injection channel,
/// which is each loop's signal that no new connection can ever arrive.
pub(crate) struct ConnRouter {
    targets: Vec<(mpsc::Sender<TcpStream>, Arc<WakeFd>)>,
    rr: AtomicUsize,
}

impl ConnRouter {
    /// Hands a socket to the next loop and wakes it. False only when
    /// every loop is gone (teardown).
    pub(crate) fn inject(&self, stream: TcpStream) -> bool {
        let n = self.targets.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        let mut stream = stream;
        for k in 0..n {
            let (tx, wake) = &self.targets[(start + k) % n];
            match tx.send(stream) {
                Ok(()) => {
                    wake.wake();
                    return true;
                }
                Err(mpsc::SendError(s)) => stream = s,
            }
        }
        false
    }
}

/// Spawns `n` event-loop threads and the router that feeds them.
pub(crate) fn spawn(
    n: usize,
    cfg: &ServeConfig,
    hub: &Arc<Hub>,
    active_conns: &Arc<AtomicUsize>,
    loops: &Arc<[LoopShared]>,
) -> Result<(Arc<ConnRouter>, Vec<JoinHandle<()>>), String> {
    let mut targets = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let wake =
            Arc::new(WakeFd::new().map_err(|e| format!("serve: cannot create loop eventfd: {e}"))?);
        let (inject_tx, inject_rx) = mpsc::channel::<TcpStream>();
        let cfg = cfg.clone();
        let hub = Arc::clone(hub);
        let active_conns = Arc::clone(active_conns);
        let loops = Arc::clone(loops);
        let wake2 = Arc::clone(&wake);
        handles.push(
            std::thread::Builder::new()
                .name(format!("ntp-serve-loop-{i}"))
                .spawn(move || run_loop(cfg, hub, active_conns, loops, i, wake2, inject_rx))
                .map_err(|e| format!("serve: cannot spawn event loop: {e}"))?,
        );
        targets.push((inject_tx, wake));
    }
    Ok((
        Arc::new(ConnRouter {
            targets,
            rr: AtomicUsize::new(0),
        }),
        handles,
    ))
}

/// One multiplexed connection: read side (assembler), write side
/// (buffered replies), and the sequencing that keeps the wire in
/// request order.
struct Conn {
    stream: TcpStream,
    asm: FrameAssembler,
    /// Encoded reply frames not yet fully written.
    wbuf: Vec<u8>,
    /// How much of `wbuf` the socket has taken.
    wpos: usize,
    /// Next sequence number to stamp on a decoded frame.
    next_seq: u64,
    /// Next sequence number whose reply goes on the wire.
    next_write: u64,
    /// Replies that finished out of order, parked until their turn.
    pending: HashMap<u64, Response>,
    /// Whether `EPOLLOUT` is currently armed for this socket.
    interest_out: bool,
    /// Close once `wbuf` drains (after `Bye`, or a poisoned stream).
    close_after_flush: bool,
    /// Peer sent EOF; close once every stamped frame is answered.
    read_closed: bool,
    /// Transport error; close immediately, discarding `wbuf`.
    dead: bool,
    last_activity: Instant,
}

enum FlushState {
    Drained,
    Stalled,
    Dead,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            asm: FrameAssembler::new(),
            wbuf: Vec::new(),
            wpos: 0,
            next_seq: 0,
            next_write: 0,
            pending: HashMap::new(),
            interest_out: false,
            close_after_flush: false,
            read_closed: false,
            dead: false,
            last_activity: Instant::now(),
        }
    }

    fn take_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// True when every stamped frame's reply has been encoded.
    fn idle(&self) -> bool {
        self.next_write == self.next_seq
    }

    /// Slots one reply into the in-order stream: encoded straight into
    /// `wbuf` when it is the next one due (then drains any parked run),
    /// parked otherwise.
    fn complete(&mut self, seq: u64, resp: Response) {
        if seq != self.next_write {
            self.pending.insert(seq, resp);
            return;
        }
        wire::append_response_frame(&mut self.wbuf, &resp);
        self.next_write += 1;
        while let Some(r) = self.pending.remove(&self.next_write) {
            wire::append_response_frame(&mut self.wbuf, &r);
            self.next_write += 1;
        }
    }

    /// Pushes buffered replies at the socket until drained or blocked.
    fn flush(&mut self) -> FlushState {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return FlushState::Dead,
                Ok(n) => {
                    self.wpos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return FlushState::Stalled,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushState::Dead,
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        FlushState::Drained
    }
}

/// Everything frame processing needs, borrowed once per loop iteration.
struct Ctx<'a> {
    cfg: &'a ServeConfig,
    hub: &'a Hub,
    done_tx: &'a mpsc::Sender<Completion>,
    wake: &'a Arc<WakeFd>,
}

fn run_loop(
    cfg: ServeConfig,
    hub: Arc<Hub>,
    active_conns: Arc<AtomicUsize>,
    loops: Arc<[LoopShared]>,
    loop_idx: usize,
    wake: Arc<WakeFd>,
    inject_rx: Receiver<TcpStream>,
) {
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let mut ep = match Epoll::new() {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("[serve] event loop {loop_idx}: epoll_create1 failed: {e}");
            return;
        }
    };
    if let Err(e) = ep.add(wake.raw(), WAKE_TOKEN, false) {
        eprintln!("[serve] event loop {loop_idx}: cannot register eventfd: {e}");
        return;
    }
    let ls = &loops[loop_idx];
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut inject_open = true;
    let mut events: Vec<Event> = Vec::new();

    loop {
        if hub.drain.is_set() && !inject_open && conns.is_empty() {
            break;
        }
        if let Err(e) = ep.wait(&mut events, LOOP_TICK_MS) {
            eprintln!("[serve] event loop {loop_idx}: epoll_wait failed: {e}");
            break;
        }
        let ctx = Ctx {
            cfg: &cfg,
            hub: &hub,
            done_tx: &done_tx,
            wake: &wake,
        };

        // New sockets from the acceptor. A disconnected channel means
        // the acceptor is gone — no connection will ever arrive again.
        while inject_open {
            match inject_rx.try_recv() {
                Ok(stream) => register(
                    &ep,
                    &hub,
                    &active_conns,
                    &mut conns,
                    &mut next_token,
                    stream,
                ),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => inject_open = false,
            }
        }

        let mut frames_this_wakeup: usize = 0;
        let mut woke = false;
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                woke = true;
                continue;
            }
            let close = match conns.get_mut(&ev.token) {
                Some(conn) => {
                    if ev.readable {
                        read_socket(conn);
                        frames_this_wakeup += process_frames(&ctx, conn, ev.token);
                        if conn.asm.has_partial() && !conn.read_closed && !conn.dead {
                            ctx.hub
                                .counters
                                .partial_reads
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A pure EPOLLOUT event still settles: the stalled
                    // write buffer can make progress now.
                    if ev.readable || ev.writable {
                        settle(&ep, conn, ev.token)
                    } else {
                        false
                    }
                }
                None => continue, // Closed earlier this iteration.
            };
            if close {
                close_conn(&ep, &mut conns, &active_conns, ev.token);
            }
        }

        // Shard completions. The eventfd must be drained before the
        // channel so a racing producer either lands in this sweep or
        // re-signals the fd for the next one.
        if woke {
            wake.drain();
            let mut touched: HashSet<u64> = HashSet::new();
            while let Ok(c) = done_rx.try_recv() {
                if let Some(conn) = conns.get_mut(&c.conn) {
                    conn.complete(c.seq, c.resp);
                    touched.insert(c.conn);
                }
            }
            for token in touched {
                let close = match conns.get_mut(&token) {
                    Some(conn) => settle(&ep, conn, token),
                    None => continue,
                };
                if close {
                    close_conn(&ep, &mut conns, &active_conns, token);
                }
            }
        }

        // Idle sweep on quiet ticks: a peer with nothing in flight that
        // has been silent past the read timeout is dropped, exactly as
        // the blocking frontend's socket read timeout would.
        if events.is_empty() && !conns.is_empty() {
            let now = Instant::now();
            let expired: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| c.idle() && now.duration_since(c.last_activity) > cfg.read_timeout)
                .map(|(t, _)| *t)
                .collect();
            for token in expired {
                hub.counters.read_timeouts.fetch_add(1, Ordering::Relaxed);
                close_conn(&ep, &mut conns, &active_conns, token);
            }
        }

        if frames_this_wakeup > 0 {
            ls.wakeups.fetch_add(1, Ordering::Relaxed);
            ls.frames_per_wakeup
                .lock()
                .expect("loop histogram lock")
                .record(frames_this_wakeup as u64);
        }
    }
    // Remaining connections (only possible after an epoll failure) still
    // hold slots against the connection limit; release them.
    let abandoned = conns.len();
    drop(conns);
    active_conns.fetch_sub(abandoned, Ordering::SeqCst);
}

/// Switches a fresh socket to nonblocking and registers it; a socket
/// that cannot be prepared is closed (and its `active_conns` slot
/// released) rather than risk it blocking the loop.
fn register(
    ep: &Epoll,
    hub: &Hub,
    active_conns: &AtomicUsize,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    stream: TcpStream,
) {
    let r = stream.set_nonblocking(true);
    let ok = r.is_ok();
    note_sockopt(&hub.counters, "set_nonblocking", r);
    if !ok {
        active_conns.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    let token = *next_token;
    *next_token += 1;
    if ep.add(stream.as_raw_fd(), token, false).is_err() {
        active_conns.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    conns.insert(token, Conn::new(stream));
}

/// Reads until the socket would block (or EOF/error), feeding the
/// assembler. Level-triggered epoll re-reports anything left behind, so
/// a short read may simply end the burst.
fn read_socket(conn: &mut Conn) {
    let mut buf = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.asm.push(&buf[..n]);
                if n < buf.len() {
                    break; // Likely drained; skip the guaranteed EAGAIN.
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Decodes every complete frame buffered on `conn`, mirroring the
/// blocking `connection_loop` exactly: same error codes, same counters,
/// same inline handling of `Shutdown` and `Metrics`. Consecutive
/// same-session routed requests coalesce into one [`Job::Run`]. Returns
/// the number of frames decoded (for `loop.frames_per_wakeup`).
fn process_frames(ctx: &Ctx, conn: &mut Conn, token: u64) -> usize {
    let mut frames = 0usize;
    let mut run: Vec<(Request, ReplySink)> = Vec::new();
    let mut run_session = 0u64;
    while let Some(event) = conn.asm.next(ctx.cfg.max_frame) {
        frames += 1;
        match event {
            FrameEvent::Refused(e) => {
                let seq = conn.take_seq();
                ctx.hub
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                match &e {
                    WireError::Oversized { recoverable, .. } => {
                        if *recoverable {
                            ctx.hub.counters.resyncs.fetch_add(1, Ordering::Relaxed);
                        } else {
                            // The assembler is poisoned — no resync is
                            // possible past a huge declared length.
                            conn.close_after_flush = true;
                        }
                        conn.complete(
                            seq,
                            Response::Error {
                                code: ErrorCode::Oversized,
                                message: e.to_string(),
                            },
                        );
                    }
                    _ => conn.complete(
                        seq,
                        Response::Error {
                            code: ErrorCode::BadFrame,
                            message: e.to_string(),
                        },
                    ),
                }
                if conn.close_after_flush {
                    break;
                }
            }
            FrameEvent::Frame(body) => {
                let seq = conn.take_seq();
                match wire::decode_request(&body) {
                    Err(msg) => {
                        ctx.hub
                            .counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        conn.complete(
                            seq,
                            Response::Error {
                                code: ErrorCode::BadRequest,
                                message: msg,
                            },
                        );
                    }
                    Ok(Request::Shutdown) => {
                        // In-flight work first: requests decoded before
                        // the Shutdown still get served, and their
                        // replies precede the Bye on the wire.
                        flush_run(ctx, conn, &mut run, run_session);
                        ctx.hub.drain.trigger();
                        conn.complete(seq, Response::Bye);
                        conn.close_after_flush = true;
                        break; // Anything after a Shutdown is discarded.
                    }
                    Ok(Request::Metrics) => {
                        flush_run(ctx, conn, &mut run, run_session);
                        let json = ctx.hub.collect().to_json().render();
                        conn.complete(seq, Response::Metrics { json });
                    }
                    Ok(req) => {
                        let session = req.session().expect("routed requests name a session");
                        if !run.is_empty() && (session != run_session || run.len() >= MAX_COALESCE)
                        {
                            flush_run(ctx, conn, &mut run, run_session);
                        }
                        run_session = session;
                        run.push((
                            req,
                            ReplySink::Event {
                                tx: ctx.done_tx.clone(),
                                wake: Arc::clone(ctx.wake),
                                conn: token,
                                seq,
                            },
                        ));
                    }
                }
            }
        }
    }
    flush_run(ctx, conn, &mut run, run_session);
    frames
}

/// Enqueues a pending run on its owning shard: one [`Job::Request`] for
/// a single request, one [`Job::Run`] for a coalesced burst — either
/// way one queue slot and one depth increment, matching the shard's one
/// decrement per job. A full queue answers `Busy` per request (counted
/// per request, exactly like the blocking frontend); a disconnected
/// queue answers `Draining`.
fn flush_run(ctx: &Ctx, conn: &mut Conn, run: &mut Vec<(Request, ReplySink)>, session: u64) {
    if run.is_empty() {
        return;
    }
    let entries = std::mem::take(run);
    let n = entries.len() as u64;
    let shard = (session % ctx.hub.senders.len() as u64) as usize;
    let job = if entries.len() == 1 {
        let (req, reply) = entries.into_iter().next().expect("one entry");
        Job::Request { req, reply }
    } else {
        Job::Run { session, entries }
    };
    match ctx.hub.senders[shard].try_send(job) {
        Ok(()) => {
            ctx.hub.shared[shard].depth.fetch_add(1, Ordering::Relaxed);
        }
        Err(TrySendError::Full(job)) => {
            ctx.hub.counters.busy.fetch_add(n, Ordering::Relaxed);
            ctx.hub.shared[shard].busy.fetch_add(n, Ordering::Relaxed);
            refuse_job(conn, job, &Response::Busy);
        }
        Err(TrySendError::Disconnected(job)) => {
            refuse_job(
                conn,
                job,
                &Response::Error {
                    code: ErrorCode::Draining,
                    message: "server is draining".into(),
                },
            );
        }
    }
}

/// Completes every request in a rejected job with `resp`, in place —
/// the replies are already in sequence order, so they land straight in
/// the connection's write buffer.
fn refuse_job(conn: &mut Conn, job: Job, resp: &Response) {
    let entries = match job {
        Job::Request { req, reply } => vec![(req, reply)],
        Job::Run { entries, .. } => entries,
        Job::Snapshot { .. } | Job::Persist { .. } => Vec::new(),
    };
    for (_, reply) in entries {
        if let ReplySink::Event { seq, .. } = reply {
            conn.complete(seq, resp.clone());
        }
    }
}

/// Flushes what it can and decides the connection's fate: arms or
/// disarms `EPOLLOUT` around a stalled write, closes after the final
/// flush (`Bye`/poisoned stream), closes a half-closed peer once every
/// stamped frame is answered. Returns true when the connection should
/// close now.
fn settle(ep: &Epoll, conn: &mut Conn, token: u64) -> bool {
    if conn.dead {
        return true;
    }
    match conn.flush() {
        FlushState::Drained => {
            if conn.interest_out {
                if ep.modify(conn.stream.as_raw_fd(), token, false).is_err() {
                    return true;
                }
                conn.interest_out = false;
            }
            (conn.close_after_flush || conn.read_closed) && conn.idle()
        }
        FlushState::Stalled => {
            if !conn.interest_out {
                if ep.modify(conn.stream.as_raw_fd(), token, true).is_err() {
                    return true;
                }
                conn.interest_out = true;
            }
            false
        }
        FlushState::Dead => true,
    }
}

/// Deregisters and drops one connection, releasing its `active_conns`
/// slot. Anything still buffered (reads or replies) is discarded.
fn close_conn(ep: &Epoll, conns: &mut HashMap<u64, Conn>, active_conns: &AtomicUsize, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        ep.delete(conn.stream.as_raw_fd());
        drop(conn);
        active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}
