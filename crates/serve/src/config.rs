//! Server configuration and the `NTP_SERVE_*` environment knobs.
//!
//! All knobs go through [`ntp_runner::parse_env`], the workspace's
//! validated environment parser: a typo'd value aborts with a message
//! naming the variable, never silently falls back to the default. The
//! full knob table lives in `SERVING.md`.

use crate::wire::{HARD_FRAME_CAP, MIN_FRAME_CAP};
use std::path::PathBuf;
use std::time::Duration;

/// `NTP_SERVE_ADDR`: the listen address (`host:port`; port `0` asks the
/// OS for an ephemeral port, printed at startup).
pub const ADDR_ENV: &str = "NTP_SERVE_ADDR";

/// `NTP_SERVE_WORKERS`: shard worker count (each session is owned by
/// exactly one worker, `session % workers`).
pub const WORKERS_ENV: &str = "NTP_SERVE_WORKERS";

/// `NTP_SERVE_MAX_CONNS`: concurrent connection limit; excess
/// connections are refused with an `Error(refused)` reply.
pub const MAX_CONNS_ENV: &str = "NTP_SERVE_MAX_CONNS";

/// `NTP_SERVE_EVENT_THREADS`: event-loop thread count for the
/// nonblocking (epoll) connection frontend. `0` disables the event
/// frontend and serves every connection from a dedicated blocking
/// thread — the only mode available off Linux, where this knob is
/// ignored.
pub const EVENT_THREADS_ENV: &str = "NTP_SERVE_EVENT_THREADS";

/// `NTP_SERVE_QUEUE_DEPTH`: bounded per-shard request-queue depth;
/// beyond it the server replies `Busy` instead of queueing.
pub const QUEUE_DEPTH_ENV: &str = "NTP_SERVE_QUEUE_DEPTH";

/// `NTP_SERVE_METRICS_ADDR`: when set, bind a sidecar TCP listener on
/// this `host:port` serving the merged metrics snapshot over plain HTTP
/// (`GET /metrics` text exposition, `GET /metrics.json`). Unset by
/// default — the sidecar is opt-in.
pub const METRICS_ADDR_ENV: &str = "NTP_SERVE_METRICS_ADDR";

/// `NTP_SERVE_STATS_INTERVAL`: when set (seconds, fractional allowed,
/// must be > 0), print a periodic `[serve] …` summary line to stderr.
/// Unset by default — server stderr stays quiet and deterministic.
pub const STATS_INTERVAL_ENV: &str = "NTP_SERVE_STATS_INTERVAL";

/// `NTP_SERVE_WARM`: when set, a `.nts` predictor-state snapshot (or a
/// directory of them) to warm-start from before accepting connections. A
/// snapshot that fails validation is logged and ignored — the server
/// starts cold, it never partially loads.
pub const WARM_ENV: &str = "NTP_SERVE_WARM";

/// `NTP_SERVE_SNAPSHOT_DIR`: when set, each shard writes its sessions to
/// `<dir>/shard<k>.nts` during a graceful drain, so the next
/// `--warm <dir>` start resumes where this one stopped.
pub const SNAPSHOT_DIR_ENV: &str = "NTP_SERVE_SNAPSHOT_DIR";

/// `NTP_SERVE_SNAPSHOT_INTERVAL`: when set (seconds, fractional allowed,
/// must be > 0) alongside a snapshot directory, every shard also
/// persists its sessions to `<dir>/shard<k>.nts` periodically while the
/// server runs — the cluster router's hard-failover path restores from
/// these when a backend dies without draining. Unset by default:
/// snapshots are drain-time only.
pub const SNAPSHOT_INTERVAL_ENV: &str = "NTP_SERVE_SNAPSHOT_INTERVAL";

/// Default listen address (loopback; this service has no auth).
pub const DEFAULT_ADDR: &str = "127.0.0.1:4117";

/// Default concurrent-connection limit.
pub const DEFAULT_MAX_CONNS: usize = 64;

/// Default per-shard request-queue depth (beyond it, `Busy` replies).
pub const DEFAULT_QUEUE_DEPTH: usize = 128;

/// Default frame-body size limit (1 MiB ≈ 131k records per batch).
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Everything a [`crate::server::serve`] call needs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, `host:port` (`:0` for an ephemeral port).
    pub addr: String,
    /// Shard workers; sessions are owned by `session % workers`.
    pub workers: usize,
    /// Concurrent-connection limit.
    pub max_conns: usize,
    /// Largest accepted frame body, in bytes.
    pub max_frame: u32,
    /// Bounded per-shard queue depth; a full queue yields `Busy`.
    pub queue_depth: usize,
    /// Event-loop threads for the nonblocking connection frontend
    /// (Linux only). `0` falls back to one blocking thread per
    /// connection; off Linux the blocking path is always used.
    pub event_threads: usize,
    /// Per-connection socket read timeout (an idle connection past this
    /// is dropped, which also bounds shutdown drain).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Sidecar metrics listener address (`host:port`, `:0` for
    /// ephemeral); `None` disables the sidecar.
    pub metrics_addr: Option<String>,
    /// Period of the `[serve] …` stderr summary lines; `None` disables
    /// them.
    pub stats_interval: Option<Duration>,
    /// `.nts` snapshot file (or directory of snapshot files) to
    /// warm-start sessions from before accepting connections; `None`
    /// starts cold.
    pub warm_path: Option<PathBuf>,
    /// Directory for per-shard drain snapshots (`shard<k>.nts`); `None`
    /// discards learned state at shutdown.
    pub snapshot_dir: Option<PathBuf>,
    /// Period of the live periodic snapshots into `snapshot_dir`;
    /// `None` snapshots at drain only. Ignored without a
    /// `snapshot_dir`.
    pub snapshot_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            workers: default_workers(),
            max_conns: DEFAULT_MAX_CONNS,
            max_frame: DEFAULT_MAX_FRAME,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            event_threads: default_event_threads(),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            metrics_addr: None,
            stats_interval: None,
            warm_path: None,
            snapshot_dir: None,
            snapshot_interval: None,
        }
    }
}

/// Default shard-worker count: the machine's `NTP_THREADS`-governed pool
/// width (see [`ntp_runner::thread_count`]), capped at 8 — shards are
/// long-lived threads, and prediction state is small.
pub fn default_workers() -> usize {
    ntp_runner::thread_count().min(8)
}

/// Default event-loop thread count: a small slice of the
/// `NTP_THREADS`-governed pool width on Linux (the loops only shuttle
/// bytes — shard workers do the prediction work), `0` elsewhere (the
/// epoll frontend is Linux-only).
pub fn default_event_threads() -> usize {
    if cfg!(target_os = "linux") {
        ntp_runner::thread_count().clamp(1, 4)
    } else {
        0
    }
}

impl ServeConfig {
    /// Reads the `NTP_SERVE_*` knobs on top of the defaults.
    ///
    /// # Panics
    ///
    /// Panics (via [`ntp_runner::parse_env`]) when a knob is set but
    /// malformed, or set to a zero where zero is meaningless.
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(addr) = ntp_runner::parse_env::<String>(ADDR_ENV) {
            cfg.addr = addr;
        }
        if let Some(workers) = ntp_runner::parse_env::<usize>(WORKERS_ENV) {
            assert!(workers >= 1, "{WORKERS_ENV} must be >= 1");
            cfg.workers = workers;
        }
        if let Some(max_conns) = ntp_runner::parse_env::<usize>(MAX_CONNS_ENV) {
            assert!(max_conns >= 1, "{MAX_CONNS_ENV} must be >= 1");
            cfg.max_conns = max_conns;
        }
        if let Some(threads) = ntp_runner::parse_env::<usize>(EVENT_THREADS_ENV) {
            cfg.event_threads = threads; // 0 = blocking frontend
        }
        if let Some(depth) = ntp_runner::parse_env::<usize>(QUEUE_DEPTH_ENV) {
            assert!(depth >= 1, "{QUEUE_DEPTH_ENV} must be >= 1");
            cfg.queue_depth = depth;
        }
        if let Some(addr) = ntp_runner::parse_env::<String>(METRICS_ADDR_ENV) {
            cfg.metrics_addr = Some(addr);
        }
        if let Some(secs) = ntp_runner::parse_env::<f64>(STATS_INTERVAL_ENV) {
            assert!(
                secs.is_finite() && secs > 0.0,
                "{STATS_INTERVAL_ENV} must be a positive number of seconds"
            );
            cfg.stats_interval = Some(Duration::from_secs_f64(secs));
        }
        if let Some(path) = ntp_runner::parse_env::<String>(WARM_ENV) {
            assert!(!path.is_empty(), "{WARM_ENV} must not be empty when set");
            cfg.warm_path = Some(PathBuf::from(path));
        }
        if let Some(dir) = ntp_runner::parse_env::<String>(SNAPSHOT_DIR_ENV) {
            assert!(
                !dir.is_empty(),
                "{SNAPSHOT_DIR_ENV} must not be empty when set"
            );
            cfg.snapshot_dir = Some(PathBuf::from(dir));
        }
        if let Some(secs) = ntp_runner::parse_env::<f64>(SNAPSHOT_INTERVAL_ENV) {
            assert!(
                secs.is_finite() && secs > 0.0,
                "{SNAPSHOT_INTERVAL_ENV} must be a positive number of seconds"
            );
            cfg.snapshot_interval = Some(Duration::from_secs_f64(secs));
        }
        cfg
    }

    /// Rejects nonsensical configurations with a one-line diagnostic.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("serve: workers must be >= 1".into());
        }
        if self.max_conns == 0 {
            return Err("serve: max_conns must be >= 1".into());
        }
        if self.queue_depth == 0 {
            return Err("serve: queue_depth must be >= 1".into());
        }
        if self.event_threads > 256 {
            return Err(format!(
                "serve: event_threads {} above the 256 sanity cap",
                self.event_threads
            ));
        }
        if self.max_frame < MIN_FRAME_CAP {
            return Err(format!(
                "serve: max_frame {} below the {MIN_FRAME_CAP}-byte minimum",
                self.max_frame
            ));
        }
        if self.max_frame > HARD_FRAME_CAP {
            return Err(format!(
                "serve: max_frame {} above the {HARD_FRAME_CAP}-byte hard cap",
                self.max_frame
            ));
        }
        if matches!(self.metrics_addr.as_deref(), Some("")) {
            return Err("serve: metrics_addr must not be empty when set".into());
        }
        if matches!(self.stats_interval, Some(d) if d.is_zero()) {
            return Err("serve: stats_interval must be > 0 when set".into());
        }
        if matches!(&self.warm_path, Some(p) if p.as_os_str().is_empty()) {
            return Err("serve: warm_path must not be empty when set".into());
        }
        if matches!(&self.snapshot_dir, Some(p) if p.as_os_str().is_empty()) {
            return Err("serve: snapshot_dir must not be empty when set".into());
        }
        if matches!(self.snapshot_interval, Some(d) if d.is_zero()) {
            return Err("serve: snapshot_interval must be > 0 when set".into());
        }
        if self.snapshot_interval.is_some() && self.snapshot_dir.is_none() {
            return Err("serve: snapshot_interval requires a snapshot_dir".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn defaults_validate() {
        let cfg = ServeConfig::default();
        assert!(cfg.validate().is_ok());
        assert!(cfg.workers >= 1);
    }

    #[test]
    fn invalid_limits_are_rejected_with_one_line_messages() {
        for (cfg, needle) in [
            (
                ServeConfig {
                    workers: 0,
                    ..ServeConfig::default()
                },
                "workers",
            ),
            (
                ServeConfig {
                    max_conns: 0,
                    ..ServeConfig::default()
                },
                "max_conns",
            ),
            (
                ServeConfig {
                    queue_depth: 0,
                    ..ServeConfig::default()
                },
                "queue_depth",
            ),
            (
                ServeConfig {
                    event_threads: 257,
                    ..ServeConfig::default()
                },
                "event_threads",
            ),
            (
                ServeConfig {
                    max_frame: 8,
                    ..ServeConfig::default()
                },
                "max_frame",
            ),
            (
                ServeConfig {
                    max_frame: u32::MAX,
                    ..ServeConfig::default()
                },
                "hard cap",
            ),
            (
                ServeConfig {
                    metrics_addr: Some(String::new()),
                    ..ServeConfig::default()
                },
                "metrics_addr",
            ),
            (
                ServeConfig {
                    stats_interval: Some(Duration::ZERO),
                    ..ServeConfig::default()
                },
                "stats_interval",
            ),
            (
                ServeConfig {
                    warm_path: Some(PathBuf::new()),
                    ..ServeConfig::default()
                },
                "warm_path",
            ),
            (
                ServeConfig {
                    snapshot_dir: Some(PathBuf::new()),
                    ..ServeConfig::default()
                },
                "snapshot_dir",
            ),
            (
                ServeConfig {
                    snapshot_dir: Some(PathBuf::from("snaps")),
                    snapshot_interval: Some(Duration::ZERO),
                    ..ServeConfig::default()
                },
                "snapshot_interval",
            ),
            (
                ServeConfig {
                    snapshot_interval: Some(Duration::from_secs(1)),
                    ..ServeConfig::default()
                },
                "requires a snapshot_dir",
            ),
        ] {
            let err = cfg.validate().expect_err("must be rejected");
            assert!(err.contains(needle), "`{err}` should mention {needle}");
            assert!(!err.contains('\n'), "one-line diagnostic: {err}");
        }
    }

    // Env-var reads mutate process state; a single test keeps them from
    // racing under the parallel harness (the same discipline as
    // ntp-runner's env tests).
    #[test]
    fn from_env_reads_every_knob() {
        let all = [
            ADDR_ENV,
            WORKERS_ENV,
            MAX_CONNS_ENV,
            EVENT_THREADS_ENV,
            QUEUE_DEPTH_ENV,
            METRICS_ADDR_ENV,
            STATS_INTERVAL_ENV,
            WARM_ENV,
            SNAPSHOT_DIR_ENV,
            SNAPSHOT_INTERVAL_ENV,
        ];
        for var in all {
            std::env::remove_var(var);
        }
        let base = ServeConfig::from_env();
        assert_eq!(base.addr, DEFAULT_ADDR);
        assert_eq!(base.max_conns, DEFAULT_MAX_CONNS);
        assert_eq!(base.metrics_addr, None);
        assert_eq!(base.stats_interval, None);
        assert_eq!(base.warm_path, None);
        assert_eq!(base.snapshot_dir, None);
        assert_eq!(base.snapshot_interval, None);

        std::env::set_var(ADDR_ENV, "127.0.0.1:0");
        std::env::set_var(WORKERS_ENV, "3");
        std::env::set_var(MAX_CONNS_ENV, "9");
        std::env::set_var(EVENT_THREADS_ENV, "0");
        std::env::set_var(QUEUE_DEPTH_ENV, "17");
        std::env::set_var(METRICS_ADDR_ENV, "127.0.0.1:0");
        std::env::set_var(STATS_INTERVAL_ENV, "2.5");
        std::env::set_var(WARM_ENV, "warm.nts");
        std::env::set_var(SNAPSHOT_DIR_ENV, "snaps");
        std::env::set_var(SNAPSHOT_INTERVAL_ENV, "0.5");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.max_conns, 9);
        assert_eq!(cfg.event_threads, 0, "0 explicitly selects blocking mode");
        assert_eq!(cfg.queue_depth, 17);
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cfg.stats_interval, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(cfg.warm_path.as_deref(), Some(Path::new("warm.nts")));
        assert_eq!(cfg.snapshot_dir.as_deref(), Some(Path::new("snaps")));
        assert_eq!(cfg.snapshot_interval, Some(Duration::from_secs_f64(0.5)));

        std::env::set_var(WORKERS_ENV, "0");
        let err =
            std::panic::catch_unwind(ServeConfig::from_env).expect_err("zero workers must abort");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(WORKERS_ENV), "{msg}");
        std::env::set_var(WORKERS_ENV, "3");

        std::env::set_var(STATS_INTERVAL_ENV, "0");
        let err = std::panic::catch_unwind(ServeConfig::from_env)
            .expect_err("zero stats interval must abort");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(STATS_INTERVAL_ENV), "{msg}");
        std::env::set_var(STATS_INTERVAL_ENV, "2.5");

        std::env::set_var(QUEUE_DEPTH_ENV, "0");
        let err = std::panic::catch_unwind(ServeConfig::from_env)
            .expect_err("zero queue depth must abort");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(QUEUE_DEPTH_ENV), "{msg}");

        for var in all {
            std::env::remove_var(var);
        }
    }
}
