//! # ntp-serve — the sharded next-trace prediction service
//!
//! Every predictor in this workspace used to live and die inside one
//! batch process. This crate turns the predictor into a long-lived
//! network service — the substrate the ROADMAP's "heavy traffic" north
//! star needs — while keeping the core guarantee intact: **a served
//! session produces byte-identical statistics to the offline
//! [`ntp_core::evaluate`] oracle.**
//!
//! * [`wire`] — the length-framed, FNV-1a-64-checksummed binary
//!   protocol (`Hello`/`Predict`/`Update`/`Batch`/`Stats`/`Shutdown`/
//!   `Metrics`/`Migrate` frames), sharing its hash with the `.ntc`
//!   codec via [`ntp_hash`]. Protocol version 2 adds the
//!   `Migrate`/`MigrateOk` pair — a checksummed single-session snapshot
//!   in flight — which the `ntp-cluster` router uses to move live
//!   sessions between backends;
//! * [`server`] — the TCP listener and fixed shard-worker pool.
//!   Sessions are owned by a single worker (`session % workers`), so
//!   every predictor stays single-threaded and lock-free; bounded
//!   per-shard queues reply `Busy` under load, connection/frame/timeout
//!   limits bound resource use, and shutdown drains in-flight sessions.
//!   Each shard also owns a private metrics registry and rolling window
//!   — the live observability plane behind the `Metrics` frame, the
//!   optional `NTP_SERVE_METRICS_ADDR` scrape sidecar, the
//!   `--stats-interval` stderr summaries and `ntp top`. Sessions can be
//!   **warm-started** from a `.nts` predictor-state snapshot
//!   ([`ServeConfig::warm_path`]; all-or-nothing, refusals log and fall
//!   back to a cold start) and persisted per shard at graceful drain
//!   ([`ServeConfig::snapshot_dir`]), so a restart resumes byte-exactly
//!   where the previous process stopped;
//! * [`client`] — a blocking client library with busy-retry bounded by
//!   both an attempt count and a total wall-clock deadline;
//! * [`loadgen`] — the replay load generator behind `ntp loadgen`:
//!   replays captured trace streams as concurrent sessions, measures
//!   QPS and p50/p99/p99.9 request latency through [`ntp_telemetry`]
//!   histograms, and asserts served == offline statistics exactly;
//! * [`config`] — [`ServeConfig`] and the `NTP_SERVE_ADDR` /
//!   `NTP_SERVE_WORKERS` / `NTP_SERVE_MAX_CONNS` /
//!   `NTP_SERVE_EVENT_THREADS` / `NTP_SERVE_QUEUE_DEPTH` /
//!   `NTP_SERVE_METRICS_ADDR` / `NTP_SERVE_STATS_INTERVAL` /
//!   `NTP_SERVE_WARM` / `NTP_SERVE_SNAPSHOT_DIR` /
//!   `NTP_SERVE_SNAPSHOT_INTERVAL` knobs (validated via
//!   [`ntp_runner::parse_env`]).
//!
//! Protocol layout, sharding model, backpressure semantics and a
//! loadgen recipe are documented in `SERVING.md` at the repo root.
//!
//! # Example (loopback round trip)
//!
//! ```
//! use ntp_serve::{config::ServeConfig, server, client::Client};
//! use ntp_trace::{TraceId, TraceRecord};
//!
//! let handle = server::serve(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 2,
//!     ..ServeConfig::default()
//! })?;
//! let mut client = Client::connect(handle.local_addr())?;
//! client.hello(1, 12, 3)?;
//! let rec = TraceRecord::new(TraceId::new(0x0040_0000, 0, 0), 8, 0, false, false);
//! for _ in 0..4 {
//!     client.update(1, &rec)?;
//! }
//! assert!(client.update(1, &rec)?, "a self-loop is learned immediately");
//! client.shutdown_server()?;
//! let summary = handle.join();
//! assert_eq!(summary.sessions, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod config;
#[cfg(target_os = "linux")]
mod event;
pub mod loadgen;
#[cfg(target_os = "linux")]
mod poll;
pub mod server;
pub mod wire;

/// The wakeup primitive shard workers use to poke an event loop when a
/// completion is queued: the `eventfd` wrapper on Linux, an inert stub
/// elsewhere (the blocking frontend never constructs an event sink).
#[cfg(target_os = "linux")]
pub(crate) use poll::WakeFd as EventWake;

#[cfg(not(target_os = "linux"))]
pub(crate) struct EventWake;

#[cfg(not(target_os = "linux"))]
impl EventWake {
    pub(crate) fn wake(&self) {}
}

pub use client::{Client, ClientError};
pub use config::ServeConfig;
pub use loadgen::{
    run_open_loop, LoadgenConfig, LoadgenReport, OpenLoopConfig, OpenLoopReport, OpenSessionResult,
    SessionResult, SessionSpec,
};
pub use server::{
    install_sigterm_drain, serve, sigterm_pending, ServerHandle, ServerSummary, ShardSummary,
    ShutdownTrigger, DRAIN_MARKER,
};
pub use wire::{ErrorCode, Request, Response, PROTOCOL_VERSION};
