//! Zero-dependency readiness polling for the event-driven frontend.
//!
//! This module wraps the three raw `epoll` syscalls plus `eventfd`
//! behind a tiny safe surface, declaring the symbols directly against
//! the C library that `std` already links — no `libc` crate. It only
//! compiles on Linux; the server falls back to the blocking
//! thread-per-connection path everywhere else (and whenever
//! `event_threads == 0`).
//!
//! Design notes:
//!
//! * **Level-triggered.** Edge-triggered epoll saves wakeups but makes
//!   a missed `EAGAIN` a silent stall; level-triggered keeps the loop
//!   honest and the readers still drain sockets fully per wakeup.
//! * **Tokens are opaque `u64`s** chosen by the caller and carried in
//!   `epoll_event.data`; the loop maps them back to connections.
//! * **[`WakeFd`] dedupes syscalls** with an atomic flag so a burst of
//!   shard completions costs one `write(2)` per quiet period, not one
//!   per reply.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};
use std::sync::atomic::{AtomicBool, Ordering};

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EFD_CLOEXEC: c_int = 0x8_0000;
const EFD_NONBLOCK: c_int = 0x800;

/// `struct epoll_event` from `<sys/epoll.h>`. Packed on x86-64 (the
/// kernel ABI there omits the padding other architectures keep).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// One readiness notification, decoded from the kernel's event mask.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    /// The caller-chosen token registered with the file descriptor.
    pub token: u64,
    /// Data (or EOF/error — errors surface through `read`) is waiting.
    pub readable: bool,
    /// The socket can accept more bytes.
    pub writable: bool,
}

/// A level-triggered `epoll` instance plus its reusable event buffer.
pub(crate) struct Epoll {
    fd: RawFd,
    buf: Vec<EpollEvent>,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            fd,
            buf: vec![EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, want_write: bool) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLRDHUP | if want_write { EPOLLOUT } else { 0 },
            data: token,
        };
        let arg = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        if unsafe { epoll_ctl(self.fd, op, fd, arg) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for read readiness (plus write when `want_write`).
    pub fn add(&self, fd: RawFd, token: u64, want_write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, want_write)
    }

    /// Re-arms `fd`, toggling write interest.
    pub fn modify(&self, fd: RawFd, token: u64, want_write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, want_write)
    }

    /// Deregisters `fd`. Errors are ignored — the descriptor is about
    /// to be closed, which deregisters it anyway.
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, false);
    }

    /// Waits up to `timeout_ms` for readiness, filling `out` with the
    /// decoded events (cleared first). An interrupted wait returns an
    /// empty set rather than an error.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        let n = unsafe {
            epoll_wait(
                self.fd,
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for i in 0..n as usize {
            let raw = self.buf[i];
            let mask = raw.events;
            out.push(Event {
                token: raw.data,
                readable: mask & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: mask & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An `eventfd`-backed wakeup channel: shard workers poke the owning
/// event loop when a completion is queued, and the loop drains the
/// counter before reading its completion channel.
///
/// The `signaled` flag collapses redundant `write(2)` calls: only the
/// first wake after a drain pays the syscall. The loop must reset the
/// flag (inside [`WakeFd::drain`]) *before* reading its completion
/// channel so a racing producer either lands in the current drain or
/// re-signals the fd.
pub(crate) struct WakeFd {
    fd: RawFd,
    signaled: AtomicBool,
}

impl WakeFd {
    /// Creates a nonblocking close-on-exec eventfd.
    pub fn new() -> io::Result<WakeFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd {
            fd,
            signaled: AtomicBool::new(false),
        })
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Signals the owning loop. Deduped: only the first call after a
    /// drain issues a syscall.
    pub fn wake(&self) {
        if !self.signaled.swap(true, Ordering::SeqCst) {
            let one: u64 = 1;
            let _ = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }
    }

    /// Consumes the pending signal (if any) and re-arms the dedupe
    /// flag. Call before draining the completion channel.
    pub fn drain(&self) {
        let mut val: u64 = 0;
        let _ = unsafe { read(self.fd, (&mut val as *mut u64).cast(), 8) };
        self.signaled.store(false, Ordering::SeqCst);
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn wakefd_signals_epoll_and_dedupes() {
        let mut ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.raw(), 7, false).unwrap();

        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no signal yet");

        wake.wake();
        wake.wake(); // deduped — still one pending event
        ep.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        wake.drain();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained — level-triggered fd is quiet");

        wake.wake();
        ep.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1, "re-armed after drain");
    }

    #[test]
    fn socket_readiness_reports_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 42, false).unwrap();

        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "idle socket");

        client.write_all(b"ping").unwrap();
        ep.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        // Write interest on an empty send buffer fires immediately.
        ep.modify(server.as_raw_fd(), 42, true).unwrap();
        ep.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);

        ep.delete(server.as_raw_fd());
        client.write_all(b"more").unwrap();
        ep.wait(&mut events, 50).unwrap();
        assert!(events.is_empty(), "deregistered socket stays silent");
    }
}
