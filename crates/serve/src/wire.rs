//! The binary wire protocol: length-framed, FNV-1a-64-checksummed
//! request/response frames.
//!
//! ```text
//! frame    body length u32 | body | FNV-1a 64 checksum of body (u64)
//! body     kind u8 | payload
//! ```
//!
//! All integers are little-endian — the same framing discipline as the
//! `.ntc` section codec in `ntp-tracefile` (length field, then payload,
//! then an FNV-1a 64 checksum), reusing the identical hash from
//! [`ntp_hash`]. The reader is *validating*: a flipped bit anywhere in the
//! body fails the checksum, a bad length is refused before any allocation,
//! and every decoded value is range-checked. Unlike the on-disk codec,
//! a refused frame is **not** fatal: the stream stays framed (the reader
//! always consumes exactly `4 + len + 8` bytes), so the server can reply
//! with an [`Response::Error`] and keep the connection alive.
//!
//! Request kinds: `Hello`, `Predict`, `Update`, `Batch`, `Stats`,
//! `Shutdown`. Response kinds mirror them, plus `Busy` (explicit
//! backpressure when a shard queue is full) and `Error`.

use ntp_core::{PredictorStats, Source, Target};
use ntp_hash::fnv64;
use ntp_trace::{HashedId, TraceId, TraceRecord, MAX_TRACE_LEN};
use std::io::{Read, Write};

/// Protocol version carried in every `Hello`; servers refuse versions
/// outside [`MIN_PROTOCOL_VERSION`]`..=PROTOCOL_VERSION` so a skewed
/// client fails loudly at session setup, not with silently misdecoded
/// frames later. Version 2 adds the `Migrate`/`MigrateOk` pair — a
/// purely additive extension, so version-1 clients keep working.
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest protocol version this build still accepts in `Hello`.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Frames whose declared body length exceeds this are unrecoverable: the
/// reader cannot cheaply skip the body to resync, so the connection is
/// closed after the error reply. Configurable per-server limits
/// (`max_frame`) must be at or below this.
pub const HARD_FRAME_CAP: u32 = 64 << 20;

/// Smallest sensible `max_frame`: every fixed-size frame fits.
pub const MIN_FRAME_CAP: u32 = 64;

/// A client-to-server request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Opens (creates) session `session` with a `paper(bits, depth)`
    /// predictor. Refused if the session already exists or the
    /// configuration is invalid.
    Hello {
        /// Session identifier; the owning shard is `session % workers`.
        session: u64,
        /// Correlating-table index bits of the predictor configuration.
        bits: u32,
        /// DOLC path-history depth of the predictor configuration.
        depth: u32,
    },
    /// Reads the session's current prediction without training.
    Predict {
        /// Session identifier.
        session: u64,
    },
    /// One replay step: predict, score against `record`, then train
    /// (the immediate-update methodology of `ntp_core::evaluate`).
    Update {
        /// Session identifier.
        session: u64,
        /// The trace that actually executed.
        record: TraceRecord,
    },
    /// [`Request::Update`] applied to a whole chunk in one frame.
    Batch {
        /// Session identifier.
        session: u64,
        /// The trace records, applied in order.
        records: Vec<TraceRecord>,
    },
    /// Reads the session's accumulated [`PredictorStats`].
    Stats {
        /// Session identifier.
        session: u64,
    },
    /// Asks the server to drain and exit: no new connections are
    /// accepted, in-flight sessions run to completion.
    Shutdown,
    /// Reads the server's merged runtime-metrics snapshot (see
    /// OBSERVABILITY.md "Live serving metrics"). Not routed to a shard:
    /// the connection collects a [`Response::Metrics`] across all shards.
    Metrics,
    /// Live session migration (protocol version 2). With `snapshot:
    /// None` this *extracts*: the owning shard serializes the session as
    /// a checksummed single-session `.nts` snapshot (the
    /// `ntp_tracefile::encode_session_wire` framing), removes it, and
    /// returns the bytes in [`Response::MigrateOk`]. With `snapshot:
    /// Some(bytes)` this *installs*: the target shard decodes, validates
    /// and inserts the session (refused if it already exists). A router
    /// pairs the two calls to move a session between backends with its
    /// statistics intact.
    Migrate {
        /// Session identifier.
        session: u64,
        /// `None` to extract-and-remove; `Some` snapshot bytes to
        /// install.
        snapshot: Option<Vec<u8>>,
    },
}

impl Request {
    /// The session this request is routed by (`None` for
    /// [`Request::Shutdown`] and [`Request::Metrics`], which are handled
    /// by the connection itself, not a shard).
    pub fn session(&self) -> Option<u64> {
        match self {
            Request::Hello { session, .. }
            | Request::Predict { session }
            | Request::Update { session, .. }
            | Request::Batch { session, .. }
            | Request::Stats { session }
            | Request::Migrate { session, .. } => Some(*session),
            Request::Shutdown | Request::Metrics => None,
        }
    }
}

/// Why a request was refused (carried in [`Response::Error`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Frame checksum mismatch: the body arrived corrupted.
    BadFrame,
    /// Frame body exceeded the server's `max_frame` limit.
    Oversized,
    /// The body decoded to no known request, or payload values were out
    /// of range.
    BadRequest,
    /// The addressed session does not exist (no `Hello` seen).
    UnknownSession,
    /// `Hello` named a predictor configuration the core rejected, or a
    /// session that already exists, or a protocol-version mismatch.
    BadConfig,
    /// The server is at its connection limit.
    Refused,
    /// The server is draining for shutdown and takes no new work.
    Draining,
    /// Internal failure (a shard disappeared mid-request).
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::Oversized => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::UnknownSession => 4,
            ErrorCode::BadConfig => 5,
            ErrorCode::Refused => 6,
            ErrorCode::Draining => 7,
            ErrorCode::Internal => 8,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::Oversized,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::UnknownSession,
            5 => ErrorCode::BadConfig,
            6 => ErrorCode::Refused,
            7 => ErrorCode::Draining,
            8 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::BadConfig => "bad-config",
            ErrorCode::Refused => "refused",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// A server-to-client response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Session created.
    HelloOk {
        /// Echo of the session identifier.
        session: u64,
        /// The shard (worker index) that owns the session.
        shard: u32,
    },
    /// The session's current prediction.
    Predicted {
        /// The predicted next trace, if any table had an opinion.
        target: Option<Target>,
        /// Which table served the prediction.
        source: Source,
    },
    /// One update applied.
    Updated {
        /// Whether the pre-update prediction named the actual trace.
        correct: bool,
    },
    /// A batch applied.
    BatchDone {
        /// Predictions scored in this batch (= records sent).
        predictions: u64,
        /// Correct predictions in this batch.
        correct: u64,
    },
    /// The session's accumulated statistics.
    StatsOk {
        /// Exact replay statistics, byte-comparable with the offline
        /// `ntp_core::evaluate` oracle.
        stats: PredictorStats,
    },
    /// Explicit backpressure: the owning shard's queue is full. The
    /// request was **not** applied; retry after a pause.
    Busy,
    /// Acknowledges [`Request::Shutdown`]; the server is draining.
    Bye,
    /// Acknowledges [`Request::Migrate`]. For an extract the snapshot
    /// bytes ride back (`Some`); for an install it is `None`.
    MigrateOk {
        /// Echo of the session identifier.
        session: u64,
        /// The extracted single-session snapshot, if this was an
        /// extract.
        snapshot: Option<Vec<u8>>,
    },
    /// The server's merged runtime-metrics snapshot, rendered by the
    /// telemetry JSON writer (sections per shard plus `server`/`total`).
    /// Carried as text so the reply needs no schema negotiation; the
    /// frame checksum still covers every byte.
    Metrics {
        /// The snapshot JSON document.
        json: String,
    },
    /// The request was refused.
    Error {
        /// Machine-readable refusal class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Why a frame could not be read. [`WireError::Io`] ends the connection;
/// the other variants leave the stream framed and the connection usable.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure or clean EOF.
    Io(std::io::Error),
    /// Declared body length exceeds the limit. The body was consumed
    /// (discarded) when `len <= HARD_FRAME_CAP`; `recoverable` says so.
    Oversized {
        /// Declared body length.
        len: u32,
        /// The limit it exceeded.
        max: u32,
        /// Whether the stream was resynced (body discarded) and the
        /// connection can continue.
        recoverable: bool,
    },
    /// Body checksum mismatch.
    BadChecksum,
    /// Zero-length body.
    Empty,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Oversized { len, max, .. } => {
                write!(f, "frame body {len} bytes exceeds limit {max}")
            }
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::Empty => write!(f, "zero-length frame"),
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Writes one frame: `len | body | fnv64(body)`.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    debug_assert!(!body.is_empty(), "frames always carry at least a kind byte");
    let mut out = Vec::with_capacity(4 + body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&fnv64(body).to_le_bytes());
    w.write_all(&out)
}

/// Appends one complete frame to `out`, encoding the body in place: a
/// four-byte length placeholder is reserved, `fill` appends the body,
/// then the length is backfilled and the checksum appended. No
/// intermediate body allocation, so callers can reuse one scratch
/// buffer across requests and issue a single `write` per frame.
fn append_frame_with(out: &mut Vec<u8>, fill: impl FnOnce(&mut Vec<u8>)) {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    fill(out);
    let len = (out.len() - start - 4) as u32;
    debug_assert!(len > 0, "frames always carry at least a kind byte");
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    let sum = fnv64(&out[start + 4..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Encodes `req` as one complete frame (`len | body | checksum`) into
/// `out`, clearing it first. The result is ready for a single
/// `write_all` — the client hot path reuses one scratch buffer so a
/// request costs zero allocations and one syscall.
pub fn frame_request(out: &mut Vec<u8>, req: &Request) {
    out.clear();
    append_frame_with(out, |buf| encode_request_into(buf, req));
}

/// Appends one complete response frame to `out` **without** clearing
/// it, so several pipelined replies accumulate into one buffered write
/// on the server side.
pub fn append_response_frame(out: &mut Vec<u8>, resp: &Response) {
    append_frame_with(out, |buf| encode_response_into(buf, resp));
}

/// Reads one frame body, enforcing `max_frame` and verifying the
/// checksum. On every non-[`WireError::Io`] error the reader has consumed
/// exactly the declared frame (when recoverable), so the caller can reply
/// with an error and keep reading.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Vec<u8>, WireError> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4);
    if len == 0 {
        // Consume the trailing checksum so the stream stays framed.
        let mut sum = [0u8; 8];
        r.read_exact(&mut sum)?;
        return Err(WireError::Empty);
    }
    if len > max_frame {
        let recoverable = len <= HARD_FRAME_CAP;
        if recoverable {
            // Discard body + checksum to resync.
            discard(r, len as u64 + 8)?;
        }
        return Err(WireError::Oversized {
            len,
            max: max_frame,
            recoverable,
        });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    if fnv64(&body) != u64::from_le_bytes(sum) {
        return Err(WireError::BadChecksum);
    }
    Ok(body)
}

/// One parse step from a [`FrameAssembler`].
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete, checksum-verified frame body.
    Frame(Vec<u8>),
    /// A refused frame ([`WireError::Empty`], [`WireError::BadChecksum`]
    /// or [`WireError::Oversized`]); mirrors [`read_frame`]'s recoverable
    /// errors. Unless the error is an unrecoverable `Oversized`, the
    /// stream stays framed and parsing can continue.
    Refused(WireError),
}

/// Incremental frame reassembly for nonblocking sockets: bytes arrive
/// in arbitrary chunks via [`FrameAssembler::push`], and
/// [`FrameAssembler::next`] yields exactly the same sequence of frames
/// and recoverable errors that [`read_frame`] would produce on the
/// equivalent blocking stream.
///
/// Oversized-but-recoverable bodies are *not* buffered: the error is
/// reported as soon as the header is seen and subsequent bytes are
/// swallowed until the declared body (plus checksum) has passed, so a
/// 64 MiB hostile frame costs no allocation. An oversized frame beyond
/// [`HARD_FRAME_CAP`] poisons the assembler — the caller must close the
/// connection, exactly as the blocking reader does.
#[derive(Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    pos: usize,
    /// Bytes still to swallow from an oversized-but-recoverable frame.
    skip: u64,
    poisoned: bool,
}

/// Compact the parse buffer once the consumed prefix crosses this.
const ASSEMBLER_COMPACT: usize = 64 << 10;

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Feeds one received chunk into the assembler.
    pub fn push(&mut self, mut bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        if self.skip > 0 {
            let eaten = self.skip.min(bytes.len() as u64) as usize;
            self.skip -= eaten as u64;
            bytes = &bytes[eaten..];
        }
        if !bytes.is_empty() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Whether the assembler holds an incomplete frame (or is mid-way
    /// through swallowing an oversized body) — i.e. the last read ended
    /// on a partial frame.
    pub fn has_partial(&self) -> bool {
        self.skip > 0 || self.pos < self.buf.len()
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= ASSEMBLER_COMPACT {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Parses the next complete frame, if the buffer holds one.
    pub fn next(&mut self, max_frame: u32) -> Option<FrameEvent> {
        if self.poisoned || self.skip > 0 {
            return None;
        }
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return None;
        }
        let len = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        if len == 0 {
            // A zero-length frame still carries its checksum; consume
            // both so the stream stays framed.
            if avail < 12 {
                return None;
            }
            self.pos += 12;
            self.compact();
            return Some(FrameEvent::Refused(WireError::Empty));
        }
        if len > max_frame {
            if len > HARD_FRAME_CAP {
                self.poisoned = true;
                return Some(FrameEvent::Refused(WireError::Oversized {
                    len,
                    max: max_frame,
                    recoverable: false,
                }));
            }
            // Swallow body + checksum as they arrive instead of
            // buffering them; report the refusal immediately.
            let total = len as u64 + 8;
            let have = (avail - 4) as u64;
            let eaten = total.min(have);
            self.pos += 4 + eaten as usize;
            self.skip = total - eaten;
            self.compact();
            return Some(FrameEvent::Refused(WireError::Oversized {
                len,
                max: max_frame,
                recoverable: true,
            }));
        }
        let need = 4 + len as usize + 8;
        if avail < need {
            self.compact();
            return None;
        }
        let body_start = self.pos + 4;
        let body_end = body_start + len as usize;
        let sum = u64::from_le_bytes(self.buf[body_end..body_end + 8].try_into().unwrap());
        let ok = fnv64(&self.buf[body_start..body_end]) == sum;
        let event = if ok {
            FrameEvent::Frame(self.buf[body_start..body_end].to_vec())
        } else {
            FrameEvent::Refused(WireError::BadChecksum)
        };
        self.pos += need;
        self.compact();
        Some(event)
    }
}

/// Reads and drops exactly `n` bytes.
fn discard(r: &mut impl Read, n: u64) -> std::io::Result<()> {
    let copied = std::io::copy(&mut r.take(n), &mut std::io::sink())?;
    if copied < n {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "stream ended while discarding an oversized frame",
        ));
    }
    Ok(())
}

// Body kind bytes. Requests are < 0x80, responses >= 0x80.
const K_HELLO: u8 = 0x01;
const K_PREDICT: u8 = 0x02;
const K_UPDATE: u8 = 0x03;
const K_BATCH: u8 = 0x04;
const K_STATS: u8 = 0x05;
const K_SHUTDOWN: u8 = 0x06;
const K_METRICS: u8 = 0x07;
const K_MIGRATE: u8 = 0x08;
const K_HELLO_OK: u8 = 0x81;
const K_PREDICTED: u8 = 0x82;
const K_UPDATED: u8 = 0x83;
const K_BATCH_DONE: u8 = 0x84;
const K_STATS_OK: u8 = 0x85;
const K_BUSY: u8 = 0x86;
const K_BYE: u8 = 0x87;
const K_METRICS_OK: u8 = 0x88;
const K_MIGRATE_OK: u8 = 0x89;
const K_ERROR: u8 = 0xFF;

/// A validating little-endian cursor over a frame body.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() < n {
            return Err(format!(
                "truncated payload: wanted {n} more bytes, have {}",
                self.bytes.len()
            ));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), String> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(format!("{} trailing byte(s)", self.bytes.len()))
        }
    }
}

/// Packs one [`TraceRecord`] into its 8-byte wire form.
fn put_record(out: &mut Vec<u8>, r: &TraceRecord) {
    out.extend_from_slice(&r.start_pc.to_le_bytes());
    out.push(r.branch_bits);
    out.push(r.branch_count);
    out.push(r.len);
    out.push(
        r.call_count()
            | (u8::from(r.ends_in_return()) << 3)
            | (u8::from(r.ends_in_indirect()) << 4),
    );
}

/// Decodes and range-checks one 8-byte wire record.
fn get_record(c: &mut Cursor<'_>) -> Result<TraceRecord, String> {
    let start_pc = c.u32()?;
    let branch_bits = c.u8()?;
    let branch_count = c.u8()?;
    let len = c.u8()?;
    let flags = c.u8()?;
    if branch_count > 6 {
        return Err(format!("branch_count {branch_count} > 6"));
    }
    let mask = ((1u16 << branch_count) - 1) as u8;
    if branch_bits & !mask != 0 {
        return Err(format!(
            "branch_bits {branch_bits:#04x} has bits beyond branch_count {branch_count}"
        ));
    }
    if len == 0 || len as usize > MAX_TRACE_LEN {
        return Err(format!("trace length {len} outside 1..={MAX_TRACE_LEN}"));
    }
    if flags & !0b1_1111 != 0 {
        return Err(format!("record flags {flags:#04x} have reserved bits set"));
    }
    Ok(TraceRecord::new(
        TraceId::new(start_pc, branch_bits, branch_count),
        len,
        flags & 0b111,
        flags & 0b1000 != 0,
        flags & 0b1_0000 != 0,
    ))
}

/// Encodes a request into a frame body.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    encode_request_into(&mut out, req);
    out
}

/// Appends the encoded body of `req` to `out` (no clearing), for
/// callers building frames in a reusable buffer.
pub fn encode_request_into(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Hello {
            session,
            bits,
            depth,
        } => {
            out.push(K_HELLO);
            out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&bits.to_le_bytes());
            out.extend_from_slice(&depth.to_le_bytes());
        }
        Request::Predict { session } => {
            out.push(K_PREDICT);
            out.extend_from_slice(&session.to_le_bytes());
        }
        Request::Update { session, record } => {
            out.push(K_UPDATE);
            out.extend_from_slice(&session.to_le_bytes());
            put_record(out, record);
        }
        Request::Batch { session, records } => {
            out.reserve(13 + records.len() * 8);
            out.push(K_BATCH);
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&(records.len() as u32).to_le_bytes());
            for r in records {
                put_record(out, r);
            }
        }
        Request::Stats { session } => {
            out.push(K_STATS);
            out.extend_from_slice(&session.to_le_bytes());
        }
        Request::Shutdown => out.push(K_SHUTDOWN),
        Request::Metrics => out.push(K_METRICS),
        Request::Migrate { session, snapshot } => {
            out.push(K_MIGRATE);
            out.extend_from_slice(&session.to_le_bytes());
            put_opt_bytes(out, snapshot.as_deref());
        }
    }
}

/// Packs an optional byte payload: presence flag, then length-prefixed
/// bytes.
fn put_opt_bytes(out: &mut Vec<u8>, bytes: Option<&[u8]>) {
    match bytes {
        None => out.push(0),
        Some(b) => {
            out.reserve(5 + b.len());
            out.push(1);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
    }
}

/// Decodes the optional byte payload written by [`put_opt_bytes`].
fn get_opt_bytes(c: &mut Cursor<'_>) -> Result<Option<Vec<u8>>, String> {
    match c.u8()? {
        0 => Ok(None),
        1 => {
            let len = c.u32()? as usize;
            Ok(Some(c.take(len)?.to_vec()))
        }
        other => Err(format!("bad optional-payload flag {other}")),
    }
}

/// Decodes a frame body into a request, validating every field.
pub fn decode_request(body: &[u8]) -> Result<Request, String> {
    let mut c = Cursor { bytes: body };
    let kind = c.u8()?;
    let req = match kind {
        K_HELLO => {
            let version = c.u32()?;
            if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                return Err(format!(
                    "protocol version {version} (this server speaks \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                ));
            }
            Request::Hello {
                session: c.u64()?,
                bits: c.u32()?,
                depth: c.u32()?,
            }
        }
        K_PREDICT => Request::Predict { session: c.u64()? },
        K_UPDATE => Request::Update {
            session: c.u64()?,
            record: get_record(&mut c)?,
        },
        K_BATCH => {
            let session = c.u64()?;
            let count = c.u32()? as usize;
            if c.bytes.len() != count * 8 {
                return Err(format!(
                    "batch count {count} disagrees with payload ({} bytes left)",
                    c.bytes.len()
                ));
            }
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                records.push(get_record(&mut c)?);
            }
            Request::Batch { session, records }
        }
        K_STATS => Request::Stats { session: c.u64()? },
        K_SHUTDOWN => Request::Shutdown,
        K_METRICS => Request::Metrics,
        K_MIGRATE => Request::Migrate {
            session: c.u64()?,
            snapshot: get_opt_bytes(&mut c)?,
        },
        other => return Err(format!("unknown request kind {other:#04x}")),
    };
    c.done()?;
    Ok(req)
}

fn put_source(out: &mut Vec<u8>, s: Source) {
    out.push(match s {
        Source::Correlated => 0,
        Source::Secondary => 1,
        Source::Cold => 2,
    });
}

fn get_source(c: &mut Cursor<'_>) -> Result<Source, String> {
    Ok(match c.u8()? {
        0 => Source::Correlated,
        1 => Source::Secondary,
        2 => Source::Cold,
        other => return Err(format!("unknown prediction source {other}")),
    })
}

/// Encodes a response into a frame body.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    encode_response_into(&mut out, resp);
    out
}

/// Appends the encoded body of `resp` to `out` (no clearing), for
/// callers building frames in a reusable buffer.
pub fn encode_response_into(out: &mut Vec<u8>, resp: &Response) {
    match resp {
        Response::HelloOk { session, shard } => {
            out.push(K_HELLO_OK);
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&shard.to_le_bytes());
        }
        Response::Predicted { target, source } => {
            out.push(K_PREDICTED);
            match target {
                None => {
                    out.push(0);
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
                Some(Target::Full(id)) => {
                    out.push(1);
                    out.push(0);
                    out.extend_from_slice(&id.packed().to_le_bytes());
                }
                Some(Target::Hashed(h)) => {
                    out.push(1);
                    out.push(1);
                    out.extend_from_slice(&(h.0 as u64).to_le_bytes());
                }
            }
            put_source(out, *source);
        }
        Response::Updated { correct } => {
            out.push(K_UPDATED);
            out.push(u8::from(*correct));
        }
        Response::BatchDone {
            predictions,
            correct,
        } => {
            out.push(K_BATCH_DONE);
            out.extend_from_slice(&predictions.to_le_bytes());
            out.extend_from_slice(&correct.to_le_bytes());
        }
        Response::StatsOk { stats } => {
            out.push(K_STATS_OK);
            for v in stats.to_array() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Busy => out.push(K_BUSY),
        Response::Bye => out.push(K_BYE),
        Response::MigrateOk { session, snapshot } => {
            out.push(K_MIGRATE_OK);
            out.extend_from_slice(&session.to_le_bytes());
            put_opt_bytes(out, snapshot.as_deref());
        }
        Response::Metrics { json } => {
            let bytes = json.as_bytes();
            out.reserve(5 + bytes.len());
            out.push(K_METRICS_OK);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        Response::Error { code, message } => {
            out.push(K_ERROR);
            out.push(code.to_u8());
            let msg = message.as_bytes();
            out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            out.extend_from_slice(msg);
        }
    }
}

/// Decodes a frame body into a response, validating every field.
pub fn decode_response(body: &[u8]) -> Result<Response, String> {
    let mut c = Cursor { bytes: body };
    let kind = c.u8()?;
    let resp = match kind {
        K_HELLO_OK => Response::HelloOk {
            session: c.u64()?,
            shard: c.u32()?,
        },
        K_PREDICTED => {
            let has = c.u8()?;
            let tkind = c.u8()?;
            let key = c.u64()?;
            let target = match (has, tkind) {
                (0, 0) => None,
                (1, 0) => Some(Target::Full(TraceId::from_packed(key))),
                (1, 1) => {
                    if key > u16::MAX as u64 {
                        return Err(format!("hashed target {key:#x} exceeds 16 bits"));
                    }
                    Some(Target::Hashed(HashedId(key as u16)))
                }
                _ => return Err(format!("bad target encoding ({has}, {tkind})")),
            };
            Response::Predicted {
                target,
                source: get_source(&mut c)?,
            }
        }
        K_UPDATED => Response::Updated {
            correct: match c.u8()? {
                0 => false,
                1 => true,
                other => return Err(format!("bad bool {other}")),
            },
        },
        K_BATCH_DONE => Response::BatchDone {
            predictions: c.u64()?,
            correct: c.u64()?,
        },
        K_STATS_OK => {
            let mut a = [0u64; ntp_core::PREDICTOR_STATS_FIELDS];
            for v in a.iter_mut() {
                *v = c.u64()?;
            }
            Response::StatsOk {
                stats: PredictorStats::from_array(a),
            }
        }
        K_BUSY => Response::Busy,
        K_BYE => Response::Bye,
        K_MIGRATE_OK => Response::MigrateOk {
            session: c.u64()?,
            snapshot: get_opt_bytes(&mut c)?,
        },
        K_METRICS_OK => {
            let len = c.u32()? as usize;
            let raw = c.take(len)?;
            Response::Metrics {
                json: String::from_utf8(raw.to_vec())
                    .map_err(|_| "metrics payload is not UTF-8".to_string())?,
            }
        }
        K_ERROR => {
            let code =
                ErrorCode::from_u8(c.u8()?).ok_or_else(|| "unknown error code".to_string())?;
            let len = c.u32()? as usize;
            let msg = c.take(len)?;
            Response::Error {
                code,
                message: String::from_utf8_lossy(msg).into_owned(),
            }
        }
        other => return Err(format!("unknown response kind {other:#04x}")),
    };
    c.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u32, bits: u8, n: u8) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, bits, n), 9, 2, true, true)
    }

    fn roundtrip_req(req: Request) {
        let body = encode_request(&req);
        assert_eq!(decode_request(&body).expect("decodes"), req, "{req:?}");
    }

    fn roundtrip_resp(resp: Response) {
        let body = encode_response(&resp);
        assert_eq!(decode_response(&body).expect("decodes"), resp, "{resp:?}");
    }

    #[test]
    fn every_request_roundtrips() {
        roundtrip_req(Request::Hello {
            session: 7,
            bits: 15,
            depth: 7,
        });
        roundtrip_req(Request::Predict { session: u64::MAX });
        roundtrip_req(Request::Update {
            session: 3,
            record: rec(0x0040_0000, 0b101, 3),
        });
        roundtrip_req(Request::Batch {
            session: 9,
            records: (0..100).map(|k| rec(0x0040_0000 + k * 64, 1, 2)).collect(),
        });
        roundtrip_req(Request::Stats { session: 0 });
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Migrate {
            session: 42,
            snapshot: None,
        });
        roundtrip_req(Request::Migrate {
            session: 42,
            snapshot: Some(vec![0xAB; 1000]),
        });
        roundtrip_req(Request::Migrate {
            session: 1,
            snapshot: Some(Vec::new()),
        });
    }

    #[test]
    fn every_response_roundtrips() {
        roundtrip_resp(Response::HelloOk {
            session: 12,
            shard: 3,
        });
        roundtrip_resp(Response::Predicted {
            target: None,
            source: Source::Cold,
        });
        roundtrip_resp(Response::Predicted {
            target: Some(Target::Full(TraceId::new(0x0040_0040, 0b11, 2))),
            source: Source::Correlated,
        });
        roundtrip_resp(Response::Predicted {
            target: Some(Target::Hashed(HashedId(0xBEEF))),
            source: Source::Secondary,
        });
        roundtrip_resp(Response::Updated { correct: true });
        roundtrip_resp(Response::BatchDone {
            predictions: 1000,
            correct: 997,
        });
        roundtrip_resp(Response::StatsOk {
            stats: PredictorStats {
                predictions: 10,
                correct: 7,
                alternate_correct: 1,
                from_correlated: 6,
                from_secondary: 3,
                cold: 1,
                correlated_correct: 5,
                secondary_correct: 2,
            },
        });
        roundtrip_resp(Response::Busy);
        roundtrip_resp(Response::Bye);
        roundtrip_resp(Response::MigrateOk {
            session: 42,
            snapshot: None,
        });
        roundtrip_resp(Response::MigrateOk {
            session: u64::MAX,
            snapshot: Some((0..=255u8).collect()),
        });
        roundtrip_resp(Response::Metrics {
            json: r#"{"shard0":{"counters":{"frames.predict":12}}}"#.into(),
        });
        roundtrip_resp(Response::Metrics {
            json: String::new(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::UnknownSession,
            message: "session 9 has not said hello".into(),
        });
    }

    #[test]
    fn metrics_reply_checksum_flip_is_rejected() {
        let body = encode_response(&Response::Metrics {
            json: r#"{"total":{"counters":{"predictions":123456}}}"#.into(),
        });
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        let back = read_frame(&mut framed.as_slice(), 1 << 20).expect("clean frame reads");
        assert_eq!(
            decode_response(&back).unwrap(),
            decode_response(&body).unwrap()
        );
        // Flip every bit of the frame — body bytes fail the checksum,
        // checksum bytes fail against the intact body.
        for byte in 4..framed.len() {
            for bit in 0..8 {
                let mut corrupt = framed.clone();
                corrupt[byte] ^= 1 << bit;
                match read_frame(&mut corrupt.as_slice(), 1 << 20) {
                    Err(WireError::BadChecksum) => {}
                    other => panic!("flip at byte {byte} bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn metrics_reply_payload_is_validated() {
        // Truncated: declared length exceeds the remaining payload.
        let mut body = encode_response(&Response::Metrics { json: "{}".into() });
        body[1] = 200; // length field low byte
        assert!(decode_response(&body).unwrap_err().contains("truncated"));
        // Non-UTF-8 payload.
        let mut bad = vec![K_METRICS_OK];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(decode_response(&bad).unwrap_err().contains("UTF-8"));
        // Trailing bytes after the declared payload.
        let mut trailing = encode_response(&Response::Metrics { json: "{}".into() });
        trailing.push(0);
        assert!(decode_response(&trailing).unwrap_err().contains("trailing"));
    }

    #[test]
    fn frame_roundtrips_and_any_body_flip_is_caught() {
        let body = encode_request(&Request::Update {
            session: 5,
            record: rec(0x0040_0100, 0, 0),
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        let back = read_frame(&mut buf.as_slice(), 1024).expect("clean frame reads");
        assert_eq!(back, body);

        // Flip every body bit in turn: the checksum must catch each one.
        for byte in 4..4 + body.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                match read_frame(&mut corrupt.as_slice(), 1024) {
                    Err(WireError::BadChecksum) => {}
                    other => panic!("flip at byte {byte} bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_frames_are_refused_but_consumed() {
        let body = vec![K_PREDICT; 300];
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        // Append a good frame after the oversized one.
        let good = encode_request(&Request::Stats { session: 1 });
        write_frame(&mut buf, &good).unwrap();

        let mut r = buf.as_slice();
        match read_frame(&mut r, 100) {
            Err(WireError::Oversized {
                len: 300,
                max: 100,
                recoverable: true,
            }) => {}
            other => panic!("{other:?}"),
        }
        // The stream resynced: the next frame reads cleanly.
        assert_eq!(read_frame(&mut r, 100).expect("resynced"), good);
    }

    #[test]
    fn zero_and_truncated_frames_are_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 64),
            Err(WireError::Empty)
        ));

        let body = encode_request(&Request::Shutdown);
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        for cut in 1..framed.len() {
            let mut r = &framed[..cut];
            assert!(
                matches!(read_frame(&mut r, 64), Err(WireError::Io(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        // Unknown kind.
        assert!(decode_request(&[0x7F]).is_err());
        assert!(decode_response(&[0x00]).is_err());
        // Trailing bytes.
        let mut body = encode_request(&Request::Predict { session: 1 });
        body.push(0);
        assert!(decode_request(&body).is_err());
        // Bad record: zero length.
        let mut upd = encode_request(&Request::Update {
            session: 1,
            record: rec(0x0040_0000, 0, 0),
        });
        upd[1 + 8 + 6] = 0; // len byte
        assert!(decode_request(&upd).unwrap_err().contains("length"));
        // Bad record: branch bits beyond count.
        let mut upd2 = encode_request(&Request::Update {
            session: 1,
            record: rec(0x0040_0000, 0, 0),
        });
        upd2[1 + 8 + 4] = 0b1111; // branch_bits with branch_count 0
        assert!(decode_request(&upd2).is_err());
        // Batch count disagreeing with payload.
        let mut batch = encode_request(&Request::Batch {
            session: 1,
            records: vec![rec(0x0040_0000, 0, 0)],
        });
        batch[9] = 2; // count field (LE low byte)
        assert!(decode_request(&batch).unwrap_err().contains("batch count"));
        // Hello with a future protocol version.
        let mut hello = encode_request(&Request::Hello {
            session: 1,
            bits: 15,
            depth: 7,
        });
        hello[1] = 99;
        assert!(decode_request(&hello).unwrap_err().contains("version"));
        // Migrate: bad optional-payload flag.
        let mut mig = encode_request(&Request::Migrate {
            session: 1,
            snapshot: None,
        });
        mig[9] = 7; // presence flag after kind + session
        assert!(decode_request(&mig).unwrap_err().contains("flag"));
        // Migrate: declared payload length exceeds the body.
        let mut mig2 = encode_request(&Request::Migrate {
            session: 1,
            snapshot: Some(vec![1, 2, 3]),
        });
        mig2[10] = 200; // length field low byte
        assert!(decode_request(&mig2).unwrap_err().contains("truncated"));
    }

    #[test]
    fn version_1_hellos_still_decode() {
        // The v2 extension is additive: a v1 client's Hello decodes on
        // this server.
        let mut body = encode_request(&Request::Hello {
            session: 3,
            bits: 15,
            depth: 7,
        });
        body[1..5].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_request(&body),
            Ok(Request::Hello { session: 3, .. })
        ));
        // Version 0 is refused.
        body[1..5].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_request(&body).unwrap_err().contains("version"));
    }

    #[test]
    fn frame_helpers_match_write_frame_bytes() {
        let req = Request::Update {
            session: 5,
            record: rec(0x0040_0100, 0b1, 1),
        };
        let mut blocking = Vec::new();
        write_frame(&mut blocking, &encode_request(&req)).unwrap();
        let mut scratch = vec![0xAA; 17]; // stale garbage must be cleared
        frame_request(&mut scratch, &req);
        assert_eq!(scratch, blocking);

        let resp = Response::Updated { correct: true };
        let mut expect = Vec::new();
        write_frame(&mut expect, &encode_response(&resp)).unwrap();
        let mut out = Vec::new();
        append_response_frame(&mut out, &resp);
        append_response_frame(&mut out, &resp);
        assert_eq!(out.len(), expect.len() * 2, "appends, never clears");
        assert_eq!(&out[..expect.len()], expect.as_slice());
        assert_eq!(&out[expect.len()..], expect.as_slice());
    }

    /// Every segmentation of a mixed stream (good frames, an empty
    /// frame, a checksum flip, an oversized body) must yield exactly
    /// the blocking reader's event sequence.
    #[test]
    fn assembler_matches_blocking_reader_under_any_segmentation() {
        let max_frame = 256;
        let mut stream = Vec::new();
        let good1 = encode_request(&Request::Stats { session: 1 });
        write_frame(&mut stream, &good1).unwrap();
        // Zero-length frame.
        stream.extend_from_slice(&0u32.to_le_bytes());
        stream.extend_from_slice(&0u64.to_le_bytes());
        // Checksum flip.
        let mut bad = Vec::new();
        write_frame(&mut bad, &good1).unwrap();
        *bad.last_mut().unwrap() ^= 1;
        stream.extend_from_slice(&bad);
        // Oversized (recoverable) frame, then a good one right after.
        write_frame(&mut stream, &vec![K_PREDICT; 300]).unwrap();
        let good2 = encode_request(&Request::Predict { session: 9 });
        write_frame(&mut stream, &good2).unwrap();

        for chunk in [1, 2, 3, 5, 7, 11, stream.len()] {
            let mut asm = FrameAssembler::new();
            let mut events = Vec::new();
            for piece in stream.chunks(chunk) {
                asm.push(piece);
                while let Some(ev) = asm.next(max_frame) {
                    events.push(ev);
                }
            }
            assert!(!asm.has_partial(), "chunk {chunk}: stream fully consumed");
            assert_eq!(events.len(), 5, "chunk {chunk}: {events:?}");
            assert!(matches!(&events[0], FrameEvent::Frame(b) if *b == good1));
            assert!(matches!(events[1], FrameEvent::Refused(WireError::Empty)));
            assert!(matches!(
                events[2],
                FrameEvent::Refused(WireError::BadChecksum)
            ));
            assert!(matches!(
                events[3],
                FrameEvent::Refused(WireError::Oversized {
                    len: 300,
                    recoverable: true,
                    ..
                })
            ));
            assert!(matches!(&events[4], FrameEvent::Frame(b) if *b == good2));
        }
    }

    #[test]
    fn assembler_reports_partial_frames_and_skips_large_bodies_unbuffered() {
        let mut framed = Vec::new();
        write_frame(&mut framed, &encode_request(&Request::Stats { session: 3 })).unwrap();

        let mut asm = FrameAssembler::new();
        for &b in &framed[..framed.len() - 1] {
            asm.push(&[b]);
            assert!(asm.next(64).is_none(), "incomplete frame yields nothing");
            assert!(asm.has_partial());
        }
        asm.push(&framed[framed.len() - 1..]);
        assert!(matches!(asm.next(64), Some(FrameEvent::Frame(_))));
        assert!(!asm.has_partial());

        // Oversized body: refused at the header, then swallowed without
        // growing the parse buffer.
        let mut big = Vec::new();
        write_frame(&mut big, &vec![K_PREDICT; 4096]).unwrap();
        asm.push(&big[..6]);
        assert!(matches!(
            asm.next(64),
            Some(FrameEvent::Refused(WireError::Oversized {
                recoverable: true,
                ..
            }))
        ));
        assert!(asm.has_partial(), "mid-skip counts as partial");
        asm.push(&big[6..]);
        assert!(asm.next(64).is_none());
        assert!(!asm.has_partial(), "skip complete");
        assert!(asm.buf.is_empty(), "oversized body was never buffered");

        // A hard-cap violation poisons the assembler.
        let mut huge = FrameAssembler::new();
        huge.push(&(HARD_FRAME_CAP + 1).to_le_bytes());
        assert!(matches!(
            huge.next(64),
            Some(FrameEvent::Refused(WireError::Oversized {
                recoverable: false,
                ..
            }))
        ));
        huge.push(&framed);
        assert!(huge.next(64).is_none(), "poisoned assembler stays silent");
    }
}
