//! The TCP server: accept loop, per-connection reader threads, and the
//! sharded session workers.
//!
//! # Sharding model
//!
//! Sessions are owned by exactly one shard worker, `session % workers`.
//! A shard is a plain thread holding a `HashMap<u64, Session>` of
//! single-threaded [`NextTracePredictor`]s — no locks anywhere on the
//! prediction path. Connection threads parse frames and forward requests
//! to the owning shard over a **bounded** queue; a full queue yields an
//! immediate [`Response::Busy`] (explicit backpressure, the request is
//! not applied) instead of unbounded buffering.
//!
//! # Limits
//!
//! * `max_conns` concurrent connections; excess connections get one
//!   `Error(refused)` reply and are closed;
//! * `max_frame` bytes per frame body; oversized frames are discarded
//!   and refused with `Error(oversized)`, the connection survives;
//! * read/write socket timeouts bound how long a dead peer can hold a
//!   connection slot (and therefore how long a drain can take).
//!
//! # Shutdown
//!
//! A `Shutdown` frame (or [`ServerHandle::request_shutdown`]) flips the
//! drain flag: the acceptor stops taking connections, established
//! connections keep being served until their clients close (or time
//! out), shard queues drain to empty, and [`ServerHandle::join`] returns
//! a [`ServerSummary`] once every thread has exited. In-flight sessions
//! are never cut off mid-request.

use crate::config::ServeConfig;
use crate::wire::{self, ErrorCode, Request, Response, WireError};
use ntp_core::{NextTracePredictor, PredictorConfig, PredictorStats, TracePredictor};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One request in flight to a shard, with the channel its reply goes
/// back on.
struct Job {
    req: Request,
    reply: mpsc::Sender<Response>,
}

/// One live session: a predictor plus its replay statistics.
struct Session {
    predictor: NextTracePredictor,
    stats: PredictorStats,
}

/// Per-shard accounting, returned when the shard drains and exits.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardSummary {
    /// Sessions created on this shard.
    pub sessions: u64,
    /// Requests processed (every frame routed here, including refused).
    pub requests: u64,
}

/// Whole-server accounting, available after [`ServerHandle::join`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerSummary {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections refused at the `max_conns` limit.
    pub refused: u64,
    /// `Busy` backpressure replies sent (full shard queue).
    pub busy: u64,
    /// Frames refused at the wire layer (checksum, size, decode).
    pub protocol_errors: u64,
    /// Sessions created across all shards.
    pub sessions: u64,
    /// Requests processed across all shards.
    pub requests: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    refused: AtomicU64,
    busy: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::join`] detaches the threads (the process keeps
/// serving); the intended lifecycle is `serve(cfg)` → … →
/// `request_shutdown()` (or a client `Shutdown` frame) → `join()`.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active_conns: Arc<AtomicUsize>,
    counters: Arc<Counters>,
    accept: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<ShardSummary>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a drain: stop accepting, let in-flight work finish.
    /// Idempotent; also triggered by a client `Shutdown` frame.
    pub fn request_shutdown(&self) {
        trigger_shutdown(&self.shutdown, self.addr);
    }

    /// True once a shutdown/drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the drain to complete — acceptor exited, every
    /// connection closed, every shard queue empty — and returns the
    /// final accounting. Call after [`ServerHandle::request_shutdown`]
    /// (or once a client has sent `Shutdown`); joining a server nobody
    /// shuts down blocks forever, like the listener it wraps.
    pub fn join(mut self) -> ServerSummary {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The acceptor has exited and dropped its shard senders; each
        // connection thread holds its own clones. Wait for those
        // connections to finish their in-flight sessions.
        while self.active_conns.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut summary = ServerSummary {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            refused: self.counters.refused.load(Ordering::Relaxed),
            busy: self.counters.busy.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            ..ServerSummary::default()
        };
        for h in self.shards.drain(..) {
            if let Ok(s) = h.join() {
                summary.sessions += s.sessions;
                summary.requests += s.requests;
            }
        }
        summary
    }
}

/// Sets the drain flag and pokes the (blocking) acceptor awake with a
/// throwaway loopback connection.
fn trigger_shutdown(flag: &AtomicBool, addr: SocketAddr) {
    if !flag.swap(true, Ordering::SeqCst) {
        // The acceptor checks the flag before serving each accepted
        // connection, so this wake-up connection is simply dropped.
        let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
    }
}

/// Binds `cfg.addr` and spawns the shard workers and the accept loop.
///
/// Fails (with a one-line diagnostic naming the address) when the
/// address cannot be bound — e.g. the port is already in use — or when
/// the configuration is invalid.
pub fn serve(cfg: ServeConfig) -> Result<ServerHandle, String> {
    cfg.validate()?;
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| format!("serve: cannot bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("serve: cannot resolve bound address: {e}"))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let active_conns = Arc::new(AtomicUsize::new(0));
    let counters = Arc::new(Counters::default());

    // One bounded queue per shard. The acceptor owns the Vec of senders
    // (inside an Arc shared with connection threads); when the acceptor
    // and every connection have exited, the senders are all dropped and
    // the shard receivers disconnect — drain-then-exit for free.
    let mut senders = Vec::with_capacity(cfg.workers);
    let mut shards = Vec::with_capacity(cfg.workers);
    for shard_id in 0..cfg.workers {
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_depth);
        senders.push(tx);
        shards.push(
            std::thread::Builder::new()
                .name(format!("ntp-serve-shard-{shard_id}"))
                .spawn(move || shard_loop(shard_id as u32, rx))
                .map_err(|e| format!("serve: cannot spawn shard worker: {e}"))?,
        );
    }

    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let active_conns = Arc::clone(&active_conns);
        let counters = Arc::clone(&counters);
        let cfg = cfg.clone();
        let senders: Arc<[SyncSender<Job>]> = senders.into();
        std::thread::Builder::new()
            .name("ntp-serve-accept".into())
            .spawn(move || {
                accept_loop(
                    listener,
                    addr,
                    cfg,
                    senders,
                    shutdown,
                    active_conns,
                    counters,
                )
            })
            .map_err(|e| format!("serve: cannot spawn acceptor: {e}"))?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        active_conns,
        counters,
        accept: Some(accept),
        shards,
    })
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    cfg: ServeConfig,
    senders: Arc<[SyncSender<Job>]>,
    shutdown: Arc<AtomicBool>,
    active_conns: Arc<AtomicUsize>,
    counters: Arc<Counters>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let slot = active_conns.fetch_add(1, Ordering::SeqCst);
        if slot >= cfg.max_conns {
            counters.refused.fetch_add(1, Ordering::Relaxed);
            refuse(stream, ErrorCode::Refused, "connection limit reached");
            active_conns.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        counters.accepted.fetch_add(1, Ordering::Relaxed);
        let cfg = cfg.clone();
        let senders = Arc::clone(&senders);
        let shutdown = Arc::clone(&shutdown);
        let active_conns2 = Arc::clone(&active_conns);
        let counters = Arc::clone(&counters);
        let spawned = std::thread::Builder::new()
            .name("ntp-serve-conn".into())
            .spawn(move || {
                connection_loop(stream, addr, &cfg, &senders, &shutdown, &counters);
                active_conns2.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
    // Dropping `senders` here releases the acceptor's share; shards keep
    // running until the last connection thread drops its clone.
}

/// Sends a single error reply on a connection we will not serve.
fn refuse(mut stream: TcpStream, code: ErrorCode, message: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = wire::encode_response(&Response::Error {
        code,
        message: message.to_string(),
    });
    let _ = wire::write_frame(&mut stream, &body);
}

/// Serves one connection until EOF, timeout, or an unrecoverable frame.
fn connection_loop(
    mut stream: TcpStream,
    addr: SocketAddr,
    cfg: &ServeConfig,
    senders: &[SyncSender<Job>],
    shutdown: &AtomicBool,
    counters: &Counters,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let (reply_tx, reply_rx) = mpsc::channel::<Response>();

    loop {
        let body = match wire::read_frame(&mut stream, cfg.max_frame) {
            Ok(body) => body,
            Err(WireError::Io(_)) => break, // EOF, timeout, or dead peer.
            Err(e @ WireError::Oversized { recoverable, .. }) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let sent = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Oversized,
                        message: e.to_string(),
                    },
                );
                if !recoverable || !sent {
                    break; // Cannot resync past a huge declared length.
                }
                continue;
            }
            Err(e @ (WireError::BadChecksum | WireError::Empty)) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if !send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    },
                ) {
                    break;
                }
                continue;
            }
        };
        let req = match wire::decode_request(&body) {
            Ok(req) => req,
            Err(msg) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if !send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: msg,
                    },
                ) {
                    break;
                }
                continue;
            }
        };

        let Some(session) = req.session() else {
            // Shutdown: flip the drain flag, acknowledge, and close this
            // connection. Other connections keep draining.
            trigger_shutdown(shutdown, addr);
            let _ = send(&mut stream, &Response::Bye);
            break;
        };

        let shard = (session % senders.len() as u64) as usize;
        let resp = match senders[shard].try_send(Job {
            req,
            reply: reply_tx.clone(),
        }) {
            Ok(()) => match reply_rx.recv() {
                Ok(resp) => resp,
                Err(_) => Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("shard {shard} is gone"),
                },
            },
            Err(TrySendError::Full(_)) => {
                counters.busy.fetch_add(1, Ordering::Relaxed);
                Response::Busy
            }
            Err(TrySendError::Disconnected(_)) => Response::Error {
                code: ErrorCode::Draining,
                message: "server is draining".into(),
            },
        };
        if !send(&mut stream, &resp) {
            break;
        }
    }
}

/// Writes one response frame; false when the peer is gone.
fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    let body = wire::encode_response(resp);
    wire::write_frame(stream, &body)
        .and_then(|()| stream.flush())
        .is_ok()
}

/// One shard: owns its sessions, processes its queue to empty, exits
/// when every sender is gone.
fn shard_loop(shard_id: u32, rx: Receiver<Job>) -> ShardSummary {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut summary = ShardSummary::default();
    for job in rx {
        summary.requests += 1;
        let resp = apply(shard_id, &mut sessions, &mut summary, &job.req);
        let _ = job.reply.send(resp);
    }
    summary
}

/// Applies one request to the shard's session map.
fn apply(
    shard_id: u32,
    sessions: &mut HashMap<u64, Session>,
    summary: &mut ShardSummary,
    req: &Request,
) -> Response {
    match req {
        Request::Hello {
            session,
            bits,
            depth,
        } => {
            if sessions.contains_key(session) {
                return Response::Error {
                    code: ErrorCode::BadConfig,
                    message: format!("session {session} already exists"),
                };
            }
            let cfg = match PredictorConfig::try_paper(*bits, *depth as usize) {
                Ok(cfg) => cfg,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::BadConfig,
                        message: format!("paper({bits},{depth}) rejected: {e}"),
                    }
                }
            };
            let predictor = match NextTracePredictor::try_new(cfg) {
                Ok(p) => p,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::BadConfig,
                        message: format!("paper({bits},{depth}) rejected: {e}"),
                    }
                }
            };
            sessions.insert(
                *session,
                Session {
                    predictor,
                    stats: PredictorStats::new(),
                },
            );
            summary.sessions += 1;
            Response::HelloOk {
                session: *session,
                shard: shard_id,
            }
        }
        Request::Predict { session } => with_session(sessions, *session, |s| {
            let pred = s.predictor.predict();
            Response::Predicted {
                target: pred.target,
                source: pred.source,
            }
        }),
        Request::Update { session, record } => with_session(sessions, *session, |s| {
            let pred = s.predictor.predict();
            s.stats.score(&pred, record);
            s.predictor.update(record);
            Response::Updated {
                correct: pred.is_correct(record.id()),
            }
        }),
        Request::Batch { session, records } => with_session(sessions, *session, |s| {
            let mut correct = 0u64;
            for record in records {
                let pred = s.predictor.predict();
                s.stats.score(&pred, record);
                if pred.is_correct(record.id()) {
                    correct += 1;
                }
                s.predictor.update(record);
            }
            Response::BatchDone {
                predictions: records.len() as u64,
                correct,
            }
        }),
        Request::Stats { session } => with_session(sessions, *session, |s| Response::StatsOk {
            stats: s.stats.clone(),
        }),
        Request::Shutdown => Response::Error {
            code: ErrorCode::BadRequest,
            message: "shutdown is connection-level, not shard-level".into(),
        },
    }
}

fn with_session(
    sessions: &mut HashMap<u64, Session>,
    session: u64,
    f: impl FnOnce(&mut Session) -> Response,
) -> Response {
    match sessions.get_mut(&session) {
        Some(s) => f(s),
        None => Response::Error {
            code: ErrorCode::UnknownSession,
            message: format!("session {session} has not said hello"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_trace::{TraceId, TraceRecord};

    fn rec(pc: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 8, 0, false, false)
    }

    #[test]
    fn apply_routes_the_session_lifecycle() {
        let mut sessions = HashMap::new();
        let mut summary = ShardSummary::default();
        // Unknown session first.
        let resp = apply(
            0,
            &mut sessions,
            &mut summary,
            &Request::Stats { session: 1 },
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        // Hello, then a batch, then stats matching the offline oracle.
        let hello = Request::Hello {
            session: 1,
            bits: 12,
            depth: 3,
        };
        assert!(matches!(
            apply(0, &mut sessions, &mut summary, &hello),
            Response::HelloOk {
                session: 1,
                shard: 0
            }
        ));
        assert!(
            matches!(
                apply(0, &mut sessions, &mut summary, &hello),
                Response::Error {
                    code: ErrorCode::BadConfig,
                    ..
                }
            ),
            "duplicate hello refused"
        );
        let records: Vec<TraceRecord> =
            (0..60).map(|k| rec(0x0040_0000 + (k % 3) * 0x40)).collect();
        let Response::BatchDone {
            predictions,
            correct,
        } = apply(
            0,
            &mut sessions,
            &mut summary,
            &Request::Batch {
                session: 1,
                records: records.clone(),
            },
        )
        else {
            panic!("batch should complete");
        };
        assert_eq!(predictions, 60);
        let Response::StatsOk { stats } = apply(
            0,
            &mut sessions,
            &mut summary,
            &Request::Stats { session: 1 },
        ) else {
            panic!("stats should answer");
        };
        let mut oracle = NextTracePredictor::new(PredictorConfig::paper(12, 3));
        let expect = ntp_core::evaluate(&mut oracle, &records);
        assert_eq!(stats, expect, "served stats equal the offline oracle");
        assert_eq!(correct, expect.correct);
        assert_eq!(summary.sessions, 1);
    }

    #[test]
    fn apply_refuses_hostile_configs() {
        let mut sessions = HashMap::new();
        let mut summary = ShardSummary::default();
        let resp = apply(
            0,
            &mut sessions,
            &mut summary,
            &Request::Hello {
                session: 1,
                bits: 0,
                depth: 64,
            },
        );
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::BadConfig,
                    ..
                }
            ),
            "{resp:?}"
        );
        assert!(sessions.is_empty());
    }
}
