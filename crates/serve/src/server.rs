//! The TCP server: accept loop, per-connection reader threads, the
//! sharded session workers, and the runtime observability plane.
//!
//! # Sharding model
//!
//! Sessions are owned by exactly one shard worker, `session % workers`.
//! A shard is a plain thread holding a `HashMap<u64, Session>` of
//! single-threaded [`NextTracePredictor`]s — no locks anywhere on the
//! prediction path. Connection threads parse frames and forward requests
//! to the owning shard over a **bounded** queue; a full queue yields an
//! immediate [`Response::Busy`] (explicit backpressure, the request is
//! not applied) instead of unbounded buffering.
//!
//! # Observability
//!
//! Each shard owns a private [`MetricsRegistry`] (frames by type,
//! predictions, typed errors, busy/idle time, per-frame-type latency
//! histograms) plus a [`RollingWindow`] of one-second buckets for live
//! rates. Nothing on the prediction path is shared or atomic: snapshots
//! travel through the same shard queue as requests (a rare
//! `Job::Snapshot`), so reading metrics costs the shard one queue slot,
//! not a lock. Connection-side totals (accepted/refused, `Busy` replies,
//! protocol errors, resyncs, queue depth) live in relaxed atomics and are
//! folded in at snapshot time. Three consumers share one collection path
//! ([`ServerHandle::metrics_snapshot`]):
//!
//! * a `Metrics` wire frame, answered by the connection itself;
//! * an optional sidecar TCP listener (`NTP_SERVE_METRICS_ADDR`)
//!   answering plain HTTP `GET /metrics` (flat `name value` text) and
//!   `GET /metrics.json` — scrapable with `curl`, no binary protocol;
//! * optional periodic `[serve] …` stderr summary lines
//!   (`--stats-interval`).
//!
//! The metric name table and the volatility contract (which counters are
//! deterministic for a fixed replay) are documented in OBSERVABILITY.md.
//!
//! # Limits
//!
//! * `max_conns` concurrent connections; excess connections get one
//!   `Error(refused)` reply and are closed;
//! * `max_frame` bytes per frame body; oversized frames are discarded
//!   and refused with `Error(oversized)`, the connection survives;
//! * read/write socket timeouts bound how long a dead peer can hold a
//!   connection slot (and therefore how long a drain can take).
//!
//! # Shutdown
//!
//! A `Shutdown` frame (or [`ServerHandle::request_shutdown`]) flips the
//! drain flag: the acceptor and the metrics sidecar stop taking
//! connections, established connections keep being served until their
//! clients close (or time out), shard queues drain to empty, and
//! [`ServerHandle::join`] returns a [`ServerSummary`] — including
//! per-shard attribution — once every thread has exited. In-flight
//! sessions are never cut off mid-request.

use crate::config::ServeConfig;
use crate::wire::{self, ErrorCode, Request, Response, WireError};
use ntp_core::{NextTracePredictor, PredictorConfig, PredictorStats, TracePredictor};
use ntp_telemetry::{
    CounterId, GaugeId, HistogramId, MetricsRegistry, RollingWindow, Snapshot, ToJson,
};
use ntp_tracefile::snapshot::{
    read_snapshot_file, write_snapshot_file, SessionSnapshot, SnapshotArtifact, SNAPSHOT_EXT,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Rolling-window span: QPS and friends are "over the last 10 seconds".
const WINDOW_EPOCHS: usize = 10;

/// One unit of shard work: a routed request, or a metrics snapshot
/// travelling the same queue (so reading metrics never locks the shard).
pub(crate) enum Job {
    /// A wire request with the sink its reply goes back through.
    Request { req: Request, reply: ReplySink },
    /// Consecutive same-session requests coalesced off one connection's
    /// read burst: one queue slot, one wake-up, one prefetch — the
    /// event-loop frontend's feeding pattern for the batched drain.
    /// Each request is still applied (and its metrics recorded)
    /// individually, in order, so replies are byte-identical to
    /// uncoalesced processing.
    Run {
        session: u64,
        entries: Vec<(Request, ReplySink)>,
    },
    /// A snapshot of the shard's registry and rolling window.
    Snapshot { reply: mpsc::Sender<ShardSnapshot> },
    /// Snapshot-on-demand: persist the shard's sessions to
    /// `<dir>/shard<k>.nts` *now* (the same artifact the graceful drain
    /// writes), replying with the session count written. Rides the
    /// request queue like `Job::Snapshot`, so the write happens between
    /// requests — never mid-update — and the persisted state is a
    /// consistent point in every session's replay.
    Persist {
        dir: PathBuf,
        reply: mpsc::Sender<Result<u64, String>>,
    },
}

impl Job {
    /// Routed requests this job carries (0 for snapshots).
    fn routed(&self) -> usize {
        match self {
            Job::Request { .. } => 1,
            Job::Run { entries, .. } => entries.len(),
            Job::Snapshot { .. } | Job::Persist { .. } => 0,
        }
    }
}

/// Where a shard sends a reply: a blocking connection thread waiting on
/// a channel, or an event loop that multiplexes many connections and is
/// woken through an eventfd. The `(conn, seq)` pair lets the loop slot
/// the response back into that connection's in-order reply stream no
/// matter how shard completions interleave.
pub(crate) enum ReplySink {
    /// Blocking frontend: the connection thread `recv()`s synchronously.
    Sync(mpsc::Sender<Response>),
    /// Event-loop frontend: queue a completion, then poke the loop.
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    Event {
        tx: mpsc::Sender<Completion>,
        wake: Arc<crate::EventWake>,
        conn: u64,
        seq: u64,
    },
}

impl ReplySink {
    /// Delivers one response; delivery failures mean the frontend is
    /// gone, which the shard safely ignores (exactly as the blocking
    /// path ignores a dropped reply receiver).
    pub(crate) fn send(self, resp: Response) {
        match self {
            ReplySink::Sync(tx) => {
                let _ = tx.send(resp);
            }
            ReplySink::Event {
                tx,
                wake,
                conn,
                seq,
            } => {
                let _ = tx.send(Completion { conn, seq, resp });
                wake.wake();
            }
        }
    }
}

/// A shard's answer travelling back to an event loop.
pub(crate) struct Completion {
    pub conn: u64,
    pub seq: u64,
    pub resp: Response,
}

/// One live session: a predictor plus its replay statistics.
struct Session {
    predictor: NextTracePredictor,
    stats: PredictorStats,
}

/// Per-shard accounting, returned when the shard drains and exits.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardSummary {
    /// Which shard (worker index) this row describes.
    pub shard: u32,
    /// Sessions created on this shard.
    pub sessions: u64,
    /// Requests processed (every frame routed here, including refused).
    pub requests: u64,
    /// Predictions scored (`Update` + `Batch` records).
    pub predictions: u64,
    /// Correct predictions among them.
    pub correct: u64,
    /// Requests refused with a typed error (unknown session, bad config).
    pub errors: u64,
    /// Requests that drained through a batched sweep: the shard found two
    /// or more routed requests queued and prefetched every target
    /// session's table lines before resolving any of them (see
    /// `ntp_core::evaluate_batch`). Load-dependent — only a busy queue
    /// batches — so this is a volatile counter, not a determinism gate.
    pub batched: u64,
    /// Requests that arrived pre-coalesced: an event loop decoded two or
    /// more consecutive frames for the same session in one read burst
    /// and enqueued them as a single [`Job::Run`]. Load- and
    /// timing-dependent, volatile like `batched`.
    pub coalesced: u64,
    /// Sessions restored from a warm-start snapshot at startup.
    pub warmed: u64,
    /// Sessions written to this shard's drain snapshot (`shard<k>.nts`),
    /// when a snapshot directory was configured and the write succeeded.
    pub snapshotted: u64,
}

/// Whole-server accounting, available after [`ServerHandle::join`].
#[derive(Clone, Debug, Default)]
pub struct ServerSummary {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections refused at the `max_conns` limit.
    pub refused: u64,
    /// `Busy` backpressure replies sent (full shard queue).
    pub busy: u64,
    /// Frames refused at the wire layer (checksum, size, decode).
    pub protocol_errors: u64,
    /// Oversized frames survived by resyncing the stream.
    pub resyncs: u64,
    /// Connections dropped because the peer stayed idle past the socket
    /// read timeout (`WouldBlock`/`TimedOut`), as opposed to a clean EOF
    /// or a transport error.
    pub read_timeouts: u64,
    /// Socket-option calls (`set_read_timeout` / `set_write_timeout` /
    /// `set_nodelay`) that failed while preparing a connection.
    pub sockopt_errors: u64,
    /// Socket reads (event-loop frontend) that ended on an incomplete
    /// frame, i.e. the frame had to be reassembled across reads. Purely
    /// informational: partial delivery is normal TCP behaviour.
    pub partial_reads: u64,
    /// Sessions created across all shards.
    pub sessions: u64,
    /// Requests processed across all shards.
    pub requests: u64,
    /// Per-shard attribution, shard 0 first — the drain path carries
    /// each worker's own counts through, it does not flatten them.
    pub per_shard: Vec<ShardSummary>,
}

#[derive(Default)]
pub(crate) struct Counters {
    pub accepted: AtomicU64,
    pub refused: AtomicU64,
    pub busy: AtomicU64,
    pub protocol_errors: AtomicU64,
    pub resyncs: AtomicU64,
    pub read_timeouts: AtomicU64,
    pub sockopt_errors: AtomicU64,
    pub partial_reads: AtomicU64,
}

/// Per-event-loop observability shared with the metrics plane:
/// productive wakeups and a histogram of frames decoded per wakeup
/// (the multiplexing win — higher is fewer syscalls per frame). The
/// mutex is uncontended: the owning loop records once per wakeup,
/// metrics collection reads rarely.
#[derive(Default)]
pub(crate) struct LoopShared {
    pub wakeups: AtomicU64,
    pub frames_per_wakeup: std::sync::Mutex<ntp_telemetry::Histogram>,
}

/// Records a socket-option failure: always counted, logged only the
/// first time per process so a systemically broken stack cannot flood
/// stderr.
pub(crate) fn note_sockopt(counters: &Counters, what: &str, result: std::io::Result<()>) {
    static LOGGED: AtomicBool = AtomicBool::new(false);
    if let Err(e) = result {
        counters.sockopt_errors.fetch_add(1, Ordering::Relaxed);
        if !LOGGED.swap(true, Ordering::Relaxed) {
            eprintln!(
                "[serve] {what} failed: {e} (further failures only counted in conn.sockopt_errors)"
            );
        }
    }
}

/// Connection-side per-shard state: the queue-depth gauge and the
/// `Busy`-rejection counter live here because the rejected request never
/// reaches the shard. Depth is signed: the enqueue increment and the
/// shard's dequeue decrement race benignly, so the value can transiently
/// dip below zero; readers clamp.
#[derive(Default)]
pub(crate) struct ShardShared {
    pub depth: AtomicI64,
    pub busy: AtomicU64,
}

/// The drain flag plus everything needed to wake blocked acceptors.
pub(crate) struct DrainSignal {
    flag: AtomicBool,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
}

impl DrainSignal {
    pub(crate) fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Sets the drain flag and pokes the (blocking) acceptors awake with
    /// throwaway loopback connections. Idempotent.
    pub(crate) fn trigger(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // Acceptors check the flag before serving each accepted
            // connection, so these wake-up connections are simply dropped.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            if let Some(m) = self.metrics_addr {
                let _ = TcpStream::connect_timeout(&m, Duration::from_secs(1));
            }
        }
    }
}

/// The shared server core: shard queues, connection counters, the drain
/// signal, and the snapshot-collection path every metrics consumer uses.
/// Holding a `Hub` keeps the shard queues alive — [`ServerHandle::join`]
/// drops every clone before joining the shard threads.
pub(crate) struct Hub {
    pub senders: Arc<[SyncSender<Job>]>,
    pub shared: Arc<[ShardShared]>,
    pub counters: Arc<Counters>,
    pub drain: Arc<DrainSignal>,
    pub loops: Arc<[LoopShared]>,
    start: Instant,
}

impl Hub {
    /// Collects the full snapshot: a `server` section from the
    /// connection-side atomics, one section per shard plus its rolling
    /// window, and a `total` section merging the shard cumulatives.
    /// Blocks until every live shard answers (snapshots ride the request
    /// queue); a shard that has already exited is skipped.
    pub(crate) fn collect(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        let mut server = MetricsRegistry::new();
        for (name, v) in [
            (
                "conns.accepted",
                self.counters.accepted.load(Ordering::Relaxed),
            ),
            (
                "conns.refused",
                self.counters.refused.load(Ordering::Relaxed),
            ),
            ("busy.replies", self.counters.busy.load(Ordering::Relaxed)),
            (
                "protocol.errors",
                self.counters.protocol_errors.load(Ordering::Relaxed),
            ),
            ("resyncs", self.counters.resyncs.load(Ordering::Relaxed)),
            (
                "conn.read_timeouts",
                self.counters.read_timeouts.load(Ordering::Relaxed),
            ),
            (
                "conn.sockopt_errors",
                self.counters.sockopt_errors.load(Ordering::Relaxed),
            ),
            (
                "conn.partial_reads",
                self.counters.partial_reads.load(Ordering::Relaxed),
            ),
            (
                "loop.wakeups",
                self.loops
                    .iter()
                    .map(|l| l.wakeups.load(Ordering::Relaxed))
                    .sum(),
            ),
            // 0/1: whether a drain has been requested. A cluster router
            // probes this to tell a *draining* backend (snapshots coming,
            // wait for them) from a dead one (restore from the last
            // snapshots it has).
            ("draining", u64::from(self.drain.is_set())),
        ] {
            let id = server.counter(name);
            server.set_counter(id, v);
        }
        // Per-loop frames-per-wakeup histograms fold into one server-wide
        // distribution (zero on the blocking frontend).
        let fw = server.histogram("loop.frames_per_wakeup");
        for l in self.loops.iter() {
            let h = l.frames_per_wakeup.lock().expect("loop histogram lock");
            server.merge_histogram(fw, &h);
        }
        let up = server.gauge("uptime_s");
        server.set(up, self.start.elapsed().as_secs_f64());
        snap.push("server", server);

        let mut shard_snaps = Vec::with_capacity(self.senders.len());
        for tx in self.senders.iter() {
            let (reply, rx) = mpsc::channel();
            if tx.send(Job::Snapshot { reply }).is_err() {
                continue; // Shard already drained and exited.
            }
            if let Ok(s) = rx.recv_timeout(Duration::from_secs(5)) {
                shard_snaps.push(s);
            }
        }
        let mut total = MetricsRegistry::new();
        for s in &shard_snaps {
            total.merge(&s.metrics);
        }
        for s in shard_snaps {
            snap.push(&format!("shard{}", s.shard), s.metrics);
            snap.push(&format!("shard{}.window", s.shard), s.window);
        }
        snap.push("total", total);
        snap
    }

    /// Asks every live shard to persist its sessions to
    /// `<dir>/shard<k>.nts` now, returning the total session count
    /// written. Shards that already exited are skipped (their drain
    /// snapshot, if configured, is already on disk); per-shard write
    /// failures are logged and skipped.
    pub(crate) fn persist_all(&self, dir: &Path) -> u64 {
        let mut written = 0u64;
        for (shard, tx) in self.senders.iter().enumerate() {
            let (reply, rx) = mpsc::channel();
            if tx
                .send(Job::Persist {
                    dir: dir.to_path_buf(),
                    reply,
                })
                .is_err()
            {
                continue;
            }
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(Ok(n)) => written += n,
                Ok(Err(e)) => eprintln!("[serve] shard {shard}: snapshot failed: {e}"),
                Err(_) => eprintln!("[serve] shard {shard}: snapshot timed out"),
            }
        }
        written
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::join`] detaches the threads (the process keeps
/// serving); the intended lifecycle is `serve(cfg)` → … →
/// `request_shutdown()` (or a client `Shutdown` frame) → `join()`.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    snapshot_dir: Option<PathBuf>,
    active_conns: Arc<AtomicUsize>,
    counters: Arc<Counters>,
    drain: Arc<DrainSignal>,
    hub: Option<Arc<Hub>>,
    accept: Option<JoinHandle<()>>,
    event_loops: Vec<JoinHandle<()>>,
    metrics_accept: Option<JoinHandle<()>>,
    stats: Option<JoinHandle<()>>,
    snapshots: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<ShardSummary>>,
}

/// A cloneable drain trigger detached from the [`ServerHandle`]: signal
/// watchers (e.g. the CLI's SIGTERM handler) hold one of these and flip
/// the drain from their own thread while the owner blocks in
/// [`ServerHandle::join`].
#[derive(Clone)]
pub struct ShutdownTrigger {
    drain: Arc<DrainSignal>,
}

impl ShutdownTrigger {
    /// Starts the drain (idempotent, same as
    /// [`ServerHandle::request_shutdown`]).
    pub fn trigger(&self) {
        self.drain.trigger();
    }
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics-sidecar address, when `metrics_addr` was
    /// configured.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Collects a metrics [`Snapshot`] in-process (the same data the
    /// `Metrics` frame and the sidecar endpoint serve).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.hub.as_ref().expect("hub lives until join()").collect()
    }

    /// Starts a drain: stop accepting, let in-flight work finish.
    /// Idempotent; also triggered by a client `Shutdown` frame.
    pub fn request_shutdown(&self) {
        self.drain.trigger();
    }

    /// A cloneable trigger for [`ServerHandle::request_shutdown`],
    /// usable from other threads while this handle blocks in `join`.
    pub fn shutdown_trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger {
            drain: Arc::clone(&self.drain),
        }
    }

    /// Persists every shard's sessions to the configured snapshot
    /// directory *now* (the snapshot-on-demand path; the periodic
    /// `snapshot_interval` thread calls the same machinery). Returns the
    /// sessions written, or `None` when no snapshot directory is
    /// configured.
    pub fn persist_snapshots(&self) -> Option<u64> {
        let dir = self.snapshot_dir.as_ref()?;
        Some(
            self.hub
                .as_ref()
                .expect("hub lives until join()")
                .persist_all(dir),
        )
    }

    /// True once a shutdown/drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.drain.is_set()
    }

    /// Waits for the drain to complete — acceptor exited, every
    /// connection closed, every shard queue empty — and returns the
    /// final accounting. Call after [`ServerHandle::request_shutdown`]
    /// (or once a client has sent `Shutdown`); joining a server nobody
    /// shuts down blocks forever, like the listener it wraps.
    pub fn join(mut self) -> ServerSummary {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The acceptor has exited; each connection thread holds its own
        // hub clone. Wait for those connections to finish their
        // in-flight sessions.
        while self.active_conns.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Event loops exit once the drain flag is set, their injection
        // channel is closed (the acceptor dropped it above) and their
        // last connection is gone; joining them releases their hub
        // clones.
        for h in self.event_loops.drain(..) {
            let _ = h.join();
        }
        // The sidecar and stats threads also hold hub clones (and with
        // them shard senders); they exit on the drain flag. Join them,
        // then drop our own hub — at that point every sender is gone,
        // the shard receivers disconnect, and the workers drain-and-exit.
        if let Some(h) = self.metrics_accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.stats.take() {
            let _ = h.join();
        }
        if let Some(h) = self.snapshots.take() {
            let _ = h.join();
        }
        self.hub.take();
        let mut summary = ServerSummary {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            refused: self.counters.refused.load(Ordering::Relaxed),
            busy: self.counters.busy.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            resyncs: self.counters.resyncs.load(Ordering::Relaxed),
            read_timeouts: self.counters.read_timeouts.load(Ordering::Relaxed),
            sockopt_errors: self.counters.sockopt_errors.load(Ordering::Relaxed),
            partial_reads: self.counters.partial_reads.load(Ordering::Relaxed),
            ..ServerSummary::default()
        };
        for h in self.shards.drain(..) {
            if let Ok(s) = h.join() {
                summary.sessions += s.sessions;
                summary.requests += s.requests;
                summary.per_shard.push(s);
            }
        }
        // Every shard has exited, so every drain-time `shard<k>.nts` is
        // on disk and final. The marker file lets a cluster router tell
        // those authoritative snapshots apart from a mid-run periodic
        // one: it only restores a drained backend's sessions after the
        // marker appears (see DRAIN_MARKER).
        if let Some(dir) = &self.snapshot_dir {
            if let Err(e) = std::fs::write(dir.join(DRAIN_MARKER), b"drained\n") {
                eprintln!("[serve] cannot write drain marker in {dir:?}: {e}");
            }
        }
        summary
    }
}

/// File the drained server leaves in its snapshot directory once every
/// shard's final `shard<k>.nts` is on disk. Removed again at startup, so
/// its presence always refers to the *current* incarnation's drain.
pub const DRAIN_MARKER: &str = "drained";

/// Loads every warm-start session from `path` (one `.nts` file, or a
/// directory scanned for `*.nts`), instantiates the predictors, and
/// partitions them by owning shard (`session % workers`).
///
/// All-or-nothing: any refused file, refused state, or duplicate session
/// id fails the whole load — the caller logs the reason and starts cold.
/// A partial warm start would silently serve a mix of restored and
/// reset sessions, which is worse than either extreme.
fn load_warm_sessions(path: &Path, workers: usize) -> Result<Vec<Vec<(u64, Session)>>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if path.is_dir() {
        let entries = std::fs::read_dir(path).map_err(|e| format!("cannot scan {path:?}: {e}"))?;
        for entry in entries {
            let p = entry
                .map_err(|e| format!("cannot scan {path:?}: {e}"))?
                .path();
            if p.extension().is_some_and(|ext| ext == SNAPSHOT_EXT) {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(format!("no .{SNAPSHOT_EXT} files under {path:?}"));
        }
    } else {
        files.push(path.to_path_buf());
    }

    let mut per_shard: Vec<Vec<(u64, Session)>> = (0..workers).map(|_| Vec::new()).collect();
    let mut seen = std::collections::HashSet::new();
    for file in &files {
        let (artifact, _) = read_snapshot_file(file).map_err(|e| format!("{file:?}: {e}"))?;
        for s in &artifact.sessions {
            if !seen.insert(s.session_id) {
                return Err(format!("{file:?}: duplicate session {}", s.session_id));
            }
            let predictor = s
                .instantiate()
                .map_err(|e| format!("{file:?}: session {}: {e}", s.session_id))?;
            per_shard[(s.session_id % workers as u64) as usize].push((
                s.session_id,
                Session {
                    predictor,
                    stats: s.stats.clone(),
                },
            ));
        }
    }
    Ok(per_shard)
}

/// Binds `cfg.addr` (and `cfg.metrics_addr` when set) and spawns the
/// shard workers, the accept loop, and the optional sidecar/stats
/// threads. With [`ServeConfig::warm_path`] set, restores the snapshot's
/// sessions first (a refused snapshot is logged and the server starts
/// cold); with [`ServeConfig::snapshot_dir`] set, each shard persists
/// its sessions to `<dir>/shard<k>.nts` during the graceful drain.
///
/// Fails (with a one-line diagnostic naming the address) when an
/// address cannot be bound — e.g. the port is already in use — or when
/// the configuration is invalid.
pub fn serve(cfg: ServeConfig) -> Result<ServerHandle, String> {
    cfg.validate()?;
    // Warm-start before binding anything: no connection can ever observe
    // a partially restored session map. A refused snapshot is a logged
    // cold start, never a partial load (the `.nts` contract).
    let mut warm: Vec<Vec<(u64, Session)>> = (0..cfg.workers).map(|_| Vec::new()).collect();
    if let Some(path) = &cfg.warm_path {
        match load_warm_sessions(path, cfg.workers) {
            Ok(loaded) => warm = loaded,
            Err(e) => eprintln!("[serve] warm-start refused, starting cold: {e}"),
        }
    }
    // A drain marker in the snapshot directory always refers to the
    // current incarnation: clear any stale one before serving.
    if let Some(dir) = &cfg.snapshot_dir {
        let marker = dir.join(DRAIN_MARKER);
        if marker.exists() {
            if let Err(e) = std::fs::remove_file(&marker) {
                return Err(format!(
                    "serve: cannot clear stale drain marker {marker:?}: {e}"
                ));
            }
        }
    }
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| format!("serve: cannot bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("serve: cannot resolve bound address: {e}"))?;
    let metrics_listener = match &cfg.metrics_addr {
        Some(maddr) => Some(
            TcpListener::bind(maddr)
                .map_err(|e| format!("serve: cannot bind metrics address {maddr}: {e}"))?,
        ),
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(l) => Some(
            l.local_addr()
                .map_err(|e| format!("serve: cannot resolve bound metrics address: {e}"))?,
        ),
        None => None,
    };

    let active_conns = Arc::new(AtomicUsize::new(0));
    let counters = Arc::new(Counters::default());
    let drain = Arc::new(DrainSignal {
        flag: AtomicBool::new(false),
        addr,
        metrics_addr,
    });
    let shared: Arc<[ShardShared]> = (0..cfg.workers)
        .map(|_| ShardShared::default())
        .collect::<Vec<_>>()
        .into();
    let event_threads = effective_event_threads(&cfg);
    let loops: Arc<[LoopShared]> = (0..event_threads)
        .map(|_| LoopShared::default())
        .collect::<Vec<_>>()
        .into();
    let start = Instant::now();

    // One bounded queue per shard. Every sender clone lives inside a Hub
    // (acceptor, connection threads, sidecar, stats thread, handle);
    // when the last Hub drops, the shard receivers disconnect —
    // drain-then-exit for free.
    let mut senders = Vec::with_capacity(cfg.workers);
    let mut shards = Vec::with_capacity(cfg.workers);
    let mut warm = warm.into_iter();
    for shard_id in 0..cfg.workers {
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_depth);
        senders.push(tx);
        let shared = Arc::clone(&shared);
        let warm_sessions = warm.next().expect("one warm bucket per shard");
        let snapshot_dir = cfg.snapshot_dir.clone();
        shards.push(
            std::thread::Builder::new()
                .name(format!("ntp-serve-shard-{shard_id}"))
                .spawn(move || {
                    shard_loop(
                        shard_id as u32,
                        rx,
                        shared,
                        start,
                        warm_sessions,
                        snapshot_dir,
                    )
                })
                .map_err(|e| format!("serve: cannot spawn shard worker: {e}"))?,
        );
    }

    let hub = Arc::new(Hub {
        senders: senders.into(),
        shared,
        counters: Arc::clone(&counters),
        drain: Arc::clone(&drain),
        loops: Arc::clone(&loops),
        start,
    });

    // Event-driven frontend: a fixed set of readiness loops the acceptor
    // hands sockets to. The acceptor holds the only router (and with it
    // the injection senders), so when it exits the loops see a closed
    // channel and can drain out — no shutdown race with late accepts.
    #[cfg_attr(not(target_os = "linux"), allow(unused_mut))]
    let mut router: Option<Arc<ConnRouter>> = None;
    #[cfg_attr(not(target_os = "linux"), allow(unused_mut))]
    let mut event_loops: Vec<JoinHandle<()>> = Vec::new();
    #[cfg(target_os = "linux")]
    if event_threads > 0 {
        let (r, handles) = crate::event::spawn(event_threads, &cfg, &hub, &active_conns, &loops)?;
        router = Some(r);
        event_loops = handles;
    }

    let accept = {
        let active_conns = Arc::clone(&active_conns);
        let cfg = cfg.clone();
        let hub = Arc::clone(&hub);
        std::thread::Builder::new()
            .name("ntp-serve-accept".into())
            .spawn(move || accept_loop(listener, cfg, hub, active_conns, router))
            .map_err(|e| format!("serve: cannot spawn acceptor: {e}"))?
    };

    let metrics_accept = match metrics_listener {
        Some(listener) => {
            let hub = Arc::clone(&hub);
            Some(
                std::thread::Builder::new()
                    .name("ntp-serve-metrics".into())
                    .spawn(move || metrics_loop(listener, hub))
                    .map_err(|e| format!("serve: cannot spawn metrics sidecar: {e}"))?,
            )
        }
        None => None,
    };

    let stats = match cfg.stats_interval {
        Some(interval) => {
            let hub = Arc::clone(&hub);
            Some(
                std::thread::Builder::new()
                    .name("ntp-serve-stats".into())
                    .spawn(move || stats_loop(hub, interval))
                    .map_err(|e| format!("serve: cannot spawn stats thread: {e}"))?,
            )
        }
        None => None,
    };

    // Periodic snapshots bound the failover lost-update window: a
    // router restoring this server's sessions after a hard death is at
    // most one interval stale. Needs a snapshot directory to write to.
    let snapshots = match (&cfg.snapshot_interval, &cfg.snapshot_dir) {
        (Some(interval), Some(dir)) => {
            let hub = Arc::clone(&hub);
            let (interval, dir) = (*interval, dir.clone());
            Some(
                std::thread::Builder::new()
                    .name("ntp-serve-snapshots".into())
                    .spawn(move || snapshot_loop(hub, interval, dir))
                    .map_err(|e| format!("serve: cannot spawn snapshot thread: {e}"))?,
            )
        }
        _ => None,
    };

    Ok(ServerHandle {
        addr,
        metrics_addr,
        snapshot_dir: cfg.snapshot_dir.clone(),
        active_conns,
        counters,
        drain,
        hub: Some(hub),
        accept: Some(accept),
        event_loops,
        metrics_accept,
        stats,
        snapshots,
        shards,
    })
}

/// Persists every shard's sessions each `interval` until the drain flag
/// is set (the graceful drain then writes the final, authoritative
/// snapshots itself). Sleeps in short slices so a drain is never held
/// up by a long interval.
fn snapshot_loop(hub: Arc<Hub>, interval: Duration, dir: PathBuf) {
    let slice = Duration::from_millis(50);
    let mut next = Instant::now() + interval;
    while !hub.drain.is_set() {
        std::thread::sleep(slice);
        if Instant::now() >= next && !hub.drain.is_set() {
            hub.persist_all(&dir);
            next = Instant::now() + interval;
        }
    }
}

/// How many event-loop threads this platform actually runs: the
/// configured count on Linux, zero (with a one-line note) elsewhere —
/// the blocking thread-per-connection path is the portable fallback.
fn effective_event_threads(cfg: &ServeConfig) -> usize {
    #[cfg(target_os = "linux")]
    {
        cfg.event_threads
    }
    #[cfg(not(target_os = "linux"))]
    {
        if cfg.event_threads > 0 {
            eprintln!(
                "[serve] event-driven frontend is Linux-only; using blocking connection threads"
            );
        }
        0
    }
}

#[cfg(target_os = "linux")]
pub(crate) use crate::event::ConnRouter;

/// Stub router for platforms without the event frontend; never
/// constructed (`effective_event_threads` forces the blocking path).
#[cfg(not(target_os = "linux"))]
pub(crate) struct ConnRouter;

#[cfg(not(target_os = "linux"))]
impl ConnRouter {
    pub(crate) fn inject(&self, stream: TcpStream) -> bool {
        drop(stream);
        false
    }
}

fn accept_loop(
    listener: TcpListener,
    cfg: ServeConfig,
    hub: Arc<Hub>,
    active_conns: Arc<AtomicUsize>,
    router: Option<Arc<ConnRouter>>,
) {
    for stream in listener.incoming() {
        if hub.drain.is_set() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let slot = active_conns.fetch_add(1, Ordering::SeqCst);
        if slot >= cfg.max_conns {
            hub.counters.refused.fetch_add(1, Ordering::Relaxed);
            refuse(
                stream,
                ErrorCode::Refused,
                "connection limit reached",
                &hub.counters,
            );
            active_conns.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        hub.counters.accepted.fetch_add(1, Ordering::Relaxed);
        // Disable Nagle right at accept — both frontends serve
        // request/response traffic where a delayed ACK stall dwarfs any
        // segment-coalescing win. Failures are counted (and logged once)
        // through the sockopt path like every other socket option.
        note_sockopt(&hub.counters, "set_nodelay", stream.set_nodelay(true));
        if let Some(router) = &router {
            if !router.inject(stream) {
                // Every event loop is gone — only possible when the
                // process is tearing down; drop the connection.
                active_conns.fetch_sub(1, Ordering::SeqCst);
            }
            continue;
        }
        let cfg = cfg.clone();
        let hub2 = Arc::clone(&hub);
        let active_conns2 = Arc::clone(&active_conns);
        let spawned = std::thread::Builder::new()
            .name("ntp-serve-conn".into())
            .spawn(move || {
                connection_loop(stream, &cfg, &hub2);
                active_conns2.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
    // Dropping `hub` here releases the acceptor's share of the shard
    // senders (and the router, closing the loops' injection channels);
    // shards keep running until the last holder lets go.
}

/// Sends a single error reply on a connection we will not serve.
fn refuse(mut stream: TcpStream, code: ErrorCode, message: &str, counters: &Counters) {
    note_sockopt(
        counters,
        "set_write_timeout",
        stream.set_write_timeout(Some(Duration::from_secs(1))),
    );
    let body = wire::encode_response(&Response::Error {
        code,
        message: message.to_string(),
    });
    let _ = wire::write_frame(&mut stream, &body);
}

/// True for the error kinds a socket read timeout surfaces as (platform
/// dependent: Unix reports `WouldBlock`, Windows `TimedOut`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Serves one connection until EOF, timeout, or an unrecoverable frame.
fn connection_loop(mut stream: TcpStream, cfg: &ServeConfig, hub: &Hub) {
    note_sockopt(
        &hub.counters,
        "set_read_timeout",
        stream.set_read_timeout(Some(cfg.read_timeout)),
    );
    note_sockopt(
        &hub.counters,
        "set_write_timeout",
        stream.set_write_timeout(Some(cfg.write_timeout)),
    );
    let (reply_tx, reply_rx) = mpsc::channel::<Response>();
    // One reusable frame buffer: every reply is encoded in place and
    // written with a single syscall.
    let mut scratch = Vec::with_capacity(256);

    loop {
        let body = match wire::read_frame(&mut stream, cfg.max_frame) {
            Ok(body) => body,
            Err(WireError::Io(e)) => {
                // The connection is done either way, but an idle peer
                // hitting the read timeout is an operational signal
                // (tune `read_timeout`, look for stuck clients) — not
                // the same thing as a clean EOF or a dead transport.
                if is_timeout(&e) {
                    hub.counters.read_timeouts.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            Err(e @ WireError::Oversized { recoverable, .. }) => {
                hub.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if recoverable {
                    hub.counters.resyncs.fetch_add(1, Ordering::Relaxed);
                }
                let sent = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Oversized,
                        message: e.to_string(),
                    },
                    &mut scratch,
                );
                if !recoverable || !sent {
                    break; // Cannot resync past a huge declared length.
                }
                continue;
            }
            Err(e @ (WireError::BadChecksum | WireError::Empty)) => {
                hub.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if !send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    },
                    &mut scratch,
                ) {
                    break;
                }
                continue;
            }
        };
        let req = match wire::decode_request(&body) {
            Ok(req) => req,
            Err(msg) => {
                hub.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if !send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: msg,
                    },
                    &mut scratch,
                ) {
                    break;
                }
                continue;
            }
        };

        // Connection-level requests first; everything else routes by
        // session to its owning shard.
        let session = match &req {
            Request::Shutdown => {
                // Flip the drain flag, acknowledge, and close this
                // connection. Other connections keep draining.
                hub.drain.trigger();
                let _ = send(&mut stream, &Response::Bye, &mut scratch);
                break;
            }
            Request::Metrics => {
                let resp = Response::Metrics {
                    json: hub.collect().to_json().render(),
                };
                if !send(&mut stream, &resp, &mut scratch) {
                    break;
                }
                continue;
            }
            routed => routed.session().expect("routed requests name a session"),
        };

        let shard = (session % hub.senders.len() as u64) as usize;
        let resp = match hub.senders[shard].try_send(Job::Request {
            req,
            reply: ReplySink::Sync(reply_tx.clone()),
        }) {
            Ok(()) => {
                hub.shared[shard].depth.fetch_add(1, Ordering::Relaxed);
                match reply_rx.recv() {
                    Ok(resp) => resp,
                    Err(_) => Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("shard {shard} is gone"),
                    },
                }
            }
            Err(TrySendError::Full(_)) => {
                hub.counters.busy.fetch_add(1, Ordering::Relaxed);
                hub.shared[shard].busy.fetch_add(1, Ordering::Relaxed);
                Response::Busy
            }
            Err(TrySendError::Disconnected(_)) => Response::Error {
                code: ErrorCode::Draining,
                message: "server is draining".into(),
            },
        };
        if !send(&mut stream, &resp, &mut scratch) {
            break;
        }
    }
}

/// Writes one response frame through the reusable buffer (one encode,
/// one syscall); false when the peer is gone.
fn send(stream: &mut TcpStream, resp: &Response, scratch: &mut Vec<u8>) -> bool {
    scratch.clear();
    wire::append_response_frame(scratch, resp);
    stream
        .write_all(scratch)
        .and_then(|()| stream.flush())
        .is_ok()
}

/// Wire-request kinds a shard processes, in metric-name order.
const FRAME_KINDS: [&str; 6] = ["hello", "predict", "update", "batch", "stats", "migrate"];

fn frame_kind(req: &Request) -> usize {
    match req {
        Request::Hello { .. } => 0,
        Request::Predict { .. } => 1,
        Request::Update { .. } => 2,
        Request::Batch { .. } => 3,
        Request::Stats { .. } => 4,
        Request::Migrate { .. } => 5,
        Request::Shutdown | Request::Metrics => unreachable!("never routed to a shard"),
    }
}

/// A shard's private metrics: the cumulative registry, its dense
/// handles, and the rolling window behind live rates. All recording is
/// plain integer adds through pre-resolved ids — the ≤5% telemetry
/// budget documented in OBSERVABILITY.md.
struct ShardMetrics {
    registry: MetricsRegistry,
    window: RollingWindow,
    c_sessions: CounterId,
    c_warmed: CounterId,
    c_frames: [CounterId; FRAME_KINDS.len()],
    c_predictions: CounterId,
    c_correct: CounterId,
    c_err_unknown: CounterId,
    c_err_badcfg: CounterId,
    c_err_other: CounterId,
    c_busy: CounterId,
    c_batched: CounterId,
    c_coalesced: CounterId,
    c_migrate_out: CounterId,
    c_migrate_in: CounterId,
    c_busy_us: CounterId,
    c_idle_us: CounterId,
    g_queue: GaugeId,
    g_live: GaugeId,
    h_all: HistogramId,
    h_kind: [HistogramId; FRAME_KINDS.len()],
}

impl ShardMetrics {
    /// Registration order here is the serialization order of every
    /// snapshot section, identical across shards so `total` merges
    /// cleanly.
    fn new() -> ShardMetrics {
        let mut r = MetricsRegistry::new();
        let c_sessions = r.counter("sessions.opened");
        let c_warmed = r.counter("sessions.warmed");
        let c_frames = FRAME_KINDS.map(|k| r.counter(&format!("frames.{k}")));
        let c_predictions = r.counter("predictions");
        let c_correct = r.counter("predictions.correct");
        let c_err_unknown = r.counter("errors.unknown_session");
        let c_err_badcfg = r.counter("errors.bad_config");
        let c_err_other = r.counter("errors.other");
        let c_busy = r.counter("busy.rejections");
        let c_batched = r.counter("drain.batched");
        let c_coalesced = r.counter("drain.coalesced");
        let c_migrate_out = r.counter("migrate.out");
        let c_migrate_in = r.counter("migrate.in");
        let c_busy_us = r.counter("time.busy_us");
        let c_idle_us = r.counter("time.idle_us");
        let g_queue = r.gauge("queue.depth");
        let g_live = r.gauge("sessions.live");
        let h_all = r.histogram("latency_us.all");
        let h_kind = FRAME_KINDS.map(|k| r.histogram(&format!("latency_us.{k}")));
        ShardMetrics {
            registry: r,
            window: RollingWindow::new(WINDOW_EPOCHS),
            c_sessions,
            c_warmed,
            c_frames,
            c_predictions,
            c_correct,
            c_err_unknown,
            c_err_badcfg,
            c_err_other,
            c_busy,
            c_batched,
            c_coalesced,
            c_migrate_out,
            c_migrate_in,
            c_busy_us,
            c_idle_us,
            g_queue,
            g_live,
            h_all,
            h_kind,
        }
    }

    /// Accounts one processed request: frame type, outcome, latency, and
    /// the rolling-window bucket for the epoch it landed in.
    fn record(&mut self, req: &Request, resp: &Response, started: Instant, epoch: u64) {
        let kind = frame_kind(req);
        self.registry.inc(self.c_frames[kind]);
        let (predictions, correct) = match resp {
            Response::Updated { correct } => (1, u64::from(*correct)),
            Response::BatchDone {
                predictions,
                correct,
            } => (*predictions, *correct),
            _ => (0, 0),
        };
        if predictions > 0 {
            self.registry.add(self.c_predictions, predictions);
            self.registry.add(self.c_correct, correct);
        }
        match resp {
            Response::HelloOk { .. } => self.registry.inc(self.c_sessions),
            Response::MigrateOk { snapshot, .. } => {
                if snapshot.is_some() {
                    self.registry.inc(self.c_migrate_out);
                } else {
                    // An install creates a session on this shard just as
                    // a Hello does; without this the shard's drain
                    // summary undercounts what it actually served.
                    self.registry.inc(self.c_migrate_in);
                    self.registry.inc(self.c_sessions);
                }
            }
            Response::Error { code, .. } => self.registry.inc(match code {
                ErrorCode::UnknownSession => self.c_err_unknown,
                ErrorCode::BadConfig => self.c_err_badcfg,
                _ => self.c_err_other,
            }),
            _ => {}
        }
        let latency = started.elapsed().as_micros() as u64;
        self.registry.observe(self.h_all, latency);
        self.registry.observe(self.h_kind[kind], latency);
        let bucket = self.window.bucket_mut(epoch);
        let f = bucket.counter("frames");
        bucket.add(f, 1);
        if predictions > 0 {
            let p = bucket.counter("predictions");
            bucket.add(p, predictions);
        }
    }

    /// Builds this shard's snapshot: the cumulative registry with the
    /// connection-side depth/busy folded in, plus the merged rolling
    /// window annotated with how many epochs it covers (for rate math).
    fn snapshot(&mut self, shard: u32, shared: &ShardShared, epoch: u64) -> ShardSnapshot {
        self.window.advance_to(epoch);
        let mut metrics = self.registry.clone();
        metrics.set_counter(self.c_busy, shared.busy.load(Ordering::Relaxed));
        let depth = shared.depth.load(Ordering::Relaxed).max(0) as f64;
        metrics.set(self.g_queue, depth);
        let mut window = self.window.merged();
        let covered = window.counter("epochs");
        window.set_counter(covered, (epoch + 1).min(WINDOW_EPOCHS as u64));
        ShardSnapshot {
            shard,
            metrics,
            window,
        }
    }
}

/// One shard's answer to a `Job::Snapshot`.
pub(crate) struct ShardSnapshot {
    shard: u32,
    metrics: MetricsRegistry,
    window: MetricsRegistry,
}

/// Most jobs one blocking `recv` may opportunistically drain. Bounds the
/// prefetch pass (and reply latency for the job at the front) without
/// limiting throughput — leftover jobs are simply the next drain.
const MAX_DRAIN: usize = 64;

/// One shard: owns its sessions and its metrics, processes its queue to
/// empty, exits when every sender is gone.
///
/// Each wake-up drains the queue opportunistically (up to [`MAX_DRAIN`]
/// jobs). When the drain picks up two or more routed requests — distinct
/// sessions queued by concurrent connections — the shard runs the same
/// gathered sweep as `ntp_core::evaluate_batch`: one prefetch pass over
/// every target session's table lines, then the resolve pass in strict
/// arrival order. Replies, session state and metrics are identical to
/// one-at-a-time processing; only the cache misses overlap.
fn shard_loop(
    shard_id: u32,
    rx: Receiver<Job>,
    shared: Arc<[ShardShared]>,
    start: Instant,
    warm: Vec<(u64, Session)>,
    snapshot_dir: Option<PathBuf>,
) -> ShardSummary {
    let own = &shared[shard_id as usize];
    let warmed = warm.len() as u64;
    let mut sessions: HashMap<u64, Session> = warm.into_iter().collect();
    let mut m = ShardMetrics::new();
    m.registry.add(m.c_warmed, warmed);
    m.registry.set(m.g_live, sessions.len() as f64);
    let mut requests = 0u64;
    let mut idle_from = Instant::now();
    let mut drained: Vec<Job> = Vec::with_capacity(MAX_DRAIN);
    while let Ok(first) = rx.recv() {
        let woke = Instant::now();
        m.registry.add(
            m.c_idle_us,
            woke.duration_since(idle_from).as_micros() as u64,
        );
        drained.push(first);
        while drained.len() < MAX_DRAIN {
            match rx.try_recv() {
                Ok(job) => drained.push(job),
                Err(_) => break,
            }
        }

        // Gathered probe pass: with several routed requests in hand
        // (across jobs, or pre-coalesced inside one `Job::Run`), hint
        // every target session's table lines before resolving any.
        let routed: usize = drained.iter().map(Job::routed).sum();
        if routed >= 2 {
            for job in &drained {
                let session = match job {
                    Job::Request { req, .. } => req.session(),
                    Job::Run { session, .. } => Some(*session),
                    Job::Snapshot { .. } | Job::Persist { .. } => None,
                };
                if let Some(s) = session.and_then(|id| sessions.get(&id)) {
                    s.predictor.prefetch_tables();
                }
            }
            m.registry.add(m.c_batched, routed as u64);
        }

        // Resolve pass: strict arrival order, same per-request handling
        // (and per-request latency accounting) as the scalar loop — a
        // coalesced run is applied one request at a time so replies and
        // metrics are byte-identical to uncoalesced processing.
        for job in drained.drain(..) {
            let begun = Instant::now();
            let epoch = begun.duration_since(start).as_secs();
            match job {
                Job::Request { req, reply } => {
                    own.depth.fetch_sub(1, Ordering::Relaxed);
                    requests += 1;
                    let resp = apply(shard_id, &mut sessions, &req);
                    m.record(&req, &resp, begun, epoch);
                    m.registry.set(m.g_live, sessions.len() as f64);
                    reply.send(resp);
                }
                Job::Run { entries, .. } => {
                    own.depth.fetch_sub(1, Ordering::Relaxed);
                    if entries.len() >= 2 {
                        m.registry.add(m.c_coalesced, entries.len() as u64);
                    }
                    for (req, reply) in entries {
                        let begun = Instant::now();
                        let epoch = begun.duration_since(start).as_secs();
                        requests += 1;
                        let resp = apply(shard_id, &mut sessions, &req);
                        m.record(&req, &resp, begun, epoch);
                        m.registry.set(m.g_live, sessions.len() as f64);
                        reply.send(resp);
                    }
                }
                Job::Snapshot { reply } => {
                    let _ = reply.send(m.snapshot(shard_id, own, epoch));
                }
                Job::Persist { dir, reply } => {
                    let _ = reply.send(persist_sessions(shard_id, &sessions, &dir));
                }
            }
        }
        idle_from = Instant::now();
        m.registry.add(
            m.c_busy_us,
            idle_from.duration_since(woke).as_micros() as u64,
        );
    }
    // Graceful drain: persist this shard's learned state so the next
    // start can `--warm` from it. Written even when empty — a stale
    // snapshot from a previous run must not outlive this drain.
    let mut snapshotted = 0u64;
    if let Some(dir) = &snapshot_dir {
        match persist_sessions(shard_id, &sessions, dir) {
            Ok(n) => snapshotted = n,
            Err(e) => eprintln!("[serve] shard {shard_id}: drain snapshot failed: {e}"),
        }
    }
    ShardSummary {
        shard: shard_id,
        sessions: m.registry.counter_value(m.c_sessions),
        requests,
        predictions: m.registry.counter_value(m.c_predictions),
        correct: m.registry.counter_value(m.c_correct),
        errors: m.registry.counter_value(m.c_err_unknown)
            + m.registry.counter_value(m.c_err_badcfg)
            + m.registry.counter_value(m.c_err_other),
        batched: m.registry.counter_value(m.c_batched),
        coalesced: m.registry.counter_value(m.c_coalesced),
        warmed,
        snapshotted,
    }
}

/// Writes one shard's sessions to `<dir>/shard<k>.nts` (atomic
/// temp-file + rename). Written even when empty, so a stale snapshot
/// from an earlier point in time never outlives the write.
fn persist_sessions(
    shard_id: u32,
    sessions: &HashMap<u64, Session>,
    dir: &Path,
) -> Result<u64, String> {
    let artifact = SnapshotArtifact {
        sessions: sessions
            .iter()
            .map(|(&id, s)| SessionSnapshot::capture(id, &s.predictor, &s.stats))
            .collect(),
    };
    let path = dir.join(format!("shard{shard_id}.{SNAPSHOT_EXT}"));
    write_snapshot_file(&path, &artifact)
        .map(|_| artifact.sessions.len() as u64)
        .map_err(|e| format!("{path:?}: {e}"))
}

/// Applies one request to the shard's session map.
fn apply(shard_id: u32, sessions: &mut HashMap<u64, Session>, req: &Request) -> Response {
    match req {
        Request::Hello {
            session,
            bits,
            depth,
        } => {
            if sessions.contains_key(session) {
                return Response::Error {
                    code: ErrorCode::BadConfig,
                    message: format!("session {session} already exists"),
                };
            }
            let cfg = match PredictorConfig::try_paper(*bits, *depth as usize) {
                Ok(cfg) => cfg,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::BadConfig,
                        message: format!("paper({bits},{depth}) rejected: {e}"),
                    }
                }
            };
            let predictor = match NextTracePredictor::try_new(cfg) {
                Ok(p) => p,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::BadConfig,
                        message: format!("paper({bits},{depth}) rejected: {e}"),
                    }
                }
            };
            sessions.insert(
                *session,
                Session {
                    predictor,
                    stats: PredictorStats::new(),
                },
            );
            Response::HelloOk {
                session: *session,
                shard: shard_id,
            }
        }
        Request::Predict { session } => with_session(sessions, *session, |s| {
            let pred = s.predictor.predict();
            Response::Predicted {
                target: pred.target,
                source: pred.source,
            }
        }),
        Request::Update { session, record } => with_session(sessions, *session, |s| {
            let pred = s.predictor.predict();
            s.stats.score(&pred, record);
            s.predictor.update(record);
            Response::Updated {
                correct: pred.is_correct(record.id()),
            }
        }),
        Request::Batch { session, records } => with_session(sessions, *session, |s| {
            let mut correct = 0u64;
            for record in records {
                let pred = s.predictor.predict();
                s.stats.score(&pred, record);
                if pred.is_correct(record.id()) {
                    correct += 1;
                }
                s.predictor.update(record);
            }
            Response::BatchDone {
                predictions: records.len() as u64,
                correct,
            }
        }),
        Request::Stats { session } => with_session(sessions, *session, |s| Response::StatsOk {
            stats: s.stats.clone(),
        }),
        // Migration, the two halves. Extract (`snapshot: None`):
        // serialize the session as a checksummed single-session wire
        // snapshot and *remove* it — after the reply this shard will
        // answer `UnknownSession` for it, so a router must never route
        // the session here again until a matching install. Install
        // (`snapshot: Some`): decode, validate and insert; the stats
        // ride along, so served statistics stay in per-prediction
        // lockstep with the offline oracle across the move.
        Request::Migrate {
            session,
            snapshot: None,
        } => match sessions.get(session) {
            Some(s) => {
                let snap = SessionSnapshot::capture(*session, &s.predictor, &s.stats);
                let bytes = ntp_tracefile::encode_session_wire(&snap);
                sessions.remove(session);
                Response::MigrateOk {
                    session: *session,
                    snapshot: Some(bytes),
                }
            }
            None => Response::Error {
                code: ErrorCode::UnknownSession,
                message: format!("cannot migrate out: session {session} has not said hello"),
            },
        },
        Request::Migrate {
            session,
            snapshot: Some(bytes),
        } => {
            if sessions.contains_key(session) {
                return Response::Error {
                    code: ErrorCode::BadConfig,
                    message: format!("cannot migrate in: session {session} already exists"),
                };
            }
            let snap = match ntp_tracefile::decode_session_wire(bytes) {
                Ok(snap) => snap,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("migrate payload rejected: {e}"),
                    }
                }
            };
            if snap.session_id != *session {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "migrate payload is for session {}, frame addresses {session}",
                        snap.session_id
                    ),
                };
            }
            let predictor = match snap.instantiate() {
                Ok(p) => p,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("migrate payload rejected: {e}"),
                    }
                }
            };
            sessions.insert(
                *session,
                Session {
                    predictor,
                    stats: snap.stats,
                },
            );
            Response::MigrateOk {
                session: *session,
                snapshot: None,
            }
        }
        Request::Shutdown | Request::Metrics => Response::Error {
            code: ErrorCode::BadRequest,
            message: "connection-level request routed to a shard".into(),
        },
    }
}

fn with_session(
    sessions: &mut HashMap<u64, Session>,
    session: u64,
    f: impl FnOnce(&mut Session) -> Response,
) -> Response {
    match sessions.get_mut(&session) {
        Some(s) => f(s),
        None => Response::Error {
            code: ErrorCode::UnknownSession,
            message: format!("session {session} has not said hello"),
        },
    }
}

// ---------------------------------------------------------------------------
// Metrics sidecar and periodic stats
// ---------------------------------------------------------------------------

/// Serves the sidecar listener until drain: minimal HTTP/1.0, one
/// request per connection, so `curl`/browsers/scrapers can read metrics
/// without the binary protocol.
fn metrics_loop(listener: TcpListener, hub: Arc<Hub>) {
    for stream in listener.incoming() {
        if hub.drain.is_set() {
            break;
        }
        let Ok(stream) = stream else { continue };
        serve_scrape(stream, &hub);
    }
}

/// Answers one scrape: `GET /metrics` (flat text), `GET /metrics.json`
/// (pretty JSON), 404 on other paths, 405 on other methods. Unparseable
/// input just drops the connection.
fn serve_scrape(mut stream: TcpStream, hub: &Hub) {
    note_sockopt(
        &hub.counters,
        "set_read_timeout",
        stream.set_read_timeout(Some(Duration::from_secs(5))),
    );
    note_sockopt(
        &hub.counters,
        "set_write_timeout",
        stream.set_write_timeout(Some(Duration::from_secs(5))),
    );
    let Some(req) = read_http_request_path(&mut stream) else {
        return;
    };
    let (status, content_type, body) = match req {
        HttpHead::NotGet => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported; try GET /metrics\n".to_string(),
        ),
        HttpHead::Get(path) => match path.as_str() {
            "/metrics" | "/" => {
                let snap = hub.collect();
                ("200 OK", "text/plain; charset=utf-8", snap.to_text())
            }
            "/metrics.json" => {
                let snap = hub.collect();
                let mut body = snap.to_json().pretty();
                body.push('\n');
                ("200 OK", "application/json", body)
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics or /metrics.json\n".to_string(),
            ),
        },
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// One parsed HTTP request line from the sidecar listener.
enum HttpHead {
    /// A `GET` with its request path.
    Get(String),
    /// A well-formed request line with any other method (drawn a 405).
    NotGet,
}

/// Reads one HTTP request head (through the blank line, capped at 8 KiB)
/// and returns the parsed request line. `None` on malformed input.
fn read_http_request_path(stream: &mut TcpStream) -> Option<HttpHead> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return Some(HttpHead::NotGet);
    }
    Some(HttpHead::Get(path.to_string()))
}

/// Prints a `[serve] …` summary line to stderr every `interval` until
/// drain. Polls the drain flag so it never outlives a shutdown by more
/// than ~100ms.
fn stats_loop(hub: Arc<Hub>, interval: Duration) {
    let poll = interval.min(Duration::from_millis(100));
    let mut next = Instant::now() + interval;
    loop {
        std::thread::sleep(poll);
        if hub.drain.is_set() {
            break;
        }
        if Instant::now() < next {
            continue;
        }
        next += interval;
        eprintln!("[serve] {}", summary_line(&hub.collect(), hub.start));
    }
}

/// One human-scannable line from a snapshot: uptime, lifetime totals,
/// and the rolling-window QPS.
pub(crate) fn summary_line(snap: &Snapshot, start: Instant) -> String {
    let zero = MetricsRegistry::new();
    let total = snap.get("total").unwrap_or(&zero);
    let counter = |name: &str| total.counter_by_name(name).unwrap_or(0);
    let frames: u64 = FRAME_KINDS
        .iter()
        .map(|k| counter(&format!("frames.{k}")))
        .sum();
    let errors =
        counter("errors.unknown_session") + counter("errors.bad_config") + counter("errors.other");
    let mut window_frames = 0u64;
    let mut epochs = 1u64;
    let mut queue = 0.0f64;
    for (name, m) in snap.sections() {
        if name.ends_with(".window") {
            window_frames += m.counter_by_name("frames").unwrap_or(0);
            epochs = epochs.max(m.counter_by_name("epochs").unwrap_or(1));
        } else if name.starts_with("shard") {
            queue += m.gauge_by_name("queue.depth").unwrap_or(0.0).max(0.0);
        }
    }
    let conns = snap
        .get("server")
        .and_then(|s| s.counter_by_name("conns.accepted"))
        .unwrap_or(0);
    format!(
        "up {}s: {} conns, {} sessions, {} frames, {} predictions, {:.1} qps, queue {}, busy {}, errors {}",
        start.elapsed().as_secs(),
        conns,
        counter("sessions.opened"),
        frames,
        counter("predictions"),
        window_frames as f64 / epochs as f64,
        queue as u64,
        counter("busy.rejections"),
        errors,
    )
}

// ---------------------------------------------------------------------------
// SIGTERM-driven drain
// ---------------------------------------------------------------------------

static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn sigterm_handler(_signum: i32) {
    // A relaxed atomic store is async-signal-safe; everything else
    // (draining, snapshotting, printing) happens on a normal thread
    // that polls `sigterm_pending`.
    SIGTERM_SEEN.store(true, Ordering::SeqCst);
}

/// Installs a process-wide SIGTERM handler that records the signal (see
/// [`sigterm_pending`]) instead of killing the process, so a serving
/// binary can turn `kill -TERM` into a graceful drain: snapshots
/// written, sessions intact, stats honest. Returns `false` when the
/// handler could not be installed (non-Unix platforms, or a refused
/// `signal(2)` call) — the caller keeps the default kill-on-TERM
/// behaviour.
pub fn install_sigterm_drain() -> bool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        let handler = sigterm_handler as extern "C" fn(i32) as usize;
        // SIG_ERR is -1.
        unsafe { signal(SIGTERM, handler) != usize::MAX }
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// True once a SIGTERM has arrived after [`install_sigterm_drain`].
pub fn sigterm_pending() -> bool {
    SIGTERM_SEEN.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_trace::{TraceId, TraceRecord};

    fn rec(pc: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 8, 0, false, false)
    }

    #[test]
    fn apply_routes_the_session_lifecycle() {
        let mut sessions = HashMap::new();
        // Unknown session first.
        let resp = apply(0, &mut sessions, &Request::Stats { session: 1 });
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        // Hello, then a batch, then stats matching the offline oracle.
        let hello = Request::Hello {
            session: 1,
            bits: 12,
            depth: 3,
        };
        assert!(matches!(
            apply(0, &mut sessions, &hello),
            Response::HelloOk {
                session: 1,
                shard: 0
            }
        ));
        assert!(
            matches!(
                apply(0, &mut sessions, &hello),
                Response::Error {
                    code: ErrorCode::BadConfig,
                    ..
                }
            ),
            "duplicate hello refused"
        );
        let records: Vec<TraceRecord> =
            (0..60).map(|k| rec(0x0040_0000 + (k % 3) * 0x40)).collect();
        let Response::BatchDone {
            predictions,
            correct,
        } = apply(
            0,
            &mut sessions,
            &Request::Batch {
                session: 1,
                records: records.clone(),
            },
        )
        else {
            panic!("batch should complete");
        };
        assert_eq!(predictions, 60);
        let Response::StatsOk { stats } = apply(0, &mut sessions, &Request::Stats { session: 1 })
        else {
            panic!("stats should answer");
        };
        let mut oracle = NextTracePredictor::new(PredictorConfig::paper(12, 3));
        let expect = ntp_core::evaluate(&mut oracle, &records);
        assert_eq!(stats, expect, "served stats equal the offline oracle");
        assert_eq!(correct, expect.correct);
    }

    #[test]
    fn apply_migrate_moves_a_session_between_shard_maps() {
        let mut src: HashMap<u64, Session> = HashMap::new();
        let mut dst: HashMap<u64, Session> = HashMap::new();
        apply(
            0,
            &mut src,
            &Request::Hello {
                session: 7,
                bits: 12,
                depth: 3,
            },
        );
        let records: Vec<TraceRecord> =
            (0..80).map(|k| rec(0x0040_0000 + (k % 4) * 0x40)).collect();
        apply(
            0,
            &mut src,
            &Request::Batch {
                session: 7,
                records: records.clone(),
            },
        );

        // Extract: the session leaves the source map with its bytes.
        let out = apply(
            0,
            &mut src,
            &Request::Migrate {
                session: 7,
                snapshot: None,
            },
        );
        let Response::MigrateOk {
            session: 7,
            snapshot: Some(bytes),
        } = out
        else {
            panic!("extract should answer MigrateOk with a payload: {out:?}");
        };
        assert!(src.is_empty(), "extract removes the session");
        assert!(
            matches!(
                apply(0, &mut src, &Request::Stats { session: 7 }),
                Response::Error {
                    code: ErrorCode::UnknownSession,
                    ..
                }
            ),
            "the source no longer serves the session"
        );
        // Extracting an unknown session is refused.
        assert!(matches!(
            apply(
                0,
                &mut src,
                &Request::Migrate {
                    session: 7,
                    snapshot: None
                }
            ),
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));

        // Install on the target: stats and state ride along.
        let install = Request::Migrate {
            session: 7,
            snapshot: Some(bytes.clone()),
        };
        assert!(matches!(
            apply(1, &mut dst, &install),
            Response::MigrateOk {
                session: 7,
                snapshot: None,
            }
        ));
        // Double-install is refused; so is a corrupted payload and a
        // session-id mismatch.
        assert!(matches!(
            apply(1, &mut dst, &install),
            Response::Error {
                code: ErrorCode::BadConfig,
                ..
            }
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 1;
        assert!(matches!(
            apply(
                1,
                &mut src,
                &Request::Migrate {
                    session: 7,
                    snapshot: Some(flipped)
                }
            ),
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        assert!(matches!(
            apply(
                1,
                &mut src,
                &Request::Migrate {
                    session: 8,
                    snapshot: Some(bytes)
                }
            ),
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        assert!(src.is_empty(), "refused installs never insert");

        // The moved session continues in lockstep with the offline
        // oracle: same accumulated stats, same future predictions.
        let more: Vec<TraceRecord> = (0..40).map(|k| rec(0x0040_0000 + (k % 4) * 0x40)).collect();
        apply(
            1,
            &mut dst,
            &Request::Batch {
                session: 7,
                records: more.clone(),
            },
        );
        let Response::StatsOk { stats } = apply(1, &mut dst, &Request::Stats { session: 7 }) else {
            panic!("stats should answer");
        };
        let mut oracle = NextTracePredictor::new(PredictorConfig::paper(12, 3));
        let mut all = records;
        all.extend_from_slice(&more);
        assert_eq!(stats, ntp_core::evaluate(&mut oracle, &all));
    }

    #[test]
    fn apply_refuses_hostile_configs() {
        let mut sessions = HashMap::new();
        let resp = apply(
            0,
            &mut sessions,
            &Request::Hello {
                session: 1,
                bits: 0,
                depth: 64,
            },
        );
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::BadConfig,
                    ..
                }
            ),
            "{resp:?}"
        );
        assert!(sessions.is_empty());
    }

    #[test]
    fn shard_metrics_account_frames_outcomes_and_errors() {
        let mut sessions = HashMap::new();
        let mut m = ShardMetrics::new();
        let t0 = Instant::now();
        let reqs: Vec<Request> = vec![
            Request::Hello {
                session: 2,
                bits: 12,
                depth: 3,
            },
            Request::Update {
                session: 2,
                record: rec(0x0040_0000),
            },
            Request::Batch {
                session: 2,
                records: vec![rec(0x0040_0000); 5],
            },
            Request::Stats { session: 2 },
            Request::Stats { session: 99 }, // unknown session
        ];
        for (k, req) in reqs.iter().enumerate() {
            let resp = apply(0, &mut sessions, req);
            m.record(req, &resp, t0, k as u64);
        }
        let r = &m.registry;
        assert_eq!(r.counter_by_name("frames.hello"), Some(1));
        assert_eq!(r.counter_by_name("frames.update"), Some(1));
        assert_eq!(r.counter_by_name("frames.batch"), Some(1));
        assert_eq!(r.counter_by_name("frames.stats"), Some(2));
        assert_eq!(r.counter_by_name("predictions"), Some(6));
        assert_eq!(r.counter_by_name("sessions.opened"), Some(1));
        assert_eq!(r.counter_by_name("errors.unknown_session"), Some(1));
        assert_eq!(
            r.histogram_by_name("latency_us.all").unwrap().count(),
            5,
            "every frame lands in the all-frames histogram"
        );
        assert_eq!(r.histogram_by_name("latency_us.stats").unwrap().count(), 2);
        // The rolling window saw one frame per epoch 0..=4.
        let w = m.window.merged();
        assert_eq!(w.counter_by_name("frames"), Some(5));
        assert_eq!(w.counter_by_name("predictions"), Some(6));
        // A snapshot folds in the connection-side shared state.
        let shared = ShardShared::default();
        shared.busy.store(7, Ordering::Relaxed);
        shared.depth.store(3, Ordering::Relaxed);
        let snap = m.snapshot(0, &shared, 4);
        assert_eq!(snap.metrics.counter_by_name("busy.rejections"), Some(7));
        assert_eq!(snap.metrics.gauge_by_name("queue.depth"), Some(3.0));
        assert_eq!(snap.window.counter_by_name("epochs"), Some(5));
    }

    #[test]
    fn summary_line_reads_totals_and_rates() {
        let mut m = ShardMetrics::new();
        let mut sessions = HashMap::new();
        let t0 = Instant::now();
        let hello = Request::Hello {
            session: 1,
            bits: 12,
            depth: 3,
        };
        let resp = apply(0, &mut sessions, &hello);
        m.record(&hello, &resp, t0, 0);
        let shared = ShardShared::default();
        let shard = m.snapshot(0, &shared, 0);
        let mut snap = Snapshot::new();
        snap.push("server", MetricsRegistry::new());
        snap.push("shard0", shard.metrics.clone());
        snap.push("shard0.window", shard.window);
        snap.push("total", shard.metrics);
        let line = summary_line(&snap, t0);
        assert!(line.contains("1 sessions"), "{line}");
        assert!(line.contains("1 frames"), "{line}");
        assert!(line.contains("qps"), "{line}");
    }
}
