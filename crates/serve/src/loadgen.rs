//! The replay load generator: drives an `ntp-serve` server with
//! concurrent client sessions replaying captured trace streams, measures
//! QPS and request-latency quantiles, and asserts the served statistics
//! match the offline [`ntp_core::evaluate`] oracle **exactly**.
//!
//! Each session replays one record stream over the wire in
//! [`LoadgenConfig::chunk`]-sized `Batch` frames, then pulls the
//! session's final `Stats` and compares them field-for-field against a
//! local replay of the identical configuration. Any divergence means the
//! service's predictor state machine differs from the library's — the
//! same lockstep discipline as `ntp verify`, but across a socket.
//!
//! Client sessions fan out over [`ntp_runner::map_ordered_with`], so
//! results come back in session order and the text report is
//! deterministic for a fixed input (latency/QPS numbers aside).

use crate::client::{Client, ClientError};
use ntp_core::{evaluate, NextTracePredictor, PredictorConfig, PredictorStats};
use ntp_telemetry::{Histogram, Json, ToJson};
use ntp_trace::TraceRecord;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client workers (each owns one connection at a time).
    pub clients: usize,
    /// Records per `Batch` frame.
    pub chunk: usize,
    /// Correlating-table index bits of every session's predictor.
    pub bits: u32,
    /// DOLC history depth of every session's predictor.
    pub depth: u32,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: crate::config::DEFAULT_ADDR.to_string(),
            clients: 2,
            chunk: 256,
            bits: 15,
            depth: 7,
        }
    }
}

/// One replay stream: a name and its captured records.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Display name (benchmark or stream label).
    pub name: String,
    /// The captured record stream to replay.
    pub records: Vec<TraceRecord>,
}

/// Outcome of one served session.
#[derive(Clone, Debug)]
pub struct SessionResult {
    /// Stream name.
    pub name: String,
    /// Session id used on the wire.
    pub session: u64,
    /// Shard that owned the session.
    pub shard: u32,
    /// Statistics the server accumulated.
    pub served: PredictorStats,
    /// Statistics the offline oracle computed for the same stream.
    pub oracle: PredictorStats,
    /// Requests this session issued (hello + batches + stats),
    /// including `Busy` retries.
    pub requests: u64,
    /// `Batch` frames the shard applied (retries excluded) — a pure
    /// function of the stream length and chunk size, so metrics gates
    /// can compare it against the server's `frames.batch` counter.
    pub batches: u64,
}

impl SessionResult {
    /// True when served and oracle statistics agree **exactly**.
    pub fn matches(&self) -> bool {
        self.served == self.oracle
    }
}

/// Aggregate loadgen outcome.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Per-session outcomes, in session order.
    pub sessions: Vec<SessionResult>,
    /// Total requests issued.
    pub requests: u64,
    /// Total records replayed over the wire.
    pub records: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-request round-trip latency in microseconds.
    pub latency_us: Histogram,
    /// `Busy` replies absorbed (retried) across all sessions.
    pub busy_retries: u64,
    /// Per-shard `drain.batched` counters scraped from the server after
    /// the replay: how many requests each shard resolved through a
    /// batched drain (one prefetch sweep over several queued sessions).
    /// Load-dependent, so reports treat this as volatile — it measures
    /// how often the sweep engaged, not a deterministic replay property.
    pub drain_batched: Vec<u64>,
}

impl LoadgenReport {
    /// True when every session matched its oracle exactly.
    pub fn all_match(&self) -> bool {
        self.sessions.iter().all(SessionResult::matches)
    }

    /// Requests per wall-clock second.
    pub fn qps(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.requests as f64 / s
        }
    }

    /// Records replayed per wall-clock second.
    pub fn records_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.records as f64 / s
        }
    }
}

impl ToJson for LoadgenReport {
    /// `{sessions: [...], requests, records, wall_ms, qps,
    /// records_per_sec, busy_retries, latency_us, all_match}` — latency
    /// and throughput numbers are wall-clock derived, so reports keep
    /// this under a volatile key (see OBSERVABILITY.md).
    fn to_json(&self) -> Json {
        Json::object()
            .with(
                "sessions",
                Json::Array(
                    self.sessions
                        .iter()
                        .map(|s| {
                            Json::object()
                                .with("name", Json::Str(s.name.clone()))
                                .with("session", Json::U64(s.session))
                                .with("shard", Json::U64(s.shard as u64))
                                .with("batches", Json::U64(s.batches))
                                .with("predictions", Json::U64(s.served.predictions))
                                .with("served_correct", Json::U64(s.served.correct))
                                .with("oracle_correct", Json::U64(s.oracle.correct))
                                .with(
                                    "served_mispredict_pct",
                                    Json::F64(s.served.mispredict_pct()),
                                )
                                .with("matches_oracle", Json::Bool(s.matches()))
                        })
                        .collect(),
                ),
            )
            .with("requests", Json::U64(self.requests))
            .with("records", Json::U64(self.records))
            .with("wall_ms", Json::F64(self.wall.as_secs_f64() * 1e3))
            .with("qps", Json::F64(self.qps()))
            .with("records_per_sec", Json::F64(self.records_per_sec()))
            .with("busy_retries", Json::U64(self.busy_retries))
            .with("latency_us", self.latency_us.to_json())
            .with(
                "drain_batched",
                Json::Array(self.drain_batched.iter().map(|&n| Json::U64(n)).collect()),
            )
            .with("all_match", Json::Bool(self.all_match()))
    }
}

struct SessionRun {
    result: SessionResult,
    latency_us: Histogram,
    busy_retries: u64,
}

/// Replays every `sessions` stream against the server at
/// `cfg.addr` and scores the result. Fails fast on transport or
/// protocol errors; oracle mismatches are *reported*, not errors (the
/// caller decides — `ntp loadgen` exits nonzero on any mismatch).
pub fn run(cfg: &LoadgenConfig, sessions: &[SessionSpec]) -> Result<LoadgenReport, ClientError> {
    // Validate the predictor configuration before opening any socket, so
    // a bad design point is one clean client-side diagnostic.
    let pcfg = PredictorConfig::try_paper(cfg.bits, cfg.depth as usize)
        .map_err(|e| ClientError::Protocol(format!("paper({},{}): {e}", cfg.bits, cfg.depth)))?;
    let start = Instant::now();
    let runs: Vec<Result<SessionRun, ClientError>> =
        ntp_runner::map_ordered_with(cfg.clients.max(1), sessions, |i, spec| {
            run_session(cfg, pcfg, i as u64, spec)
        });
    let wall = start.elapsed();

    let mut report = LoadgenReport {
        sessions: Vec::with_capacity(runs.len()),
        requests: 0,
        records: 0,
        wall,
        latency_us: Histogram::new(),
        busy_retries: 0,
        drain_batched: Vec::new(),
    };
    for run in runs {
        let run = run?;
        report.requests += run.result.requests;
        report.records += run.result.served.predictions;
        report.latency_us.merge(&run.latency_us);
        report.busy_retries += run.busy_retries;
        report.sessions.push(run.result);
    }
    report.drain_batched = scrape_drain_batched(&cfg.addr).unwrap_or_default();
    Ok(report)
}

/// Scrapes the server's per-shard `drain.batched` counters after a
/// replay. Best-effort: a scrape failure (server already draining, say)
/// leaves the report without the numbers rather than failing the run.
fn scrape_drain_batched(addr: &str) -> Option<Vec<u64>> {
    let mut client = Client::connect(addr).ok()?;
    let text = client.metrics_json().ok()?;
    let snap = ntp_telemetry::json::parse(&text).ok()?;
    let mut per_shard = Vec::new();
    while let Some(section) = snap.get(&format!("shard{}", per_shard.len())) {
        per_shard.push(
            section
                .get("counters")
                .and_then(|c| c.get("drain.batched"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
        );
    }
    Some(per_shard)
}

/// Replays one stream as one wire session and scores it.
fn run_session(
    cfg: &LoadgenConfig,
    pcfg: PredictorConfig,
    session: u64,
    spec: &SessionSpec,
) -> Result<SessionRun, ClientError> {
    let mut client = Client::connect(&cfg.addr)?;
    let mut latency = Histogram::new();
    let mut requests = 0u64;
    let mut busy_retries = 0u64;
    let chunk = cfg.chunk.max(1);

    let mut timed = |client: &mut Client,
                     req: &crate::wire::Request|
     -> Result<crate::wire::Response, ClientError> {
        loop {
            let t0 = Instant::now();
            let resp = client.request(req)?;
            latency.record(t0.elapsed().as_micros() as u64);
            requests += 1;
            if matches!(resp, crate::wire::Response::Busy) {
                busy_retries += 1;
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            return Ok(resp);
        }
    };

    let shard = match timed(
        &mut client,
        &crate::wire::Request::Hello {
            session,
            bits: cfg.bits,
            depth: cfg.depth,
        },
    )? {
        crate::wire::Response::HelloOk { shard, .. } => shard,
        crate::wire::Response::Error { code, message } => {
            return Err(ClientError::Server { code, message })
        }
        other => {
            return Err(ClientError::Protocol(format!(
                "expected HelloOk, got {other:?}"
            )))
        }
    };

    let mut served_batches = PredictorStats::new();
    let mut batches = 0u64;
    for records in spec.records.chunks(chunk) {
        batches += 1;
        match timed(
            &mut client,
            &crate::wire::Request::Batch {
                session,
                records: records.to_vec(),
            },
        )? {
            crate::wire::Response::BatchDone {
                predictions,
                correct,
            } => {
                served_batches.predictions += predictions;
                served_batches.correct += correct;
            }
            crate::wire::Response::Error { code, message } => {
                return Err(ClientError::Server { code, message })
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected BatchDone, got {other:?}"
                )))
            }
        }
    }

    let served = match timed(&mut client, &crate::wire::Request::Stats { session })? {
        crate::wire::Response::StatsOk { stats } => stats,
        crate::wire::Response::Error { code, message } => {
            return Err(ClientError::Server { code, message })
        }
        other => {
            return Err(ClientError::Protocol(format!(
                "expected StatsOk, got {other:?}"
            )))
        }
    };

    // Cross-check the per-batch tallies against the final stats frame:
    // they are two independent paths through the server.
    if served.predictions != served_batches.predictions || served.correct != served_batches.correct
    {
        return Err(ClientError::Protocol(format!(
            "batch tallies ({}/{}) disagree with the stats frame ({}/{})",
            served_batches.correct, served_batches.predictions, served.correct, served.predictions
        )));
    }

    // The offline oracle: an identical predictor replaying the identical
    // stream in-process.
    let mut oracle_pred = NextTracePredictor::try_new(pcfg)
        .map_err(|e| ClientError::Protocol(format!("oracle config rejected: {e}")))?;
    let oracle = evaluate(&mut oracle_pred, &spec.records);

    Ok(SessionRun {
        result: SessionResult {
            name: spec.name.clone(),
            session,
            shard,
            served,
            oracle,
            requests,
            batches,
        },
        latency_us: latency,
        busy_retries,
    })
}
