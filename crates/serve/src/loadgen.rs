//! The replay load generator: drives an `ntp-serve` server with
//! concurrent client sessions replaying captured trace streams, measures
//! QPS and request-latency quantiles, and asserts the served statistics
//! match the offline [`ntp_core::evaluate`] oracle **exactly**.
//!
//! Each session replays one record stream over the wire in
//! [`LoadgenConfig::chunk`]-sized `Batch` frames, then pulls the
//! session's final `Stats` and compares them field-for-field against a
//! local replay of the identical configuration. Any divergence means the
//! service's predictor state machine differs from the library's — the
//! same lockstep discipline as `ntp verify`, but across a socket.
//!
//! Client sessions fan out over [`ntp_runner::map_ordered_with`], so
//! results come back in session order and the text report is
//! deterministic for a fixed input (latency/QPS numbers aside).
//!
//! Two driving modes:
//!
//! * **Closed-loop** ([`run`]): each client waits for a reply before
//!   sending the next request. Measures capacity, but under overload the
//!   arrival rate collapses to the service rate — latency looks fine
//!   right up to saturation (coordinated omission).
//! * **Open-loop** ([`run_open_loop`]): arrivals follow a fixed-rate
//!   schedule with Zipf-distributed session popularity, sent whether or
//!   not earlier replies have come back (pipelined on each connection).
//!   Latency is measured from the *scheduled* send time, so queueing
//!   delay under overload is visible in p99/p99.9 instead of hidden.
//!   The schedule is a pure function of `(seed, zipf, rate, duration)` —
//!   two runs offer byte-identical request sequences.

use crate::client::{Client, ClientError};
use crate::wire::{self, Request, Response};
use ntp_core::{evaluate, NextTracePredictor, PredictorConfig, PredictorStats, TracePredictor};
use ntp_telemetry::{Histogram, Json, ToJson};
use ntp_trace::TraceRecord;
use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client workers (each owns one connection at a time).
    pub clients: usize,
    /// Records per `Batch` frame.
    pub chunk: usize,
    /// Correlating-table index bits of every session's predictor.
    pub bits: u32,
    /// DOLC history depth of every session's predictor.
    pub depth: u32,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: crate::config::DEFAULT_ADDR.to_string(),
            clients: 2,
            chunk: 256,
            bits: 15,
            depth: 7,
        }
    }
}

/// One replay stream: a name and its captured records.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Display name (benchmark or stream label).
    pub name: String,
    /// The captured record stream to replay.
    pub records: Vec<TraceRecord>,
}

/// Outcome of one served session.
#[derive(Clone, Debug)]
pub struct SessionResult {
    /// Stream name.
    pub name: String,
    /// Session id used on the wire.
    pub session: u64,
    /// Shard that owned the session.
    pub shard: u32,
    /// Statistics the server accumulated.
    pub served: PredictorStats,
    /// Statistics the offline oracle computed for the same stream.
    pub oracle: PredictorStats,
    /// Requests this session issued (hello + batches + stats),
    /// including `Busy` retries.
    pub requests: u64,
    /// `Batch` frames the shard applied (retries excluded) — a pure
    /// function of the stream length and chunk size, so metrics gates
    /// can compare it against the server's `frames.batch` counter.
    pub batches: u64,
}

impl SessionResult {
    /// True when served and oracle statistics agree **exactly**.
    pub fn matches(&self) -> bool {
        self.served == self.oracle
    }
}

/// Aggregate loadgen outcome.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Per-session outcomes, in session order.
    pub sessions: Vec<SessionResult>,
    /// Total requests issued.
    pub requests: u64,
    /// Total records replayed over the wire.
    pub records: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-request round-trip latency in microseconds.
    pub latency_us: Histogram,
    /// `Busy` replies absorbed (retried) across all sessions.
    pub busy_retries: u64,
    /// Per-shard `drain.batched` counters scraped from the server after
    /// the replay: how many requests each shard resolved through a
    /// batched drain (one prefetch sweep over several queued sessions).
    /// Load-dependent, so reports treat this as volatile — it measures
    /// how often the sweep engaged, not a deterministic replay property.
    pub drain_batched: Vec<u64>,
}

impl LoadgenReport {
    /// True when every session matched its oracle exactly.
    pub fn all_match(&self) -> bool {
        self.sessions.iter().all(SessionResult::matches)
    }

    /// Requests per wall-clock second.
    pub fn qps(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.requests as f64 / s
        }
    }

    /// Records replayed per wall-clock second.
    pub fn records_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.records as f64 / s
        }
    }
}

impl ToJson for LoadgenReport {
    /// `{sessions: [...], requests, records, wall_ms, qps,
    /// records_per_sec, busy_retries, latency_us, all_match}` — latency
    /// and throughput numbers are wall-clock derived, so reports keep
    /// this under a volatile key (see OBSERVABILITY.md).
    fn to_json(&self) -> Json {
        Json::object()
            .with(
                "sessions",
                Json::Array(
                    self.sessions
                        .iter()
                        .map(|s| {
                            Json::object()
                                .with("name", Json::Str(s.name.clone()))
                                .with("session", Json::U64(s.session))
                                .with("shard", Json::U64(s.shard as u64))
                                .with("batches", Json::U64(s.batches))
                                .with("predictions", Json::U64(s.served.predictions))
                                .with("served_correct", Json::U64(s.served.correct))
                                .with("oracle_correct", Json::U64(s.oracle.correct))
                                .with(
                                    "served_mispredict_pct",
                                    Json::F64(s.served.mispredict_pct()),
                                )
                                .with("matches_oracle", Json::Bool(s.matches()))
                        })
                        .collect(),
                ),
            )
            .with("requests", Json::U64(self.requests))
            .with("records", Json::U64(self.records))
            .with("wall_ms", Json::F64(self.wall.as_secs_f64() * 1e3))
            .with("qps", Json::F64(self.qps()))
            .with("records_per_sec", Json::F64(self.records_per_sec()))
            .with("busy_retries", Json::U64(self.busy_retries))
            .with("latency_us", self.latency_us.to_json())
            .with(
                "drain_batched",
                Json::Array(self.drain_batched.iter().map(|&n| Json::U64(n)).collect()),
            )
            .with("all_match", Json::Bool(self.all_match()))
    }
}

struct SessionRun {
    result: SessionResult,
    latency_us: Histogram,
    busy_retries: u64,
}

/// Replays every `sessions` stream against the server at
/// `cfg.addr` and scores the result. Fails fast on transport or
/// protocol errors; oracle mismatches are *reported*, not errors (the
/// caller decides — `ntp loadgen` exits nonzero on any mismatch).
pub fn run(cfg: &LoadgenConfig, sessions: &[SessionSpec]) -> Result<LoadgenReport, ClientError> {
    // Validate the predictor configuration before opening any socket, so
    // a bad design point is one clean client-side diagnostic.
    let pcfg = PredictorConfig::try_paper(cfg.bits, cfg.depth as usize)
        .map_err(|e| ClientError::Protocol(format!("paper({},{}): {e}", cfg.bits, cfg.depth)))?;
    let start = Instant::now();
    let runs: Vec<Result<SessionRun, ClientError>> =
        ntp_runner::map_ordered_with(cfg.clients.max(1), sessions, |i, spec| {
            run_session(cfg, pcfg, i as u64, spec)
        });
    let wall = start.elapsed();

    let mut report = LoadgenReport {
        sessions: Vec::with_capacity(runs.len()),
        requests: 0,
        records: 0,
        wall,
        latency_us: Histogram::new(),
        busy_retries: 0,
        drain_batched: Vec::new(),
    };
    for run in runs {
        let run = run?;
        report.requests += run.result.requests;
        report.records += run.result.served.predictions;
        report.latency_us.merge(&run.latency_us);
        report.busy_retries += run.busy_retries;
        report.sessions.push(run.result);
    }
    report.drain_batched = scrape_drain_batched(&cfg.addr).unwrap_or_default();
    Ok(report)
}

/// Scrapes the server's per-shard `drain.batched` counters after a
/// replay. Best-effort: a scrape failure (server already draining, say)
/// leaves the report without the numbers rather than failing the run.
fn scrape_drain_batched(addr: &str) -> Option<Vec<u64>> {
    let mut client = Client::connect(addr).ok()?;
    let text = client.metrics_json().ok()?;
    let snap = ntp_telemetry::json::parse(&text).ok()?;
    let mut per_shard = Vec::new();
    while let Some(section) = snap.get(&format!("shard{}", per_shard.len())) {
        per_shard.push(
            section
                .get("counters")
                .and_then(|c| c.get("drain.batched"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
        );
    }
    Some(per_shard)
}

/// Replays one stream as one wire session and scores it.
fn run_session(
    cfg: &LoadgenConfig,
    pcfg: PredictorConfig,
    session: u64,
    spec: &SessionSpec,
) -> Result<SessionRun, ClientError> {
    let mut client = Client::connect(&cfg.addr)?;
    let mut latency = Histogram::new();
    let mut requests = 0u64;
    let mut busy_retries = 0u64;
    let chunk = cfg.chunk.max(1);

    let mut timed = |client: &mut Client,
                     req: &crate::wire::Request|
     -> Result<crate::wire::Response, ClientError> {
        loop {
            let t0 = Instant::now();
            let resp = client.request(req)?;
            latency.record(t0.elapsed().as_micros() as u64);
            requests += 1;
            if matches!(resp, crate::wire::Response::Busy) {
                busy_retries += 1;
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            return Ok(resp);
        }
    };

    let shard = match timed(
        &mut client,
        &crate::wire::Request::Hello {
            session,
            bits: cfg.bits,
            depth: cfg.depth,
        },
    )? {
        crate::wire::Response::HelloOk { shard, .. } => shard,
        crate::wire::Response::Error { code, message } => {
            return Err(ClientError::Server { code, message })
        }
        other => {
            return Err(ClientError::Protocol(format!(
                "expected HelloOk, got {other:?}"
            )))
        }
    };

    let mut served_batches = PredictorStats::new();
    let mut batches = 0u64;
    for records in spec.records.chunks(chunk) {
        batches += 1;
        match timed(
            &mut client,
            &crate::wire::Request::Batch {
                session,
                records: records.to_vec(),
            },
        )? {
            crate::wire::Response::BatchDone {
                predictions,
                correct,
            } => {
                served_batches.predictions += predictions;
                served_batches.correct += correct;
            }
            crate::wire::Response::Error { code, message } => {
                return Err(ClientError::Server { code, message })
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected BatchDone, got {other:?}"
                )))
            }
        }
    }

    let served = match timed(&mut client, &crate::wire::Request::Stats { session })? {
        crate::wire::Response::StatsOk { stats } => stats,
        crate::wire::Response::Error { code, message } => {
            return Err(ClientError::Server { code, message })
        }
        other => {
            return Err(ClientError::Protocol(format!(
                "expected StatsOk, got {other:?}"
            )))
        }
    };

    // Cross-check the per-batch tallies against the final stats frame:
    // they are two independent paths through the server.
    if served.predictions != served_batches.predictions || served.correct != served_batches.correct
    {
        return Err(ClientError::Protocol(format!(
            "batch tallies ({}/{}) disagree with the stats frame ({}/{})",
            served_batches.correct, served_batches.predictions, served.correct, served.predictions
        )));
    }

    // The offline oracle: an identical predictor replaying the identical
    // stream in-process.
    let mut oracle_pred = NextTracePredictor::try_new(pcfg)
        .map_err(|e| ClientError::Protocol(format!("oracle config rejected: {e}")))?;
    let oracle = evaluate(&mut oracle_pred, &spec.records);

    Ok(SessionRun {
        result: SessionResult {
            name: spec.name.clone(),
            session,
            shard,
            served,
            oracle,
            requests,
            batches,
        },
        latency_us: latency,
        busy_retries,
    })
}

// ---------------------------------------------------------------------------
// Open-loop mode
// ---------------------------------------------------------------------------

/// Open-loop generator parameters.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Connections; sessions are pinned `session % conns` so each
    /// session's updates stay ordered on one socket.
    pub conns: usize,
    /// Offered arrival rate, requests per second.
    pub rate: f64,
    /// How long the schedule runs (`rate * duration` arrivals total).
    pub duration: Duration,
    /// Zipf popularity exponent across sessions (0 = uniform; session 0
    /// is the most popular).
    pub zipf: f64,
    /// Seed of the deterministic arrival schedule.
    pub seed: u64,
    /// Correlating-table index bits of every session's predictor.
    pub bits: u32,
    /// DOLC history depth of every session's predictor.
    pub depth: u32,
}

impl Default for OpenLoopConfig {
    fn default() -> OpenLoopConfig {
        OpenLoopConfig {
            addr: crate::config::DEFAULT_ADDR.to_string(),
            conns: 2,
            rate: 5000.0,
            duration: Duration::from_secs(2),
            zipf: 1.0,
            seed: 0x5EED,
            bits: 15,
            depth: 7,
        }
    }
}

/// One session's open-loop outcome.
#[derive(Clone, Debug)]
pub struct OpenSessionResult {
    /// Stream name.
    pub name: String,
    /// Session id on the wire.
    pub session: u64,
    /// Shard that owned the session.
    pub shard: u32,
    /// Updates the schedule sent for this session.
    pub sent: u64,
    /// Updates the server applied (non-`Busy` replies).
    pub applied: u64,
    /// Updates shed as `Busy`.
    pub busy: u64,
    /// Statistics the server accumulated.
    pub served: PredictorStats,
    /// Statistics a lockstep oracle accumulated over the **applied**
    /// subsequence — under overload the oracle replays exactly what the
    /// server accepted, so equality stays exact.
    pub oracle: PredictorStats,
}

impl OpenSessionResult {
    /// True when served and oracle statistics agree exactly.
    pub fn matches(&self) -> bool {
        self.served == self.oracle
    }
}

/// Aggregate open-loop outcome.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Per-session outcomes, in session order.
    pub sessions: Vec<OpenSessionResult>,
    /// Arrivals the schedule offered.
    pub offered: u64,
    /// Updates the server applied.
    pub applied: u64,
    /// Updates shed as `Busy`.
    pub busy: u64,
    /// Sends that left more than 1 ms behind schedule (generator-side
    /// slip: the pacer could not keep the offered rate).
    pub late: u64,
    /// Nominal schedule length (`duration` of the config).
    pub duration: Duration,
    /// Wall-clock time from the first scheduled send to the last reply.
    pub wall: Duration,
    /// FNV-1a-64 over the schedule's session-id sequence: two runs with
    /// the same seed/rate/zipf/duration must report the same digest.
    pub schedule_digest: u64,
    /// Sojourn time per request in microseconds, measured from the
    /// *scheduled* send time to the reply — queueing delay included.
    pub latency_us: Histogram,
}

impl OpenLoopReport {
    /// True when every session matched its oracle exactly.
    pub fn all_match(&self) -> bool {
        self.sessions.iter().all(OpenSessionResult::matches)
    }

    /// The rate the schedule offered, requests per second.
    pub fn offered_qps(&self) -> f64 {
        let s = self.duration.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.offered as f64 / s
        }
    }

    /// The rate the server actually applied, requests per second.
    pub fn achieved_qps(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.applied as f64 / s
        }
    }
}

impl ToJson for OpenLoopReport {
    /// `{sessions: [...], offered, applied, busy, late, offered_qps,
    /// achieved_qps, wall_ms, schedule_digest, latency_us, all_match}` —
    /// `schedule_digest`, `offered`, `busy == offered - applied` and the
    /// per-session sent counts are deterministic for a fixed seed;
    /// latency and rates are wall-clock volatile.
    fn to_json(&self) -> Json {
        Json::object()
            .with(
                "sessions",
                Json::Array(
                    self.sessions
                        .iter()
                        .map(|s| {
                            Json::object()
                                .with("name", Json::Str(s.name.clone()))
                                .with("session", Json::U64(s.session))
                                .with("shard", Json::U64(s.shard as u64))
                                .with("sent", Json::U64(s.sent))
                                .with("applied", Json::U64(s.applied))
                                .with("busy", Json::U64(s.busy))
                                .with("predictions", Json::U64(s.served.predictions))
                                .with("served_correct", Json::U64(s.served.correct))
                                .with("oracle_correct", Json::U64(s.oracle.correct))
                                .with("matches_oracle", Json::Bool(s.matches()))
                        })
                        .collect(),
                ),
            )
            .with("offered", Json::U64(self.offered))
            .with("applied", Json::U64(self.applied))
            .with("busy", Json::U64(self.busy))
            .with("late", Json::U64(self.late))
            .with("offered_qps", Json::F64(self.offered_qps()))
            .with("achieved_qps", Json::F64(self.achieved_qps()))
            .with("wall_ms", Json::F64(self.wall.as_secs_f64() * 1e3))
            .with(
                "schedule_digest",
                Json::Str(format!("{:016x}", self.schedule_digest)),
            )
            .with("latency_us", self.latency_us.to_json())
            .with("all_match", Json::Bool(self.all_match()))
    }
}

/// One scheduled arrival.
struct Arrival {
    offset: Duration,
    session: usize,
}

/// Builds the deterministic arrival schedule: arrival `k` fires at
/// `k / rate` seconds with a session drawn from a Zipf CDF (session 0
/// most popular) via xorshift64. Returns the schedule and its FNV digest.
fn build_schedule(cfg: &OpenLoopConfig, n_sessions: usize) -> (Vec<Arrival>, u64) {
    let total = (cfg.rate * cfg.duration.as_secs_f64()).round().max(0.0) as usize;
    // Zipf CDF over session ranks.
    let weights: Vec<f64> = (0..n_sessions)
        .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf))
        .collect();
    let sum: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(n_sessions);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / sum;
        cdf.push(acc);
    }
    let mut x = if cfg.seed == 0 { 0x9E37_79B9 } else { cfg.seed };
    let mut digest = ntp_hash::Fnv64::new();
    let mut schedule = Vec::with_capacity(total);
    for k in 0..total {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        let session = cdf.partition_point(|&c| c < u).min(n_sessions - 1);
        digest.update(&(session as u64).to_le_bytes());
        schedule.push(Arrival {
            offset: Duration::from_secs_f64(k as f64 / cfg.rate),
            session,
        });
    }
    (schedule, digest.finish())
}

/// What one reader thread expects next on its connection: replies come
/// back in send order per connection, so a queue of
/// `(session, record, scheduled offset)` is a complete decoder.
struct Expected {
    session: usize,
    record: TraceRecord,
    offset: Duration,
}

/// Per-session lockstep state a reader thread maintains.
struct OpenOracle {
    predictor: NextTracePredictor,
    stats: PredictorStats,
    applied: u64,
    busy: u64,
}

/// What one reader thread hands back.
struct ReaderOutcome {
    oracles: Vec<(usize, OpenOracle)>,
    latency_us: Histogram,
    last_reply: Option<Instant>,
}

/// Drives the server open-loop: a fixed-rate, Zipf-popularity schedule
/// of single-record `Update` frames over `cfg.conns` pipelined
/// connections, no retries. Every reply is scored in lockstep — an
/// `Updated` must match the oracle's prediction for the *applied*
/// subsequence, a `Busy` is shed load — and each session's final served
/// statistics must equal the oracle's exactly.
///
/// Sessions beyond a stream's length wrap around (`sent % len`), so any
/// offered count is serviceable from finite capture data.
pub fn run_open_loop(
    cfg: &OpenLoopConfig,
    sessions: &[SessionSpec],
) -> Result<OpenLoopReport, ClientError> {
    let pcfg = PredictorConfig::try_paper(cfg.bits, cfg.depth as usize)
        .map_err(|e| ClientError::Protocol(format!("paper({},{}): {e}", cfg.bits, cfg.depth)))?;
    if sessions.is_empty() {
        return Err(ClientError::Protocol("open-loop needs sessions".into()));
    }
    if let Some(empty) = sessions.iter().find(|s| s.records.is_empty()) {
        return Err(ClientError::Protocol(format!(
            "open-loop stream {:?} has no records",
            empty.name
        )));
    }
    if cfg.rate <= 0.0 || !cfg.rate.is_finite() {
        return Err(ClientError::Protocol("open-loop rate must be > 0".into()));
    }
    let conns = cfg.conns.clamp(1, sessions.len());
    let (schedule, schedule_digest) = build_schedule(cfg, sessions.len());

    // Connect and open every session up front (below the storm: one
    // lockstep Hello at a time, short busy retry).
    let mut streams: Vec<TcpStream> = Vec::with_capacity(conns);
    for _ in 0..conns {
        let s = TcpStream::connect(&cfg.addr)?;
        s.set_nodelay(true)?;
        s.set_read_timeout(Some(Duration::from_secs(30)))?;
        s.set_write_timeout(Some(Duration::from_secs(30)))?;
        streams.push(s);
    }
    let mut shards = vec![0u32; sessions.len()];
    let mut scratch = Vec::with_capacity(256);
    for (i, _) in sessions.iter().enumerate() {
        let stream = &mut streams[i % conns];
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            wire::frame_request(
                &mut scratch,
                &Request::Hello {
                    session: i as u64,
                    bits: cfg.bits,
                    depth: cfg.depth,
                },
            );
            stream.write_all(&scratch)?;
            match read_response(stream)? {
                Response::HelloOk { shard, .. } => {
                    shards[i] = shard;
                    break;
                }
                Response::Busy if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2))
                }
                Response::Busy => {
                    return Err(ClientError::Busy {
                        elapsed: Duration::from_secs(5),
                    })
                }
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected HelloOk, got {other:?}"
                    )))
                }
            }
        }
    }

    // One reader thread per connection, fed the expected-reply queue in
    // send order. Readers own the lockstep oracles of their pinned
    // sessions (a session lives on exactly one connection, so per-
    // session reply order is total).
    let t0 = Instant::now() + Duration::from_millis(20);
    let mut expect_txs = Vec::with_capacity(conns);
    let mut readers = Vec::with_capacity(conns);
    for (c, stream) in streams.iter().enumerate() {
        let (tx, rx) = mpsc::channel::<Expected>();
        expect_txs.push(tx);
        let read_half = stream.try_clone()?;
        let mut oracles: Vec<(usize, OpenOracle)> = Vec::new();
        for (i, _) in sessions.iter().enumerate() {
            if i % conns == c {
                oracles.push((
                    i,
                    OpenOracle {
                        predictor: NextTracePredictor::try_new(pcfg).map_err(|e| {
                            ClientError::Protocol(format!("oracle config rejected: {e}"))
                        })?,
                        stats: PredictorStats::new(),
                        applied: 0,
                        busy: 0,
                    },
                ));
            }
        }
        readers.push(std::thread::spawn(move || {
            read_replies(read_half, rx, oracles, t0)
        }));
    }

    // The pacer: walk the schedule on the calling thread, sleeping up to
    // each arrival's offset, and write the frame whether or not earlier
    // replies are back (that is the open loop). A send that slips more
    // than 1 ms behind schedule counts as `late`.
    let mut sent_per_session = vec![0u64; sessions.len()];
    let mut late = 0u64;
    for a in &schedule {
        let target = t0 + a.offset;
        let now = Instant::now();
        if let Some(wait) = target.checked_duration_since(now) {
            std::thread::sleep(wait);
        } else if now.duration_since(target) > Duration::from_millis(1) {
            late += 1;
        }
        let k = sent_per_session[a.session];
        sent_per_session[a.session] += 1;
        let records = &sessions[a.session].records;
        let record = records[(k % records.len() as u64) as usize];
        // Expected entry first: the reader must know what this reply is
        // before it can possibly arrive.
        let _ = expect_txs[a.session % conns].send(Expected {
            session: a.session,
            record,
            offset: a.offset,
        });
        wire::frame_request(
            &mut scratch,
            &Request::Update {
                session: a.session as u64,
                record,
            },
        );
        streams[a.session % conns].write_all(&scratch)?;
    }
    drop(expect_txs); // Readers exit after the last expected reply.

    let mut outcome: Vec<Option<(usize, OpenOracle)>> = Vec::new();
    let mut latency_us = Histogram::new();
    let mut last_reply: Option<Instant> = None;
    for reader in readers {
        let out = reader
            .join()
            .map_err(|_| ClientError::Protocol("reader thread panicked".into()))??;
        latency_us.merge(&out.latency_us);
        last_reply = match (last_reply, out.last_reply) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        outcome.extend(out.oracles.into_iter().map(Some));
    }
    let wall = last_reply.map_or_else(|| t0.elapsed(), |t| t.duration_since(t0));

    // Final cross-check: the server's per-session statistics must equal
    // the lockstep oracle's (patient client — the storm is over).
    let mut client = Client::connect(&cfg.addr)?;
    let mut results: Vec<OpenSessionResult> = Vec::with_capacity(sessions.len());
    let mut by_session: Vec<Option<OpenOracle>> = (0..sessions.len()).map(|_| None).collect();
    for slot in outcome.into_iter().flatten() {
        by_session[slot.0] = Some(slot.1);
    }
    for (i, spec) in sessions.iter().enumerate() {
        let oracle = by_session[i].take().expect("every session has an oracle");
        let served = client.stats(i as u64)?;
        results.push(OpenSessionResult {
            name: spec.name.clone(),
            session: i as u64,
            shard: shards[i],
            sent: sent_per_session[i],
            applied: oracle.applied,
            busy: oracle.busy,
            served,
            oracle: oracle.stats,
        });
    }

    Ok(OpenLoopReport {
        offered: schedule.len() as u64,
        applied: results.iter().map(|s| s.applied).sum(),
        busy: results.iter().map(|s| s.busy).sum(),
        late,
        duration: cfg.duration,
        wall,
        schedule_digest,
        latency_us,
        sessions: results,
    })
}

/// Reads one frame and decodes it as a [`Response`].
fn read_response(stream: &mut TcpStream) -> Result<Response, ClientError> {
    match wire::read_frame(stream, crate::client::CLIENT_MAX_FRAME) {
        Ok(body) => wire::decode_response(&body).map_err(ClientError::Protocol),
        Err(wire::WireError::Io(e)) => Err(ClientError::Io(e)),
        Err(e) => Err(ClientError::Protocol(e.to_string())),
    }
}

/// Reader-thread body: one reply per expected entry, in order. An
/// `Updated` is scored against (then applied to) the session's oracle;
/// a `Busy` is shed load the oracle skips — which is exactly why the
/// oracle stays byte-exact under overload: it replays the applied
/// subsequence, nothing else.
fn read_replies(
    mut stream: TcpStream,
    rx: mpsc::Receiver<Expected>,
    mut oracles: Vec<(usize, OpenOracle)>,
    t0: Instant,
) -> Result<ReaderOutcome, ClientError> {
    let mut latency_us = Histogram::new();
    let mut last_reply = None;
    while let Ok(expected) = rx.recv() {
        let resp = read_response(&mut stream)?;
        let now = Instant::now();
        last_reply = Some(now);
        let slot = oracles
            .iter_mut()
            .find(|(s, _)| *s == expected.session)
            .expect("session pinned to this connection");
        match resp {
            Response::Updated { correct } => {
                let sojourn = now.duration_since(t0).saturating_sub(expected.offset);
                latency_us.record(sojourn.as_micros() as u64);
                let oracle = &mut slot.1;
                let pred = oracle.predictor.predict();
                let want = pred.is_correct(expected.record.id());
                if correct != want {
                    return Err(ClientError::Protocol(format!(
                        "session {}: served correct={correct}, oracle={want}",
                        expected.session
                    )));
                }
                oracle.stats.score(&pred, &expected.record);
                oracle.predictor.update(&expected.record);
                oracle.applied += 1;
            }
            Response::Busy => slot.1.busy += 1,
            Response::Error { code, message } => return Err(ClientError::Server { code, message }),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Updated or Busy, got {other:?}"
                )))
            }
        }
    }
    Ok(ReaderOutcome {
        oracles,
        latency_us,
        last_reply,
    })
}
