//! A blocking client for the `ntp-serve` wire protocol.

use crate::wire::{self, ErrorCode, Request, Response, WireError};
use ntp_core::{PredictorStats, Source, Target};
use ntp_trace::TraceRecord;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Default client-side frame limit (matches the server default).
pub const CLIENT_MAX_FRAME: u32 = crate::config::DEFAULT_MAX_FRAME;

/// How a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, EOF mid-reply).
    Io(std::io::Error),
    /// The server's reply violated the protocol.
    Protocol(String),
    /// The server refused the request with a typed error.
    Server {
        /// Refusal class from the wire.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The shard queue stayed full through every retry, or the retries
    /// ran past the total wall-clock budget ([`Client::busy_deadline`]).
    Busy {
        /// How long the client kept retrying before giving up.
        elapsed: Duration,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::Busy { elapsed } => write!(
                f,
                "server busy: shard queue stayed full through {elapsed:?} of retries"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking connection to an `ntp-serve` server.
///
/// One request is in flight at a time (the protocol is strictly
/// request/reply per connection). Methods that hit backpressure
/// ([`Response::Busy`]) retry with a short linear backoff, giving up
/// with [`ClientError::Busy`] after [`Client::busy_retries`] attempts
/// *or* once [`Client::busy_deadline`] of wall-clock time has passed —
/// whichever comes first, so a slow server cannot stretch a bounded
/// retry count into an unbounded wait.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
    /// Reusable frame buffer: each request is encoded and framed in
    /// place, then written with a single syscall — no per-request
    /// allocation, no separate header/body/checksum writes.
    scratch: Vec<u8>,
    /// Busy retries before giving up.
    pub busy_retries: u32,
    /// Pause between busy retries.
    pub busy_backoff: Duration,
    /// Total wall-clock budget across all busy retries of one request.
    pub busy_deadline: Duration,
}

impl Client {
    /// Connects with default timeouts (5s connect, 30s read/write).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame: CLIENT_MAX_FRAME,
            scratch: Vec::with_capacity(256),
            busy_retries: 200,
            busy_backoff: Duration::from_millis(2),
            busy_deadline: Duration::from_secs(5),
        })
    }

    /// Sends one request and reads one reply (no busy retry).
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        wire::frame_request(&mut self.scratch, req);
        self.stream.write_all(&self.scratch)?;
        self.stream.flush()?;
        match wire::read_frame(&mut self.stream, self.max_frame) {
            Ok(body) => wire::decode_response(&body).map_err(ClientError::Protocol),
            Err(WireError::Io(e)) => Err(ClientError::Io(e)),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// [`Client::request`] with busy retries; returns the first
    /// non-`Busy` reply. Gives up after [`Client::busy_retries`]
    /// attempts or [`Client::busy_deadline`] of elapsed time.
    fn request_patient(&mut self, req: &Request) -> Result<Response, ClientError> {
        let started = Instant::now();
        for attempt in 0..=self.busy_retries {
            match self.request(req)? {
                Response::Busy => {
                    // Stop before a sleep that would overrun the budget;
                    // the per-request transport time counts too, so a
                    // server answering `Busy` slowly still hits the cap.
                    if attempt == self.busy_retries
                        || started.elapsed() + self.busy_backoff > self.busy_deadline
                    {
                        break;
                    }
                    std::thread::sleep(self.busy_backoff);
                }
                resp => return Ok(resp),
            }
        }
        Err(ClientError::Busy {
            elapsed: started.elapsed(),
        })
    }

    /// Opens session `session` with a `paper(bits, depth)` predictor;
    /// returns the owning shard.
    pub fn hello(&mut self, session: u64, bits: u32, depth: u32) -> Result<u32, ClientError> {
        match self.request_patient(&Request::Hello {
            session,
            bits,
            depth,
        })? {
            Response::HelloOk { shard, .. } => Ok(shard),
            resp => Err(unexpected("HelloOk", resp)),
        }
    }

    /// Reads the session's current prediction without training.
    pub fn predict(&mut self, session: u64) -> Result<(Option<Target>, Source), ClientError> {
        match self.request_patient(&Request::Predict { session })? {
            Response::Predicted { target, source } => Ok((target, source)),
            resp => Err(unexpected("Predicted", resp)),
        }
    }

    /// One replay step; returns whether the pre-update prediction was
    /// correct.
    pub fn update(&mut self, session: u64, record: &TraceRecord) -> Result<bool, ClientError> {
        match self.request_patient(&Request::Update {
            session,
            record: *record,
        })? {
            Response::Updated { correct } => Ok(correct),
            resp => Err(unexpected("Updated", resp)),
        }
    }

    /// Applies a whole chunk; returns `(predictions, correct)`.
    pub fn batch(
        &mut self,
        session: u64,
        records: &[TraceRecord],
    ) -> Result<(u64, u64), ClientError> {
        match self.request_patient(&Request::Batch {
            session,
            records: records.to_vec(),
        })? {
            Response::BatchDone {
                predictions,
                correct,
            } => Ok((predictions, correct)),
            resp => Err(unexpected("BatchDone", resp)),
        }
    }

    /// Reads the session's accumulated statistics.
    pub fn stats(&mut self, session: u64) -> Result<PredictorStats, ClientError> {
        match self.request_patient(&Request::Stats { session })? {
            Response::StatsOk { stats } => Ok(stats),
            resp => Err(unexpected("StatsOk", resp)),
        }
    }

    /// Reads the server's merged runtime-metrics snapshot as rendered
    /// JSON text (sections per shard plus `server`/`total`; see
    /// OBSERVABILITY.md "Live serving metrics" for the schema).
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            resp => Err(unexpected("Metrics", resp)),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            resp => Err(unexpected("Bye", resp)),
        }
    }
}

fn unexpected(wanted: &str, resp: Response) -> ClientError {
    match resp {
        Response::Error { code, message } => ClientError::Server { code, message },
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}
