//! A blocking client for the `ntp-serve` wire protocol.

use crate::wire::{self, ErrorCode, Request, Response, WireError};
use ntp_core::{PredictorStats, Source, Target};
use ntp_trace::TraceRecord;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Default client-side frame limit (matches the server default).
pub const CLIENT_MAX_FRAME: u32 = crate::config::DEFAULT_MAX_FRAME;

/// Environment knob: connect/read/write deadline in seconds (fractions
/// allowed) for every [`Client::connect`]. Unset means the defaults
/// (5s connect, 30s read/write); an unparsable or non-positive value is
/// refused at connect time rather than silently ignored.
pub const CLIENT_TIMEOUT_ENV: &str = "NTP_CLIENT_TIMEOUT";

/// Default connect timeout.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Default read/write timeout.
pub const DEFAULT_RW_TIMEOUT: Duration = Duration::from_secs(30);

/// How a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, EOF mid-reply).
    Io(std::io::Error),
    /// The deadline ([`CLIENT_TIMEOUT_ENV`] or
    /// [`Client::connect_with_timeout`]) expired while connecting or
    /// waiting for a reply.
    Timeout {
        /// How long the call had been underway when it expired.
        elapsed: Duration,
    },
    /// The server's reply violated the protocol.
    Protocol(String),
    /// The server refused the request with a typed error.
    Server {
        /// Refusal class from the wire.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The shard queue stayed full through every retry, or the retries
    /// ran past the total wall-clock budget ([`Client::busy_deadline`]).
    Busy {
        /// How long the client kept retrying before giving up.
        elapsed: Duration,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Timeout { elapsed } => {
                write!(f, "timed out after {elapsed:?}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::Busy { elapsed } => write!(
                f,
                "server busy: shard queue stayed full through {elapsed:?} of retries"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// True for the error kinds a socket timeout surfaces as (Unix reports
/// `WouldBlock`, Windows `TimedOut`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads and validates the [`CLIENT_TIMEOUT_ENV`] knob. `Ok(None)` when
/// unset or empty.
pub fn client_timeout_from_env() -> Result<Option<Duration>, String> {
    match std::env::var(CLIENT_TIMEOUT_ENV) {
        Ok(v) if v.is_empty() => Ok(None),
        Ok(v) => match v.parse::<f64>() {
            Ok(secs) if secs > 0.0 && secs.is_finite() => Ok(Some(Duration::from_secs_f64(secs))),
            _ => Err(format!(
                "{CLIENT_TIMEOUT_ENV}={v:?} is not a positive number of seconds"
            )),
        },
        Err(_) => Ok(None),
    }
}

/// A blocking connection to an `ntp-serve` server.
///
/// One request is in flight at a time (the protocol is strictly
/// request/reply per connection). Methods that hit backpressure
/// ([`Response::Busy`]) retry with a short linear backoff, giving up
/// with [`ClientError::Busy`] after [`Client::busy_retries`] attempts
/// *or* once [`Client::busy_deadline`] of wall-clock time has passed —
/// whichever comes first, so a slow server cannot stretch a bounded
/// retry count into an unbounded wait.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
    /// Reusable frame buffer: each request is encoded and framed in
    /// place, then written with a single syscall — no per-request
    /// allocation, no separate header/body/checksum writes.
    scratch: Vec<u8>,
    /// Busy retries before giving up.
    pub busy_retries: u32,
    /// Pause between busy retries.
    pub busy_backoff: Duration,
    /// Total wall-clock budget across all busy retries of one request.
    pub busy_deadline: Duration,
}

impl Client {
    /// Connects with the default deadlines (5s connect, 30s
    /// read/write), or — when `NTP_CLIENT_TIMEOUT` is set — that many
    /// seconds for connect *and* read/write. A bad knob value is a hard
    /// error, never silently ignored.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        match client_timeout_from_env().map_err(ClientError::Protocol)? {
            Some(t) => Client::connect_with_timeout(addr, t, t),
            None => Client::connect_with_timeout(addr, DEFAULT_CONNECT_TIMEOUT, DEFAULT_RW_TIMEOUT),
        }
    }

    /// Connects with explicit deadlines: `connect` bounds the TCP
    /// handshake (tried against each resolved address in turn),
    /// `read_write` bounds every subsequent socket read and write. A
    /// router's backend probes use sub-second deadlines here so one
    /// dead backend cannot stall the probe loop.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        connect: Duration,
        read_write: Duration,
    ) -> Result<Client, ClientError> {
        let started = Instant::now();
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last: Option<std::io::Error> = None;
        let mut stream = None;
        for a in &addrs {
            match TcpStream::connect_timeout(a, connect) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let stream = match (stream, last) {
            (Some(s), _) => s,
            (None, Some(e)) if is_timeout(&e) => {
                return Err(ClientError::Timeout {
                    elapsed: started.elapsed(),
                })
            }
            (None, Some(e)) => return Err(ClientError::Io(e)),
            (None, None) => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to nothing",
                )))
            }
        };
        stream.set_read_timeout(Some(read_write))?;
        stream.set_write_timeout(Some(read_write))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame: CLIENT_MAX_FRAME,
            scratch: Vec::with_capacity(256),
            busy_retries: 200,
            busy_backoff: Duration::from_millis(2),
            busy_deadline: Duration::from_secs(5),
        })
    }

    /// Raises the client-side frame limit (e.g. for `Migrate` replies
    /// carrying large session snapshots). Clamped to the protocol's
    /// hard cap.
    pub fn set_max_frame(&mut self, max_frame: u32) {
        self.max_frame = max_frame.clamp(wire::MIN_FRAME_CAP, wire::HARD_FRAME_CAP);
    }

    /// Sends one request and reads one reply (no busy retry).
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let started = Instant::now();
        wire::frame_request(&mut self.scratch, req);
        let io = self
            .stream
            .write_all(&self.scratch)
            .and_then(|()| self.stream.flush());
        if let Err(e) = io {
            return Err(if is_timeout(&e) {
                ClientError::Timeout {
                    elapsed: started.elapsed(),
                }
            } else {
                ClientError::Io(e)
            });
        }
        match wire::read_frame(&mut self.stream, self.max_frame) {
            Ok(body) => wire::decode_response(&body).map_err(ClientError::Protocol),
            Err(WireError::Io(e)) if is_timeout(&e) => Err(ClientError::Timeout {
                elapsed: started.elapsed(),
            }),
            Err(WireError::Io(e)) => Err(ClientError::Io(e)),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// [`Client::request`] with busy retries; returns the first
    /// non-`Busy` reply. Gives up after [`Client::busy_retries`]
    /// attempts or [`Client::busy_deadline`] of elapsed time.
    fn request_patient(&mut self, req: &Request) -> Result<Response, ClientError> {
        let started = Instant::now();
        for attempt in 0..=self.busy_retries {
            match self.request(req)? {
                Response::Busy => {
                    // Stop before a sleep that would overrun the budget;
                    // the per-request transport time counts too, so a
                    // server answering `Busy` slowly still hits the cap.
                    if attempt == self.busy_retries
                        || started.elapsed() + self.busy_backoff > self.busy_deadline
                    {
                        break;
                    }
                    std::thread::sleep(self.busy_backoff);
                }
                resp => return Ok(resp),
            }
        }
        Err(ClientError::Busy {
            elapsed: started.elapsed(),
        })
    }

    /// Opens session `session` with a `paper(bits, depth)` predictor;
    /// returns the owning shard.
    pub fn hello(&mut self, session: u64, bits: u32, depth: u32) -> Result<u32, ClientError> {
        match self.request_patient(&Request::Hello {
            session,
            bits,
            depth,
        })? {
            Response::HelloOk { shard, .. } => Ok(shard),
            resp => Err(unexpected("HelloOk", resp)),
        }
    }

    /// Reads the session's current prediction without training.
    pub fn predict(&mut self, session: u64) -> Result<(Option<Target>, Source), ClientError> {
        match self.request_patient(&Request::Predict { session })? {
            Response::Predicted { target, source } => Ok((target, source)),
            resp => Err(unexpected("Predicted", resp)),
        }
    }

    /// One replay step; returns whether the pre-update prediction was
    /// correct.
    pub fn update(&mut self, session: u64, record: &TraceRecord) -> Result<bool, ClientError> {
        match self.request_patient(&Request::Update {
            session,
            record: *record,
        })? {
            Response::Updated { correct } => Ok(correct),
            resp => Err(unexpected("Updated", resp)),
        }
    }

    /// Applies a whole chunk; returns `(predictions, correct)`.
    pub fn batch(
        &mut self,
        session: u64,
        records: &[TraceRecord],
    ) -> Result<(u64, u64), ClientError> {
        match self.request_patient(&Request::Batch {
            session,
            records: records.to_vec(),
        })? {
            Response::BatchDone {
                predictions,
                correct,
            } => Ok((predictions, correct)),
            resp => Err(unexpected("BatchDone", resp)),
        }
    }

    /// Reads the session's accumulated statistics.
    pub fn stats(&mut self, session: u64) -> Result<PredictorStats, ClientError> {
        match self.request_patient(&Request::Stats { session })? {
            Response::StatsOk { stats } => Ok(stats),
            resp => Err(unexpected("StatsOk", resp)),
        }
    }

    /// Extracts session `session` from the server for migration: the
    /// server serializes it as a checksummed single-session snapshot,
    /// removes it, and returns the payload bytes
    /// (`ntp_tracefile::decode_session_wire` decodes them).
    pub fn migrate_out(&mut self, session: u64) -> Result<Vec<u8>, ClientError> {
        match self.request_patient(&Request::Migrate {
            session,
            snapshot: None,
        })? {
            Response::MigrateOk {
                snapshot: Some(bytes),
                ..
            } => Ok(bytes),
            resp => Err(unexpected("MigrateOk(with payload)", resp)),
        }
    }

    /// Installs an extracted session snapshot into this server; the
    /// session must not already exist here.
    pub fn migrate_in(&mut self, session: u64, snapshot: Vec<u8>) -> Result<(), ClientError> {
        match self.request_patient(&Request::Migrate {
            session,
            snapshot: Some(snapshot),
        })? {
            Response::MigrateOk { snapshot: None, .. } => Ok(()),
            resp => Err(unexpected("MigrateOk", resp)),
        }
    }

    /// Reads the server's merged runtime-metrics snapshot as rendered
    /// JSON text (sections per shard plus `server`/`total`; see
    /// OBSERVABILITY.md "Live serving metrics" for the schema).
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            resp => Err(unexpected("Metrics", resp)),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            resp => Err(unexpected("Bye", resp)),
        }
    }
}

fn unexpected(wanted: &str, resp: Response) -> ClientError {
    match resp {
        Response::Error { code, message } => ClientError::Server { code, message },
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}
