//! Prediction results and the predictor trait shared by the bounded,
//! unbounded and baseline trace predictors.

use ntp_trace::{HashedId, TraceId, TraceRecord};

/// Which component produced a prediction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// The path-correlating table (tag hit).
    Correlated,
    /// The secondary (last-trace-indexed) table.
    Secondary,
    /// No table had anything useful (cold start); counted as a
    /// misprediction.
    Cold,
}

/// A predicted next-trace target: either a full identifier or, for the
/// cost-reduced predictor, only its hashed form.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// Full 36-bit trace identifier.
    Full(TraceId),
    /// 16-bit hashed identifier (§5.5). The trace cache holds the full
    /// identifier and validates it during fetch.
    Hashed(HashedId),
}

impl Target {
    /// Whether this prediction names `actual`.
    ///
    /// A hashed target matches when the hashes agree — the cost-reduced
    /// predictor's intrinsic (and, per the paper, insignificant) ambiguity.
    pub fn matches(&self, actual: TraceId) -> bool {
        match self {
            Target::Full(id) => id.packed() == actual.packed(),
            Target::Hashed(h) => *h == actual.hashed(),
        }
    }
}

/// The output of one prediction: a primary target, an optional alternate
/// (§6), and the component that supplied the primary.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted next trace (`None` on a cold start).
    pub target: Option<Target>,
    /// The second-choice trace from the correlating entry, if alternate
    /// prediction is enabled and available.
    pub alternate: Option<Target>,
    /// Who produced `target`.
    pub source: Source,
}

impl Prediction {
    /// A cold (no-information) prediction.
    pub fn cold() -> Prediction {
        Prediction {
            target: None,
            alternate: None,
            source: Source::Cold,
        }
    }

    /// True if the primary prediction names `actual`.
    pub fn is_correct(&self, actual: TraceId) -> bool {
        self.target.map(|t| t.matches(actual)).unwrap_or(false)
    }

    /// True if the alternate names `actual`.
    pub fn alternate_correct(&self, actual: TraceId) -> bool {
        self.alternate.map(|t| t.matches(actual)).unwrap_or(false)
    }
}

/// Anything that predicts the next trace and learns from the actual one.
///
/// The contract is strictly alternating in immediate-update mode:
/// [`TracePredictor::predict`] (pure with respect to tables and history),
/// then [`TracePredictor::update`] with the trace that actually executed.
pub trait TracePredictor {
    /// Predicts the next trace given the current path history.
    fn predict(&self) -> Prediction;

    /// Consumes the actual next trace: trains the tables and advances the
    /// path history (including return-history-stack actions).
    fn update(&mut self, actual: &TraceRecord);

    /// Forgets all state (tables and history).
    fn reset(&mut self);

    /// Current path-history occupancy, for telemetry. Predictors without a
    /// path history (baselines) keep the default of 0.
    fn history_len(&self) -> usize {
        0
    }
}
