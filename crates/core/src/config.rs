//! Configuration of the bounded path-based next trace predictor.

use crate::{CounterSpec, Dolc, RhsConfig};

/// What the correlating/secondary tables store as the predicted target.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StoredTarget {
    /// The full 36-bit trace identifier (the baseline design, 48-bit
    /// entries).
    Full,
    /// Only the 16-bit hashed identifier — the cost-reduced predictor of
    /// §5.5. The trace cache validates the full identifier, so accuracy is
    /// essentially unchanged while the entry shrinks.
    Hashed,
}

/// Full configuration of a [`crate::NextTracePredictor`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PredictorConfig {
    /// log2 of the correlating-table entry count (the paper studies 12, 15
    /// and 18).
    pub index_bits: u32,
    /// Index-generation configuration.
    pub dolc: Dolc,
    /// Tag width; the paper finds 10 bits eliminate practically all
    /// unintended cross-path hits.
    pub tag_bits: u32,
    /// Correlating-table counter policy (+1/−2 two-bit by default).
    pub primary_counter: CounterSpec,
    /// log2 of the secondary-table entry count (indexed by the hashed
    /// identifier of the most recent trace).
    pub secondary_index_bits: u32,
    /// Secondary-table counter policy (4-bit, heavy decrement).
    pub secondary_counter: CounterSpec,
    /// Return history stack, if enabled.
    pub rhs: Option<RhsConfig>,
    /// Maintain and report an alternate (second-choice) prediction (§6).
    pub alternate: bool,
    /// Entry format (§5.5 cost reduction).
    pub stored_target: StoredTarget,
}

impl PredictorConfig {
    /// The paper's configuration for a given table size and history depth:
    /// standard DOLC, 10-bit tags, a 2^14-entry secondary table, RHS on,
    /// alternate prediction off, full identifiers stored.
    ///
    /// # Panics
    ///
    /// Panics if there is no standard DOLC for `(depth, index_bits)` —
    /// see [`Dolc::standard`].
    pub fn paper(index_bits: u32, depth: usize) -> PredictorConfig {
        PredictorConfig {
            index_bits,
            dolc: Dolc::standard(depth, index_bits),
            tag_bits: 10,
            primary_counter: CounterSpec::PRIMARY,
            secondary_index_bits: 14,
            secondary_counter: CounterSpec::SECONDARY,
            rhs: Some(RhsConfig::default()),
            alternate: false,
            stored_target: StoredTarget::Full,
        }
    }

    /// Same as [`PredictorConfig::paper`] with alternate prediction enabled
    /// (Figure 8).
    pub fn paper_with_alternate(index_bits: u32, depth: usize) -> PredictorConfig {
        PredictorConfig {
            alternate: true,
            ..PredictorConfig::paper(index_bits, depth)
        }
    }

    /// History register capacity needed by this configuration.
    pub fn history_capacity(&self) -> usize {
        self.dolc.depth + 1
    }

    /// Correlating-table entry count.
    pub fn corr_entries(&self) -> usize {
        1usize << self.index_bits
    }

    /// Secondary-table entry count.
    pub fn secondary_entries(&self) -> usize {
        1usize << self.secondary_index_bits
    }

    /// Bits per correlating-table entry (§5.5's cost accounting): target +
    /// counter + tag (+ alternate target if enabled).
    pub fn corr_entry_bits(&self) -> u64 {
        let target = match self.stored_target {
            StoredTarget::Full => 36,
            StoredTarget::Hashed => 16,
        };
        let alt = if self.alternate { target } else { 0 };
        target + alt + self.primary_counter.bits as u64 + self.tag_bits as u64
    }

    /// Total correlating-table size in bits.
    pub fn corr_table_bits(&self) -> u64 {
        self.corr_entry_bits() * self.corr_entries() as u64
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized tables, tags wider than 16 bits, or invalid
    /// counters.
    pub fn validate(&self) {
        assert!((1..=30).contains(&self.index_bits));
        assert!((1..=20).contains(&self.secondary_index_bits));
        assert!(self.tag_bits <= 16, "tags come from 16-bit hashed ids");
        self.primary_counter.validate();
        self.secondary_counter.validate();
        self.dolc.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let c = PredictorConfig::paper(15, 7);
        c.validate();
        assert_eq!(c.corr_entries(), 1 << 15);
        assert_eq!(c.history_capacity(), 8);
        assert_eq!(c.corr_entry_bits(), 48); // 36 + 2 + 10, the paper's number
    }

    #[test]
    fn cost_reduced_entry_is_smaller() {
        let mut c = PredictorConfig::paper(15, 7);
        c.stored_target = StoredTarget::Hashed;
        assert_eq!(c.corr_entry_bits(), 28); // 16 + 2 + 10
        assert!(c.corr_table_bits() < PredictorConfig::paper(15, 7).corr_table_bits());
    }

    #[test]
    fn alternate_doubles_target_storage() {
        let c = PredictorConfig::paper_with_alternate(12, 3);
        assert_eq!(c.corr_entry_bits(), 36 + 36 + 2 + 10);
    }
}
