//! Configuration of the bounded path-based next trace predictor.

use crate::error::in_range;
use crate::{ConfigError, CounterSpec, Dolc, RhsConfig};

/// What the correlating/secondary tables store as the predicted target.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StoredTarget {
    /// The full 36-bit trace identifier (the baseline design, 48-bit
    /// entries).
    Full,
    /// Only the 16-bit hashed identifier — the cost-reduced predictor of
    /// §5.5. The trace cache validates the full identifier, so accuracy is
    /// essentially unchanged while the entry shrinks.
    Hashed,
}

/// Full configuration of a [`crate::NextTracePredictor`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PredictorConfig {
    /// log2 of the correlating-table entry count (the paper studies 12, 15
    /// and 18).
    pub index_bits: u32,
    /// Index-generation configuration.
    pub dolc: Dolc,
    /// Tag width; the paper finds 10 bits eliminate practically all
    /// unintended cross-path hits.
    pub tag_bits: u32,
    /// Correlating-table counter policy (+1/−2 two-bit by default).
    pub primary_counter: CounterSpec,
    /// log2 of the secondary-table entry count (indexed by the hashed
    /// identifier of the most recent trace).
    pub secondary_index_bits: u32,
    /// Secondary-table counter policy (4-bit, heavy decrement).
    pub secondary_counter: CounterSpec,
    /// Return history stack, if enabled.
    pub rhs: Option<RhsConfig>,
    /// Maintain and report an alternate (second-choice) prediction (§6).
    pub alternate: bool,
    /// Entry format (§5.5 cost reduction).
    pub stored_target: StoredTarget,
}

impl PredictorConfig {
    /// The paper's configuration for a given table size and history depth:
    /// standard DOLC, 10-bit tags, a 2^14-entry secondary table, RHS on,
    /// alternate prediction off, full identifiers stored.
    ///
    /// # Panics
    ///
    /// Panics if there is no standard DOLC for `(depth, index_bits)` —
    /// see [`Dolc::standard`].
    pub fn paper(index_bits: u32, depth: usize) -> PredictorConfig {
        match PredictorConfig::try_paper(index_bits, depth) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`PredictorConfig::paper`] returning an error instead of panicking,
    /// for front ends handed the design point by a user.
    pub fn try_paper(index_bits: u32, depth: usize) -> Result<PredictorConfig, ConfigError> {
        let cfg = PredictorConfig {
            index_bits,
            dolc: Dolc::try_standard(depth, index_bits)?,
            tag_bits: 10,
            primary_counter: CounterSpec::PRIMARY,
            secondary_index_bits: 14,
            secondary_counter: CounterSpec::SECONDARY,
            rhs: Some(RhsConfig::default()),
            alternate: false,
            stored_target: StoredTarget::Full,
        };
        cfg.try_validate()?;
        Ok(cfg)
    }

    /// Same as [`PredictorConfig::paper`] with alternate prediction enabled
    /// (Figure 8).
    pub fn paper_with_alternate(index_bits: u32, depth: usize) -> PredictorConfig {
        PredictorConfig {
            alternate: true,
            ..PredictorConfig::paper(index_bits, depth)
        }
    }

    /// History register capacity needed by this configuration.
    pub fn history_capacity(&self) -> usize {
        self.dolc.depth + 1
    }

    /// Correlating-table entry count.
    pub fn corr_entries(&self) -> usize {
        1usize << self.index_bits
    }

    /// Secondary-table entry count.
    pub fn secondary_entries(&self) -> usize {
        1usize << self.secondary_index_bits
    }

    /// Bits per correlating-table entry (§5.5's cost accounting): target +
    /// counter + tag (+ alternate target if enabled).
    pub fn corr_entry_bits(&self) -> u64 {
        let target = match self.stored_target {
            StoredTarget::Full => 36,
            StoredTarget::Hashed => 16,
        };
        let alt = if self.alternate { target } else { 0 };
        target + alt + self.primary_counter.bits as u64 + self.tag_bits as u64
    }

    /// Total correlating-table size in bits.
    pub fn corr_table_bits(&self) -> u64 {
        self.corr_entry_bits() * self.corr_entries() as u64
    }

    /// Validates the configuration without panicking: table sizes, tag
    /// width, counter policies and DOLC consistency (see
    /// [`Dolc::try_validate`]).
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        in_range("predictor.index_bits", self.index_bits as u64, 1, 30)?;
        in_range(
            "predictor.secondary_index_bits",
            self.secondary_index_bits as u64,
            1,
            20,
        )?;
        in_range("predictor.tag_bits", self.tag_bits as u64, 0, 16)?;
        self.primary_counter.try_validate()?;
        self.secondary_counter.try_validate()?;
        self.dolc.try_validate()?;
        if let Some(rhs) = &self.rhs {
            in_range("predictor.rhs.max_depth", rhs.max_depth as u64, 1, 1 << 20)?;
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized tables, tags wider than 16 bits, invalid
    /// counters, or an inconsistent DOLC — see
    /// [`PredictorConfig::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid predictor config: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let c = PredictorConfig::paper(15, 7);
        c.validate();
        assert_eq!(c.corr_entries(), 1 << 15);
        assert_eq!(c.history_capacity(), 8);
        assert_eq!(c.corr_entry_bits(), 48); // 36 + 2 + 10, the paper's number
    }

    #[test]
    fn cost_reduced_entry_is_smaller() {
        let mut c = PredictorConfig::paper(15, 7);
        c.stored_target = StoredTarget::Hashed;
        assert_eq!(c.corr_entry_bits(), 28); // 16 + 2 + 10
        assert!(c.corr_table_bits() < PredictorConfig::paper(15, 7).corr_table_bits());
    }

    #[test]
    fn alternate_doubles_target_storage() {
        let c = PredictorConfig::paper_with_alternate(12, 3);
        assert_eq!(c.corr_entry_bits(), 36 + 36 + 2 + 10);
    }

    #[test]
    fn try_paper_rejects_unknown_design_points_cleanly() {
        use crate::ConfigError;
        assert!(matches!(
            PredictorConfig::try_paper(13, 3),
            Err(ConfigError::NoStandardDolc { .. })
        ));
        assert!(matches!(
            PredictorConfig::try_paper(15, 9),
            Err(ConfigError::NoStandardDolc { .. })
        ));
        assert_eq!(
            PredictorConfig::try_paper(15, 3).unwrap(),
            PredictorConfig::paper(15, 3)
        );
    }

    #[test]
    fn try_validate_names_hostile_fields() {
        use crate::ConfigError;
        let mut c = PredictorConfig::paper(15, 3);
        c.index_bits = 0;
        assert!(matches!(
            c.try_validate(),
            Err(ConfigError::OutOfRange {
                field: "predictor.index_bits",
                value: 0,
                ..
            })
        ));
        let mut c = PredictorConfig::paper(15, 3);
        c.tag_bits = 17;
        assert!(matches!(
            c.try_validate(),
            Err(ConfigError::OutOfRange {
                field: "predictor.tag_bits",
                value: 17,
                ..
            })
        ));
        let mut c = PredictorConfig::paper(15, 3);
        c.dolc.older = 9; // depth-3 DOLC with a legal-but-different width is fine...
        assert!(c.try_validate().is_ok());
        c.dolc = Dolc {
            depth: 0,
            older: 4,
            last: 0,
            current: 12,
        }; // ...but phantom history bits are not.
        assert!(matches!(
            c.try_validate(),
            Err(ConfigError::UnusedHistoryBits { .. })
        ));
    }
}
