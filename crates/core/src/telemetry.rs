//! Telemetry integration: JSON serialization for every stats struct in the
//! crate, plus an instrumented replay driver emitting
//! [`PredictionEvent`]s and a misprediction-streak histogram.
//!
//! Everything here is strictly off the prediction hot path except
//! [`evaluate_with_sink`], which checks [`EventSink::enabled`] once per
//! prediction (a branch on a bool) and constructs events only when a real
//! sink is attached — keeping the ≤5 % telemetry-overhead budget.

use crate::{
    AliasingCounters, ConfidenceStats, NextTracePredictor, PredictorConfig, PredictorStats, Source,
    StoredTarget, TableOccupancy, TracePredictor,
};
use ntp_telemetry::{EventSink, EventSource, Histogram, Json, PredictionEvent, ToJson};
use ntp_trace::TraceRecord;

impl ToJson for PredictorStats {
    /// Raw counters plus the derived percentages the paper reports.
    fn to_json(&self) -> Json {
        Json::object()
            .with("predictions", Json::U64(self.predictions))
            .with("correct", Json::U64(self.correct))
            .with("alternate_correct", Json::U64(self.alternate_correct))
            .with("from_correlated", Json::U64(self.from_correlated))
            .with("from_secondary", Json::U64(self.from_secondary))
            .with("cold", Json::U64(self.cold))
            .with("correlated_correct", Json::U64(self.correlated_correct))
            .with("secondary_correct", Json::U64(self.secondary_correct))
            .with("mispredict_pct", Json::F64(self.mispredict_pct()))
            .with("both_mispredict_pct", Json::F64(self.both_mispredict_pct()))
            .with(
                "alternate_rescue_fraction",
                Json::F64(self.alternate_rescue_fraction()),
            )
    }
}

impl ToJson for PredictorConfig {
    /// The knobs that identify a configuration, plus derived costs
    /// (entry/table bits, §5.5 accounting).
    fn to_json(&self) -> Json {
        Json::object()
            .with("index_bits", Json::U64(self.index_bits as u64))
            .with("depth", Json::U64(self.dolc.depth as u64))
            .with(
                "dolc",
                Json::object()
                    .with("depth", Json::U64(self.dolc.depth as u64))
                    .with("older", Json::U64(self.dolc.older as u64))
                    .with("last", Json::U64(self.dolc.last as u64))
                    .with("current", Json::U64(self.dolc.current as u64)),
            )
            .with("tag_bits", Json::U64(self.tag_bits as u64))
            .with(
                "secondary_index_bits",
                Json::U64(self.secondary_index_bits as u64),
            )
            .with("rhs", Json::Bool(self.rhs.is_some()))
            .with("alternate", Json::Bool(self.alternate))
            .with(
                "stored_target",
                Json::Str(
                    match self.stored_target {
                        StoredTarget::Full => "full",
                        StoredTarget::Hashed => "hashed",
                    }
                    .to_string(),
                ),
            )
            .with("corr_entry_bits", Json::U64(self.corr_entry_bits()))
            .with("corr_table_bits", Json::U64(self.corr_table_bits()))
    }
}

impl ToJson for AliasingCounters {
    fn to_json(&self) -> Json {
        Json::object()
            .with("steals", Json::U64(self.steals))
            .with("cold_fills", Json::U64(self.cold_fills))
            .with("sec_fills", Json::U64(self.sec_fills))
    }
}

impl ToJson for TableOccupancy {
    /// Counts plus fill fractions for both tables.
    fn to_json(&self) -> Json {
        Json::object()
            .with("corr_valid", Json::U64(self.corr_valid))
            .with("corr_capacity", Json::U64(self.corr_capacity))
            .with("corr_fraction", Json::F64(self.corr_fraction()))
            .with("sec_valid", Json::U64(self.sec_valid))
            .with("sec_capacity", Json::U64(self.sec_capacity))
            .with("sec_fraction", Json::F64(self.sec_fraction()))
    }
}

impl ToJson for ConfidenceStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("high_correct", Json::U64(self.high_correct))
            .with("high_wrong", Json::U64(self.high_wrong))
            .with("low_correct", Json::U64(self.low_correct))
            .with("low_wrong", Json::U64(self.low_wrong))
            .with("coverage", Json::F64(self.coverage()))
            .with("high_mispredict_pct", Json::F64(self.high_mispredict_pct()))
            .with("low_mispredict_pct", Json::F64(self.low_mispredict_pct()))
            .with(
                "mispredictions_caught",
                Json::F64(self.mispredictions_caught()),
            )
            .with("prediction", self.prediction.to_json())
    }
}

/// Full predictor-side telemetry captured at end of run: accuracy, table
/// pressure and occupancy in one bundle.
pub fn predictor_section(p: &NextTracePredictor, stats: &PredictorStats) -> Json {
    Json::object()
        .with("config", p.config().to_json())
        .with("stats", stats.to_json())
        .with("aliasing", p.aliasing().to_json())
        .with("occupancy", p.occupancy().to_json())
}

fn event_source(s: Source) -> EventSource {
    match s {
        Source::Correlated => EventSource::Correlated,
        Source::Secondary => EventSource::Secondary,
        Source::Cold => EventSource::Cold,
    }
}

/// [`crate::evaluate`] with instrumentation riding along: each prediction is
/// offered to `sink` as a [`PredictionEvent`] (skipped entirely when the
/// sink reports itself disabled), and runs of consecutive primary
/// mispredictions are recorded into the returned streak [`Histogram`].
///
/// # Examples
///
/// ```
/// use ntp_core::{evaluate_with_sink, NextTracePredictor, PredictorConfig};
/// use ntp_telemetry::{NullSink, TraceLog};
/// use ntp_trace::{TraceId, TraceRecord};
///
/// let records: Vec<TraceRecord> = (0..200)
///     .map(|k| TraceRecord::new(TraceId::new(0x0040_0000 + (k % 5) * 64, 0, 0), 16, 0, false, false))
///     .collect();
///
/// // Free mode: the null sink skips event construction entirely.
/// let mut p = NextTracePredictor::new(PredictorConfig::paper(12, 3));
/// let (stats, streaks) = evaluate_with_sink(&mut p, &records, &mut NullSink);
/// assert_eq!(stats.predictions, 200);
/// assert_eq!(streaks.count(), streaks.count()); // cold-start streak recorded
///
/// // Forensics mode: a TraceLog keeps sampled events.
/// let mut log = TraceLog::new(64, 1);
/// let mut p = NextTracePredictor::new(PredictorConfig::paper(12, 3));
/// let _ = evaluate_with_sink(&mut p, &records, &mut log);
/// assert_eq!(log.offered(), 200);
/// ```
pub fn evaluate_with_sink<P: TracePredictor + ?Sized, S: EventSink + ?Sized>(
    predictor: &mut P,
    records: &[TraceRecord],
    sink: &mut S,
) -> (PredictorStats, Histogram) {
    let mut stats = PredictorStats::new();
    let mut streaks = Histogram::new();
    let mut streak: u64 = 0;
    let emit = sink.enabled();
    for (i, r) in records.iter().enumerate() {
        let pred = predictor.predict();
        let hit = pred.is_correct(r.id());
        if emit {
            sink.record(&PredictionEvent {
                index: i as u64,
                source: event_source(pred.source),
                hit,
                alternate_hit: !hit && pred.alternate_correct(r.id()),
                history_len: predictor.history_len().min(u8::MAX as usize) as u8,
            });
        }
        if hit {
            if streak > 0 {
                streaks.record(streak);
                streak = 0;
            }
        } else {
            streak += 1;
        }
        stats.score(&pred, r);
        predictor.update(r);
    }
    if streak > 0 {
        streaks.record(streak);
    }
    (stats, streaks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use ntp_telemetry::{NullSink, TraceLog};
    use ntp_trace::TraceId;

    fn rec(pc: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 8, 0, false, false)
    }

    fn cycle(n: u32, len: usize) -> Vec<TraceRecord> {
        (0..len)
            .map(|k| rec(0x0040_0000 + (k as u32 % n) * 0x40))
            .collect()
    }

    fn small() -> NextTracePredictor {
        NextTracePredictor::new(PredictorConfig {
            secondary_index_bits: 8,
            ..PredictorConfig::paper(12, 3)
        })
    }

    #[test]
    fn sink_matches_plain_evaluate() {
        let records = cycle(4, 400);
        let plain = evaluate(&mut small(), &records);
        let (with_sink, _) = evaluate_with_sink(&mut small(), &records, &mut NullSink);
        assert_eq!(plain, with_sink, "instrumentation must not change scoring");
    }

    #[test]
    fn streak_histogram_totals_mispredictions() {
        let records = cycle(4, 400);
        let (stats, streaks) = evaluate_with_sink(&mut small(), &records, &mut NullSink);
        let missed = stats.predictions - stats.correct;
        assert_eq!(streaks.sum(), missed, "streak lengths sum to total misses");
        assert!(
            streaks.count() >= 1,
            "cold start yields at least one streak"
        );
    }

    #[test]
    fn trace_log_captures_events_with_history_depth() {
        let records = cycle(3, 60);
        let mut log = TraceLog::new(128, 1);
        let _ = evaluate_with_sink(&mut small(), &records, &mut log);
        assert_eq!(log.offered(), 60);
        let deep = log.iter().filter(|e| e.history_len > 0).count();
        assert!(deep > 0, "history occupancy reaches the events");
        assert!(log.iter().any(|e| e.hit), "a 3-cycle is learned");
    }

    #[test]
    fn predictor_section_bundles_everything() {
        let records = cycle(4, 100);
        let mut p = small();
        let stats = evaluate(&mut p, &records);
        let j = predictor_section(&p, &stats);
        for key in ["config", "stats", "aliasing", "occupancy"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            j.get("stats").and_then(|s| s.get("predictions")),
            Some(&Json::U64(100))
        );
        assert!(
            j.get("occupancy")
                .and_then(|o| o.get("corr_valid"))
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        // The whole bundle survives a render/parse round trip.
        let parsed = ntp_telemetry::json::parse(&j.pretty()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn config_json_names_the_design_point() {
        let j = PredictorConfig::paper(15, 7).to_json();
        assert_eq!(j.get("index_bits"), Some(&Json::U64(15)));
        assert_eq!(j.get("depth"), Some(&Json::U64(7)));
        assert_eq!(j.get("rhs"), Some(&Json::Bool(true)));
        assert_eq!(j.get("corr_entry_bits"), Some(&Json::U64(48)));
    }
}
