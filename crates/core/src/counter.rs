//! Saturating confidence counters with configurable increment/decrement
//! policies.
//!
//! The paper found that an increment-by-1 / decrement-by-2 two-bit counter
//! slightly outperforms the conventional two-bit counter for the correlating
//! table, and uses a larger 4-bit counter with a heavy decrement in the
//! secondary table so that only strongly-biased traces suppress correlated
//! updates.

use std::fmt;

/// The shape of a saturating counter: bit width and the amounts it moves on
/// correct/incorrect predictions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CounterSpec {
    /// Counter width in bits (1–8).
    pub bits: u8,
    /// Added on a correct prediction (saturating at the maximum).
    pub inc: u8,
    /// Subtracted on an incorrect prediction (saturating at zero).
    pub dec: u8,
}

impl CounterSpec {
    /// The paper's correlating-table counter: 2 bits, +1 / −2.
    pub const PRIMARY: CounterSpec = CounterSpec {
        bits: 2,
        inc: 1,
        dec: 2,
    };

    /// The paper's secondary-table counter: 4 bits, +1, heavy decrement.
    /// (The OCR of the paper drops the decrement amount; 8 is our
    /// reconstruction and is swept in the ablation bench.)
    pub const SECONDARY: CounterSpec = CounterSpec {
        bits: 4,
        inc: 1,
        dec: 8,
    };

    /// A conventional two-bit counter (+1 / −1), for ablations.
    pub const TWO_BIT: CounterSpec = CounterSpec {
        bits: 2,
        inc: 1,
        dec: 1,
    };

    /// A one-bit counter, for ablations.
    pub const ONE_BIT: CounterSpec = CounterSpec {
        bits: 1,
        inc: 1,
        dec: 1,
    };

    /// The saturation maximum for this width.
    pub fn max(self) -> u8 {
        ((1u16 << self.bits) - 1) as u8
    }

    /// Validates the spec without panicking: the width must be 1–8 bits and
    /// both steps nonzero (a counter that cannot move encodes nothing).
    pub fn try_validate(self) -> Result<(), crate::ConfigError> {
        crate::error::in_range("counter.bits", self.bits as u64, 1, 8)?;
        if self.inc == 0 {
            return Err(crate::ConfigError::ZeroCounterStep { field: "inc" });
        }
        if self.dec == 0 {
            return Err(crate::ConfigError::ZeroCounterStep { field: "dec" });
        }
        Ok(())
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if [`CounterSpec::try_validate`] rejects the spec.
    pub fn validate(self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid counter spec {self}: {e}");
        }
    }
}

impl fmt::Display for CounterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b +{} -{}", self.bits, self.inc, self.dec)
    }
}

/// A saturating counter value; the policy lives in a [`CounterSpec`] so that
/// tables of millions of entries store one byte each.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct Counter(u8);

// The predictor's counter arrays (`Vec<Counter>`) rely on this staying a
// bare byte: a widened counter silently doubles the hot arrays' footprint.
const _: () = assert!(std::mem::size_of::<Counter>() == 1);

impl Counter {
    /// A counter at zero (no confidence).
    pub const fn new() -> Counter {
        Counter(0)
    }

    /// Current value.
    #[inline]
    pub fn value(self) -> u8 {
        self.0
    }

    /// Rebuilds a counter from a raw stored value (state restore). The
    /// caller is responsible for range-checking the value against its
    /// [`CounterSpec::max`] — the predictor's
    /// [`restore_state`](crate::NextTracePredictor::restore_state) does.
    #[inline]
    pub const fn from_value(value: u8) -> Counter {
        Counter(value)
    }

    /// True if at the saturation maximum for `spec`.
    #[inline]
    pub fn is_saturated(self, spec: CounterSpec) -> bool {
        self.0 >= spec.max()
    }

    /// Registers a correct prediction.
    #[inline]
    pub fn on_correct(&mut self, spec: CounterSpec) {
        self.0 = self.0.saturating_add(spec.inc).min(spec.max());
    }

    /// Registers an incorrect prediction. Returns `true` if the counter was
    /// at zero, meaning the owning entry should replace its stored target
    /// (the counter then stays at zero).
    #[inline]
    pub fn on_incorrect(&mut self, spec: CounterSpec) -> bool {
        if self.0 == 0 {
            true
        } else {
            self.0 = self.0.saturating_sub(spec.dec);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_policy_walk() {
        let spec = CounterSpec::PRIMARY;
        let mut c = Counter::new();
        assert!(c.on_incorrect(spec), "zero counter requests replacement");
        c.on_correct(spec);
        assert_eq!(c.value(), 1);
        c.on_correct(spec);
        c.on_correct(spec);
        assert_eq!(c.value(), 3, "saturates at 3");
        assert!(c.is_saturated(spec));
        assert!(!c.on_incorrect(spec));
        assert_eq!(c.value(), 1, "decrement by 2");
        assert!(!c.on_incorrect(spec));
        assert_eq!(c.value(), 0, "saturating subtract");
        assert!(c.on_incorrect(spec));
    }

    #[test]
    fn secondary_counter_needs_many_hits_to_saturate() {
        let spec = CounterSpec::SECONDARY;
        let mut c = Counter::new();
        for _ in 0..14 {
            c.on_correct(spec);
            assert!(!c.is_saturated(spec));
        }
        c.on_correct(spec);
        assert!(c.is_saturated(spec));
        // One miss drops confidence by 8.
        assert!(!c.on_incorrect(spec));
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn one_bit_flips() {
        let spec = CounterSpec::ONE_BIT;
        let mut c = Counter::new();
        c.on_correct(spec);
        assert!(c.is_saturated(spec));
        assert!(!c.on_incorrect(spec));
        assert!(c.on_incorrect(spec));
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        CounterSpec {
            bits: 0,
            inc: 1,
            dec: 1,
        }
        .validate();
    }

    #[test]
    fn try_validate_names_the_fault() {
        use crate::ConfigError;
        let wide = CounterSpec {
            bits: 9,
            inc: 1,
            dec: 1,
        };
        assert!(matches!(
            wide.try_validate(),
            Err(ConfigError::OutOfRange {
                field: "counter.bits",
                value: 9,
                ..
            })
        ));
        let stuck = CounterSpec {
            bits: 2,
            inc: 0,
            dec: 1,
        };
        assert_eq!(
            stuck.try_validate(),
            Err(ConfigError::ZeroCounterStep { field: "inc" })
        );
        let frozen = CounterSpec {
            bits: 2,
            inc: 1,
            dec: 0,
        };
        assert_eq!(
            frozen.try_validate(),
            Err(ConfigError::ZeroCounterStep { field: "dec" })
        );
        assert!(CounterSpec::PRIMARY.try_validate().is_ok());
        assert!(CounterSpec::SECONDARY.try_validate().is_ok());
    }
}
