//! The unbounded-table ("no aliasing") predictor of §5.2 / Figure 6.
//!
//! Every unique sequence of full trace identifiers maps to its own entry, so
//! there is no aliasing and no need for tags; what remains is cold-start
//! behaviour, which the hybrid configuration and the return history stack
//! address. This model bounds the accuracy attainable by any finite
//! correlating table of the same depth.

use crate::{
    Counter, CounterSpec, PathHistory, Prediction, ReturnHistoryStack, RhsConfig, Source, Target,
    TracePredictor,
};
use ntp_hash::FxBuild;
use ntp_trace::{TraceId, TraceRecord};
use std::collections::HashMap;

/// Configuration of an [`UnboundedPredictor`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct UnboundedConfig {
    /// Traces used besides the most recent one (0–7 in the paper's study).
    pub depth: usize,
    /// Run the secondary (last-trace-only) predictor alongside and select as
    /// in the bounded hybrid.
    pub hybrid: bool,
    /// Return history stack, if enabled.
    pub rhs: Option<RhsConfig>,
    /// Correlating counter policy.
    pub primary_counter: CounterSpec,
    /// Secondary counter policy.
    pub secondary_counter: CounterSpec,
    /// Maintain alternate predictions.
    pub alternate: bool,
}

impl UnboundedConfig {
    /// The paper's Figure 6 configuration at a given depth: hybrid + RHS.
    pub fn paper(depth: usize) -> UnboundedConfig {
        UnboundedConfig {
            depth,
            hybrid: true,
            rhs: Some(RhsConfig::default()),
            primary_counter: CounterSpec::PRIMARY,
            secondary_counter: CounterSpec::SECONDARY,
            alternate: false,
        }
    }

    /// Correlated-only variant (Figure 6's "correlated" series).
    pub fn correlated_only(depth: usize) -> UnboundedConfig {
        UnboundedConfig {
            hybrid: false,
            rhs: None,
            ..UnboundedConfig::paper(depth)
        }
    }

    /// Hybrid without the return history stack (Figure 6's middle series).
    pub fn hybrid_no_rhs(depth: usize) -> UnboundedConfig {
        UnboundedConfig {
            rhs: None,
            ..UnboundedConfig::paper(depth)
        }
    }

    /// Validates the configuration without panicking: the study covers
    /// depths 0–7, and both counter policies must be well formed.
    pub fn try_validate(&self) -> Result<(), crate::ConfigError> {
        crate::error::in_range("unbounded.depth", self.depth as u64, 0, 7)?;
        self.primary_counter.try_validate()?;
        self.secondary_counter.try_validate()?;
        if let Some(rhs) = &self.rhs {
            crate::error::in_range("unbounded.rhs.max_depth", rhs.max_depth as u64, 1, 1 << 20)?;
        }
        Ok(())
    }
}

/// A path of up to 8 full trace identifiers, newest first, zero-padded.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct PathKey {
    ids: [u64; 8],
    len: u8,
}

#[derive(Copy, Clone, Debug)]
struct Entry {
    target: u64,
    alt: u64,
    has_alt: bool,
    ctr: Counter,
}

/// The unbounded path-based next trace predictor.
///
/// # Examples
///
/// ```
/// use ntp_core::{TracePredictor, UnboundedConfig, UnboundedPredictor};
/// let p = UnboundedPredictor::new(UnboundedConfig::paper(3));
/// assert!(p.predict().target.is_none());
/// ```
pub struct UnboundedPredictor {
    cfg: UnboundedConfig,
    history: PathHistory<u64>,
    rhs: Option<ReturnHistoryStack<u64>>,
    // Keyed maps are in-memory only and never iterated in an
    // order-sensitive way, so the cheap word-wise hasher is safe here: a
    // `PathKey` costs nine word folds instead of a SipHash pass over 72
    // bytes, and this model hashes twice per retired trace.
    corr: HashMap<PathKey, Entry, FxBuild>,
    sec: HashMap<u64, Entry, FxBuild>,
}

impl UnboundedPredictor {
    /// Builds an unbounded predictor.
    ///
    /// # Panics
    ///
    /// Panics if `depth > 7` or a counter policy is invalid.
    pub fn new(cfg: UnboundedConfig) -> UnboundedPredictor {
        match UnboundedPredictor::try_new(cfg) {
            Ok(p) => p,
            Err(e) => panic!("invalid unbounded config: {e}"),
        }
    }

    /// Builds an unbounded predictor, rejecting invalid configurations with
    /// a typed error instead of panicking.
    pub fn try_new(cfg: UnboundedConfig) -> Result<UnboundedPredictor, crate::ConfigError> {
        cfg.try_validate()?;
        Ok(UnboundedPredictor {
            history: PathHistory::new(cfg.depth + 1),
            rhs: cfg.rhs.map(ReturnHistoryStack::new),
            corr: HashMap::default(),
            sec: HashMap::default(),
            cfg,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &UnboundedConfig {
        &self.cfg
    }

    /// Distinct path contexts learned so far (table "size").
    pub fn corr_entries(&self) -> usize {
        self.corr.len()
    }

    /// Distinct last-trace contexts in the secondary table.
    pub fn sec_entries(&self) -> usize {
        self.sec.len()
    }

    fn key(&self) -> PathKey {
        let mut ids = [0u64; 8];
        let mut len = 0u8;
        for (k, id) in self.history.iter_newest_first().enumerate() {
            ids[k] = *id;
            len += 1;
        }
        PathKey { ids, len }
    }

    fn target_of(key: u64) -> Target {
        Target::Full(TraceId::from_packed(key))
    }
}

impl TracePredictor for UnboundedPredictor {
    fn predict(&self) -> Prediction {
        let corr = self.corr.get(&self.key());
        let sec = self
            .cfg
            .hybrid
            .then(|| self.history.newest().and_then(|last| self.sec.get(&last)))
            .flatten();

        let alternate = match corr {
            Some(e) if self.cfg.alternate && e.has_alt => Some(Self::target_of(e.alt)),
            _ => None,
        };

        let sec_wins = sec
            .map(|e| e.ctr.is_saturated(self.cfg.secondary_counter))
            .unwrap_or(false);

        if let (Some(e), false) = (corr, sec_wins) {
            return Prediction {
                target: Some(Self::target_of(e.target)),
                alternate,
                source: Source::Correlated,
            };
        }
        if let Some(e) = sec {
            return Prediction {
                target: Some(Self::target_of(e.target)),
                alternate,
                source: Source::Secondary,
            };
        }
        if let Some(e) = corr {
            return Prediction {
                target: Some(Self::target_of(e.target)),
                alternate,
                source: Source::Correlated,
            };
        }
        Prediction {
            alternate,
            ..Prediction::cold()
        }
    }

    fn update(&mut self, actual: &TraceRecord) {
        use std::collections::hash_map::Entry as Slot;
        let key = actual.id().packed();
        let prim = self.cfg.primary_counter;
        let sec_spec = self.cfg.secondary_counter;

        // A freshly claimed entry is installed at counter zero *without*
        // crediting the installing update — the same semantics as the
        // bounded predictor's cold fill, so the two models stay in lockstep
        // on alias-free streams (the `ntp-verify` differential oracle
        // replays both and compares every prediction). The previous
        // `or_insert`-then-train shape silently gave fresh entries a head
        // start of one `on_correct`.
        let mut suppress = false;
        if self.cfg.hybrid {
            if let Some(last) = self.history.newest() {
                match self.sec.entry(last) {
                    Slot::Vacant(v) => {
                        v.insert(Entry {
                            target: key,
                            alt: 0,
                            has_alt: false,
                            ctr: Counter::new(),
                        });
                    }
                    Slot::Occupied(mut o) => {
                        let e = o.get_mut();
                        suppress = e.ctr.is_saturated(sec_spec) && e.target == key;
                        if e.target == key {
                            e.ctr.on_correct(sec_spec);
                        } else if e.ctr.on_incorrect(sec_spec) {
                            e.target = key;
                        }
                    }
                }
            }
        }

        if !suppress {
            let alternate = self.cfg.alternate;
            let path = self.key();
            match self.corr.entry(path) {
                Slot::Vacant(v) => {
                    v.insert(Entry {
                        target: key,
                        alt: 0,
                        has_alt: false,
                        ctr: Counter::new(),
                    });
                }
                Slot::Occupied(mut o) => {
                    let e = o.get_mut();
                    if e.target == key {
                        e.ctr.on_correct(prim);
                    } else if e.ctr.on_incorrect(prim) {
                        if alternate {
                            e.alt = e.target;
                            e.has_alt = true;
                        }
                        e.target = key;
                    } else if alternate {
                        e.alt = key;
                        e.has_alt = true;
                    }
                }
            }
        }

        self.history.push(key);
        if let Some(rhs) = &mut self.rhs {
            rhs.on_trace(
                &mut self.history,
                actual.call_count(),
                actual.ends_in_return(),
            );
        }
    }

    fn reset(&mut self) {
        self.history.clear();
        if let Some(rhs) = &mut self.rhs {
            rhs.clear();
        }
        self.corr.clear();
        self.sec.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_trace::TraceId;

    fn rec(pc: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 8, 0, false, false)
    }

    #[test]
    fn perfect_on_deterministic_cycle_after_warmup() {
        let mut p = UnboundedPredictor::new(UnboundedConfig::paper(3));
        let seq: Vec<_> = (0..5).map(|k| rec(0x0040_0000 + k * 0x40)).collect();
        for _ in 0..3 {
            for r in &seq {
                p.update(r);
            }
        }
        let mut wrong = 0;
        for _ in 0..2 {
            for r in &seq {
                if !p.predict().is_correct(r.id()) {
                    wrong += 1;
                }
                p.update(r);
            }
        }
        assert_eq!(wrong, 0);
    }

    #[test]
    fn depth_disambiguates_shared_suffix() {
        // Two contexts: X A → B and Y A → C. Depth 0 cannot separate them;
        // depth 1 can.
        let x = rec(0x0040_0000);
        let y = rec(0x0040_0040);
        let a = rec(0x0040_0080);
        let b = rec(0x0040_00C0);
        let c = rec(0x0040_0100);

        let run = |depth: usize| -> u32 {
            let mut p = UnboundedPredictor::new(UnboundedConfig {
                hybrid: false,
                rhs: None,
                ..UnboundedConfig::paper(depth)
            });
            let mut wrong = 0;
            for _ in 0..20 {
                for (ctx, succ) in [(x, b), (y, c)] {
                    p.update(&ctx);
                    p.update(&a);
                    if !p.predict().is_correct(succ.id()) {
                        wrong += 1;
                    }
                    p.update(&succ);
                }
            }
            wrong
        };
        let d0 = run(0);
        let d1 = run(1);
        assert!(d0 > 10, "depth 0 keeps mispredicting: {d0}");
        assert!(d1 <= 4, "depth 1 learns both contexts: {d1}");
    }

    #[test]
    fn hybrid_warms_up_faster_than_correlated_alone() {
        // A fresh deep context each round, but a stable last-trace
        // successor: the secondary nails it, pure correlation cannot.
        let mk = |hybrid: bool| {
            UnboundedPredictor::new(UnboundedConfig {
                hybrid,
                rhs: None,
                ..UnboundedConfig::paper(4)
            })
        };
        let a = rec(0x0040_0080);
        let b = rec(0x0040_00C0);
        let run = |mut p: UnboundedPredictor| -> u32 {
            let mut wrong = 0;
            for k in 0..50 {
                p.update(&rec(0x0041_0000 + k * 0x40)); // unique context trace
                p.update(&a);
                if !p.predict().is_correct(b.id()) {
                    wrong += 1;
                }
                p.update(&b);
            }
            wrong
        };
        let hybrid_wrong = run(mk(true));
        let corr_wrong = run(mk(false));
        assert!(
            hybrid_wrong < corr_wrong,
            "hybrid {hybrid_wrong} vs correlated {corr_wrong}"
        );
    }

    #[test]
    fn entries_grow_with_unique_paths() {
        let mut p = UnboundedPredictor::new(UnboundedConfig::paper(2));
        for k in 0..10 {
            p.update(&rec(0x0040_0000 + k * 0x40));
        }
        assert!(p.corr_entries() > 5);
        assert!(p.sec_entries() > 5);
        p.reset();
        assert_eq!(p.corr_entries(), 0);
    }
}
