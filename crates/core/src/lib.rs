//! # ntp-core — path-based next trace prediction
//!
//! This crate implements the contribution of *Path-Based Next Trace
//! Prediction* (Jacobson, Rotenberg & Smith, MICRO-30, 1997): a predictor
//! that treats traces as the unit of prediction and explicitly predicts
//! sequences of traces from a *path history* of hashed trace identifiers.
//!
//! Components, in paper order:
//!
//! * [`PathHistory`] — the shift register of hashed trace IDs (§3.2),
//!   updated speculatively with checkpoint/restore support;
//! * [`Dolc`] — the Depth/Older/Last/Current index-generation scheme with
//!   XOR folding (§3.2, Table 3);
//! * [`NextTracePredictor`] — the bounded hybrid predictor: tagged
//!   correlating table + secondary table (§3.3), optional
//!   [`ReturnHistoryStack`] (§3.4), alternate prediction (§6), and the
//!   cost-reduced hashed-target entry format (§5.5);
//! * [`UnboundedPredictor`] — the no-aliasing model of §5.2 (Figure 6);
//! * [`evaluate`]/[`PredictorStats`] — the immediate-update replay
//!   methodology of §4.1;
//! * [`evaluate_batch`]/[`predict_batch`]/[`update_batch`] — gathered
//!   sweeps over many independent sessions (bit-identical to the scalar
//!   loop, overlapping the table gathers).
//!
//! # Example
//!
//! ```
//! use ntp_core::{evaluate, NextTracePredictor, PredictorConfig};
//! use ntp_trace::{TraceId, TraceRecord};
//!
//! // A repeating 3-trace cycle is learned almost immediately.
//! let cycle: Vec<TraceRecord> = (0..300)
//!     .map(|k| {
//!         let pc = 0x0040_0000 + (k % 3) * 0x80;
//!         TraceRecord::new(TraceId::new(pc, 0b01, 2), 12, 0, false, false)
//!     })
//!     .collect();
//! let mut predictor = NextTracePredictor::new(PredictorConfig::paper(15, 7));
//! let stats = evaluate(&mut predictor, &cycle);
//! assert!(stats.mispredict_pct() < 5.0);
//! ```

#![warn(missing_docs)]

mod batch;
mod confidence;
mod config;
mod counter;
mod dolc;
mod error;
mod history;
mod prediction;
mod predictor;
mod rhs;
mod stats;
mod telemetry;
mod unbounded;

pub use batch::{
    evaluate_batch, evaluate_batch_fresh, evaluate_serial, predict_batch, update_batch, BatchLane,
};
pub use confidence::{
    evaluate_with_confidence, ConfidenceConfig, ConfidenceEstimator, ConfidenceStats,
};
pub use config::{PredictorConfig, StoredTarget};
pub use counter::{Counter, CounterSpec};
pub use dolc::Dolc;
pub use error::ConfigError;
pub use history::PathHistory;
pub use prediction::{Prediction, Source, Target, TracePredictor};
pub use predictor::{
    AliasingCounters, Checkpoint, IndexSnapshot, NextTracePredictor, PredictorState, StateError,
    TableOccupancy,
};
pub use rhs::{ReturnHistoryStack, RhsConfig, RHS_SNAPSHOT_CAP};
pub use stats::{evaluate, PredictorStats, PREDICTOR_STATS_FIELDS};
pub use telemetry::{evaluate_with_sink, predictor_section};
pub use unbounded::{UnboundedConfig, UnboundedPredictor};
