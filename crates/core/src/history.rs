//! The path history register: a shift register of recent trace identifiers.

/// A bounded shift register of the most recent trace identifiers, newest
/// first.
///
/// Bounded predictors store 16-bit hashed identifiers
/// ([`ntp_trace::HashedId`]); the unbounded ("no aliasing") model stores full
/// packed identifiers (`u64`). The register is generic over the element so
/// both share the return-history-stack machinery.
///
/// Storage is a flat `Vec` kept newest-first (index 0 = newest): registers
/// are at most a few dozen elements, so a push is one small `memmove`, and
/// — unlike a ring buffer — every reader ([`Dolc::index`](crate::Dolc)'s
/// gather above all, which runs once per retired trace) sees a contiguous
/// slice with no wraparound arithmetic.
///
/// # Examples
///
/// ```
/// use ntp_core::PathHistory;
/// let mut h: PathHistory<u16> = PathHistory::new(3);
/// h.push(1);
/// h.push(2);
/// h.push(3);
/// h.push(4);
/// assert_eq!(h.iter_newest_first().copied().collect::<Vec<_>>(), vec![4, 3, 2]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathHistory<T> {
    /// Newest-first; `entries.len() <= cap` always.
    entries: Vec<T>,
    cap: usize,
}

impl<T: Copy> PathHistory<T> {
    /// Creates an empty history holding at most `cap` identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> PathHistory<T> {
        assert!(cap > 0, "history capacity must be nonzero");
        PathHistory {
            entries: Vec::with_capacity(cap),
            cap,
        }
    }

    /// The maximum number of identifiers retained.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Identifiers currently held (≤ capacity; fewer during warm-up).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no identifier has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shifts in the newest identifier, evicting the oldest if full.
    #[inline]
    pub fn push(&mut self, id: T) {
        if self.entries.len() == self.cap {
            // Steady state: shift everything down one slot (the oldest
            // falls off the end) and write the newcomer at the front.
            self.entries.copy_within(..self.cap - 1, 1);
            self.entries[0] = id;
        } else {
            // Warm-up: capacity was reserved up front, so this never
            // reallocates.
            self.entries.insert(0, id);
        }
    }

    /// The `i`-th most recent identifier (0 = newest).
    #[inline]
    pub fn get(&self, i: usize) -> Option<T> {
        self.entries.get(i).copied()
    }

    /// The most recent identifier.
    #[inline]
    pub fn newest(&self) -> Option<T> {
        self.get(0)
    }

    /// The whole register as a newest-first slice — the zero-cost read port
    /// index generation gathers from.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.entries
    }

    /// Iterates newest → oldest.
    pub fn iter_newest_first(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }

    /// Snapshot of the whole register, newest first (used by speculative
    /// checkpointing; the return history stack uses the allocation-free
    /// [`PathHistory::copy_into`] instead).
    pub fn snapshot(&self) -> Vec<T> {
        self.entries.clone()
    }

    /// Copies the register (newest first) into `buf` without allocating,
    /// returning how many identifiers were written. If `buf` is shorter
    /// than the register, only the newest `buf.len()` identifiers are
    /// copied.
    #[inline]
    pub fn copy_into(&self, buf: &mut [T]) -> usize {
        let n = self.entries.len().min(buf.len());
        buf[..n].copy_from_slice(&self.entries[..n]);
        n
    }

    /// Restores a snapshot taken with [`PathHistory::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is longer than this register's capacity.
    pub fn restore(&mut self, snapshot: &[T]) {
        assert!(snapshot.len() <= self.cap, "snapshot exceeds capacity");
        self.entries.clear();
        self.entries.extend_from_slice(snapshot);
    }

    /// Replaces all but the `keep` newest entries with identifiers from
    /// `saved` (a history snapshot from before a call), preserving order.
    ///
    /// This is the return-history-stack merge of §3.4: after a return, the
    /// history should reflect the path *before* the call plus the last one
    /// or two traces inside the subroutine.
    /// (Allocation-free: this runs once per returning trace on the replay
    /// hot path.)
    #[inline]
    pub fn merge_after_return(&mut self, keep: usize, saved: &[T]) {
        // Truncation keeps the *newest* identifiers (stored first).
        self.entries.truncate(keep.min(self.entries.len()));
        let room = self.cap - self.entries.len();
        let take = saved.len().min(room);
        self.entries.extend_from_slice(&saved[..take]);
    }

    /// Forgets everything (used between benchmark runs).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest() {
        let mut h: PathHistory<u64> = PathHistory::new(2);
        h.push(10);
        h.push(20);
        h.push(30);
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(0), Some(30));
        assert_eq!(h.get(1), Some(20));
        assert_eq!(h.get(2), None);
        assert_eq!(h.newest(), Some(30));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut h: PathHistory<u16> = PathHistory::new(4);
        for v in [1u16, 2, 3] {
            h.push(v);
        }
        let snap = h.snapshot();
        h.push(9);
        h.push(8);
        h.restore(&snap);
        assert_eq!(h.snapshot(), vec![3, 2, 1]);
    }

    #[test]
    fn merge_keeps_newest_and_splices_saved() {
        let mut h: PathHistory<u16> = PathHistory::new(5);
        // Inside subroutine: newest-first [50, 40, 30, 20, 10].
        for v in [10u16, 20, 30, 40, 50] {
            h.push(v);
        }
        // Pre-call history snapshot [5, 4, 3, 2, 1].
        h.merge_after_return(2, &[5, 4, 3, 2, 1]);
        assert_eq!(h.snapshot(), vec![50, 40, 5, 4, 3]);
    }

    #[test]
    fn merge_with_short_saved_history() {
        let mut h: PathHistory<u16> = PathHistory::new(4);
        h.push(1);
        h.push(2);
        h.merge_after_return(1, &[9]);
        assert_eq!(h.snapshot(), vec![2, 9]);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _: PathHistory<u16> = PathHistory::new(0);
    }

    #[test]
    fn copy_into_matches_snapshot_and_truncates() {
        let mut h: PathHistory<u16> = PathHistory::new(4);
        for v in [1u16, 2, 3] {
            h.push(v);
        }
        let mut buf = [0u16; 8];
        let n = h.copy_into(&mut buf);
        assert_eq!(n, 3);
        assert_eq!(&buf[..n], h.snapshot().as_slice());

        let mut short = [0u16; 2];
        let n = h.copy_into(&mut short);
        assert_eq!(n, 2);
        assert_eq!(short, [3, 2], "newest two survive a short buffer");
    }
}
