//! The return history stack (RHS), §3.4 of the paper.
//!
//! Control flow after a subroutine returns is tightly correlated with the
//! path *before* the call, but a long subroutine flushes that path out of the
//! history register. The RHS saves a copy of the history at each call and,
//! at the matching return, splices it back in — keeping only the newest one
//! or two identifiers from inside the subroutine.

use crate::PathHistory;

/// Configuration of a [`ReturnHistoryStack`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RhsConfig {
    /// Maximum saved histories (the paper uses a depth comfortably larger
    /// than any benchmark's call depth except xlisp's recursion; we default
    /// to 16).
    pub max_depth: usize,
}

impl Default for RhsConfig {
    fn default() -> RhsConfig {
        RhsConfig { max_depth: 16 }
    }
}

/// Maximum history-register capacity an inline RHS snapshot can hold.
///
/// Both predictors cap the register at `depth + 1 <= 8`; 16 leaves slack
/// for experimental configurations while keeping snapshots `Copy` and the
/// call/return hot path allocation-free.
pub const RHS_SNAPSHOT_CAP: usize = 16;

/// An inline (stack-allocated) path-history snapshot: the newest
/// [`RHS_SNAPSHOT_CAP`] identifiers plus a length. Copying one is a
/// fixed-size memcpy, so pushing at a call site never touches the heap.
#[derive(Copy, Clone, Debug)]
struct InlineSnapshot<T> {
    buf: [T; RHS_SNAPSHOT_CAP],
    len: u8,
}

impl<T: Copy + Default> InlineSnapshot<T> {
    fn capture(history: &PathHistory<T>) -> InlineSnapshot<T> {
        debug_assert!(
            history.capacity() <= RHS_SNAPSHOT_CAP,
            "history capacity {} exceeds the inline RHS snapshot ({RHS_SNAPSHOT_CAP})",
            history.capacity()
        );
        let mut buf = [T::default(); RHS_SNAPSHOT_CAP];
        let len = history.copy_into(&mut buf) as u8;
        InlineSnapshot { buf, len }
    }

    fn as_slice(&self) -> &[T] {
        &self.buf[..self.len as usize]
    }
}

/// A stack of path-history snapshots pushed at calls and popped at returns.
///
/// Generic over the history element so it serves both the bounded (hashed
/// IDs) and unbounded (full IDs) predictors. Snapshots are stored inline
/// (fixed [`RHS_SNAPSHOT_CAP`]-element arrays) and the stack itself is
/// preallocated at `max_depth`, so [`ReturnHistoryStack::on_trace`] — which
/// runs once per trace on the replay hot path — performs no heap
/// allocation.
#[derive(Clone, Debug)]
pub struct ReturnHistoryStack<T> {
    stack: Vec<InlineSnapshot<T>>,
    cfg: RhsConfig,
}

impl<T: Copy + Default> ReturnHistoryStack<T> {
    /// Creates an empty stack.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is zero.
    pub fn new(cfg: RhsConfig) -> ReturnHistoryStack<T> {
        assert!(cfg.max_depth > 0, "RHS depth must be nonzero");
        ReturnHistoryStack {
            stack: Vec::with_capacity(cfg.max_depth),
            cfg,
        }
    }

    /// Current number of saved histories.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// How many of the newest in-subroutine identifiers survive a merge:
    /// one when the history holds five or fewer identifiers, two otherwise
    /// (§3.4).
    pub fn keep_for(history_capacity: usize) -> usize {
        if history_capacity <= 5 {
            1
        } else {
            2
        }
    }

    /// Reacts to a newly retired trace *after* it has been shifted into
    /// `history`: pushes one snapshot per net call, or pops and merges on a
    /// net return.
    ///
    /// A trace that both calls and returns (`calls >= 1 && ends_in_return`)
    /// nets out: `calls - 1` pushes and no pop.
    pub fn on_trace(&mut self, history: &mut PathHistory<T>, calls: u8, ends_in_return: bool) {
        let mut net_calls = calls as i32;
        if ends_in_return {
            net_calls -= 1;
        }
        if net_calls >= 1 {
            let snap = InlineSnapshot::capture(history);
            for _ in 0..net_calls {
                if self.stack.len() == self.cfg.max_depth {
                    // Hardware would overwrite; we drop the *oldest* so the
                    // most recent calls still find their context.
                    self.stack.remove(0);
                }
                self.stack.push(snap); // Copy: no allocation
            }
        } else if net_calls < 0 {
            if let Some(saved) = self.stack.pop() {
                let keep = Self::keep_for(history.capacity());
                history.merge_after_return(keep, saved.as_slice());
            }
        }
    }

    /// Snapshot for speculative checkpointing. (Checkpointing is off the
    /// replay hot path, so the heap-allocated exchange format is fine.)
    pub fn snapshot(&self) -> Vec<Vec<T>> {
        self.stack.iter().map(|s| s.as_slice().to_vec()).collect()
    }

    /// Restores a snapshot taken with [`ReturnHistoryStack::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if a saved history exceeds [`RHS_SNAPSHOT_CAP`] identifiers.
    pub fn restore(&mut self, snapshot: Vec<Vec<T>>) {
        self.stack.clear();
        for saved in snapshot {
            assert!(
                saved.len() <= RHS_SNAPSHOT_CAP,
                "RHS snapshot of {} ids exceeds the inline capacity {RHS_SNAPSHOT_CAP}",
                saved.len()
            );
            let mut buf = [T::default(); RHS_SNAPSHOT_CAP];
            buf[..saved.len()].copy_from_slice(&saved);
            self.stack.push(InlineSnapshot {
                buf,
                len: saved.len() as u8,
            });
        }
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(vals: &[u16], cap: usize) -> PathHistory<u16> {
        let mut h = PathHistory::new(cap);
        for &v in vals {
            h.push(v);
        }
        h
    }

    #[test]
    fn call_then_return_restores_pre_call_path() {
        let mut h = hist(&[1, 2, 3], 4); // newest-first [3,2,1]
        let mut rhs: ReturnHistoryStack<u16> = ReturnHistoryStack::new(RhsConfig::default());

        // Trace containing one call retires (already shifted in as `4`).
        h.push(4);
        rhs.on_trace(&mut h, 1, false);
        assert_eq!(rhs.depth(), 1);

        // Deep subroutine activity overwrites the register.
        for v in [100, 101, 102, 103] {
            h.push(v);
        }
        // Returning trace (no calls) retires as 104.
        h.push(104);
        rhs.on_trace(&mut h, 0, true);
        assert_eq!(rhs.depth(), 0);
        // cap=4 ⇒ keep 1 newest, splice pre-call snapshot [4,3,2].
        assert_eq!(h.snapshot(), vec![104, 4, 3, 2]);
    }

    #[test]
    fn keep_two_for_deep_histories() {
        assert_eq!(ReturnHistoryStack::<u16>::keep_for(5), 1);
        assert_eq!(ReturnHistoryStack::<u16>::keep_for(6), 2);
        let mut h = hist(&[1, 2, 3, 4, 5, 6], 6);
        let mut rhs: ReturnHistoryStack<u16> = ReturnHistoryStack::new(RhsConfig::default());
        h.push(7);
        rhs.on_trace(&mut h, 1, false); // snapshot [7,6,5,4,3,2]
        h.push(50);
        h.push(51);
        rhs.on_trace(&mut h, 0, true);
        assert_eq!(h.snapshot(), vec![51, 50, 7, 6, 5, 4]);
    }

    #[test]
    fn call_and_return_in_same_trace_cancels() {
        let mut h = hist(&[1], 4);
        let mut rhs: ReturnHistoryStack<u16> = ReturnHistoryStack::new(RhsConfig::default());
        rhs.on_trace(&mut h, 1, true);
        assert_eq!(rhs.depth(), 0);
        assert_eq!(h.snapshot(), vec![1]);
    }

    #[test]
    fn multiple_calls_push_multiple_copies() {
        let mut h = hist(&[9], 4);
        let mut rhs: ReturnHistoryStack<u16> = ReturnHistoryStack::new(RhsConfig::default());
        rhs.on_trace(&mut h, 3, false);
        assert_eq!(rhs.depth(), 3);
        // Three returns peel them off one at a time.
        for _ in 0..3 {
            rhs.on_trace(&mut h, 0, true);
        }
        assert_eq!(rhs.depth(), 0);
    }

    #[test]
    fn underflow_pop_is_harmless() {
        let mut h = hist(&[5, 6], 4);
        let mut rhs: ReturnHistoryStack<u16> = ReturnHistoryStack::new(RhsConfig::default());
        rhs.on_trace(&mut h, 0, true);
        assert_eq!(h.snapshot(), vec![6, 5], "history untouched on empty pop");
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut h = hist(&[1], 4);
        let mut rhs: ReturnHistoryStack<u16> = ReturnHistoryStack::new(RhsConfig { max_depth: 2 });
        h.push(10);
        rhs.on_trace(&mut h, 1, false);
        h.push(20);
        rhs.on_trace(&mut h, 1, false);
        h.push(30);
        rhs.on_trace(&mut h, 1, false); // overflows: snapshot(10) dropped
        assert_eq!(rhs.depth(), 2);
        h.push(99);
        rhs.on_trace(&mut h, 0, true);
        // Popped the snapshot taken after 30 was pushed: [30,20,10,1].
        assert_eq!(h.snapshot(), vec![99, 30, 20, 10]);
    }
}
