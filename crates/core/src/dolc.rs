//! DOLC index generation (Depth, Older, Last, Current), §3.2 / Table 3.
//!
//! The index into the correlating table is built from the low-order bits of
//! the hashed identifiers in the path history register: `C` bits from the
//! current (most recent) trace, `L` bits from the one before it, and `O`
//! bits from each of the `D − 1` older traces. More bits come from more
//! recent traces. If the collected bits exceed the index width, they are
//! folded onto themselves with XOR (into two or three parts).

use crate::error::in_range;
use crate::{ConfigError, PathHistory};
use ntp_trace::HashedId;
use std::fmt;

/// A DOLC index-generation configuration.
///
/// `depth` is the number of traces used *besides* the most recent one, so
/// `depth + 1` hashed identifiers participate in total: the newest
/// contributes `current` bits, the second-newest `last` bits, and each of
/// the remaining `depth − 1` contributes `older` bits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Dolc {
    /// Traces used besides the most recent (0 ⇒ only the newest trace).
    pub depth: usize,
    /// Bits taken from each trace older than the last.
    pub older: u32,
    /// Bits taken from the last (second-newest) trace.
    pub last: u32,
    /// Bits taken from the current (newest) trace.
    pub current: u32,
}

impl Dolc {
    /// Total bits gathered before folding.
    pub fn total_bits(&self) -> u32 {
        match self.depth {
            0 => self.current,
            _ => self.older * (self.depth as u32 - 1) + self.last + self.current,
        }
    }

    /// Number of XOR folds required for an index of `index_bits` (1 = no
    /// folding). This is the "(1p)/(2p)/(3p)" annotation of Table 3.
    pub fn parts(&self, index_bits: u32) -> u32 {
        self.total_bits().div_ceil(index_bits).max(1)
    }

    /// Validates field widths and depth/field consistency without
    /// panicking.
    ///
    /// Rejected configurations:
    ///
    /// * any per-trace field above 16 bits (hashed identifiers are 16 bits
    ///   wide);
    /// * a gathered total above 120 bits (the folding stage's `u128`
    ///   accumulator budget);
    /// * `depth > 32` (history registers are small shift registers);
    /// * **unused history bits**: `depth == 0` with nonzero `older`/`last`,
    ///   or `depth == 1` with nonzero `older`. Indexing silently ignores
    ///   those fields ([`Dolc::index`] only gathers `older` bits for slots
    ///   `2..=depth` and `last` bits when `depth >= 1`), so accepting them
    ///   would let a swept configuration claim history it never reads.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        in_range("dolc.older", self.older as u64, 0, 16)?;
        in_range("dolc.last", self.last as u64, 0, 16)?;
        in_range("dolc.current", self.current as u64, 0, 16)?;
        in_range("dolc.depth", self.depth as u64, 0, 32)?;
        if (self.depth == 0 && (self.older != 0 || self.last != 0))
            || (self.depth == 1 && self.older != 0)
        {
            return Err(ConfigError::UnusedHistoryBits {
                depth: self.depth,
                older: self.older,
                last: self.last,
            });
        }
        let total = self.total_bits();
        if total > 120 {
            return Err(ConfigError::TooManyGatheredBits { total, max: 120 });
        }
        Ok(())
    }

    /// Validates field widths.
    ///
    /// # Panics
    ///
    /// Panics if [`Dolc::try_validate`] rejects the configuration.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid DOLC {self}: {e}");
        }
    }

    /// Computes the table index from the history register.
    ///
    /// Identifiers older than the history currently holds contribute zero
    /// bits (cold start). The gathered bit string places older traces in
    /// higher positions, then folds with XOR down to `index_bits`.
    ///
    /// This runs once per retired trace (the predictor refreshes its cached
    /// index at every history shift), so the gather walks the history's
    /// contiguous newest-first slice directly, and configurations whose
    /// gathered total fits in 64 bits — every standard Table 3 tuple — take
    /// a `u64` accumulator path instead of the general `u128` one. Both
    /// paths produce identical indexes.
    pub fn index(&self, history: &PathHistory<HashedId>, index_bits: u32) -> u32 {
        debug_assert!((1..=30).contains(&index_bits));
        if self.total_bits() <= 64 {
            self.index_u64(history.as_slice(), index_bits)
        } else {
            self.index_u128(history.as_slice(), index_bits)
        }
    }

    /// Fast accumulator path: gathered bits fit in a `u64`.
    #[inline]
    fn index_u64(&self, h: &[HashedId], index_bits: u32) -> u32 {
        let mut acc: u64 = 0;
        let mut width: u32 = 0;

        let mut gather = |slot: usize, bits: u32| {
            if bits == 0 {
                return;
            }
            let v = h.get(slot).map(|id| id.low_bits(bits.min(16))).unwrap_or(0);
            acc = (acc << bits) | v as u64;
            width += bits;
        };

        // Oldest first so the newest trace ends up in the low bits.
        if self.depth >= 2 {
            for slot in (2..=self.depth).rev() {
                gather(slot, self.older);
            }
        }
        if self.depth >= 1 {
            gather(1, self.last);
        }
        gather(0, self.current);

        let mask = (1u64 << index_bits) - 1;
        let mut idx: u64 = 0;
        let mut rest = acc;
        let mut remaining = width as i64;
        while remaining > 0 {
            idx ^= rest & mask;
            rest >>= index_bits;
            remaining -= index_bits as i64;
        }
        idx as u32
    }

    /// General path for experimental configurations gathering 65–120 bits.
    fn index_u128(&self, h: &[HashedId], index_bits: u32) -> u32 {
        let mut acc: u128 = 0;
        let mut width: u32 = 0;

        let mut gather = |slot: usize, bits: u32| {
            if bits == 0 {
                return;
            }
            let v = h.get(slot).map(|id| id.low_bits(bits.min(16))).unwrap_or(0);
            acc = (acc << bits) | v as u128;
            width += bits;
        };

        if self.depth >= 2 {
            for slot in (2..=self.depth).rev() {
                gather(slot, self.older);
            }
        }
        if self.depth >= 1 {
            gather(1, self.last);
        }
        gather(0, self.current);

        let mask = (1u128 << index_bits) - 1;
        let mut idx: u128 = 0;
        let mut rest = acc;
        let mut remaining = width as i64;
        while remaining > 0 {
            idx ^= rest & mask;
            rest >>= index_bits;
            remaining -= index_bits as i64;
        }
        idx as u32
    }

    /// The configuration our reproduction uses for a given history depth and
    /// index width (our reconstruction of Table 3; the paper's exact tuples
    /// were chosen by trial and error and are unrecoverable from the OCR).
    ///
    /// # Panics
    ///
    /// Panics if `depth > 7` or `index_bits` is not 12, 15 or 18; see
    /// [`Dolc::try_standard`] for the non-panicking form front ends should
    /// use on user-supplied design points.
    pub fn standard(depth: usize, index_bits: u32) -> Dolc {
        match Dolc::try_standard(depth, index_bits) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Dolc::standard`] returning an error instead of panicking when the
    /// requested design point has no standard tuple.
    pub fn try_standard(depth: usize, index_bits: u32) -> Result<Dolc, ConfigError> {
        let (older, last, current) = match (index_bits, depth) {
            (12, 0) => (0, 0, 12),
            (12, 1) => (0, 8, 12),
            (12, 2) => (6, 8, 10),
            (12, 3) => (5, 7, 10),
            (12, 4) => (4, 7, 9),
            (12, 5) => (4, 6, 9),
            (12, 6) => (3, 6, 9),
            (12, 7) => (3, 6, 9),
            (15, 0) => (0, 0, 15),
            (15, 1) => (0, 10, 15),
            (15, 2) => (8, 10, 12),
            (15, 3) => (6, 9, 12),
            (15, 4) => (5, 8, 12),
            (15, 5) => (5, 8, 11),
            (15, 6) => (4, 8, 11),
            (15, 7) => (4, 8, 10),
            (18, 0) => (0, 0, 16),
            (18, 1) => (0, 12, 16),
            (18, 2) => (10, 12, 14),
            (18, 3) => (8, 11, 14),
            (18, 4) => (7, 10, 14),
            (18, 5) => (6, 10, 14),
            (18, 6) => (5, 10, 13),
            (18, 7) => (5, 9, 13),
            _ => return Err(ConfigError::NoStandardDolc { depth, index_bits }),
        };
        let d = Dolc {
            depth,
            older,
            last,
            current,
        };
        d.try_validate()?;
        Ok(d)
    }
}

impl fmt::Display for Dolc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{}-{}-{}",
            self.depth, self.older, self.last, self.current
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(vals: &[u16]) -> PathHistory<HashedId> {
        let mut h = PathHistory::new(8);
        for &v in vals {
            h.push(HashedId(v));
        }
        h
    }

    #[test]
    fn depth_zero_uses_only_newest() {
        let d = Dolc {
            depth: 0,
            older: 0,
            last: 0,
            current: 12,
        };
        let h = hist(&[0x0AAA, 0x0BBB]); // newest = 0x0BBB
        assert_eq!(d.index(&h, 12), 0x0BBB);
    }

    #[test]
    fn concatenation_orders_newest_low() {
        let d = Dolc {
            depth: 1,
            older: 0,
            last: 4,
            current: 8,
        };
        // newest = 0xAB (8 bits), last = 0xC (4 bits) ⇒ 0xCAB, no folding at 12 bits.
        let h = hist(&[0x000C, 0x00AB]);
        assert_eq!(d.index(&h, 12), 0xCAB);
    }

    #[test]
    fn folding_xors_high_part() {
        let d = Dolc {
            depth: 1,
            older: 0,
            last: 8,
            current: 8,
        };
        // 16 gathered bits folded into 8: high byte XOR low byte.
        let h = hist(&[0x0055, 0x00F0]);
        assert_eq!(d.index(&h, 8), 0x55 ^ 0xF0);
        assert_eq!(d.parts(8), 2);
    }

    #[test]
    fn missing_history_contributes_zero() {
        let d = Dolc {
            depth: 3,
            older: 4,
            last: 4,
            current: 8,
        };
        let h = hist(&[0x00AB]); // only the newest exists
        assert_eq!(d.index(&h, 16), 0xAB);
    }

    #[test]
    fn different_paths_different_indexes() {
        let d = Dolc::standard(3, 15);
        let a = d.index(&hist(&[1, 2, 3, 4]), 15);
        let b = d.index(&hist(&[1, 2, 3, 5]), 15);
        let c = d.index(&hist(&[9, 2, 3, 4]), 15);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn standard_configs_are_valid_and_bounded() {
        for &w in &[12u32, 15, 18] {
            for depth in 0..=7usize {
                let d = Dolc::standard(depth, w);
                assert_eq!(d.depth, depth);
                assert!(
                    d.parts(w) <= 3,
                    "{d} needs {} parts at {w} bits",
                    d.parts(w)
                );
                // Index always fits.
                let h = hist(&[0xFFFF; 8]);
                assert!(d.index(&h, w) < (1 << w));
            }
        }
    }

    #[test]
    fn depth_zero_rejects_phantom_history_bits() {
        // With depth == 0 only `current` participates in indexing; nonzero
        // older/last used to be silently accepted and ignored, letting an
        // ablation config lie about its history depth.
        for (older, last) in [(1, 0), (0, 1), (8, 8)] {
            let d = Dolc {
                depth: 0,
                older,
                last,
                current: 12,
            };
            assert_eq!(
                d.try_validate(),
                Err(ConfigError::UnusedHistoryBits {
                    depth: 0,
                    older,
                    last
                }),
                "depth 0 with older={older}/last={last} must be rejected"
            );
        }
        // Depth 1 reads `last` but never `older`.
        let d1 = Dolc {
            depth: 1,
            older: 3,
            last: 8,
            current: 12,
        };
        assert!(matches!(
            d1.try_validate(),
            Err(ConfigError::UnusedHistoryBits { depth: 1, .. })
        ));
        // The honest forms are fine.
        assert!(Dolc {
            depth: 0,
            older: 0,
            last: 0,
            current: 12
        }
        .try_validate()
        .is_ok());
        assert!(Dolc {
            depth: 1,
            older: 0,
            last: 8,
            current: 12
        }
        .try_validate()
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "never reads")]
    fn validate_panics_on_phantom_history_bits() {
        Dolc {
            depth: 0,
            older: 4,
            last: 4,
            current: 12,
        }
        .validate();
    }

    #[test]
    fn try_validate_rejects_wide_fields_and_totals() {
        assert!(matches!(
            Dolc {
                depth: 2,
                older: 17,
                last: 8,
                current: 8
            }
            .try_validate(),
            Err(ConfigError::OutOfRange {
                field: "dolc.older",
                ..
            })
        ));
        // 16 * (depth - 1) + 16 + 16 > 120 for depth >= 8.
        assert!(matches!(
            Dolc {
                depth: 9,
                older: 16,
                last: 16,
                current: 16
            }
            .try_validate(),
            Err(ConfigError::TooManyGatheredBits { total: 160, .. })
        ));
    }

    #[test]
    fn try_standard_rejects_unknown_points_without_panicking() {
        assert!(matches!(
            Dolc::try_standard(8, 15),
            Err(ConfigError::NoStandardDolc {
                depth: 8,
                index_bits: 15
            })
        ));
        assert!(Dolc::try_standard(3, 13).is_err());
        assert_eq!(Dolc::try_standard(3, 15).unwrap(), Dolc::standard(3, 15));
    }

    #[test]
    fn deeper_history_changes_index_only_within_depth() {
        let d = Dolc::standard(2, 15);
        // Changing the 4th-newest id must not affect a depth-2 index.
        let a = d.index(&hist(&[7, 1, 2, 3]), 15);
        let b = d.index(&hist(&[8, 1, 2, 3]), 15);
        assert_eq!(a, b);
    }
}
