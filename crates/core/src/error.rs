//! Typed configuration-validation errors.
//!
//! Every configuration struct in the workspace used to enforce its
//! invariants with scattered `assert!`/`panic!` calls, which meant a
//! hostile or typo'd configuration could only be detected by catching an
//! unwinding panic — or worse, slipped through validation entirely and hung
//! or silently truncated a run (the `ntp-verify` fault-injection sweep
//! exists to catch exactly that class of fault). The `try_validate` family
//! returns a [`ConfigError`] instead, so front ends (CLI, bench binaries,
//! the verification harness) can reject bad configs up front with a clean
//! diagnostic. The panicking `validate` entry points remain as thin
//! wrappers for internal call sites whose configs are statically known-good.

use std::fmt;

/// A rejected configuration, with enough context to print a one-line
/// diagnostic naming the offending field and its legal range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A numeric field fell outside its legal closed range.
    OutOfRange {
        /// Dotted path of the field, e.g. `"engine.window"`.
        field: &'static str,
        /// The offending value.
        value: u64,
        /// Smallest legal value.
        min: u64,
        /// Largest legal value.
        max: u64,
    },
    /// A DOLC configuration claims history bits its indexing never reads:
    /// `depth == 0` with nonzero `older`/`last`, or `depth == 1` with
    /// nonzero `older`. Accepting these would let a swept ablation point
    /// lie about its effective history depth.
    UnusedHistoryBits {
        /// The declared depth.
        depth: usize,
        /// The (ignored) older-trace bit width.
        older: u32,
        /// The (ignored) last-trace bit width.
        last: u32,
    },
    /// The DOLC gather would collect more bits than the folding stage
    /// supports.
    TooManyGatheredBits {
        /// Bits the configuration gathers before folding.
        total: u32,
        /// The supported maximum.
        max: u32,
    },
    /// No standard DOLC tuple exists for the requested design point.
    NoStandardDolc {
        /// Requested history depth.
        depth: usize,
        /// Requested index width.
        index_bits: u32,
    },
    /// A saturating-counter policy whose increment or decrement is zero
    /// (the counter could never move).
    ZeroCounterStep {
        /// Which step is zero: `"inc"` or `"dec"`.
        field: &'static str,
    },
    /// The engine's instruction window is smaller than the longest legal
    /// trace, so a full-length trace could never be fetched: the stall loop
    /// would spin forever waiting for space that can never appear.
    WindowSmallerThanTrace {
        /// Configured window capacity.
        window: u32,
        /// Maximum instructions a single trace may hold.
        max_trace_len: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange {
                field,
                value,
                min,
                max,
            } => write!(
                f,
                "{field} = {value} is outside the legal range {min}..={max}"
            ),
            ConfigError::UnusedHistoryBits { depth, older, last } => write!(
                f,
                "DOLC depth {depth} never reads older={older}/last={last} bits; \
                 set the unused fields to 0 so the config cannot overstate its history depth"
            ),
            ConfigError::TooManyGatheredBits { total, max } => {
                write!(f, "DOLC gathers {total} bits before folding (max {max})")
            }
            ConfigError::NoStandardDolc { depth, index_bits } => write!(
                f,
                "no standard DOLC for depth {depth} with a {index_bits}-bit index \
                 (depths 0..=7, index widths 12/15/18)"
            ),
            ConfigError::ZeroCounterStep { field } => {
                write!(f, "counter {field} must be nonzero")
            }
            ConfigError::WindowSmallerThanTrace {
                window,
                max_trace_len,
            } => write!(
                f,
                "engine.window = {window} cannot hold a maximum-length trace \
                 ({max_trace_len} instructions); fetch would stall forever"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Shorthand used by the `try_validate` implementations.
pub(crate) fn in_range(
    field: &'static str,
    value: u64,
    min: u64,
    max: u64,
) -> Result<(), ConfigError> {
    if (min..=max).contains(&value) {
        Ok(())
    } else {
        Err(ConfigError::OutOfRange {
            field,
            value,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_field_and_range() {
        let e = in_range("predictor.index_bits", 31, 1, 30).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("predictor.index_bits"), "{msg}");
        assert!(msg.contains("31") && msg.contains("1..=30"), "{msg}");
    }

    #[test]
    fn in_range_accepts_bounds() {
        assert!(in_range("x", 1, 1, 30).is_ok());
        assert!(in_range("x", 30, 1, 30).is_ok());
        assert!(in_range("x", 0, 1, 30).is_err());
    }

    #[test]
    fn window_error_mentions_stall() {
        let e = ConfigError::WindowSmallerThanTrace {
            window: 8,
            max_trace_len: 16,
        };
        assert!(e.to_string().contains("stall"), "{e}");
    }
}
