//! The bounded, hybrid, path-based next trace predictor (§3 of the paper).
//!
//! Two tables run in parallel:
//!
//! * the **correlating table**, indexed by a DOLC hash of the path history,
//!   tagged with 10 bits of the preceding trace's hashed identifier, holding
//!   a predicted trace and a +1/−2 two-bit counter;
//! * the **secondary table**, indexed by the hashed identifier of the most
//!   recent trace alone, holding a predicted trace and a 4-bit counter.
//!
//! Selection: a saturated secondary counter wins outright (and a correct
//! saturated secondary suppresses the correlated update, keeping
//! single-successor traces out of the big table); otherwise a tag hit uses
//! the correlating table; otherwise the secondary serves as warm-start.
//!
//! # Table layout
//!
//! Both tables are stored as **structures of arrays**: tags, counters,
//! targets and alternates live in separate dense arrays, and validity (and
//! the alternate-present flag) are `u64` bitset words. A probe therefore
//! touches a 2-byte tag and a 1-bit valid flag instead of dragging a
//! 32-byte entry struct through the cache, the small metadata arrays
//! (tags/counters/validity) stay cache-resident across sweeps, and the
//! alternate array is never read at all when the §6 alternate prediction is
//! disabled. The layout is guarded by `const` assertions below so a future
//! field addition fails the build instead of silently fattening the hot
//! arrays. Batched multi-session sweeps over this layout live in
//! [`crate::evaluate_batch`] / [`crate::predict_batch`].

use crate::{
    Counter, PathHistory, Prediction, PredictorConfig, ReturnHistoryStack, Source, StoredTarget,
    Target, TracePredictor,
};
use ntp_trace::{HashedId, TraceId, TraceRecord};
use std::fmt;

// Layout contract of the hot arrays: one byte per counter, two bytes per
// tag, eight per stored target, and a 12-byte index snapshot. A field
// added to `Counter` or `IndexSnapshot` (or a widened tag) must be a
// conscious decision, not an accident — these assertions fail the build
// the moment the element sizes grow.
const _: () = {
    assert!(std::mem::size_of::<Counter>() == 1);
    assert!(std::mem::size_of::<u16>() == 2);
    assert!(std::mem::size_of::<u64>() == 8);
    assert!(std::mem::size_of::<IndexSnapshot>() == 12);
    assert!(std::mem::align_of::<Counter>() == 1);
};

/// One bit per table entry, packed into `u64` words. Powers the validity
/// and alternate-present flags of both tables; `count_ones` makes the
/// occupancy sweep O(entries/64) instead of O(entries).
#[derive(Clone, Debug, Default)]
struct BitWords(Vec<u64>);

impl BitWords {
    fn new(entries: usize) -> BitWords {
        BitWords(vec![0; entries.div_ceil(64)])
    }

    #[inline(always)]
    fn get(&self, i: usize) -> bool {
        (self.0[i >> 6] >> (i & 63)) & 1 != 0
    }

    #[inline(always)]
    fn set(&mut self, i: usize) {
        self.0[i >> 6] |= 1 << (i & 63);
    }

    #[inline(always)]
    fn clear(&mut self, i: usize) {
        self.0[i >> 6] &= !(1u64 << (i & 63));
    }

    fn clear_all(&mut self) {
        self.0.fill(0);
    }

    fn count_ones(&self) -> u64 {
        self.0.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn words(&self) -> &[u64] {
        &self.0
    }

    /// Overwrites the bitmap from raw words; `words` must already have the
    /// right length (checked by `restore_state` before any mutation).
    fn load_words(&mut self, words: &[u64]) {
        self.0.copy_from_slice(words);
    }
}

/// The correlating table in structure-of-arrays form. Indexed by the DOLC
/// hash; `valid` and `has_alt` are bitset words, everything else a dense
/// array with one element per entry.
struct CorrTable {
    tags: Vec<u16>,
    ctrs: Vec<Counter>,
    targets: Vec<u64>,
    alts: Vec<u64>,
    valid: BitWords,
    has_alt: BitWords,
}

impl CorrTable {
    fn new(entries: usize) -> CorrTable {
        CorrTable {
            tags: vec![0; entries],
            ctrs: vec![Counter::new(); entries],
            targets: vec![0; entries],
            alts: vec![0; entries],
            valid: BitWords::new(entries),
            has_alt: BitWords::new(entries),
        }
    }

    fn len(&self) -> usize {
        self.tags.len()
    }

    fn clear(&mut self) {
        self.tags.fill(0);
        self.ctrs.fill(Counter::new());
        self.targets.fill(0);
        self.alts.fill(0);
        self.valid.clear_all();
        self.has_alt.clear_all();
    }
}

/// The secondary table in structure-of-arrays form, indexed by the newest
/// hashed identifier alone.
struct SecTable {
    targets: Vec<u64>,
    ctrs: Vec<Counter>,
    valid: BitWords,
}

impl SecTable {
    fn new(entries: usize) -> SecTable {
        SecTable {
            targets: vec![0; entries],
            ctrs: vec![Counter::new(); entries],
            valid: BitWords::new(entries),
        }
    }

    fn len(&self) -> usize {
        self.targets.len()
    }

    fn clear(&mut self) {
        self.targets.fill(0);
        self.ctrs.fill(Counter::new());
        self.valid.clear_all();
    }
}

/// Issues a best-effort prefetch for the cache line holding `*ptr`.
/// A hint only — never a memory access — and a no-op off x86_64.
#[inline(always)]
fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a pure hint; it performs no access and is safe
    // for any address, valid or not.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Table indexes captured at prediction time.
///
/// In a real pipeline the table entry trained at retirement is the one read
/// at prediction; capturing the indexes (rather than recomputing them from a
/// possibly-repaired history) models that. Immediate-update callers never
/// see this type — [`TracePredictor::update`] captures and consumes one
/// internally.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexSnapshot {
    corr_index: u32,
    tag: u16,
    sec_index: u32,
}

/// A checkpoint of the speculative front-end state (history register and
/// return history stack), used by the execution engine to repair after a
/// misprediction.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    history: Vec<HashedId>,
    rhs: Option<Vec<Vec<HashedId>>>,
}

/// Table-pressure counters accumulated on the training path.
///
/// A *steal* replaces a valid correlating entry whose tag belonged to a
/// different path — destructive aliasing, the effect §5.2's unbounded model
/// removes. A *cold fill* claims a never-used entry. The ratio of steals to
/// fills is the direct measure of how undersized the table is for a
/// workload.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AliasingCounters {
    /// Valid correlating entries overwritten for a different path (tag
    /// mismatch).
    pub steals: u64,
    /// Invalid correlating entries claimed for the first time.
    pub cold_fills: u64,
    /// Secondary entries claimed for the first time.
    pub sec_fills: u64,
}

/// Point-in-time valid-entry counts for both tables.
///
/// Captured by [`NextTracePredictor::occupancy`]; a popcount over the
/// validity bitset words (O(entries/64)), cheap enough for periodic
/// reporting though still meant for end-of-run summaries, not the hot
/// path.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TableOccupancy {
    /// Valid correlating-table entries.
    pub corr_valid: u64,
    /// Correlating-table capacity.
    pub corr_capacity: u64,
    /// Valid secondary-table entries.
    pub sec_valid: u64,
    /// Secondary-table capacity.
    pub sec_capacity: u64,
}

impl TableOccupancy {
    /// Correlating-table fill fraction in [0, 1].
    pub fn corr_fraction(&self) -> f64 {
        if self.corr_capacity == 0 {
            0.0
        } else {
            self.corr_valid as f64 / self.corr_capacity as f64
        }
    }

    /// Secondary-table fill fraction in [0, 1].
    pub fn sec_fraction(&self) -> f64 {
        if self.sec_capacity == 0 {
            0.0
        } else {
            self.sec_valid as f64 / self.sec_capacity as f64
        }
    }
}

/// The complete learned state of a [`NextTracePredictor`] as plain data.
///
/// Produced by [`NextTracePredictor::save_state`] and consumed by
/// [`NextTracePredictor::restore_state`]; every field is a dense array or
/// scalar so an external codec (the on-disk `.nts` snapshot format) can
/// serialize it without reaching into predictor internals. Restoring into
/// a predictor built with the *same configuration* reproduces the original
/// bit-for-bit: identical predictions, counters, occupancy and aliasing
/// statistics from that point on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PredictorState {
    /// Correlating-table tags, one per entry.
    pub corr_tags: Vec<u16>,
    /// Correlating-table counter values, one per entry.
    pub corr_ctrs: Vec<u8>,
    /// Correlating-table stored targets, one per entry.
    pub corr_targets: Vec<u64>,
    /// Correlating-table alternate targets (§6), one per entry.
    pub corr_alts: Vec<u64>,
    /// Correlating-table validity bitmap, 64 entries per word.
    pub corr_valid: Vec<u64>,
    /// Correlating-table alternate-present bitmap, 64 entries per word.
    pub corr_has_alt: Vec<u64>,
    /// Secondary-table stored targets, one per entry.
    pub sec_targets: Vec<u64>,
    /// Secondary-table counter values, one per entry.
    pub sec_ctrs: Vec<u8>,
    /// Secondary-table validity bitmap, 64 entries per word.
    pub sec_valid: Vec<u64>,
    /// Path-history register, newest first, as raw hashed identifiers.
    pub history: Vec<u16>,
    /// Return-history-stack snapshots, oldest call first; empty when the
    /// RHS is disabled.
    pub rhs: Vec<Vec<u16>>,
    /// Training-path aliasing counters: `[steals, cold_fills, sec_fills]`.
    pub aliasing: [u64; 3],
}

/// Why a [`PredictorState`] was refused by
/// [`NextTracePredictor::restore_state`].
///
/// Restoration is all-or-nothing: a refused state leaves the predictor
/// exactly as it was (cold-start fallback is the caller's decision).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// An array has the wrong length for the predictor's configuration.
    Geometry {
        /// Which array.
        field: &'static str,
        /// Length the configuration requires.
        expected: usize,
        /// Length the state carried.
        found: usize,
    },
    /// A stored value exceeds what the configuration can represent.
    Value {
        /// Which array.
        field: &'static str,
        /// Offending element index.
        index: usize,
        /// The out-of-range value.
        value: u64,
        /// The configuration's maximum for this field.
        max: u64,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Geometry {
                field,
                expected,
                found,
            } => write!(
                f,
                "state geometry mismatch: {field} has {found} elements, config requires {expected}"
            ),
            StateError::Value {
                field,
                index,
                value,
                max,
            } => write!(
                f,
                "state value out of range: {field}[{index}] = {value} exceeds config maximum {max}"
            ),
        }
    }
}

impl std::error::Error for StateError {}

/// Checks that any bits beyond `entries` in the final bitmap word are zero
/// (a corrupted tail would silently skew `count_ones` occupancy).
fn check_bitmap(field: &'static str, words: &[u64], entries: usize) -> Result<(), StateError> {
    let expected = entries.div_ceil(64);
    if words.len() != expected {
        return Err(StateError::Geometry {
            field,
            expected,
            found: words.len(),
        });
    }
    let tail = entries % 64;
    if tail != 0 {
        let last = words[expected - 1];
        if last >> tail != 0 {
            return Err(StateError::Value {
                field,
                index: expected - 1,
                value: last,
                max: (1u64 << tail) - 1,
            });
        }
    }
    Ok(())
}

fn check_len<T>(field: &'static str, got: &[T], expected: usize) -> Result<(), StateError> {
    if got.len() != expected {
        return Err(StateError::Geometry {
            field,
            expected,
            found: got.len(),
        });
    }
    Ok(())
}

fn check_max(field: &'static str, values: &[u64], max: u64) -> Result<(), StateError> {
    if let Some(index) = values.iter().position(|&v| v > max) {
        return Err(StateError::Value {
            field,
            index,
            value: values[index],
            max,
        });
    }
    Ok(())
}

/// The bounded hybrid path-based next trace predictor.
///
/// # Examples
///
/// ```
/// use ntp_core::{NextTracePredictor, PredictorConfig, TracePredictor};
/// use ntp_trace::TraceRecord;
///
/// let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
/// let pred = p.predict();
/// assert!(pred.target.is_none(), "cold predictor has no opinion");
/// ```
pub struct NextTracePredictor {
    cfg: PredictorConfig,
    history: PathHistory<HashedId>,
    rhs: Option<ReturnHistoryStack<HashedId>>,
    corr: CorrTable,
    sec: SecTable,
    aliasing: AliasingCounters,
    /// Table indexes implied by the current history, recomputed once per
    /// history change (push/merge/restore) instead of a gather+fold per
    /// [`TracePredictor::predict`] *and* [`TracePredictor::update`] — the
    /// incremental DOLC hot-path optimisation.
    cached_idx: IndexSnapshot,
}

impl NextTracePredictor {
    /// Builds a predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PredictorConfig::validate`]).
    pub fn new(cfg: PredictorConfig) -> NextTracePredictor {
        match NextTracePredictor::try_new(cfg) {
            Ok(p) => p,
            Err(e) => panic!("invalid predictor config: {e}"),
        }
    }

    /// Builds a predictor, rejecting invalid configurations with a typed
    /// [`crate::ConfigError`] instead of panicking — the entry point for
    /// front ends handed an arbitrary (possibly hostile) configuration.
    pub fn try_new(cfg: PredictorConfig) -> Result<NextTracePredictor, crate::ConfigError> {
        cfg.try_validate()?;
        let mut p = NextTracePredictor {
            history: PathHistory::new(cfg.history_capacity()),
            rhs: cfg.rhs.map(ReturnHistoryStack::new),
            corr: CorrTable::new(cfg.corr_entries()),
            sec: SecTable::new(cfg.secondary_entries()),
            aliasing: AliasingCounters::default(),
            cfg,
            cached_idx: IndexSnapshot::default(),
        };
        p.refresh_indices();
        Ok(p)
    }

    /// The configuration in force.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// The key under which `id` would be stored (full packed identifier or
    /// its hash, per [`StoredTarget`]).
    fn key_of(&self, id: TraceId) -> u64 {
        match self.cfg.stored_target {
            StoredTarget::Full => id.packed(),
            StoredTarget::Hashed => id.hashed().0 as u64,
        }
    }

    fn target_of(&self, key: u64) -> Target {
        match self.cfg.stored_target {
            StoredTarget::Full => Target::Full(TraceId::from_packed(key)),
            StoredTarget::Hashed => Target::Hashed(HashedId(key as u16)),
        }
    }

    /// The table indexes implied by the current history.
    ///
    /// This is a cached copy maintained across history changes: the
    /// gather-and-XOR-fold of [`Dolc::index`](crate::Dolc::index) runs once
    /// per retired trace, at push time, rather than once per `predict`
    /// *and* once per `update`.
    pub fn indices(&self) -> IndexSnapshot {
        self.cached_idx
    }

    /// Recomputes [`NextTracePredictor::indices`] from the history
    /// register; called after every history mutation.
    fn refresh_indices(&mut self) {
        let corr_index = self.cfg.dolc.index(&self.history, self.cfg.index_bits);
        let newest = self.history.newest().unwrap_or_default();
        self.cached_idx = IndexSnapshot {
            corr_index,
            tag: newest.low_bits(self.cfg.tag_bits) as u16,
            sec_index: newest.low_bits(self.cfg.secondary_index_bits),
        };
    }

    /// Hints the cache that the table lines named by the current index
    /// snapshot are about to be probed. The gathered-probe pass of the
    /// batch sweeps ([`crate::evaluate_batch`], [`crate::predict_batch`])
    /// issues this across many sessions before resolving any of them, so
    /// the gathers overlap instead of serializing on each miss. A pure
    /// hint: no-op off x86_64, never changes behaviour.
    #[inline]
    pub fn prefetch_tables(&self) {
        let c = self.cached_idx.corr_index as usize;
        let s = self.cached_idx.sec_index as usize;
        prefetch_read(&self.corr.tags[c]);
        prefetch_read(&self.corr.ctrs[c]);
        prefetch_read(&self.corr.targets[c]);
        prefetch_read(&self.sec.targets[s]);
        prefetch_read(&self.sec.ctrs[s]);
    }

    /// Predicts using previously captured indexes (the engine's read port).
    pub fn predict_at(&self, idx: IndexSnapshot) -> Prediction {
        let c = idx.corr_index as usize;
        let s = idx.sec_index as usize;
        let corr_usable = self.corr.valid.get(c) && self.corr.tags[c] == idx.tag;
        let sec_valid = self.sec.valid.get(s);
        let sec_wins = sec_valid && self.sec.ctrs[s].is_saturated(self.cfg.secondary_counter);

        let alternate = if self.cfg.alternate && corr_usable && self.corr.has_alt.get(c) {
            Some(self.target_of(self.corr.alts[c]))
        } else {
            None
        };

        if sec_wins || !corr_usable {
            if sec_valid {
                Prediction {
                    target: Some(self.target_of(self.sec.targets[s])),
                    alternate,
                    source: Source::Secondary,
                }
            } else if corr_usable {
                Prediction {
                    target: Some(self.target_of(self.corr.targets[c])),
                    alternate,
                    source: Source::Correlated,
                }
            } else {
                Prediction {
                    alternate,
                    ..Prediction::cold()
                }
            }
        } else {
            Prediction {
                target: Some(self.target_of(self.corr.targets[c])),
                alternate,
                source: Source::Correlated,
            }
        }
    }

    /// Trains the tables for the prediction made at `idx`, given the trace
    /// that actually executed. Does not touch the history register.
    pub fn train_at(&mut self, idx: IndexSnapshot, actual: &TraceRecord) {
        let key = self.key_of(actual.id());
        let sec_spec = self.cfg.secondary_counter;
        let prim_spec = self.cfg.primary_counter;

        // Evaluate suppression with the secondary's *pre-update* state.
        let s = idx.sec_index as usize;
        let suppress_corr;
        if self.sec.valid.get(s) {
            let sec_hit = self.sec.targets[s] == key;
            suppress_corr = sec_hit && self.sec.ctrs[s].is_saturated(sec_spec);
            if sec_hit {
                self.sec.ctrs[s].on_correct(sec_spec);
            } else if self.sec.ctrs[s].on_incorrect(sec_spec) {
                self.sec.targets[s] = key;
            }
        } else {
            suppress_corr = false;
            self.sec.targets[s] = key;
            self.sec.ctrs[s] = Counter::new();
            self.sec.valid.set(s);
            self.aliasing.sec_fills += 1;
        }

        if suppress_corr {
            return;
        }

        let alternate = self.cfg.alternate;
        let c = idx.corr_index as usize;
        if self.corr.valid.get(c) && self.corr.tags[c] == idx.tag {
            if self.corr.targets[c] == key {
                self.corr.ctrs[c].on_correct(prim_spec);
            } else if self.corr.ctrs[c].on_incorrect(prim_spec) {
                // Counter was zero: demote the old target to the alternate
                // slot and install the actual trace (§6).
                if alternate {
                    self.corr.alts[c] = self.corr.targets[c];
                    self.corr.has_alt.set(c);
                }
                self.corr.targets[c] = key;
            } else if alternate {
                self.corr.alts[c] = key;
                self.corr.has_alt.set(c);
            }
        } else {
            // Invalid or aliased by a different path: steal the entry.
            let stolen = self.corr.valid.get(c);
            self.corr.tags[c] = idx.tag;
            self.corr.ctrs[c] = Counter::new();
            self.corr.targets[c] = key;
            self.corr.alts[c] = 0;
            self.corr.valid.set(c);
            self.corr.has_alt.clear(c);
            if stolen {
                self.aliasing.steals += 1;
            } else {
                self.aliasing.cold_fills += 1;
            }
        }
    }

    /// Shifts `trace` into the path history and performs return-history-
    /// stack pushes/pops. In immediate-update mode this runs at update; the
    /// engine runs it speculatively at fetch with the *predicted* trace.
    pub fn advance_history(&mut self, id: TraceId, calls: u8, ends_in_return: bool) {
        self.history.push(id.hashed());
        if let Some(rhs) = &mut self.rhs {
            rhs.on_trace(&mut self.history, calls, ends_in_return);
        }
        self.refresh_indices();
    }

    /// Captures the speculative front-end state.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            history: self.history.snapshot(),
            rhs: self.rhs.as_ref().map(ReturnHistoryStack::snapshot),
        }
    }

    /// Restores a [`Checkpoint`] (misprediction repair).
    pub fn restore(&mut self, cp: &Checkpoint) {
        self.history.restore(&cp.history);
        if let (Some(rhs), Some(saved)) = (&mut self.rhs, &cp.rhs) {
            rhs.restore(saved.clone());
        }
        self.refresh_indices();
    }

    /// Read access to the path history (for tests and diagnostics).
    pub fn history(&self) -> &PathHistory<HashedId> {
        &self.history
    }

    /// Training-path aliasing counters accumulated since construction (or
    /// the last [`TracePredictor::reset`]).
    pub fn aliasing(&self) -> AliasingCounters {
        self.aliasing
    }

    /// Reports valid-entry counts for both tables: a popcount over the
    /// validity bitset words, O(entries/64).
    pub fn occupancy(&self) -> TableOccupancy {
        TableOccupancy {
            corr_valid: self.corr.valid.count_ones(),
            corr_capacity: self.corr.len() as u64,
            sec_valid: self.sec.valid.count_ones(),
            sec_capacity: self.sec.len() as u64,
        }
    }

    /// Captures the complete learned state — both tables with their
    /// bitmaps, the path history, the return history stack and the
    /// aliasing counters — as plain data for external serialization.
    pub fn save_state(&self) -> PredictorState {
        PredictorState {
            corr_tags: self.corr.tags.clone(),
            corr_ctrs: self.corr.ctrs.iter().map(|c| c.value()).collect(),
            corr_targets: self.corr.targets.clone(),
            corr_alts: self.corr.alts.clone(),
            corr_valid: self.corr.valid.words().to_vec(),
            corr_has_alt: self.corr.has_alt.words().to_vec(),
            sec_targets: self.sec.targets.clone(),
            sec_ctrs: self.sec.ctrs.iter().map(|c| c.value()).collect(),
            sec_valid: self.sec.valid.words().to_vec(),
            history: self.history.snapshot().iter().map(|h| h.0).collect(),
            rhs: self
                .rhs
                .as_ref()
                .map(ReturnHistoryStack::snapshot)
                .unwrap_or_default()
                .iter()
                .map(|saved| saved.iter().map(|h| h.0).collect())
                .collect(),
            aliasing: [
                self.aliasing.steals,
                self.aliasing.cold_fills,
                self.aliasing.sec_fills,
            ],
        }
    }

    /// Restores a state captured by [`NextTracePredictor::save_state`] into
    /// a predictor built with the *same* configuration, reproducing the
    /// saved predictor bit-for-bit.
    ///
    /// Every array is validated against the configuration's geometry and
    /// value ranges *before* anything is written, so a refused state (wrong
    /// table sizes, counter values past saturation, tags wider than
    /// `tag_bits`, bitmap tail bits beyond the table, an RHS deeper than
    /// configured) leaves the predictor untouched. Config mismatches
    /// between a snapshot file and the serving predictor are meant to be
    /// caught earlier by the codec's fingerprint; this layer is the final
    /// defence.
    pub fn restore_state(&mut self, state: &PredictorState) -> Result<(), StateError> {
        let corr_n = self.corr.len();
        let sec_n = self.sec.len();
        check_len("corr_tags", &state.corr_tags, corr_n)?;
        check_len("corr_ctrs", &state.corr_ctrs, corr_n)?;
        check_len("corr_targets", &state.corr_targets, corr_n)?;
        check_len("corr_alts", &state.corr_alts, corr_n)?;
        check_bitmap("corr_valid", &state.corr_valid, corr_n)?;
        check_bitmap("corr_has_alt", &state.corr_has_alt, corr_n)?;
        check_len("sec_targets", &state.sec_targets, sec_n)?;
        check_len("sec_ctrs", &state.sec_ctrs, sec_n)?;
        check_bitmap("sec_valid", &state.sec_valid, sec_n)?;

        let prim_max = self.cfg.primary_counter.max() as u64;
        if let Some(index) = state.corr_ctrs.iter().position(|&v| v as u64 > prim_max) {
            return Err(StateError::Value {
                field: "corr_ctrs",
                index,
                value: state.corr_ctrs[index] as u64,
                max: prim_max,
            });
        }
        let sec_max = self.cfg.secondary_counter.max() as u64;
        if let Some(index) = state.sec_ctrs.iter().position(|&v| v as u64 > sec_max) {
            return Err(StateError::Value {
                field: "sec_ctrs",
                index,
                value: state.sec_ctrs[index] as u64,
                max: sec_max,
            });
        }
        if self.cfg.tag_bits < 16 {
            let tag_max = (1u64 << self.cfg.tag_bits) - 1;
            if let Some(index) = state.corr_tags.iter().position(|&t| t as u64 > tag_max) {
                return Err(StateError::Value {
                    field: "corr_tags",
                    index,
                    value: state.corr_tags[index] as u64,
                    max: tag_max,
                });
            }
        }
        if self.cfg.stored_target == StoredTarget::Hashed {
            // Hashed targets round-trip through u16; wider values would be
            // silently truncated on the next predict.
            check_max("corr_targets", &state.corr_targets, u16::MAX as u64)?;
            check_max("corr_alts", &state.corr_alts, u16::MAX as u64)?;
            check_max("sec_targets", &state.sec_targets, u16::MAX as u64)?;
        }
        if state.history.len() > self.history.capacity() {
            return Err(StateError::Geometry {
                field: "history",
                expected: self.history.capacity(),
                found: state.history.len(),
            });
        }
        match (&self.rhs, self.cfg.rhs) {
            (Some(_), Some(rhs_cfg)) => {
                if state.rhs.len() > rhs_cfg.max_depth {
                    return Err(StateError::Geometry {
                        field: "rhs",
                        expected: rhs_cfg.max_depth,
                        found: state.rhs.len(),
                    });
                }
                for saved in &state.rhs {
                    if saved.len() > crate::RHS_SNAPSHOT_CAP {
                        return Err(StateError::Geometry {
                            field: "rhs entry",
                            expected: crate::RHS_SNAPSHOT_CAP,
                            found: saved.len(),
                        });
                    }
                }
            }
            _ => {
                if !state.rhs.is_empty() {
                    return Err(StateError::Geometry {
                        field: "rhs",
                        expected: 0,
                        found: state.rhs.len(),
                    });
                }
            }
        }

        // Everything checked; from here on the restore cannot fail.
        self.corr.tags.copy_from_slice(&state.corr_tags);
        for (dst, &v) in self.corr.ctrs.iter_mut().zip(&state.corr_ctrs) {
            *dst = Counter::from_value(v);
        }
        self.corr.targets.copy_from_slice(&state.corr_targets);
        self.corr.alts.copy_from_slice(&state.corr_alts);
        self.corr.valid.load_words(&state.corr_valid);
        self.corr.has_alt.load_words(&state.corr_has_alt);
        self.sec.targets.copy_from_slice(&state.sec_targets);
        for (dst, &v) in self.sec.ctrs.iter_mut().zip(&state.sec_ctrs) {
            *dst = Counter::from_value(v);
        }
        self.sec.valid.load_words(&state.sec_valid);
        let history: Vec<HashedId> = state.history.iter().map(|&h| HashedId(h)).collect();
        self.history.restore(&history);
        if let Some(rhs) = &mut self.rhs {
            rhs.restore(
                state
                    .rhs
                    .iter()
                    .map(|saved| saved.iter().map(|&h| HashedId(h)).collect())
                    .collect(),
            );
        }
        self.aliasing = AliasingCounters {
            steals: state.aliasing[0],
            cold_fills: state.aliasing[1],
            sec_fills: state.aliasing[2],
        };
        self.refresh_indices();
        Ok(())
    }
}

impl TracePredictor for NextTracePredictor {
    fn predict(&self) -> Prediction {
        self.predict_at(self.indices())
    }

    fn update(&mut self, actual: &TraceRecord) {
        let idx = self.indices();
        self.train_at(idx, actual);
        self.advance_history(actual.id(), actual.call_count(), actual.ends_in_return());
    }

    fn reset(&mut self) {
        self.history.clear();
        if let Some(rhs) = &mut self.rhs {
            rhs.clear();
        }
        self.corr.clear();
        self.sec.clear();
        self.aliasing = AliasingCounters::default();
        self.refresh_indices();
    }

    fn history_len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_trace::TraceId;

    fn rec(pc: u32, bits: u8, n: u8) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, bits, n), 8, 0, false, false)
    }

    fn rec_callret(pc: u32, calls: u8, ret: bool) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 8, calls, ret, ret)
    }

    fn cfg_small() -> PredictorConfig {
        PredictorConfig {
            secondary_index_bits: 8,
            ..PredictorConfig::paper(12, 3)
        }
    }

    #[test]
    fn bitwords_set_clear_count() {
        let mut b = BitWords::new(130);
        assert_eq!(b.0.len(), 3, "130 bits pack into three words");
        assert_eq!(b.count_ones(), 0);
        for i in [0usize, 63, 64, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 4);
        b.clear(64);
        assert!(!b.get(64));
        assert!(b.get(63) && b.get(129), "clear touches only its bit");
        assert_eq!(b.count_ones(), 3);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn learns_a_repeating_sequence() {
        let mut p = NextTracePredictor::new(cfg_small());
        let seq = [
            rec(0x0040_0000, 0b01, 2),
            rec(0x0040_0100, 0b10, 2),
            rec(0x0040_0200, 0b00, 1),
        ];
        for _ in 0..3 {
            for r in &seq {
                p.update(r);
            }
        }
        // Going around again, every successor should be predicted.
        for k in 0..6 {
            let next = seq[k % 3];
            let pred = p.predict();
            assert!(pred.is_correct(next.id()), "step {k}: {pred:?}");
            p.update(&next);
        }
    }

    #[test]
    fn secondary_serves_cold_correlated_entries() {
        // Depth-3 paths take several visits to warm; the secondary predictor
        // (indexed by last trace only) learns after one visit.
        let mut p = NextTracePredictor::new(cfg_small());
        let a = rec(0x0040_0004, 0, 0);
        let b = rec(0x0040_0128, 0, 0);
        p.update(&a);
        p.update(&b); // secondary now knows a → b
                      // New path context (different older history) but same last trace.
        p.update(&rec(0x0040_1450, 0, 0));
        p.update(&a);
        let pred = p.predict();
        assert_eq!(pred.source, Source::Secondary);
        assert!(pred.is_correct(b.id()));
    }

    #[test]
    fn saturated_secondary_suppresses_correlated_update() {
        let mut p = NextTracePredictor::new(cfg_small());
        let b = rec(0x0040_0400, 0, 0);
        let c = rec(0x0040_0800, 0, 0);
        // Fixed (empty-history) context; saturate the secondary on b.
        let idx = p.indices();
        for _ in 0..20 {
            p.train_at(idx, &b);
        }
        let pred = p.predict_at(idx);
        assert_eq!(pred.source, Source::Secondary);
        assert!(pred.is_correct(b.id()));

        // Plant a sentinel in the correlated slot; a suppressed update must
        // leave it untouched.
        let ci = idx.corr_index as usize;
        p.corr.tags[ci] = idx.tag;
        p.corr.ctrs[ci] = Counter::new();
        p.corr.targets[ci] = 12345;
        p.corr.alts[ci] = 0;
        p.corr.valid.set(ci);
        p.corr.has_alt.clear(ci);
        p.train_at(idx, &b); // secondary saturated AND correct ⇒ suppressed
        assert_eq!(p.corr.targets[ci], 12345);

        p.train_at(idx, &c); // secondary wrong ⇒ correlated trains (replace at ctr 0)
        assert_eq!(p.corr.targets[ci], p.key_of(c.id()));
    }

    #[test]
    fn counter_protects_against_single_anomaly() {
        let mut p = NextTracePredictor::new(PredictorConfig {
            rhs: None,
            secondary_index_bits: 8,
            secondary_counter: crate::CounterSpec {
                bits: 4,
                inc: 1,
                dec: 8,
            },
            ..PredictorConfig::paper(12, 0)
        });
        let a = rec(0x0040_0000, 0, 0);
        let b = rec(0x0040_0400, 0, 0);
        let z = rec(0x0040_0800, 0, 0);
        // Teach a → b until confident (counter ≥ 2).
        p.update(&a);
        for _ in 0..4 {
            p.update(&b);
            p.update(&a);
        }
        // One anomalous successor.
        p.update(&z);
        p.update(&a);
        let pred = p.predict();
        assert!(
            pred.is_correct(b.id()),
            "one anomaly must not replace a confident target: {pred:?}"
        );
    }

    #[test]
    fn rhs_disambiguates_return_successors_by_caller() {
        // Two call sites invoke the same long subroutine; the trace after
        // the return depends on the caller. The subroutine is longer than
        // the history, so without the RHS the post-return context is
        // caller-independent and the successor is unpredictable; with the
        // RHS the pre-call path is restored and both successors are learned.
        let cfg = PredictorConfig::paper(12, 3);
        let subs: Vec<_> = (0..6).map(|k| rec(0x0040_1004 + k * 0x34, 0, 0)).collect();
        let ret = rec_callret(0x0040_2008, 0, true);
        let x1 = rec(0x0040_0004, 0, 0);
        let call_x = rec_callret(0x0040_0250, 1, false);
        let after_x = rec(0x0040_0374, 0, 0);
        let y1 = rec(0x0040_0528, 0, 0);
        let call_y = rec_callret(0x0040_0650, 1, false);
        let after_y = rec(0x0040_0794, 0, 0);

        let mispredicts = |p: &mut NextTracePredictor| -> u32 {
            let mut wrong = 0;
            for round in 0..12 {
                for (one, call, after) in [(x1, call_x, after_x), (y1, call_y, after_y)] {
                    p.update(&one);
                    p.update(&call);
                    for s in &subs {
                        p.update(s);
                    }
                    p.update(&ret);
                    let pred = p.predict();
                    if round >= 2 && !pred.is_correct(after.id()) {
                        wrong += 1;
                    }
                    p.update(&after);
                }
            }
            wrong
        };
        let with = mispredicts(&mut NextTracePredictor::new(cfg));
        let without = mispredicts(&mut NextTracePredictor::new(PredictorConfig {
            rhs: None,
            ..cfg
        }));
        assert_eq!(with, 0, "RHS predictor learns both return successors");
        assert!(
            without >= 10,
            "without the RHS the post-return context is ambiguous: {without}"
        );
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut p = NextTracePredictor::new(cfg_small());
        p.update(&rec(0x0040_0000, 0, 0));
        p.update(&rec_callret(0x0040_0100, 1, false));
        let cp = p.checkpoint();
        let before: Vec<_> = p.history().iter_newest_first().copied().collect();
        p.update(&rec(0x0041_0000, 0, 0));
        p.update(&rec_callret(0x0041_0100, 0, true));
        p.restore(&cp);
        let after: Vec<_> = p.history().iter_newest_first().copied().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn alternate_tracks_second_choice() {
        let mut p = NextTracePredictor::new(PredictorConfig {
            secondary_index_bits: 8,
            // Disable secondary dominance by making saturation unreachable
            // in this short test: heavy traffic alternates successors, so
            // the 4-bit counter never saturates anyway.
            ..PredictorConfig::paper_with_alternate(12, 0)
        });
        let a = rec(0x0040_0000, 0, 0);
        let b = rec(0x0040_0400, 0, 0);
        let c = rec(0x0040_0800, 0, 0);
        // a alternates between successors b and c.
        p.update(&a);
        for _ in 0..8 {
            p.update(&b);
            p.update(&a);
            p.update(&c);
            p.update(&a);
        }
        let pred = p.predict();
        let (Some(t), Some(alt)) = (pred.target, pred.alternate) else {
            panic!("expected primary and alternate: {pred:?}");
        };
        let covers = |x: Target| x.matches(b.id()) || x.matches(c.id());
        assert!(covers(t) && covers(alt));
        assert_ne!(t, alt, "alternate differs from primary");
    }

    #[test]
    fn cost_reduced_predictor_matches_on_hash() {
        let mut p = NextTracePredictor::new(PredictorConfig {
            stored_target: StoredTarget::Hashed,
            secondary_index_bits: 8,
            ..PredictorConfig::paper(12, 1)
        });
        let a = rec(0x0040_0000, 0, 0);
        let b = rec(0x0040_0400, 0, 0);
        for _ in 0..3 {
            p.update(&a);
            p.update(&b);
        }
        p.update(&a);
        let pred = p.predict();
        assert!(matches!(pred.target, Some(Target::Hashed(_))));
        assert!(pred.is_correct(b.id()));
    }

    #[test]
    fn aliasing_counters_split_fills_from_steals() {
        // A tiny 2^1-entry correlating table forces steals quickly.
        let mut p = NextTracePredictor::new(PredictorConfig {
            index_bits: 1,
            dolc: crate::Dolc {
                depth: 3,
                older: 4,
                last: 6,
                current: 8,
            },
            secondary_index_bits: 8,
            ..PredictorConfig::paper(12, 3)
        });
        for k in 0..64u32 {
            p.update(&rec(0x0040_0000 + k * 0x40, 0, 0));
        }
        let a = p.aliasing();
        assert!(a.cold_fills >= 1, "{a:?}");
        assert!(a.cold_fills <= 2, "only two entries can fill cold: {a:?}");
        assert!(a.steals > 0, "64 distinct paths through 2 entries: {a:?}");
        assert!(a.sec_fills > 0, "{a:?}");

        let occ = p.occupancy();
        assert_eq!(occ.corr_capacity, 2);
        assert_eq!(occ.corr_valid, 2);
        assert!((occ.corr_fraction() - 1.0).abs() < 1e-12);
        assert!(occ.sec_valid > 0 && occ.sec_valid <= occ.sec_capacity);

        p.reset();
        assert_eq!(p.aliasing(), AliasingCounters::default());
        assert_eq!(p.occupancy().corr_valid, 0);
    }

    #[test]
    fn occupancy_popcount_matches_per_entry_scan() {
        // The bitset popcount must agree with the plain definition: the
        // number of entries whose valid bit is set.
        let mut p = NextTracePredictor::new(cfg_small());
        for k in 0..500u32 {
            p.update(&rec(0x0040_0000 + (k % 211) * 0x40, 0, 0));
        }
        let occ = p.occupancy();
        let corr_scan = (0..p.corr.len()).filter(|&i| p.corr.valid.get(i)).count() as u64;
        let sec_scan = (0..p.sec.len()).filter(|&i| p.sec.valid.get(i)).count() as u64;
        assert_eq!(occ.corr_valid, corr_scan);
        assert_eq!(occ.sec_valid, sec_scan);
        assert!(occ.corr_valid > 0 && occ.sec_valid > 0);
    }

    #[test]
    fn cached_indices_always_match_recomputation() {
        // The hot path serves `indices()` from a cache refreshed at history
        // pushes; it must stay bit-identical to recomputing from scratch,
        // including across RHS pushes/merges and checkpoint restores.
        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
        let expect = |p: &NextTracePredictor| {
            let cfg = p.config();
            let newest = p.history().newest().unwrap_or_default();
            IndexSnapshot {
                corr_index: cfg.dolc.index(p.history(), cfg.index_bits),
                tag: newest.low_bits(cfg.tag_bits) as u16,
                sec_index: newest.low_bits(cfg.secondary_index_bits),
            }
        };
        assert_eq!(p.indices(), expect(&p), "fresh predictor");

        let mut seed = 0x2545F491u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let mut cp = p.checkpoint();
        for k in 0..400 {
            let r = rng();
            let calls = (r & 3) as u8 % 3;
            let ret = r & 4 != 0;
            let rec = TraceRecord::new(
                TraceId::new(0x0040_0000 + (r % 97) * 0x40, (r >> 8) as u8 & 0b11, 2),
                8,
                calls,
                ret,
                ret,
            );
            p.update(&rec);
            assert_eq!(p.indices(), expect(&p), "step {k}");
            if k % 67 == 0 {
                cp = p.checkpoint();
            }
            if k % 131 == 130 {
                p.restore(&cp);
                assert_eq!(p.indices(), expect(&p), "after restore at {k}");
            }
        }
        p.reset();
        assert_eq!(p.indices(), expect(&p), "after reset");
    }

    #[test]
    fn history_len_reports_occupancy() {
        let mut p = NextTracePredictor::new(cfg_small());
        assert_eq!(p.history_len(), 0);
        p.update(&rec(0x0040_0000, 0, 0));
        p.update(&rec(0x0040_0400, 0, 0));
        assert_eq!(p.history_len(), 2);
    }

    #[test]
    fn save_restore_state_is_bit_identical() {
        // Train one predictor, snapshot, restore into a fresh predictor,
        // then drive both in lockstep: every prediction, occupancy and
        // aliasing counter must agree from the cut point on.
        let cfg = PredictorConfig::paper(12, 3);
        let mut trained = NextTracePredictor::new(cfg);
        let mut seed = 0x9E3779B9u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let step = |r: u32| {
            let calls = (r & 3) as u8 % 3;
            let ret = r & 4 != 0;
            TraceRecord::new(
                TraceId::new(0x0040_0000 + (r % 131) * 0x40, (r >> 8) as u8 & 0b11, 2),
                8,
                calls,
                ret,
                ret,
            )
        };
        for _ in 0..700 {
            let r = rng();
            trained.update(&step(r));
        }
        let state = trained.save_state();
        let mut restored = NextTracePredictor::new(cfg);
        restored.restore_state(&state).expect("state is valid");
        assert_eq!(restored.save_state(), state, "save∘restore is identity");
        assert_eq!(restored.aliasing(), trained.aliasing());
        assert_eq!(restored.occupancy(), trained.occupancy());
        assert_eq!(restored.indices(), trained.indices());
        for k in 0..400 {
            let r = rng();
            let rec = step(r);
            assert_eq!(restored.predict(), trained.predict(), "step {k}");
            trained.update(&rec);
            restored.update(&rec);
        }
        assert_eq!(restored.aliasing(), trained.aliasing());
    }

    #[test]
    fn restore_state_refuses_bad_geometry_and_values() {
        let cfg = cfg_small();
        let mut p = NextTracePredictor::new(cfg);
        for k in 0..200u32 {
            p.update(&rec(0x0040_0000 + (k % 61) * 0x40, 0, 0));
        }
        let good = p.save_state();
        let fingerprint = p.save_state();

        let mut wrong_len = good.clone();
        wrong_len.corr_tags.pop();
        let mut oversize_ctr = good.clone();
        oversize_ctr.sec_ctrs[0] = 200; // 4-bit counter maxes at 15
        let mut wide_tag = good.clone();
        wide_tag.corr_tags[3] = u16::MAX; // paper tag is 10 bits
        let mut deep_history = good.clone();
        deep_history.history = vec![1; 40];
        let mut deep_rhs = good.clone();
        deep_rhs.rhs = vec![vec![1; 2]; 64];
        let mut fat_rhs = good.clone();
        fat_rhs.rhs = vec![vec![1; crate::RHS_SNAPSHOT_CAP + 1]];

        for (name, bad) in [
            ("truncated corr_tags", wrong_len),
            ("oversize secondary counter", oversize_ctr),
            ("tag wider than tag_bits", wide_tag),
            ("history deeper than capacity", deep_history),
            ("rhs deeper than max_depth", deep_rhs),
            ("rhs entry wider than inline cap", fat_rhs),
        ] {
            assert!(p.restore_state(&bad).is_err(), "{name} must be refused");
            assert_eq!(
                p.save_state(),
                fingerprint,
                "{name}: refused restore must not mutate the predictor"
            );
        }
        assert!(p.restore_state(&good).is_ok());
    }

    #[test]
    fn restore_state_refuses_stray_bitmap_tail_bits() {
        // A 2-entry correlating table uses 2 bits of one word; any higher
        // bit is corruption that would skew occupancy popcounts.
        let cfg = PredictorConfig {
            index_bits: 1,
            dolc: crate::Dolc {
                depth: 3,
                older: 4,
                last: 6,
                current: 8,
            },
            secondary_index_bits: 8,
            ..PredictorConfig::paper(12, 3)
        };
        let mut p = NextTracePredictor::new(cfg);
        p.update(&rec(0x0040_0000, 0, 0));
        let mut state = p.save_state();
        state.corr_valid[0] |= 1 << 2;
        assert!(matches!(
            p.restore_state(&state),
            Err(StateError::Value {
                field: "corr_valid",
                ..
            })
        ));
    }

    #[test]
    fn restore_state_refuses_rhs_when_disabled() {
        let cfg = PredictorConfig {
            rhs: None,
            ..cfg_small()
        };
        let mut with_rhs = NextTracePredictor::new(cfg_small());
        with_rhs.update(&rec_callret(0x0040_0100, 1, false));
        let mut state = with_rhs.save_state();
        state.rhs = vec![vec![7]];
        // Same table geometry, but the target predictor has no RHS.
        let mut p = NextTracePredictor::new(cfg);
        assert!(matches!(
            p.restore_state(&state),
            Err(StateError::Geometry { field: "rhs", .. })
        ));
    }

    #[test]
    fn restore_state_refuses_wide_hashed_targets() {
        let cfg = PredictorConfig {
            stored_target: StoredTarget::Hashed,
            secondary_index_bits: 8,
            ..PredictorConfig::paper(12, 1)
        };
        let mut p = NextTracePredictor::new(cfg);
        p.update(&rec(0x0040_0000, 0, 0));
        p.update(&rec(0x0040_0400, 0, 0));
        let mut state = p.save_state();
        state.sec_targets[0] = u16::MAX as u64 + 1;
        assert!(matches!(
            p.restore_state(&state),
            Err(StateError::Value {
                field: "sec_targets",
                ..
            })
        ));
    }

    #[test]
    fn state_error_reports_are_specific() {
        let g = StateError::Geometry {
            field: "corr_tags",
            expected: 4096,
            found: 4095,
        };
        let v = StateError::Value {
            field: "sec_ctrs",
            index: 7,
            value: 200,
            max: 15,
        };
        assert!(g.to_string().contains("corr_tags"), "{g}");
        assert!(g.to_string().contains("4095"), "{g}");
        assert!(v.to_string().contains("sec_ctrs[7]"), "{v}");
        assert!(v.to_string().contains("200"), "{v}");
    }

    #[test]
    fn reset_forgets_everything() {
        let mut p = NextTracePredictor::new(cfg_small());
        let a = rec(0x0040_0000, 0, 0);
        let b = rec(0x0040_0400, 0, 0);
        for _ in 0..3 {
            p.update(&a);
            p.update(&b);
        }
        p.reset();
        assert!(p.history().is_empty());
        let pred = p.predict();
        assert_eq!(pred.source, Source::Cold);
    }
}
