//! Accuracy accounting and the replay evaluation driver.

use crate::{Prediction, Source, TracePredictor};
use ntp_trace::TraceRecord;
use std::fmt;

/// Number of counters in [`PredictorStats`] (the length of its
/// [`PredictorStats::to_array`] encoding).
pub const PREDICTOR_STATS_FIELDS: usize = 8;

/// Accuracy statistics accumulated over a replayed trace stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Predictions made (one per trace after the first).
    pub predictions: u64,
    /// Primary prediction named the actual next trace.
    pub correct: u64,
    /// Primary was wrong but the alternate (§6) was right.
    pub alternate_correct: u64,
    /// Predictions served by the correlating table.
    pub from_correlated: u64,
    /// Predictions served by the secondary table.
    pub from_secondary: u64,
    /// Cold predictions (no table had anything).
    pub cold: u64,
    /// Correct predictions served by the correlating table.
    pub correlated_correct: u64,
    /// Correct predictions served by the secondary table.
    pub secondary_correct: u64,
}

impl PredictorStats {
    /// Creates zeroed statistics.
    pub fn new() -> PredictorStats {
        PredictorStats::default()
    }

    /// Scores one prediction against the actual trace.
    pub fn score(&mut self, pred: &Prediction, actual: &TraceRecord) {
        self.predictions += 1;
        let id = actual.id();
        let hit = pred.is_correct(id);
        if hit {
            self.correct += 1;
        } else if pred.alternate_correct(id) {
            self.alternate_correct += 1;
        }
        match pred.source {
            Source::Correlated => {
                self.from_correlated += 1;
                if hit {
                    self.correlated_correct += 1;
                }
            }
            Source::Secondary => {
                self.from_secondary += 1;
                if hit {
                    self.secondary_correct += 1;
                }
            }
            Source::Cold => self.cold += 1,
        }
    }

    /// Primary misprediction rate in percent (the paper's headline metric).
    pub fn mispredict_pct(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            100.0 * (self.predictions - self.correct) as f64 / self.predictions as f64
        }
    }

    /// Rate at which *both* primary and alternate missed, in percent
    /// (Figure 8's second series).
    pub fn both_mispredict_pct(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            100.0 * (self.predictions - self.correct - self.alternate_correct) as f64
                / self.predictions as f64
        }
    }

    /// Fraction of mispredictions rescued by the alternate.
    pub fn alternate_rescue_fraction(&self) -> f64 {
        let miss = self.predictions - self.correct;
        if miss == 0 {
            0.0
        } else {
            self.alternate_correct as f64 / miss as f64
        }
    }

    /// The plain-array form, field-for-field in declaration order — the
    /// stable encoding wire protocols (`ntp-serve`'s `StatsOk` frame) and
    /// other codecs use. [`PredictorStats::from_array`] inverts it.
    pub fn to_array(&self) -> [u64; PREDICTOR_STATS_FIELDS] {
        [
            self.predictions,
            self.correct,
            self.alternate_correct,
            self.from_correlated,
            self.from_secondary,
            self.cold,
            self.correlated_correct,
            self.secondary_correct,
        ]
    }

    /// Rebuilds statistics from their [`PredictorStats::to_array`] form.
    pub fn from_array(a: [u64; PREDICTOR_STATS_FIELDS]) -> PredictorStats {
        PredictorStats {
            predictions: a[0],
            correct: a[1],
            alternate_correct: a[2],
            from_correlated: a[3],
            from_secondary: a[4],
            cold: a[5],
            correlated_correct: a[6],
            secondary_correct: a[7],
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &PredictorStats) {
        self.predictions += other.predictions;
        self.correct += other.correct;
        self.alternate_correct += other.alternate_correct;
        self.from_correlated += other.from_correlated;
        self.from_secondary += other.from_secondary;
        self.cold += other.cold;
        self.correlated_correct += other.correlated_correct;
        self.secondary_correct += other.secondary_correct;
    }
}

impl fmt::Display for PredictorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} predictions, {:.2}% mispredict (corr {}, sec {}, cold {})",
            self.predictions,
            self.mispredict_pct(),
            self.from_correlated,
            self.from_secondary,
            self.cold
        )
    }
}

/// Replays a recorded trace stream through a predictor with immediate
/// updates (the methodology of §4.1) and returns accuracy statistics.
///
/// # Examples
///
/// ```
/// use ntp_core::{evaluate, NextTracePredictor, PredictorConfig};
/// use ntp_trace::{TraceId, TraceRecord};
///
/// let records: Vec<TraceRecord> = (0..100)
///     .map(|k| TraceRecord::new(TraceId::new(0x0040_0000 + (k % 4) * 64, 0, 0), 16, 0, false, false))
///     .collect();
/// let mut p = NextTracePredictor::new(PredictorConfig::paper(12, 3));
/// let stats = evaluate(&mut p, &records);
/// assert!(stats.mispredict_pct() < 20.0, "a 4-cycle is easy: {stats}");
/// ```
pub fn evaluate<P: TracePredictor + ?Sized>(
    predictor: &mut P,
    records: &[TraceRecord],
) -> PredictorStats {
    let mut stats = PredictorStats::new();
    for r in records {
        let pred = predictor.predict();
        stats.score(&pred, r);
        predictor.update(r);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Target;
    use ntp_trace::TraceId;

    fn rec(pc: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 8, 0, false, false)
    }

    #[test]
    fn score_buckets_by_source() {
        let mut s = PredictorStats::new();
        let actual = rec(0x0040_0000);
        let hit = Prediction {
            target: Some(Target::Full(actual.id())),
            alternate: None,
            source: Source::Correlated,
        };
        let miss_with_alt = Prediction {
            target: Some(Target::Full(rec(0x0041_0000).id())),
            alternate: Some(Target::Full(actual.id())),
            source: Source::Secondary,
        };
        s.score(&hit, &actual);
        s.score(&miss_with_alt, &actual);
        s.score(&Prediction::cold(), &actual);
        assert_eq!(s.predictions, 3);
        assert_eq!(s.correct, 1);
        assert_eq!(s.alternate_correct, 1);
        assert_eq!(s.cold, 1);
        assert!((s.mispredict_pct() - 66.666).abs() < 0.1);
        assert!((s.both_mispredict_pct() - 33.333).abs() < 0.1);
        assert!((s.alternate_rescue_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = PredictorStats {
            predictions: 10,
            correct: 9,
            ..PredictorStats::new()
        };
        let b = PredictorStats {
            predictions: 10,
            correct: 1,
            ..PredictorStats::new()
        };
        a.merge(&b);
        assert_eq!(a.predictions, 20);
        assert!((a.mispredict_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn array_roundtrip_covers_every_field() {
        let s = PredictorStats {
            predictions: 1,
            correct: 2,
            alternate_correct: 3,
            from_correlated: 4,
            from_secondary: 5,
            cold: 6,
            correlated_correct: 7,
            secondary_correct: 8,
        };
        let a = s.to_array();
        assert_eq!(a, [1, 2, 3, 4, 5, 6, 7, 8], "declaration order");
        assert_eq!(PredictorStats::from_array(a), s);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = PredictorStats::new();
        assert_eq!(s.mispredict_pct(), 0.0);
        assert_eq!(s.both_mispredict_pct(), 0.0);
        assert_eq!(s.alternate_rescue_fraction(), 0.0);
    }

    #[test]
    fn merge_preserves_alternate_accounting() {
        // Shard A: 4 predictions, 1 primary hit, 2 alternate rescues.
        let a0 = PredictorStats {
            predictions: 4,
            correct: 1,
            alternate_correct: 2,
            from_correlated: 3,
            cold: 1,
            correlated_correct: 1,
            ..PredictorStats::new()
        };
        // Shard B: 6 predictions, 3 primary hits, 1 alternate rescue.
        let b = PredictorStats {
            predictions: 6,
            correct: 3,
            alternate_correct: 1,
            from_secondary: 6,
            secondary_correct: 3,
            ..PredictorStats::new()
        };
        let mut a = a0.clone();
        a.merge(&b);
        assert_eq!(a.alternate_correct, 3);
        assert_eq!(a.from_correlated, 3);
        assert_eq!(a.from_secondary, 6);
        assert_eq!(a.correlated_correct, 1);
        assert_eq!(a.secondary_correct, 3);
        // 10 predictions, 4 correct, 3 alternate rescues.
        assert!((a.mispredict_pct() - 60.0).abs() < 1e-9);
        assert!((a.both_mispredict_pct() - 30.0).abs() < 1e-9);
        assert!((a.alternate_rescue_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let full = PredictorStats {
            predictions: 7,
            correct: 2,
            alternate_correct: 1,
            from_correlated: 4,
            from_secondary: 2,
            cold: 1,
            correlated_correct: 1,
            secondary_correct: 1,
        };
        // empty.merge(full) == full (and the zero-prediction guard held
        // before the merge).
        let mut acc = PredictorStats::new();
        assert_eq!(acc.mispredict_pct(), 0.0, "guard before merging");
        acc.merge(&full);
        assert_eq!(acc, full);
        // full.merge(empty) == full.
        let mut again = full.clone();
        again.merge(&PredictorStats::new());
        assert_eq!(again, full);
    }

    #[test]
    fn sharded_merge_equals_single_accumulator() {
        // Scoring in two shards then merging must equal one accumulator —
        // the contract the engine's per-shard registries rely on.
        let actual = rec(0x0040_0000);
        let other = rec(0x0041_0000);
        let preds = [
            Prediction {
                target: Some(Target::Full(actual.id())),
                alternate: None,
                source: Source::Correlated,
            },
            Prediction {
                target: Some(Target::Full(other.id())),
                alternate: Some(Target::Full(actual.id())),
                source: Source::Secondary,
            },
            Prediction::cold(),
            Prediction {
                target: Some(Target::Full(other.id())),
                alternate: Some(Target::Full(other.id())),
                source: Source::Correlated,
            },
        ];
        let mut whole = PredictorStats::new();
        for p in &preds {
            whole.score(p, &actual);
        }
        let mut left = PredictorStats::new();
        let mut right = PredictorStats::new();
        for p in &preds[..2] {
            left.score(p, &actual);
        }
        for p in &preds[2..] {
            right.score(p, &actual);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }
}
