//! Confidence estimation for trace predictions.
//!
//! An extension following the authors' companion work (Jacobson, Rotenberg
//! & Smith, *Assigning Confidence to Conditional Branch Predictions*,
//! MICRO-29, 1996), applied at trace granularity: a table of **resetting
//! counters** indexed by the same path information as the predictor. A
//! counter increments (saturating) when the prediction at its index is
//! correct, and resets to zero on a misprediction; a prediction is flagged
//! high-confidence when the counter is at or above a threshold.
//!
//! High-confidence predictions are the ones a trace processor would let
//! run far ahead (or use to gate selective dual-path fetch); the metrics
//! reported here are the standard ones: coverage of each confidence class
//! and the misprediction rate within it.

use crate::{Dolc, NextTracePredictor, PathHistory, PredictorStats, TracePredictor};
use ntp_trace::{HashedId, TraceRecord};

/// Configuration of a [`ConfidenceEstimator`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ConfidenceConfig {
    /// log2 of the resetting-counter table size.
    pub index_bits: u32,
    /// Counter width in bits (the MICRO-29 paper uses small counters).
    pub counter_bits: u8,
    /// Values at or above this are high confidence.
    pub threshold: u8,
    /// Index generation: the same DOLC scheme as the predictor, so
    /// confidence is assigned per path, not per trace.
    pub dolc: Dolc,
}

impl ConfidenceConfig {
    /// A reasonable default: 2^14 four-bit resetting counters, threshold
    /// at saturation, depth-7 path indexing.
    pub fn paper_like() -> ConfidenceConfig {
        ConfidenceConfig {
            index_bits: 14,
            counter_bits: 4,
            threshold: 15,
            dolc: Dolc::standard(7, 15),
        }
    }

    fn max(&self) -> u8 {
        ((1u16 << self.counter_bits) - 1) as u8
    }

    /// Validates the configuration without panicking.
    pub fn try_validate(&self) -> Result<(), crate::ConfigError> {
        crate::error::in_range("confidence.index_bits", self.index_bits as u64, 1, 24)?;
        crate::error::in_range("confidence.counter_bits", self.counter_bits as u64, 1, 8)?;
        crate::error::in_range(
            "confidence.threshold",
            self.threshold as u64,
            0,
            self.max() as u64,
        )?;
        self.dolc.try_validate()
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero-size tables, counters wider than 8 bits, or a
    /// threshold above the counter maximum — see
    /// [`ConfidenceConfig::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid confidence config: {e}");
        }
    }
}

/// A table of resetting counters assigning confidence to trace predictions.
///
/// # Examples
///
/// ```
/// use ntp_core::{ConfidenceConfig, ConfidenceEstimator, PathHistory};
/// use ntp_trace::HashedId;
///
/// let mut est = ConfidenceEstimator::new(ConfidenceConfig::paper_like());
/// let mut hist: PathHistory<HashedId> = PathHistory::new(8);
/// hist.push(HashedId(0x1234));
/// assert!(!est.is_confident(&hist), "cold counters are low confidence");
/// for _ in 0..15 {
///     est.update(&hist, true);
/// }
/// assert!(est.is_confident(&hist));
/// est.update(&hist, false);
/// assert!(!est.is_confident(&hist), "one miss resets");
/// ```
#[derive(Clone, Debug)]
pub struct ConfidenceEstimator {
    counters: Vec<u8>,
    cfg: ConfidenceConfig,
}

impl ConfidenceEstimator {
    /// Builds an estimator with all counters at zero (low confidence).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ConfidenceConfig) -> ConfidenceEstimator {
        cfg.validate();
        ConfidenceEstimator {
            counters: vec![0; 1 << cfg.index_bits],
            cfg,
        }
    }

    fn slot(&self, history: &PathHistory<HashedId>) -> usize {
        self.cfg.dolc.index(history, self.cfg.index_bits) as usize
    }

    /// The raw counter value for the current path.
    pub fn value(&self, history: &PathHistory<HashedId>) -> u8 {
        self.counters[self.slot(history)]
    }

    /// True if the prediction made from this path should be trusted.
    pub fn is_confident(&self, history: &PathHistory<HashedId>) -> bool {
        self.value(history) >= self.cfg.threshold
    }

    /// Trains the resetting counter for this path.
    pub fn update(&mut self, history: &PathHistory<HashedId>, correct: bool) {
        let slot = self.slot(history);
        let c = &mut self.counters[slot];
        if correct {
            *c = (*c + 1).min(self.cfg.max());
        } else {
            *c = 0;
        }
    }

    /// Forgets everything.
    pub fn reset(&mut self) {
        self.counters.fill(0);
    }
}

/// Outcome counts split by assigned confidence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfidenceStats {
    /// High-confidence predictions that were correct.
    pub high_correct: u64,
    /// High-confidence predictions that missed.
    pub high_wrong: u64,
    /// Low-confidence predictions that were correct.
    pub low_correct: u64,
    /// Low-confidence predictions that missed.
    pub low_wrong: u64,
    /// Underlying prediction accuracy (same as plain [`crate::evaluate`]).
    pub prediction: PredictorStats,
}

impl ConfidenceStats {
    /// Fraction of predictions flagged high confidence.
    pub fn coverage(&self) -> f64 {
        let high = self.high_correct + self.high_wrong;
        let total = high + self.low_correct + self.low_wrong;
        if total == 0 {
            0.0
        } else {
            high as f64 / total as f64
        }
    }

    /// Misprediction rate among high-confidence predictions, in percent —
    /// the number a speculation controller cares about.
    pub fn high_mispredict_pct(&self) -> f64 {
        let high = self.high_correct + self.high_wrong;
        if high == 0 {
            0.0
        } else {
            100.0 * self.high_wrong as f64 / high as f64
        }
    }

    /// Misprediction rate among low-confidence predictions, in percent.
    pub fn low_mispredict_pct(&self) -> f64 {
        let low = self.low_correct + self.low_wrong;
        if low == 0 {
            0.0
        } else {
            100.0 * self.low_wrong as f64 / low as f64
        }
    }

    /// Fraction of all mispredictions that were flagged low confidence
    /// (how many pipeline flushes a gating mechanism could avoid).
    pub fn mispredictions_caught(&self) -> f64 {
        let wrong = self.high_wrong + self.low_wrong;
        if wrong == 0 {
            0.0
        } else {
            self.low_wrong as f64 / wrong as f64
        }
    }
}

/// Replays a trace stream through a predictor with a confidence estimator
/// riding along, using immediate updates for both.
pub fn evaluate_with_confidence(
    predictor: &mut NextTracePredictor,
    estimator: &mut ConfidenceEstimator,
    records: &[TraceRecord],
) -> ConfidenceStats {
    let mut stats = ConfidenceStats::default();
    for r in records {
        let pred = predictor.predict();
        let confident = estimator.is_confident(predictor.history());
        let correct = pred.is_correct(r.id());
        stats.prediction.score(&pred, r);
        match (confident, correct) {
            (true, true) => stats.high_correct += 1,
            (true, false) => stats.high_wrong += 1,
            (false, true) => stats.low_correct += 1,
            (false, false) => stats.low_wrong += 1,
        }
        estimator.update(predictor.history(), correct);
        predictor.update(r);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictorConfig;
    use ntp_trace::TraceId;

    fn rec(pc: u32) -> TraceRecord {
        TraceRecord::new(TraceId::new(pc, 0, 0), 10, 0, false, false)
    }

    /// A stream mixing fully predictable contexts with one coin-flip
    /// context: three laps of a 5-trace cycle, then a dispatcher trace `U`
    /// whose successor is a random choice of `V`/`W`, then back to the
    /// cycle. Only the prediction made after `U` is inherently
    /// unpredictable.
    fn mixed_stream(iterations: usize) -> Vec<TraceRecord> {
        let a: Vec<TraceRecord> = (0..5).map(|k| rec(0x0040_0004 + k * 0x44)).collect();
        let u = rec(0x0040_1004);
        let v = rec(0x0040_2008);
        let w = rec(0x0040_300C);
        let mut x: u32 = 77;
        let mut out = Vec::new();
        for _ in 0..iterations {
            for _ in 0..3 {
                out.extend_from_slice(&a);
            }
            out.push(u);
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            out.push(if x & 0x100 != 0 { v } else { w });
        }
        out
    }

    #[test]
    fn high_confidence_is_much_more_accurate() {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 3));
        let mut est = ConfidenceEstimator::new(ConfidenceConfig {
            threshold: 4,
            dolc: Dolc::standard(3, 15),
            ..ConfidenceConfig::paper_like()
        });
        let stats = evaluate_with_confidence(&mut p, &mut est, &mixed_stream(2_000));
        assert!(stats.coverage() > 0.5, "coverage {}", stats.coverage());
        assert!(
            stats.high_mispredict_pct() * 3.0 < stats.low_mispredict_pct(),
            "high {}% vs low {}%",
            stats.high_mispredict_pct(),
            stats.low_mispredict_pct()
        );
        assert!(
            stats.mispredictions_caught() > 0.7,
            "caught {}",
            stats.mispredictions_caught()
        );
    }

    #[test]
    fn threshold_trades_coverage_for_purity() {
        let run = |threshold: u8| {
            let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 3));
            let mut est = ConfidenceEstimator::new(ConfidenceConfig {
                threshold,
                dolc: Dolc::standard(3, 15),
                ..ConfidenceConfig::paper_like()
            });
            evaluate_with_confidence(&mut p, &mut est, &mixed_stream(2_000))
        };
        let lax = run(1);
        let strict = run(8);
        assert!(lax.coverage() > strict.coverage());
        assert!(lax.high_mispredict_pct() >= strict.high_mispredict_pct());
    }

    #[test]
    fn stats_edge_cases() {
        let empty = ConfidenceStats::default();
        assert_eq!(empty.coverage(), 0.0);
        assert_eq!(empty.high_mispredict_pct(), 0.0);
        assert_eq!(empty.low_mispredict_pct(), 0.0);
        assert_eq!(empty.mispredictions_caught(), 0.0);
    }

    #[test]
    #[should_panic]
    fn threshold_above_saturation_rejected() {
        ConfidenceConfig {
            counter_bits: 2,
            threshold: 4,
            ..ConfidenceConfig::paper_like()
        }
        .validate();
    }
}
