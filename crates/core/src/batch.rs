//! Batched sweeps over many independent predictor sessions.
//!
//! The predict/update loop is table-lookup dominated: each probe gathers a
//! tag, a counter and a target from tables far larger than L1/L2, so a
//! scalar loop serializes on one cache miss per step. When many
//! *independent* sessions are in flight — replay lanes in the benchmark
//! suite, or distinct sessions queued on an `ntp-serve` shard — their
//! probes don't depend on each other, and a sweep can overlap the misses.
//!
//! Every sweep here runs the same three phases per round:
//!
//! 1. **index compute** — each lane's table indexes come from its cached
//!    [`IndexSnapshot`](crate::IndexSnapshot) (maintained incrementally at
//!    history pushes, so this phase is a register read per lane);
//! 2. **gathered probe** — [`NextTracePredictor::prefetch_tables`] issues
//!    software prefetch hints for every lane's table lines before any lane
//!    resolves, so the gathers are in flight concurrently;
//! 3. **resolve** — each lane predicts/trains exactly as the scalar path
//!    would.
//!
//! Phase 3 calls the same `predict_at`/`train_at` the scalar API uses, and
//! each lane's own records are processed strictly in order, so results are
//! bit-identical to the scalar loop — enforced field-for-field by
//! `ntp-verify`'s batch-equivalence oracle and by the property tests below.

use crate::{evaluate, NextTracePredictor, Prediction, PredictorStats, TracePredictor};
use ntp_trace::TraceRecord;

/// One independent replay lane for [`evaluate_batch`]: a predictor session
/// and the record stream it replays. Lanes may have different lengths and
/// different configurations.
pub struct BatchLane<'a> {
    /// The session's predictor.
    pub predictor: &'a mut NextTracePredictor,
    /// The records this lane replays, in order.
    pub records: &'a [TraceRecord],
}

impl<'a> BatchLane<'a> {
    /// Pairs a predictor with its record stream.
    pub fn new(predictor: &'a mut NextTracePredictor, records: &'a [TraceRecord]) -> BatchLane<'a> {
        BatchLane { predictor, records }
    }
}

/// Predicts for many independent sessions in one gathered sweep.
///
/// Equivalent to calling [`TracePredictor::predict`] on each predictor in
/// order — the sweep only overlaps the table gathers, it never changes any
/// result.
pub fn predict_batch(predictors: &[&NextTracePredictor]) -> Vec<Prediction> {
    for p in predictors {
        p.prefetch_tables();
    }
    predictors.iter().map(|p| p.predict()).collect()
}

/// Trains many independent sessions, one record each, in one gathered
/// sweep. Equivalent to calling [`TracePredictor::update`] pairwise in
/// order.
pub fn update_batch(lanes: &mut [(&mut NextTracePredictor, &TraceRecord)]) {
    for (p, _) in lanes.iter() {
        p.prefetch_tables();
    }
    for (p, r) in lanes.iter_mut() {
        p.update(r);
    }
}

/// Replays every lane to completion, interleaved one record per lane per
/// round, returning each lane's [`PredictorStats`].
///
/// Per lane this is exactly [`evaluate`]: the same predict → score → update
/// sequence over the same records in the same order, so the returned stats
/// (and the predictors' final table state, aliasing counters and histories)
/// are bit-identical to running the lanes one after another. The sweep buys
/// throughput purely by prefetching all lanes' next table lines before
/// resolving any of them. Lanes shorter than the longest simply drop out of
/// later rounds.
pub fn evaluate_batch(lanes: &mut [BatchLane<'_>]) -> Vec<PredictorStats> {
    let mut stats = vec![PredictorStats::new(); lanes.len()];
    let rounds = lanes.iter().map(|l| l.records.len()).max().unwrap_or(0);
    for round in 0..rounds {
        // Gathered probe pass: every active lane's table lines first…
        for lane in lanes.iter() {
            if round < lane.records.len() {
                lane.predictor.prefetch_tables();
            }
        }
        // …then the resolve pass, identical to the scalar loop per lane.
        for (lane, st) in lanes.iter_mut().zip(stats.iter_mut()) {
            if let Some(rec) = lane.records.get(round) {
                let pred = lane.predictor.predict();
                st.score(&pred, rec);
                lane.predictor.update(rec);
            }
        }
    }
    stats
}

/// Convenience for benchmark passes: replays `streams.len()` fresh lanes
/// built by `make_predictor` (one per stream) through [`evaluate_batch`].
pub fn evaluate_batch_fresh<F>(
    streams: &[&[TraceRecord]],
    mut make_predictor: F,
) -> Vec<PredictorStats>
where
    F: FnMut(usize) -> NextTracePredictor,
{
    let mut predictors: Vec<NextTracePredictor> =
        (0..streams.len()).map(&mut make_predictor).collect();
    let mut lanes: Vec<BatchLane<'_>> = predictors
        .iter_mut()
        .zip(streams.iter())
        .map(|(p, s)| BatchLane::new(p, s))
        .collect();
    evaluate_batch(&mut lanes)
}

/// Scalar reference for the batch sweeps, used by tests and the verify
/// oracle: replays the same lanes one after another through [`evaluate`].
pub fn evaluate_serial(lanes: &mut [BatchLane<'_>]) -> Vec<PredictorStats> {
    lanes
        .iter_mut()
        .map(|l| evaluate(l.predictor, l.records))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictorConfig;
    use ntp_trace::{TraceId, TraceRecord};

    fn stream(seed: u64, len: usize) -> Vec<TraceRecord> {
        // Deterministic LCG stream with loops, calls and returns.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = (x >> 33) as u32;
                let pc = 0x0040_0000 + (r % 499) * 0x20;
                let calls = ((r >> 11) & 3) as u8 % 3;
                let ret = (r >> 13) & 7 == 0;
                TraceRecord::new(
                    TraceId::new(pc, (r >> 17) as u8 & 0b11, 2),
                    8,
                    calls,
                    ret,
                    ret,
                )
            })
            .collect()
    }

    #[test]
    fn batch_matches_scalar_on_ragged_lanes() {
        let streams: Vec<Vec<TraceRecord>> = (0..5)
            .map(|k| stream(k + 1, 200 + 37 * k as usize))
            .collect();
        let cfg = |k: usize| {
            if k.is_multiple_of(2) {
                PredictorConfig::paper(12, 3)
            } else {
                PredictorConfig {
                    secondary_index_bits: 8,
                    ..PredictorConfig::paper_with_alternate(12, 7)
                }
            }
        };

        let mut batch_preds: Vec<_> = (0..5).map(|k| NextTracePredictor::new(cfg(k))).collect();
        let mut lanes: Vec<BatchLane<'_>> = batch_preds
            .iter_mut()
            .zip(streams.iter())
            .map(|(p, s)| BatchLane::new(p, s))
            .collect();
        let batch_stats = evaluate_batch(&mut lanes);

        let mut serial_preds: Vec<_> = (0..5).map(|k| NextTracePredictor::new(cfg(k))).collect();
        let mut lanes: Vec<BatchLane<'_>> = serial_preds
            .iter_mut()
            .zip(streams.iter())
            .map(|(p, s)| BatchLane::new(p, s))
            .collect();
        let serial_stats = evaluate_serial(&mut lanes);

        assert_eq!(batch_stats, serial_stats);
        for (b, s) in batch_preds.iter().zip(serial_preds.iter()) {
            assert_eq!(b.aliasing(), s.aliasing(), "aliasing counters diverge");
            assert_eq!(b.occupancy(), s.occupancy(), "occupancy diverges");
            assert_eq!(b.indices(), s.indices(), "cached indexes diverge");
            // Final per-step predictions agree too.
            assert_eq!(b.predict(), s.predict());
        }
    }

    #[test]
    fn predict_and_update_batch_match_pairwise_scalar() {
        let streams: Vec<Vec<TraceRecord>> = (0..4).map(|k| stream(10 + k, 150)).collect();
        let mut batch: Vec<_> = (0..4)
            .map(|_| NextTracePredictor::new(PredictorConfig::paper(12, 3)))
            .collect();
        let mut scalar: Vec<_> = (0..4)
            .map(|_| NextTracePredictor::new(PredictorConfig::paper(12, 3)))
            .collect();

        for step in 0..150 {
            let preds = predict_batch(&batch.iter().collect::<Vec<_>>());
            for (k, s) in scalar.iter().enumerate() {
                assert_eq!(preds[k], s.predict(), "step {step} lane {k}");
            }
            let recs: Vec<&TraceRecord> = streams.iter().map(|s| &s[step]).collect();
            let mut lanes: Vec<(&mut NextTracePredictor, &TraceRecord)> =
                batch.iter_mut().zip(recs.iter().copied()).collect();
            update_batch(&mut lanes);
            for (s, r) in scalar.iter_mut().zip(recs.iter()) {
                s.update(r);
            }
        }
        for (b, s) in batch.iter().zip(scalar.iter()) {
            assert_eq!(b.aliasing(), s.aliasing());
            assert_eq!(b.occupancy(), s.occupancy());
        }
    }

    #[test]
    fn evaluate_batch_fresh_matches_evaluate() {
        let a = stream(42, 300);
        let b = stream(43, 120);
        let got = evaluate_batch_fresh(&[&a, &b], |_| {
            NextTracePredictor::new(PredictorConfig::paper(12, 3))
        });
        let want: Vec<_> = [&a, &b]
            .into_iter()
            .map(|s| {
                let mut p = NextTracePredictor::new(PredictorConfig::paper(12, 3));
                evaluate(&mut p, s)
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_batches_are_fine() {
        assert!(predict_batch(&[]).is_empty());
        update_batch(&mut []);
        assert!(evaluate_batch(&mut []).is_empty());
        // A lane with no records contributes zeroed stats.
        let mut p = NextTracePredictor::new(PredictorConfig::paper(12, 3));
        let mut lanes = [BatchLane::new(&mut p, &[])];
        let stats = evaluate_batch(&mut lanes);
        assert_eq!(stats[0], PredictorStats::new());
    }
}
